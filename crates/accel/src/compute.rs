//! Roofline compute models for the per-node engines.
//!
//! The paper computes SpMM with SPADE accelerators (Table 5: 128 PEs at
//! 1 GHz with 64 GB of 800 GB/s HBM) and, in §9.6, with Sapphire-Rapids
//! CPUs (48-core DDR and 56-core HBM variants running MKL). For the
//! figures we reproduce (13, 14, 21), only per-node *compute time* matters,
//! and SpMM/SDDMM on these engines is memory-bandwidth-bound; a roofline
//! with an empirical efficiency factor reproduces the compute/communication
//! ratios the paper reports.

use serde::{Deserialize, Serialize};

/// Which engine performs the per-node computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComputeEngine {
    /// The SPADE sparse accelerator of Table 5.
    Spade,
    /// 48-core Sapphire Rapids with DDR5 (§9.6).
    CpuDdr,
    /// 56-core Sapphire Rapids Max with HBM (§9.6).
    CpuHbm,
}

/// A memory-bandwidth roofline for sparse kernels.
///
/// `spmm_time` charges one pass over the matrix structure plus the
/// property traffic:
///
/// - matrix bytes: `nnz * 8` (4 B column idx + 4 B value),
/// - input-property reads: `nnz * K * 4 * (1 - input_reuse)` — on-chip
///   buffering captures a fraction `input_reuse` of repeated property
///   reads (SPADE's row-window reuse; MKL's cache blocking),
/// - output writes: `rows * K * 4`,
///
/// bounded below by the FLOP roofline `2 * nnz * K / peak_flops`.
///
/// # Example
///
/// ```
/// use netsparse_accel::{ComputeEngine, ComputeModel};
/// let spade = ComputeModel::new(ComputeEngine::Spade);
/// let t = spade.spmm_time(1_000_000, 10_000, 16);
/// assert!(t > 0.0 && t < 1.0); // seconds
/// // The HBM CPU outruns the DDR CPU on the same kernel.
/// let ddr = ComputeModel::new(ComputeEngine::CpuDdr).spmm_time(1_000_000, 10_000, 16);
/// let hbm = ComputeModel::new(ComputeEngine::CpuHbm).spmm_time(1_000_000, 10_000, 16);
/// assert!(hbm < ddr);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComputeModel {
    /// The engine modeled.
    pub engine: ComputeEngine,
    /// Sustained memory bandwidth, bytes/second.
    pub mem_bw: f64,
    /// Peak multiply-accumulate throughput, FLOP/s.
    pub peak_flops: f64,
    /// Fraction of repeated input-property reads served on-chip.
    pub input_reuse: f64,
    /// Fraction of peak bandwidth sustained on sparse access patterns.
    pub bw_efficiency: f64,
}

impl ComputeModel {
    /// The calibrated model for `engine`.
    ///
    /// Bandwidths follow Table 5 / §9.6 (SPADE 800 GB/s HBM, SPR-DDR
    /// ~300 GB/s, SPR-HBM ~800 GB/s); efficiency factors are set so the
    /// relative single-node rates match the paper's observation that
    /// SPR+HBM approaches SPADE while SPR+DDR trails it.
    pub fn new(engine: ComputeEngine) -> Self {
        match engine {
            ComputeEngine::Spade => ComputeModel {
                engine,
                mem_bw: 800e9,
                // 128 PEs x 1 GHz x 2-flop MAC x 16-wide property lanes.
                peak_flops: 4_096e9,
                input_reuse: 0.5,
                bw_efficiency: 0.85,
            },
            ComputeEngine::CpuDdr => ComputeModel {
                engine,
                mem_bw: 300e9,
                peak_flops: 3_000e9,
                input_reuse: 0.5,
                bw_efficiency: 0.55,
            },
            ComputeEngine::CpuHbm => ComputeModel {
                engine,
                mem_bw: 800e9,
                peak_flops: 3_500e9,
                input_reuse: 0.5,
                bw_efficiency: 0.55,
            },
        }
    }

    /// Seconds to run SpMM over `nnz` nonzeros and `rows` output rows with
    /// K-element (`k`) single-precision properties on one node.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn spmm_time(&self, nnz: u64, rows: u64, k: u32) -> f64 {
        assert!(k > 0, "property size must be nonzero");
        let prop = 4.0 * k as f64;
        let bytes =
            nnz as f64 * 8.0 + nnz as f64 * prop * (1.0 - self.input_reuse) + rows as f64 * prop;
        let mem_time = bytes / (self.mem_bw * self.bw_efficiency);
        let flops = 2.0 * nnz as f64 * k as f64;
        let flop_time = flops / self.peak_flops;
        mem_time.max(flop_time)
    }

    /// Seconds for an SDDMM over the same structure (two dense reads per
    /// nonzero, one scalar write).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn sddmm_time(&self, nnz: u64, k: u32) -> f64 {
        assert!(k > 0, "property size must be nonzero");
        let prop = 4.0 * k as f64;
        let bytes = nnz as f64 * (8.0 + 2.0 * prop * (1.0 - self.input_reuse) + 4.0);
        let mem_time = bytes / (self.mem_bw * self.bw_efficiency);
        let flop_time = 2.0 * nnz as f64 * k as f64 / self.peak_flops;
        mem_time.max(flop_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmm_time_scales_linearly_in_nnz() {
        let m = ComputeModel::new(ComputeEngine::Spade);
        let t1 = m.spmm_time(1_000_000, 1_000, 16);
        let t2 = m.spmm_time(2_000_000, 1_000, 16);
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
    }

    #[test]
    fn spmm_time_grows_with_k() {
        let m = ComputeModel::new(ComputeEngine::Spade);
        assert!(m.spmm_time(1_000_000, 1_000, 128) > m.spmm_time(1_000_000, 1_000, 16));
    }

    #[test]
    fn spade_is_memory_bound_at_small_k() {
        let m = ComputeModel::new(ComputeEngine::Spade);
        // At K=16 the memory term dominates the flop term.
        let nnz = 1_000_000u64;
        let flop_time = 2.0 * nnz as f64 * 16.0 / m.peak_flops;
        assert!(m.spmm_time(nnz, 1_000, 16) > flop_time);
    }

    #[test]
    fn engine_ordering_matches_paper() {
        // Single-node rates: SPADE >= SPR+HBM > SPR+DDR.
        let nnz = 10_000_000u64;
        let spade = ComputeModel::new(ComputeEngine::Spade).spmm_time(nnz, 100_000, 128);
        let hbm = ComputeModel::new(ComputeEngine::CpuHbm).spmm_time(nnz, 100_000, 128);
        let ddr = ComputeModel::new(ComputeEngine::CpuDdr).spmm_time(nnz, 100_000, 128);
        assert!(spade < hbm && hbm < ddr, "{spade} {hbm} {ddr}");
    }

    #[test]
    fn sddmm_time_positive_and_bandwidth_bound() {
        let m = ComputeModel::new(ComputeEngine::CpuDdr);
        assert!(m.sddmm_time(500_000, 32) > 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_k_rejected() {
        ComputeModel::new(ComputeEngine::Spade).spmm_time(10, 10, 0);
    }
}
