//! Compute and software-communication models (paper §8.1, §8.2, §9.6).
//!
//! NetSparse's end-to-end results pair hardware-accelerated communication
//! with per-node compute engines, and compare against idealized software
//! baselines. This crate supplies the analytic models for both sides:
//!
//! - [`compute`] — memory-bandwidth roofline models of the per-node compute
//!   engines: the SPADE sparse accelerator (128 PEs, 800 GB/s HBM) and the
//!   Sapphire-Rapids-class CPUs (DDR and HBM variants) of §9.6,
//! - [`sw_model`] — the calibrated software-overhead models behind the
//!   SUOpt and SAOpt baselines (§8.1): dense all-to-all wire time for
//!   SUOpt, Conveyors-style per-PR software cost with per-core prefiltering
//!   for SAOpt, and the vanilla-SA per-PR cost used for the motivation
//!   measurements (Tables 2 and Figure 10).
//!
//! All constants are in one place, documented with the paper observation
//! they are calibrated against, so the calibration is auditable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compute;
pub mod sw_model;

pub use compute::{ComputeEngine, ComputeModel};
pub use sw_model::{HybridOptModel, SaOptModel, SuOptModel, VanillaSaModel};
