//! Software communication models: SUOpt, SAOpt and vanilla SA (paper §8.1).
//!
//! The paper compares NetSparse against *idealized* software baselines:
//!
//! - **SUOpt**: communication time is just the bytes each node receives
//!   under the dense all-to-all property exchange, at 100 % line rate with
//!   no headers and no latency — the performance limit of the
//!   sparsity-unaware approach.
//! - **SAOpt**: the SA algorithm augmented with the Conveyors framework:
//!   idxs are batched per destination in software, pre-filtered per core
//!   (threads map to distinct ranks, so duplicates across cores survive),
//!   and shipped as aggregated messages. Only the software costs of PR
//!   generation / book-keeping / synchronization are charged, calibrated
//!   against the paper's Figure 10 single-node measurement.
//! - **Vanilla SA**: the unbatched one-PR-per-RDMA-read flow of §2.3,
//!   whose measured 2-node transfer rates motivate the work (Table 2).
//!
//! Calibration constants live on the model structs with the observation
//! they reproduce.

use netsparse_sparse::CommWorkload;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The SUOpt baseline: optimal sparsity-unaware communication.
///
/// # Example
///
/// ```
/// use netsparse_accel::SuOptModel;
/// let m = SuOptModel::new(400.0);
/// // A node receiving 1 M remote properties of 64 B at 400 Gbps:
/// let t = m.comm_time(1_000_000, 16);
/// assert!((t - 1.28e-3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuOptModel {
    /// Network line rate in Gbps.
    pub line_rate_gbps: f64,
}

impl SuOptModel {
    /// Creates the model for a given line rate.
    pub fn new(line_rate_gbps: f64) -> Self {
        SuOptModel { line_rate_gbps }
    }

    /// Seconds for a node to receive `properties_received` properties of
    /// `k` 4-byte elements at full line rate, no headers, no latency.
    pub fn comm_time(&self, properties_received: u64, k: u32) -> f64 {
        let bits = properties_received as f64 * 4.0 * k as f64 * 8.0;
        bits / (self.line_rate_gbps * 1e9)
    }

    /// The kernel's communication time: the slowest node's receive time.
    /// Under SU every node receives all remotely owned properties, so this
    /// is simply the maximum per-node `su_received`.
    pub fn kernel_comm_time(&self, wl: &CommWorkload, k: u32) -> f64 {
        let stats = wl.pattern_stats();
        stats
            .per_node
            .iter()
            .map(|n| self.comm_time(n.su_received, k))
            .fold(0.0, f64::max)
    }
}

/// The SAOpt baseline: Conveyors-augmented sparsity-aware software.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SaOptModel {
    /// Network line rate in Gbps.
    pub line_rate_gbps: f64,
    /// CPU cores per node devoted to communication (paper: all 64).
    pub cores: u32,
    /// Per-PR software cost per core, nanoseconds. Calibrated so 64 cores
    /// sustain ~10 % goodput at K=32 (Figure 10's ceiling) and the Table 7
    /// "Gput SA" column lands in its 1–11 % range.
    pub per_pr_ns: f64,
}

impl SaOptModel {
    /// The paper's configuration: 400 Gbps, 64 cores.
    pub fn paper() -> Self {
        SaOptModel {
            line_rate_gbps: 400.0,
            cores: 64,
            per_pr_ns: 1_600.0,
        }
    }

    /// Aggregate PR generation rate (PRs/second) with `cores` cores.
    pub fn pr_rate(&self, cores: u32) -> f64 {
        cores as f64 / (self.per_pr_ns * 1e-9)
    }

    /// Figure 10: goodput as a fraction of the line rate for `cores`
    /// cores and `k`-element properties, under perfectly balanced
    /// single-node communication.
    pub fn goodput_fraction(&self, cores: u32, k: u32) -> f64 {
        let payload_bits = 4.0 * k as f64 * 8.0;
        let bps = self.pr_rate(cores) * payload_bits;
        (bps / (self.line_rate_gbps * 1e9)).min(1.0)
    }

    /// PRs a node must generate under SAOpt: work is distributed to cores
    /// row by row (row `r` goes to core `r % cores`, the usual OpenMP-style
    /// interleaving), and each core pre-filters its *own* duplicates
    /// (offline and free, per the paper's optimistic assumption).
    /// Duplicates across cores survive because Conveyors maps threads to
    /// distinct ranks and cross-rank filtering is not possible — the reason
    /// Table 7 reports several-fold more PRs for SAOpt than for NetSparse.
    pub fn node_pr_count(&self, wl: &CommWorkload, node: u32) -> u64 {
        let stream = wl.stream(node);
        let cores = self.cores.max(1) as usize;
        // Approximate one matrix row as stream_len / rows contiguous idxs.
        let row_len = (stream.len() / wl.rows_of(node).max(1) as usize).max(1);
        let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); cores];
        let mut total = 0u64;
        for (row, slice) in stream.chunks(row_len).enumerate() {
            let core = row % cores;
            for &idx in slice {
                if wl.owner(idx) != node && seen[core].insert(idx) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Seconds of communication for `node`: the larger of the software
    /// bound (PRs / aggregate rate) and the optimal wire bound (payload
    /// bytes at full line rate; Conveyors aggregation makes headers
    /// negligible and the model charges no network latency).
    pub fn node_comm_time(&self, wl: &CommWorkload, node: u32, k: u32) -> f64 {
        let prs = self.node_pr_count(wl, node);
        let sw = prs as f64 / self.pr_rate(self.cores);
        let wire = prs as f64 * 4.0 * k as f64 * 8.0 / (self.line_rate_gbps * 1e9);
        sw.max(wire)
    }

    /// The kernel's communication time: the slowest node.
    pub fn kernel_comm_time(&self, wl: &CommWorkload, k: u32) -> f64 {
        (0..wl.nodes())
            .map(|p| self.node_comm_time(wl, p, k))
            .fold(0.0, f64::max)
    }

    /// The tail node's achieved goodput fraction (Table 7, "Gput SA").
    pub fn tail_goodput(&self, wl: &CommWorkload, k: u32) -> f64 {
        let (mut worst_t, mut worst_prs) = (0.0f64, 0u64);
        for p in 0..wl.nodes() {
            let t = self.node_comm_time(wl, p, k);
            if t > worst_t {
                worst_t = t;
                worst_prs = self.node_pr_count(wl, p);
            }
        }
        if worst_t == 0.0 {
            return 0.0;
        }
        let bits = worst_prs as f64 * 4.0 * k as f64 * 8.0;
        bits / worst_t / (self.line_rate_gbps * 1e9)
    }
}

impl Default for SaOptModel {
    fn default() -> Self {
        SaOptModel::paper()
    }
}

/// A Two-Face-style hybrid software baseline (the paper's reference [11]):
/// *popular* columns — needed by many nodes — are broadcast SU-style
/// (collectives are efficient when everyone wants the data anyway), while
/// the long tail is fetched sparsity-aware through the Conveyors model.
///
/// This is the strongest software scheme the paper positions against; it
/// is not in the paper's evaluation, so `ext_hybrid` reports it as an
/// extension. The popularity threshold is swept and the best value taken
/// (an idealized, oracle-tuned hybrid).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridOptModel {
    /// The SA side (Conveyors) of the hybrid.
    pub sa: SaOptModel,
}

impl HybridOptModel {
    /// Builds the hybrid over a configured SAOpt model.
    pub fn new(sa: SaOptModel) -> Self {
        HybridOptModel { sa }
    }

    /// Kernel communication time with an oracle-chosen popularity
    /// threshold: columns needed by more than `threshold` nodes are
    /// broadcast; the rest go through SA. Returns the best time over a
    /// sweep of thresholds (including "broadcast nothing").
    pub fn kernel_comm_time(&self, wl: &CommWorkload, k: u32) -> f64 {
        let mut best = f64::INFINITY;
        for threshold in [u32::MAX, 128, 64, 32, 16, 8, 4, 2] {
            best = best.min(self.comm_time_at(wl, k, threshold));
        }
        best
    }

    /// Communication time for one specific popularity threshold.
    pub fn comm_time_at(&self, wl: &CommWorkload, k: u32, threshold: u32) -> f64 {
        // Count, per column, how many distinct nodes need it remotely.
        let mut requesters: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut per_node_unique: Vec<HashSet<u32>> = Vec::with_capacity(wl.nodes() as usize);
        for p in 0..wl.nodes() {
            let mut uniq = HashSet::new();
            for &idx in wl.stream(p) {
                if wl.owner(idx) != p && uniq.insert(idx) {
                    *requesters.entry(idx).or_insert(0) += 1;
                }
            }
            per_node_unique.push(uniq);
        }
        let popular: HashSet<u32> = requesters
            .iter()
            .filter(|(_, &c)| c > threshold)
            .map(|(&idx, _)| idx)
            .collect();
        let bits_per_prop = 4.0 * k as f64 * 8.0;
        let line = self.sa.line_rate_gbps * 1e9;

        let mut worst = 0.0f64;
        for p in 0..wl.nodes() {
            // Broadcast side: every node receives every remotely owned
            // popular column at full line rate (SU-optimal assumptions).
            let pop_remote = popular.iter().filter(|&&idx| wl.owner(idx) != p).count() as f64;
            // SA side: the node's tail columns through Conveyors, with
            // the same per-core prefiltering as SAOpt but restricted to
            // non-popular columns.
            let sa_prs = self.sa_side_pr_count(wl, p, &popular);
            let sw = sa_prs as f64 / self.sa.pr_rate(self.sa.cores);
            let wire = (pop_remote + sa_prs as f64) * bits_per_prop / line;
            worst = worst.max(sw.max(wire));
        }
        worst
    }

    fn sa_side_pr_count(&self, wl: &CommWorkload, node: u32, popular: &HashSet<u32>) -> u64 {
        let stream = wl.stream(node);
        let cores = self.sa.cores.max(1) as usize;
        let row_len = (stream.len() / wl.rows_of(node).max(1) as usize).max(1);
        let mut seen: Vec<HashSet<u32>> = vec![HashSet::new(); cores];
        let mut total = 0u64;
        for (row, slice) in stream.chunks(row_len).enumerate() {
            let core = row % cores;
            for &idx in slice {
                if wl.owner(idx) != node && !popular.contains(&idx) && seen[core].insert(idx) {
                    total += 1;
                }
            }
        }
        total
    }
}

/// Vanilla (unbatched) SA: one RDMA read per nonzero, host-driven.
///
/// Table 2 measures its 2-node transfer rate at 0.2–0.7 Gbps depending on
/// the matrix; the dominant variable is how scattered consecutive PR
/// destinations are (more destinations → worse batching in the NIC
/// doorbell path and worse cache behaviour). The model charges a base
/// per-PR cost plus a destination-spread penalty.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VanillaSaModel {
    /// Base serialized per-PR software cost, nanoseconds.
    pub base_ns: f64,
    /// Additional cost per unique destination in a 64-PR window, ns.
    pub per_dest_ns: f64,
    /// Network line rate in Gbps.
    pub line_rate_gbps: f64,
}

impl VanillaSaModel {
    /// Constants calibrated against Table 2 (queen 0.7 Gbps, europe
    /// 0.2 Gbps at K=32 on 100 Gbps-class Slingshot).
    pub fn paper() -> Self {
        VanillaSaModel {
            base_ns: 1_110.0,
            per_dest_ns: 350.0,
            line_rate_gbps: 200.0,
        }
    }

    /// Achieved transfer rate in Gbps for `k`-element properties given the
    /// workload's Table 4 destination-locality statistic.
    pub fn transfer_rate_gbps(&self, k: u32, window_dests: f64) -> f64 {
        let per_pr_ns = self.base_ns + self.per_dest_ns * window_dests;
        let bits = 4.0 * k as f64 * 8.0;
        bits / per_pr_ns // bits per ns == Gbps
    }

    /// Line utilization fraction (Table 2, second row).
    pub fn line_utilization(&self, k: u32, window_dests: f64) -> f64 {
        self.transfer_rate_gbps(k, window_dests) / self.line_rate_gbps
    }

    /// Goodput fraction of the line rate (Table 2, third row): utilization
    /// discounted by the per-K header fraction.
    pub fn goodput(&self, k: u32, window_dests: f64, header_fraction: f64) -> f64 {
        self.line_utilization(k, window_dests) * (1.0 - header_fraction)
    }
}

impl Default for VanillaSaModel {
    fn default() -> Self {
        VanillaSaModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsparse_sparse::Partition1D;

    fn two_node_wl() -> CommWorkload {
        let part = Partition1D::even(64, 2);
        // Node 0: eight remote refs, four unique; node 1: all local.
        let s0 = vec![32, 33, 32, 34, 35, 33, 32, 34, 1, 2];
        let s1 = vec![40, 41];
        CommWorkload::from_streams(part, vec![32, 32], vec![s0, s1])
    }

    #[test]
    fn suopt_charges_all_remote_properties() {
        let wl = two_node_wl();
        let m = SuOptModel::new(400.0);
        let t = m.kernel_comm_time(&wl, 16);
        // Each node receives 32 remote properties of 64 B.
        let expect = 32.0 * 64.0 * 8.0 / 400e9;
        assert!((t - expect).abs() < 1e-15);
    }

    #[test]
    fn saopt_prefilters_per_core() {
        let wl = two_node_wl();
        let mut m = SaOptModel::paper();
        m.cores = 1;
        // One core: perfect per-node filtering -> 4 unique PRs.
        assert_eq!(m.node_pr_count(&wl, 0), 4);
        m.cores = 2;
        // Rows (one idx each here) interleave across cores: core 0 sees
        // {32, 35} among its remote refs, core 1 sees {33, 34} -> 4 total.
        assert_eq!(m.node_pr_count(&wl, 0), 4);
        assert_eq!(m.node_pr_count(&wl, 1), 0);
        // Fewer rows per core than duplicates: duplicates now split across
        // cores and survive. 10 idxs over 2 rows of 5 -> row 0 and row 1
        // on different cores, idx 32 counted on both.
        let part = netsparse_sparse::Partition1D::even(64, 2);
        let wl2 = CommWorkload::from_streams(
            part,
            vec![2, 2],
            vec![vec![32, 33, 34, 35, 36, 32, 33, 34, 35, 36], vec![]],
        );
        assert_eq!(m.node_pr_count(&wl2, 0), 10);
    }

    #[test]
    fn saopt_goodput_scales_with_cores_and_k() {
        let m = SaOptModel::paper();
        assert!(m.goodput_fraction(64, 32) > m.goodput_fraction(8, 32));
        assert!(m.goodput_fraction(64, 128) > m.goodput_fraction(64, 32));
        // Calibration anchor: 64 cores at K=32 sits near 10 %.
        let g = m.goodput_fraction(64, 32);
        assert!((0.05..0.2).contains(&g), "goodput {g}");
        // Never above the line rate.
        assert!(m.goodput_fraction(10_000, 256) <= 1.0);
    }

    #[test]
    fn saopt_kernel_time_is_tail_node() {
        let wl = two_node_wl();
        let m = SaOptModel::paper();
        let t = m.kernel_comm_time(&wl, 16);
        assert!((t - m.node_comm_time(&wl, 0, 16)).abs() < 1e-18);
        assert!(m.tail_goodput(&wl, 16) > 0.0);
    }

    #[test]
    fn hybrid_never_loses_to_pure_sa_or_pure_broadcast() {
        let wl = two_node_wl();
        let sa = SaOptModel::paper();
        let hybrid = HybridOptModel::new(sa);
        let t_hybrid = hybrid.kernel_comm_time(&wl, 16);
        let t_sa = sa.kernel_comm_time(&wl, 16);
        // threshold MAX = pure SA is inside the sweep.
        assert!(t_hybrid <= t_sa + 1e-15);
        // Pure broadcast (threshold 0-ish) is approximated by threshold 2
        // here; the oracle sweep can only improve on any fixed point.
        let t_bcast = hybrid.comm_time_at(&wl, 16, 2);
        assert!(t_hybrid <= t_bcast + 1e-15);
    }

    #[test]
    fn hybrid_broadcasts_hot_columns() {
        // Column 32 needed by three nodes; 48 by one. With threshold 2,
        // only 32 is broadcast.
        let part = Partition1D::even(64, 4);
        let wl = CommWorkload::from_streams(
            part,
            vec![16; 4],
            vec![vec![32, 48], vec![32], vec![32], vec![]],
        );
        let hybrid = HybridOptModel::new(SaOptModel::paper());
        // Pure SA charges 5 PRs; threshold-2 hybrid charges the
        // broadcast of one column to 3 non-owners + 2 SA PRs.
        let t2 = hybrid.comm_time_at(&wl, 16, 2);
        let t_sa = hybrid.comm_time_at(&wl, 16, u32::MAX);
        assert!(t2 <= t_sa);
    }

    #[test]
    fn vanilla_sa_rates_match_table2_shape() {
        let m = VanillaSaModel::paper();
        // queen (1.0 dests) transfers faster than europe (7.43 dests).
        let queen = m.transfer_rate_gbps(32, 1.0);
        let europe = m.transfer_rate_gbps(32, 7.43);
        assert!(queen > europe);
        // Absolute range: a few tenths of a Gbps (Table 2: 0.2–0.7).
        assert!((0.1..1.5).contains(&queen), "queen {queen}");
        assert!((0.05..0.5).contains(&europe), "europe {europe}");
        // Line utilization well under 1 %.
        assert!(m.line_utilization(32, 2.51) < 0.01);
    }
}
