//! SNIC configuration (paper Table 5, "SNIC" rows).

use serde::{Deserialize, Serialize};

/// Parameters of a NetSparse-extended SmartNIC.
///
/// Defaults follow Table 5: an AMD Pensando-like part at 2.2 GHz with
/// 32 RIG units (half configured as clients, half as servers), 256-entry
/// Pending PR Tables, 4 KB idx/property buffers, and a 400 Gbps network
/// interface with 1500 B MTU.
///
/// # Example
///
/// ```
/// use netsparse_snic::SnicConfig;
/// let c = SnicConfig::paper();
/// assert_eq!(c.rig_units, 32);
/// assert_eq!(c.client_units(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnicConfig {
    /// SNIC clock in GHz (RIG units process one idx per cycle).
    pub clock_ghz: f64,
    /// Total RIG units; even ids run as clients, odd as servers.
    pub rig_units: u32,
    /// Pending PR Table entries per client unit.
    pub pending_entries: usize,
    /// Idx Buffer bytes per unit (bounds the DMA chunk of a batch).
    pub idx_buffer_bytes: u32,
    /// Rx Property Buffer bytes per unit.
    pub prop_buffer_bytes: u32,
    /// Load-store-queue entries per unit (Idx Filter accesses in flight).
    pub lsq_entries: u32,
    /// SNIC DRAM bandwidth in GB/s (Idx Filter traffic).
    pub dram_gbps: f64,
    /// Network interface rate in Gbps.
    pub line_rate_gbps: f64,
    /// Maximum transmission unit in bytes.
    pub mtu: u32,
    /// Concatenator delay budget in SNIC cycles (paper: 500).
    pub concat_delay_cycles: u64,
    /// PCIe one-way latency in nanoseconds (paper: 200 ns, Gen6).
    pub pcie_latency_ns: u64,
    /// PCIe bandwidth in GB/s (paper: 256 GB/s).
    pub pcie_gbps: f64,
}

impl SnicConfig {
    /// Table 5's SNIC configuration.
    pub fn paper() -> Self {
        SnicConfig {
            clock_ghz: 2.2,
            rig_units: 32,
            pending_entries: 256,
            idx_buffer_bytes: 4 * 1024,
            prop_buffer_bytes: 4 * 1024,
            lsq_entries: 64,
            dram_gbps: 64.0,
            line_rate_gbps: 400.0,
            mtu: 1_500,
            concat_delay_cycles: 500,
            pcie_latency_ns: 200,
            pcie_gbps: 256.0,
        }
    }

    /// Client-mode RIG units (half of the total, at least 1).
    pub fn client_units(&self) -> u32 {
        (self.rig_units / 2).max(1)
    }

    /// Server-mode RIG units (the other half, at least 1).
    pub fn server_units(&self) -> u32 {
        (self.rig_units - self.client_units()).max(1)
    }

    /// Idxs that fit in one Idx Buffer DMA chunk (4-byte idxs).
    pub fn idx_chunk(&self) -> usize {
        (self.idx_buffer_bytes as usize / 4).max(1)
    }
}

impl Default for SnicConfig {
    fn default() -> Self {
        SnicConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = SnicConfig::paper();
        assert_eq!(c.client_units() + c.server_units(), 32);
        assert_eq!(c.idx_chunk(), 1024);
        assert_eq!(c.mtu, 1_500);
    }

    #[test]
    fn degenerate_unit_counts_stay_positive() {
        let mut c = SnicConfig::paper();
        c.rig_units = 2;
        assert_eq!(c.client_units(), 1);
        assert_eq!(c.server_units(), 1);
    }
}
