//! The PR Concatenator: per-destination delay queues (paper §6.1.2).
//!
//! A Concatenation Point (in an SNIC or a ToR switch) keeps one MTU-sized
//! **Concatenation Queue** (CQ) per `(destination, PR type)` pair. An
//! arriving PR is pushed into its CQ; the CQ's contents are emitted as a
//! single packet when either
//!
//! - the CQ cannot fit another PR within the MTU, or
//! - the *Expiration Time* of the CQ's first PR (entry time + a fixed
//!   `DelayCycles` budget) passes.
//!
//! Expirations are tracked by an **Expiration Queue** (EQ). In hardware
//! every PR gets the same delay budget, so CQs expire in first-PR arrival
//! order and the EQ is the paper's circular queue whose head is the only
//! candidate. The simulation processes idx batches in lumped events whose
//! emitted timestamps can interleave slightly across units, so the EQ here
//! is a small min-heap — same semantics, robust to out-of-order pushes.
//! Entries are invalidated by a generation counter when their CQ flushes
//! early (the paper's "EQ index" metadata).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use netsparse_desim::{Histogram, SimTime};

use netsparse_desim::trace::FlushReason;
#[cfg(feature = "trace")]
use netsparse_desim::trace::{TraceEvent, Tracer, TrackId};

use crate::protocol::{HeaderSpec, Pr, PrKind, PR_KINDS};

/// Configuration of one concatenation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConcatConfig {
    /// Protocol header sizes.
    pub headers: HeaderSpec,
    /// Maximum transmission unit in bytes (paper: 1500 B).
    pub mtu: u32,
    /// Maximum time any PR waits for companions (paper: 500 SNIC cycles /
    /// 125 switch cycles).
    pub delay: SimTime,
    /// When `false`, every PR departs immediately in its own packet
    /// (the no-concatenation ablation).
    pub enabled: bool,
}

impl ConcatConfig {
    /// A disabled concatenation point (one PR per packet).
    pub fn disabled(headers: HeaderSpec) -> Self {
        ConcatConfig {
            headers,
            mtu: 1_500,
            delay: SimTime::ZERO,
            enabled: false,
        }
    }
}

/// A packet emitted by a concatenation point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConcatPacket {
    /// Destination node of every PR inside.
    pub dest: u32,
    /// PR type of every PR inside.
    pub kind: PrKind,
    /// Property payload bytes carried per PR (0 for reads).
    pub payload_per_pr: u32,
    /// The concatenated PRs.
    pub prs: Vec<Pr>,
    /// Total wire bytes (upper + concat headers + per-PR headers +
    /// payloads).
    pub wire_bytes: u64,
    /// Degraded-mode marker: emitted by a node whose watchdog retry budget
    /// ran out. Switches forward such packets verbatim — no property-cache
    /// probe, no reconcatenation — so delivery no longer depends on the
    /// NetSparse extensions that kept failing (e.g. a dead rack switch on
    /// the cached path).
    pub degraded: bool,
}

impl ConcatPacket {
    /// Builds a degraded-mode singleton: one PR in its own packet,
    /// bypassing every concatenation queue, flagged for forward-only
    /// switch handling.
    pub fn degraded_singleton(
        headers: &HeaderSpec,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload: u32,
    ) -> Self {
        ConcatPacket {
            dest,
            kind,
            payload_per_pr: payload,
            wire_bytes: headers.packet_bytes(1, payload),
            prs: vec![pr],
            degraded: true,
        }
    }
}

#[derive(Debug, Default)]
struct Cq {
    prs: Vec<Pr>,
    payload_per_pr: u32,
    generation: u64,
}

/// Most emptied PR buffers a concatenation point keeps for reuse; beyond
/// this, returned buffers are simply dropped.
const SPARE_CAP: usize = 64;

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct EqEntry {
    expires: SimTime,
    seq: u64,
    dest: u32,
    kind: PrKind,
    generation: u64,
}

/// A concatenation point: CQs plus the expiration queue.
///
/// # Example
///
/// ```
/// use netsparse_snic::{ConcatConfig, Concatenator, HeaderSpec, Pr, PrKind};
/// use netsparse_desim::SimTime;
///
/// let cfg = ConcatConfig {
///     headers: HeaderSpec::paper(),
///     mtu: 1_500,
///     delay: SimTime::from_ns(200),
///     enabled: true,
/// };
/// let mut c = Concatenator::new(cfg);
/// let pr = |i| Pr { src_node: 0, src_tid: 0, idx: i, req_id: i };
/// let t0 = SimTime::ZERO;
/// assert!(c.push(t0, 7, PrKind::Read, pr(1), 0).is_none()); // waits
/// assert!(c.push(t0, 7, PrKind::Read, pr(2), 0).is_none()); // same CQ
/// // Nothing expired yet...
/// assert!(c.flush_expired(t0).is_empty());
/// // ...but 200 ns later the CQ expires as one 2-PR packet.
/// let pkts = c.flush_expired(SimTime::from_ns(200));
/// assert_eq!(pkts.len(), 1);
/// assert_eq!(pkts[0].prs.len(), 2);
/// ```
/// CQ storage is a dense slab indexed by `dest * PR_KINDS + kind` (the
/// id-space contract: destinations are dense node ids assigned by the
/// cluster, so the slab is at most `PR_KINDS * nodes` small structs).
/// Slot order equals the former `BTreeMap<(u32, PrKind), Cq>` iteration
/// order — destination ascending, [`PrKind::Read`] before
/// [`PrKind::Response`] before [`PrKind::Partial`] — so drain order (and
/// with it every committed digest) is unchanged for runs without Partial
/// traffic. Emptied PR buffers rotate through a spare pool
/// ([`Concatenator::recycle`]) instead of being reallocated per packet.
#[derive(Debug)]
pub struct Concatenator {
    cfg: ConcatConfig,
    queues: Vec<Cq>,
    spare: Vec<Vec<Pr>>,
    eq: BinaryHeap<Reverse<EqEntry>>,
    eq_seq: u64,
    prs_per_packet: Histogram,
    packets: u64,
    #[cfg(feature = "trace")]
    tracer: Option<(Tracer, TrackId)>,
}

impl Concatenator {
    /// Creates an empty concatenation point.
    pub fn new(cfg: ConcatConfig) -> Self {
        Concatenator {
            cfg,
            queues: Vec::new(),
            spare: Vec::new(),
            eq: BinaryHeap::new(),
            eq_seq: 0,
            prs_per_packet: Histogram::new(),
            packets: 0,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// The slab slot of a `(dest, kind)` CQ: destinations are dense ids,
    /// so each gets [`PR_KINDS`] adjacent slots (read, response, partial).
    #[inline]
    fn slot(dest: u32, kind: PrKind) -> usize {
        dest as usize * PR_KINDS + kind as usize
    }

    /// The `(dest, kind)` a slab slot holds.
    #[inline]
    fn unslot(slot: usize) -> (u32, PrKind) {
        let kind = match slot % PR_KINDS {
            0 => PrKind::Read,
            1 => PrKind::Response,
            _ => PrKind::Partial,
        };
        ((slot / PR_KINDS) as u32, kind)
    }

    /// Pops a pooled PR buffer, or a fresh one when the pool is dry.
    #[inline]
    fn take_spare(&mut self) -> Vec<Pr> {
        self.spare.pop().unwrap_or_default()
    }

    /// Donates an emptied PR buffer (a consumed packet's `prs`) back to
    /// the pool so the next emission reuses its capacity.
    #[inline]
    pub fn recycle(&mut self, mut prs: Vec<Pr>) {
        if self.spare.len() < SPARE_CAP {
            prs.clear();
            self.spare.push(prs);
        }
    }

    /// Attaches a tracer; every emitted packet is recorded as a
    /// `concat_flush` on `track` (the owner's concat lane).
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = Some((tracer, track));
    }

    /// The configuration in use.
    pub fn config(&self) -> &ConcatConfig {
        &self.cfg
    }

    /// Pushes a PR bound for `dest`. Returns a packet if this push caused
    /// an (MTU-full) emission; otherwise the PR waits in its CQ.
    ///
    /// `payload_bytes` is the property payload this PR will carry (0 for
    /// read PRs); all PRs in one CQ must carry equal payloads (the
    /// concatenation-layer header holds a single property length).
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` differs from PRs already queued for the
    /// same `(dest, kind)`.
    pub fn push(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload_bytes: u32,
    ) -> Option<ConcatPacket> {
        if !self.cfg.enabled {
            let mut prs = self.take_spare();
            prs.push(pr);
            return Some(self.emit(dest, kind, prs, payload_bytes, FlushReason::Bypass));
        }
        let max_prs = self.cfg.headers.prs_per_mtu(self.cfg.mtu, payload_bytes);
        let delay = self.cfg.delay;
        let slot = Self::slot(dest, kind);
        if slot >= self.queues.len() {
            // First PR for this destination: grow the slab (amortized
            // once per destination over the whole run, then reused).
            self.queues.resize_with(slot + 1, Cq::default);
        }
        let Concatenator {
            queues,
            spare,
            eq,
            eq_seq,
            ..
        } = self;
        let cq = &mut queues[slot];
        if !cq.prs.is_empty() {
            assert_eq!(
                cq.payload_per_pr, payload_bytes,
                "mixed payload sizes in one concatenation queue"
            );
        } else {
            cq.payload_per_pr = payload_bytes;
        }

        // Flush first if this PR does not fit.
        let flushed = if cq.prs.len() as u32 >= max_prs {
            let prs = std::mem::replace(&mut cq.prs, spare.pop().unwrap_or_default());
            let payload = cq.payload_per_pr;
            cq.generation += 1;
            Some((prs, payload))
        } else {
            None
        };

        if cq.prs.is_empty() {
            // First PR of a (new) CQ: size the buffer for a full packet up
            // front (no doubling reallocs mid-fill) and arm its expiration.
            cq.prs.reserve(max_prs as usize);
            let seq = *eq_seq;
            *eq_seq += 1;
            eq.push(Reverse(EqEntry {
                expires: now + delay,
                seq,
                dest,
                kind,
                generation: cq.generation,
            }));
        }
        cq.prs.push(pr);
        cq.payload_per_pr = payload_bytes;

        flushed.map(|(prs, payload)| self.emit(dest, kind, prs, payload, FlushReason::Full))
    }

    /// The earliest pending expiration, if any (stale entries are
    /// discarded on the way).
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        while let Some(Reverse(head)) = self.eq.peek() {
            let live = self
                .queues
                .get(Self::slot(head.dest, head.kind))
                .is_some_and(|cq| cq.generation == head.generation && !cq.prs.is_empty());
            if live {
                return Some(head.expires);
            }
            self.eq.pop();
        }
        None
    }

    /// Flushes every CQ whose expiration time has passed, handing each
    /// emitted packet to `sink`. This is the event-path entry point: the
    /// caller owns the output buffer, so the flush itself allocates
    /// nothing.
    pub fn flush_expired_with(&mut self, now: SimTime, mut sink: impl FnMut(ConcatPacket)) {
        while let Some(&Reverse(head)) = self.eq.peek() {
            if head.expires > now {
                break;
            }
            self.eq.pop();
            let slot = Self::slot(head.dest, head.kind);
            let Concatenator { queues, spare, .. } = &mut *self;
            let flushed = match queues.get_mut(slot) {
                Some(cq) if cq.generation == head.generation && !cq.prs.is_empty() => {
                    let prs = std::mem::replace(&mut cq.prs, spare.pop().unwrap_or_default());
                    let payload = cq.payload_per_pr;
                    cq.generation += 1;
                    Some((prs, payload))
                }
                _ => None,
            };
            if let Some((prs, payload)) = flushed {
                sink(self.emit(head.dest, head.kind, prs, payload, FlushReason::Expired));
            }
        }
    }

    /// Flushes every CQ whose expiration time has passed.
    pub fn flush_expired(&mut self, now: SimTime) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses flush_expired_with
        self.flush_expired_with(now, |p| out.push(p));
        out
    }

    /// Flushes every non-empty CQ regardless of expiry (drain at kernel
    /// end), handing each emitted packet to `sink` in slot order — the
    /// same (destination, kind) order the former map-keyed storage
    /// drained in.
    pub fn flush_all_with(&mut self, mut sink: impl FnMut(ConcatPacket)) {
        for slot in 0..self.queues.len() {
            let Concatenator { queues, spare, .. } = &mut *self;
            let cq = &mut queues[slot];
            if cq.prs.is_empty() {
                continue;
            }
            let prs = std::mem::replace(&mut cq.prs, spare.pop().unwrap_or_default());
            let payload = cq.payload_per_pr;
            cq.generation += 1;
            let (dest, kind) = Self::unslot(slot);
            sink(self.emit(dest, kind, prs, payload, FlushReason::Drained));
        }
    }

    /// Flushes every non-empty CQ regardless of expiry (drain at kernel
    /// end).
    pub fn flush_all(&mut self) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses flush_all_with
        self.flush_all_with(|p| out.push(p));
        out
    }

    /// Total PRs currently waiting across all CQs.
    pub fn queued_prs(&self) -> usize {
        self.queues.iter().map(|cq| cq.prs.len()).sum()
    }

    /// Packets emitted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Distribution of PRs per emitted packet.
    pub fn prs_per_packet(&self) -> &Histogram {
        &self.prs_per_packet
    }

    fn emit(
        &mut self,
        dest: u32,
        kind: PrKind,
        prs: Vec<Pr>,
        payload: u32,
        reason: FlushReason,
    ) -> ConcatPacket {
        debug_assert!(!prs.is_empty());
        let wire_bytes = self.cfg.headers.packet_bytes(prs.len() as u32, payload);
        self.prs_per_packet.record(prs.len() as u64);
        self.packets += 1;
        #[cfg(feature = "trace")]
        if let Some((tracer, track)) = &self.tracer {
            tracer.record(
                *track,
                TraceEvent::ConcatFlush {
                    reason,
                    prs: prs.len() as u32,
                    wire_bytes: wire_bytes as u32,
                },
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = reason;
        ConcatPacket {
            dest,
            kind,
            payload_per_pr: payload,
            prs,
            wire_bytes,
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(delay_ns: u64) -> ConcatConfig {
        ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(delay_ns),
            enabled: true,
        }
    }

    fn pr(idx: u32) -> Pr {
        Pr {
            src_node: 1,
            src_tid: 0,
            idx,
            req_id: idx,
        }
    }

    #[test]
    fn disabled_mode_emits_singletons() {
        let mut c = Concatenator::new(ConcatConfig::disabled(HeaderSpec::paper()));
        let p = c.push(SimTime::ZERO, 5, PrKind::Read, pr(1), 0).unwrap();
        assert_eq!(p.prs.len(), 1);
        assert_eq!(p.wire_bytes, 80);
        assert_eq!(c.queued_prs(), 0);
    }

    #[test]
    fn mtu_full_flushes() {
        let mut c = Concatenator::new(cfg(1_000_000));
        // Read PRs (payload 0): (1500 - 62) / 18 = 79 PRs per MTU.
        let cap = HeaderSpec::paper().prs_per_mtu(1_500, 0);
        let mut flushed = None;
        for i in 0..=cap {
            if let Some(p) = c.push(SimTime::ZERO, 2, PrKind::Read, pr(i), 0) {
                flushed = Some((i, p));
            }
        }
        let (at, p) = flushed.expect("must flush when MTU exceeded");
        assert_eq!(at, cap);
        assert_eq!(p.prs.len(), cap as usize);
        assert!(p.wire_bytes <= 1_500);
        // The overflowing PR starts a fresh CQ.
        assert_eq!(c.queued_prs(), 1);
    }

    #[test]
    fn expiry_uses_first_pr_entry_time() {
        let mut c = Concatenator::new(cfg(100));
        c.push(SimTime::from_ns(10), 3, PrKind::Read, pr(1), 0);
        c.push(SimTime::from_ns(90), 3, PrKind::Read, pr(2), 0);
        assert_eq!(c.next_expiry(), Some(SimTime::from_ns(110)));
        assert!(c.flush_expired(SimTime::from_ns(109)).is_empty());
        let pkts = c.flush_expired(SimTime::from_ns(110));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].prs.len(), 2);
        assert_eq!(c.next_expiry(), None);
    }

    #[test]
    fn different_destinations_do_not_mix() {
        let mut c = Concatenator::new(cfg(50));
        c.push(SimTime::ZERO, 1, PrKind::Read, pr(1), 0);
        c.push(SimTime::ZERO, 2, PrKind::Read, pr(2), 0);
        let pkts = c.flush_expired(SimTime::from_ns(50));
        assert_eq!(pkts.len(), 2);
        assert!(pkts.iter().all(|p| p.prs.len() == 1));
    }

    #[test]
    fn reads_and_responses_do_not_mix() {
        let mut c = Concatenator::new(cfg(50));
        c.push(SimTime::ZERO, 1, PrKind::Read, pr(1), 0);
        c.push(SimTime::ZERO, 1, PrKind::Response, pr(2), 64);
        let pkts = c.flush_expired(SimTime::from_ns(50));
        assert_eq!(pkts.len(), 2);
        let kinds: Vec<_> = pkts.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PrKind::Read) && kinds.contains(&PrKind::Response));
    }

    #[test]
    fn early_flush_invalidates_eq_entry() {
        let mut c = Concatenator::new(cfg(1_000));
        let cap = HeaderSpec::paper().prs_per_mtu(1_500, 0);
        for i in 0..=cap {
            c.push(SimTime::ZERO, 4, PrKind::Read, pr(i), 0);
        }
        // The original CQ flushed early; its EQ entry must not re-flush.
        // The overflow PR re-armed a fresh entry at the same expiry time.
        let pkts = c.flush_expired(SimTime::from_us(10));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].prs.len(), 1);
    }

    #[test]
    fn flush_all_drains_everything() {
        let mut c = Concatenator::new(cfg(1_000));
        c.push(SimTime::ZERO, 1, PrKind::Read, pr(1), 0);
        c.push(SimTime::ZERO, 2, PrKind::Response, pr(2), 4);
        let pkts = c.flush_all();
        assert_eq!(pkts.len(), 2);
        assert_eq!(c.queued_prs(), 0);
        assert_eq!(c.packets(), 2);
    }

    #[test]
    fn wire_bytes_account_shared_headers() {
        let mut c = Concatenator::new(cfg(10));
        for i in 0..5 {
            c.push(SimTime::ZERO, 1, PrKind::Response, pr(i), 64);
        }
        let pkts = c.flush_expired(SimTime::from_ns(10));
        assert_eq!(pkts[0].wire_bytes, 62 + 5 * (18 + 64));
        assert_eq!(c.prs_per_packet().mean(), 5.0);
    }

    #[test]
    fn degraded_singleton_bypasses_queues() {
        let headers = HeaderSpec::paper();
        let p = ConcatPacket::degraded_singleton(&headers, 9, PrKind::Response, pr(3), 64);
        assert!(p.degraded);
        assert_eq!(p.prs.len(), 1);
        assert_eq!(p.dest, 9);
        // Same wire cost as a disabled-concat singleton of equal payload.
        assert_eq!(p.wire_bytes, headers.packet_bytes(1, 64));
        // Normal concatenator output is never flagged degraded.
        let mut c = Concatenator::new(cfg(10));
        let out = c.push(SimTime::ZERO, 1, PrKind::Read, pr(1), 0);
        assert!(out.is_none());
        assert!(c.flush_all().iter().all(|p| !p.degraded));
    }

    #[test]
    #[should_panic(expected = "mixed payload sizes")]
    fn mixed_payloads_rejected() {
        let mut c = Concatenator::new(cfg(10));
        c.push(SimTime::ZERO, 1, PrKind::Response, pr(1), 64);
        c.push(SimTime::ZERO, 1, PrKind::Response, pr(2), 128);
    }
}
