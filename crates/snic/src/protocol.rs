//! The NetSparse two-layer network protocol (paper Figure 6, Table 5).
//!
//! NetSparse packets ride as RDMA payloads. A packet carries one
//! **Concatenation-layer** header (PR type, destination, property length,
//! PR count) shared by all its PRs, plus one **PR-layer** header (source
//! node, source RIG unit, idx, request id) per PR. Table 5 fixes the header
//! sizes at 50 B (upper layers), 12 B (concatenation layer) and 18 B (PR
//! layer).

use serde::{Deserialize, Serialize};

/// Whether a PR is a read request, a read response (the paper's two PR
/// types), or a partial-sum contribution for in-network reduction (the
/// scatter-side dual the reduction extension adds). Concatenation queues
/// are segregated by this.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrKind {
    /// A request for a remote property.
    Read,
    /// A response carrying a property's data.
    Response,
    /// A partial-sum contribution toward the owner of an output row.
    /// Reuses the PR layer with overloaded fields — see [`Pr::partial`].
    Partial,
}

/// How many PR kinds exist; per-destination queue slabs are strided by
/// this (see `Concatenator::slot` / `VirtualConcatenator::slot`).
pub const PR_KINDS: usize = 3;

/// One Property Request, as carried in the PR layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Pr {
    /// Node that originated the request.
    pub src_node: u32,
    /// RIG unit (thread id) within the source node.
    pub src_tid: u16,
    /// The property index requested (the nonzero's column id).
    pub idx: u32,
    /// Request id, unique within `(src_node, src_tid)`.
    pub req_id: u32,
}

impl Pr {
    /// Builds a [`PrKind::Partial`] contribution PR for output row `idx`.
    /// The PR layer is reused with overloaded fields: `src_tid` carries
    /// the number of original contributions merged into this PR (1 at the
    /// source) and `req_id` carries the wrapping sum of their values, so
    /// switches can merge Partials without a wider header and conservation
    /// oracles can check `sum(inputs) == sum(merged outputs)` exactly.
    pub fn partial(src_node: u32, idx: u32, contribs: u16, value_sum: u32) -> Pr {
        Pr {
            src_node,
            src_tid: contribs,
            idx,
            req_id: value_sum,
        }
    }

    /// Original contributions folded into this Partial PR.
    pub fn partial_contribs(&self) -> u64 {
        self.src_tid as u64
    }

    /// Wrapping sum of the contribution values folded into this PR.
    pub fn partial_value(&self) -> u32 {
        self.req_id
    }
}

/// The deterministic stand-in value of one partial-sum contribution from
/// `src_node` for output row `idx` (a splitmix-style integer mix). The
/// simulator does not model numerics; this value exists so sum
/// conservation is checkable end to end — the wrapping sum of delivered
/// partials must equal the wrapping sum of issued contributions.
pub fn partial_contrib_value(src_node: u32, idx: u32) -> u32 {
    let mut z = ((src_node as u64) << 32 | idx as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

/// Header sizes of the protocol stack, in bytes.
///
/// # Example
///
/// ```
/// use netsparse_snic::HeaderSpec;
/// let h = HeaderSpec::paper();
/// // One PR per packet (no concatenation), 64 B property:
/// assert_eq!(h.packet_bytes(1, 64), 50 + 12 + 18 + 64);
/// // Ten concatenated PRs share the upper + concat headers:
/// assert_eq!(h.packet_bytes(10, 64), 50 + 12 + 10 * (18 + 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeaderSpec {
    /// Upper-layer (Ethernet/IP/RDMA) header bytes per packet.
    pub upper: u32,
    /// Concatenation-layer header bytes per packet.
    pub concat: u32,
    /// PR-layer header bytes per PR.
    pub pr: u32,
}

impl HeaderSpec {
    /// Table 5's values: 50 / 12 / 18 bytes.
    pub const fn paper() -> Self {
        HeaderSpec {
            upper: 50,
            concat: 12,
            pr: 18,
        }
    }

    /// Header bytes per packet, excluding per-PR headers.
    pub const fn per_packet(&self) -> u32 {
        self.upper + self.concat
    }

    /// Total wire bytes of a packet with `n_prs` PRs, each carrying
    /// `payload_per_pr` bytes of property data (0 for reads).
    pub fn packet_bytes(&self, n_prs: u32, payload_per_pr: u32) -> u64 {
        self.per_packet() as u64 + n_prs as u64 * (self.pr + payload_per_pr) as u64
    }

    /// How many PRs of `payload_per_pr` bytes fit within `mtu` bytes.
    /// At least 1 (a single PR may exceed the MTU only if the property
    /// itself does, which the Property Cache's `S_max` tiling rules out).
    pub fn prs_per_mtu(&self, mtu: u32, payload_per_pr: u32) -> u32 {
        let avail = mtu.saturating_sub(self.per_packet());
        (avail / (self.pr + payload_per_pr)).max(1)
    }

    /// The header fraction of total SA traffic for a property of `k`
    /// 4-byte elements, counting both the read and the response packet of
    /// each transfer (paper Table 3).
    pub fn sa_header_fraction(&self, k: u32) -> f64 {
        let per_pkt = (self.per_packet() + self.pr) as f64;
        let header = 2.0 * per_pkt; // read packet + response packet
        let payload = 4.0 * k as f64;
        header / (header + payload)
    }
}

impl Default for HeaderSpec {
    fn default() -> Self {
        HeaderSpec::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_header_sizes() {
        let h = HeaderSpec::paper();
        assert_eq!(h.per_packet(), 62);
        assert_eq!(h.packet_bytes(1, 0), 80); // a lone read PR
    }

    #[test]
    fn concatenation_amortizes_headers() {
        let h = HeaderSpec::paper();
        let separate = 8 * h.packet_bytes(1, 64);
        let merged = h.packet_bytes(8, 64);
        assert!(merged < separate);
        // Savings = 7 shared per-packet headers.
        assert_eq!(separate - merged, 7 * h.per_packet() as u64);
    }

    #[test]
    fn table3_header_fractions() {
        // Paper Table 3: K = 1..256 -> 97.6, 95.2, 90.9, 83.3, 71.4, 55.6,
        // 38.5, 23.8, 13.5 percent.
        let h = HeaderSpec::paper();
        let expected = [
            (1, 97.6),
            (2, 95.2),
            (4, 90.9),
            (8, 83.3),
            (16, 71.4),
            (32, 55.6),
            (64, 38.5),
            (128, 23.8),
            (256, 13.5),
        ];
        for (k, pct) in expected {
            let f = h.sa_header_fraction(k) * 100.0;
            assert!(
                (f - pct).abs() < 0.1,
                "K={k}: computed {f:.1}%, paper {pct}%"
            );
        }
    }

    #[test]
    fn prs_per_mtu_counts() {
        let h = HeaderSpec::paper();
        // 1500 - 62 = 1438; 1438 / (18 + 64) = 17 PRs for K=16.
        assert_eq!(h.prs_per_mtu(1500, 64), 17);
        // Huge payloads still admit one PR.
        assert_eq!(h.prs_per_mtu(1500, 4_000), 1);
    }

    #[test]
    fn partial_pr_round_trips_its_overloaded_fields() {
        let v = partial_contrib_value(3, 41);
        let pr = Pr::partial(3, 41, 1, v);
        assert_eq!(pr.partial_contribs(), 1);
        assert_eq!(pr.partial_value(), v);
        // Merging is a wrapping sum over values and a plain sum of counts.
        let w = partial_contrib_value(4, 41);
        let merged = Pr::partial(3, 41, 2, v.wrapping_add(w));
        assert_eq!(merged.partial_contribs(), 2);
        assert_eq!(merged.partial_value(), v.wrapping_add(w));
    }

    #[test]
    fn contrib_values_are_deterministic_and_spread() {
        assert_eq!(partial_contrib_value(1, 2), partial_contrib_value(1, 2));
        assert_ne!(partial_contrib_value(1, 2), partial_contrib_value(2, 1));
        assert_ne!(partial_contrib_value(0, 0), partial_contrib_value(0, 1));
    }

    #[test]
    fn packet_bytes_monotone_in_prs() {
        let h = HeaderSpec::paper();
        let mut prev = 0;
        for n in 1..20 {
            let b = h.packet_bytes(n, 4);
            assert!(b > prev);
            prev = b;
        }
    }
}
