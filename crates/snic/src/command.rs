//! The host-side RIG command interface (paper §5.1, §5.4).
//!
//! The paper exposes RIG offload as a new `IBV_WR_RIG` opcode in the
//! RDMA-Verbs work-request union: the host posts a work request holding
//! the batch's idx-array address, the destination buffer for the gathered
//! properties, the batch length, and the property size; `libibverbs`
//! programs the RIG Unit's memory-mapped control registers. This module
//! models that API surface — validation, register encoding, and the
//! splitting of an application-level gather into per-unit commands.

use serde::{Deserialize, Serialize};

/// One RIG work request, as the host posts it (§5.1: "the command
/// contains the host address that the client thread should read the
/// nonzero idxs from, the host address to write the gathered remote
/// properties, the number of idxs, and the size of a property").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RigCommand {
    /// Host memory address of the idx batch (4-byte idxs).
    pub idx_addr: u64,
    /// Host memory address the gathered properties are DMA'd to.
    pub dst_addr: u64,
    /// Number of idxs in the batch.
    pub n_idxs: u32,
    /// Property size in bytes.
    pub prop_bytes: u32,
}

/// Why a posted command was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandError {
    /// Zero-length batch.
    EmptyBatch,
    /// Property size of zero bytes.
    ZeroProperty,
    /// The destination buffer would overlap the idx array.
    OverlappingBuffers,
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::EmptyBatch => write!(f, "batch contains no idxs"),
            CommandError::ZeroProperty => write!(f, "property size must be nonzero"),
            CommandError::OverlappingBuffers => {
                write!(f, "destination buffer overlaps the idx array")
            }
        }
    }
}

impl std::error::Error for CommandError {}

impl RigCommand {
    /// Validates the work request the way the driver would before
    /// programming the unit's control registers.
    ///
    /// # Errors
    ///
    /// Returns [`CommandError`] for empty batches, zero property sizes,
    /// or overlapping idx/destination buffers.
    pub fn validate(&self) -> Result<(), CommandError> {
        if self.n_idxs == 0 {
            return Err(CommandError::EmptyBatch);
        }
        if self.prop_bytes == 0 {
            return Err(CommandError::ZeroProperty);
        }
        let idx_end = self.idx_addr + self.n_idxs as u64 * 4;
        let dst_end = self.dst_addr + self.n_idxs as u64 * self.prop_bytes as u64;
        if self.idx_addr < dst_end && self.dst_addr < idx_end {
            return Err(CommandError::OverlappingBuffers);
        }
        Ok(())
    }

    /// Bytes of idx data the unit will DMA from the host.
    pub fn idx_bytes(&self) -> u64 {
        self.n_idxs as u64 * 4
    }

    /// Bytes of property data the gather can write back (upper bound: not
    /// every idx is remote or unfiltered).
    pub fn max_property_bytes(&self) -> u64 {
        self.n_idxs as u64 * self.prop_bytes as u64
    }

    /// Splits an application-level gather over `total_idxs` nonzeros into
    /// per-unit commands of at most `batch` idxs each — what the host
    /// library does before posting (§5.1: "the nonzeros processed by a
    /// node are grouped into batches").
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn split(
        idx_addr: u64,
        dst_addr: u64,
        total_idxs: u64,
        prop_bytes: u32,
        batch: u32,
    ) -> Vec<RigCommand> {
        assert!(batch > 0, "batch size must be nonzero");
        let mut out = Vec::with_capacity((total_idxs as usize).div_ceil(batch as usize));
        let mut done = 0u64;
        while done < total_idxs {
            let n = (total_idxs - done).min(batch as u64) as u32;
            out.push(RigCommand {
                idx_addr: idx_addr + done * 4,
                dst_addr: dst_addr + done * prop_bytes as u64,
                n_idxs: n,
                prop_bytes,
            });
            done += n as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid() -> RigCommand {
        RigCommand {
            idx_addr: 0x1000,
            dst_addr: 0x100000,
            n_idxs: 1024,
            prop_bytes: 64,
        }
    }

    #[test]
    fn valid_command_passes() {
        assert_eq!(valid().validate(), Ok(()));
        assert_eq!(valid().idx_bytes(), 4096);
        assert_eq!(valid().max_property_bytes(), 1024 * 64);
    }

    #[test]
    fn rejects_degenerate_commands() {
        let mut c = valid();
        c.n_idxs = 0;
        assert_eq!(c.validate(), Err(CommandError::EmptyBatch));
        let mut c = valid();
        c.prop_bytes = 0;
        assert_eq!(c.validate(), Err(CommandError::ZeroProperty));
    }

    #[test]
    fn rejects_overlapping_buffers() {
        let c = RigCommand {
            idx_addr: 0x1000,
            dst_addr: 0x1800, // inside the 4 KB idx array
            n_idxs: 1024,
            prop_bytes: 4,
        };
        assert_eq!(c.validate(), Err(CommandError::OverlappingBuffers));
        // Adjacent (end-to-start) buffers are fine.
        let c = RigCommand {
            idx_addr: 0x1000,
            dst_addr: 0x1000 + 4096,
            n_idxs: 1024,
            prop_bytes: 4,
        };
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn split_covers_every_idx_exactly_once() {
        let cmds = RigCommand::split(0, 1 << 20, 10_000, 64, 1024);
        assert_eq!(cmds.len(), 10);
        let total: u64 = cmds.iter().map(|c| c.n_idxs as u64).sum();
        assert_eq!(total, 10_000);
        // Contiguous, non-overlapping address ranges.
        for w in cmds.windows(2) {
            assert_eq!(w[0].idx_addr + w[0].idx_bytes(), w[1].idx_addr);
            assert_eq!(w[0].dst_addr + w[0].max_property_bytes(), w[1].dst_addr);
        }
        // Every split command validates.
        for c in &cmds {
            assert_eq!(c.validate(), Ok(()));
        }
    }

    #[test]
    fn split_handles_exact_multiples_and_tails() {
        assert_eq!(RigCommand::split(0, 1 << 30, 2048, 4, 1024).len(), 2);
        let cmds = RigCommand::split(0, 1 << 30, 2049, 4, 1024);
        assert_eq!(cmds.len(), 3);
        assert_eq!(cmds[2].n_idxs, 1);
    }

    #[test]
    fn error_messages_are_lowercase_and_concise() {
        assert_eq!(
            CommandError::EmptyBatch.to_string(),
            "batch contains no idxs"
        );
    }
}
