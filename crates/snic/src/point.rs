//! A concatenation point of either implementation, behind one interface.
//!
//! The cluster model instantiates a concatenation stage at every NIC and
//! every switch; whether that stage is backed by dedicated per-destination
//! CQs (§6.1.2, [`Concatenator`]) or by the virtualized fixed pool (§7.2,
//! [`VirtualConcatenator`]) is a configuration choice that must not leak
//! into the event loop. `ConcatPoint` erases the difference so components
//! up the stack (`sim::node`, `sim::rack` in the core crate) speak one
//! push/expire/flush protocol.

#[cfg(feature = "trace")]
use netsparse_desim::trace::{Tracer, TrackId};
use netsparse_desim::{Histogram, SimTime};

use crate::concat::{ConcatConfig, ConcatPacket, Concatenator};
use crate::protocol::{Pr, PrKind};
use crate::vconcat::{VirtualConcatenator, VirtualCqConfig};

/// A concatenation stage of either implementation (§6.1.2 dedicated CQs
/// or §7.2 virtualized CQs), with a uniform interface for event loops.
pub enum ConcatPoint {
    /// One MTU-sized CQ per `(destination, type)` pair.
    Dedicated(Concatenator),
    /// A fixed pool of virtualized sub-MTU physical CQs.
    Virtual(VirtualConcatenator),
}

impl ConcatPoint {
    /// A dedicated-CQ concatenation point.
    #[must_use]
    pub fn dedicated(cfg: ConcatConfig) -> Self {
        ConcatPoint::Dedicated(Concatenator::new(cfg))
    }

    /// A virtualized-CQ concatenation point drawing from `pool`.
    #[must_use]
    pub fn virtualized(cfg: ConcatConfig, pool: VirtualCqConfig) -> Self {
        ConcatPoint::Virtual(VirtualConcatenator::new(cfg, pool))
    }

    /// Pushes one PR toward `dest`, handing any packets sealed by the push
    /// (an MTU fill, or a displaced queue in the virtual implementation)
    /// to `sink`. This is the zero-allocation event-path entry point.
    pub fn push_with(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload: u32,
        mut sink: impl FnMut(ConcatPacket),
    ) {
        match self {
            ConcatPoint::Dedicated(c) => {
                if let Some(p) = c.push(now, dest, kind, pr, payload) {
                    sink(p);
                }
            }
            ConcatPoint::Virtual(c) => c.push_with(now, dest, kind, pr, payload, sink),
        }
    }

    /// Pushes one PR toward `dest`; returns any packets sealed by the push
    /// (an MTU fill, or a displaced queue in the virtual implementation).
    pub fn push(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload: u32,
    ) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses push_with
        self.push_with(now, dest, kind, pr, payload, |p| out.push(p));
        out
    }

    /// Donates an emptied `prs` vector back to the implementation's spare
    /// pool so the next sealed packet reuses the allocation.
    pub fn recycle(&mut self, prs: Vec<Pr>) {
        match self {
            ConcatPoint::Dedicated(c) => c.recycle(prs),
            ConcatPoint::Virtual(c) => c.recycle(prs),
        }
    }

    /// The earliest pending delay-budget expiry, if any PRs are queued.
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        match self {
            ConcatPoint::Dedicated(c) => c.next_expiry(),
            ConcatPoint::Virtual(c) => c.next_expiry(),
        }
    }

    /// Seals every queue whose delay budget has expired, handing each
    /// packet to `sink`. This is the zero-allocation event-path entry
    /// point.
    pub fn flush_expired_with(&mut self, now: SimTime, sink: impl FnMut(ConcatPacket)) {
        match self {
            ConcatPoint::Dedicated(c) => c.flush_expired_with(now, sink),
            ConcatPoint::Virtual(c) => c.flush_expired_with(now, sink),
        }
    }

    /// Seals and returns every queue whose delay budget has expired.
    pub fn flush_expired(&mut self, now: SimTime) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses flush_expired_with
        self.flush_expired_with(now, |p| out.push(p));
        out
    }

    /// Histogram of PRs per sealed packet.
    #[must_use]
    pub fn prs_per_packet(&self) -> &Histogram {
        match self {
            ConcatPoint::Dedicated(c) => c.prs_per_packet(),
            ConcatPoint::Virtual(c) => c.prs_per_packet(),
        }
    }

    /// PRs still waiting in concatenation queues (must be zero once a run
    /// drains; checked by the runtime auditor).
    #[must_use]
    pub fn queued_prs(&self) -> usize {
        match self {
            ConcatPoint::Dedicated(c) => c.queued_prs(),
            ConcatPoint::Virtual(c) => c.queued_prs(),
        }
    }

    /// Attaches a structured tracer recording onto `track`.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        match self {
            ConcatPoint::Dedicated(c) => c.set_tracer(tracer, track),
            ConcatPoint::Virtual(c) => c.set_tracer(tracer, track),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ConcatConfig {
        ConcatConfig {
            headers: crate::HeaderSpec::paper(),
            mtu: 256,
            delay: SimTime::from_ns(100),
            enabled: true,
        }
    }

    fn pr(idx: u32) -> Pr {
        Pr {
            src_node: 0,
            src_tid: 0,
            req_id: idx,
            idx,
        }
    }

    #[test]
    fn both_implementations_share_the_interface() {
        let mut points = [
            ConcatPoint::dedicated(cfg()),
            ConcatPoint::virtualized(cfg(), VirtualCqConfig::paper_sketch()),
        ];
        for p in &mut points {
            let sealed = p.push(SimTime::ZERO, 1, PrKind::Read, pr(7), 0);
            assert!(sealed.is_empty(), "one PR must not fill an MTU");
            assert_eq!(p.queued_prs(), 1);
            let t = p.next_expiry().expect("a queued PR arms an expiry");
            let flushed = p.flush_expired(t);
            assert_eq!(flushed.len(), 1);
            assert_eq!(p.queued_prs(), 0);
            assert_eq!(p.prs_per_packet().count(), 1);
        }
    }
}
