//! The Idx Filter: per-node "already fetched" bit vector (paper §5.2).
//!
//! The paper allocates one bit per sparse-matrix column in the SNIC's DRAM
//! (modern SNICs carry ≥16 GB, enough for 10¹¹ columns) and shares it
//! across all client RIG units of the node. A bit is set when the property
//! for that idx has been received and written to host memory; a set bit
//! makes every later PR for the idx redundant.
//!
//! The simulation keeps the same semantics with two backings: a dense bit
//! vector for modest column counts, and an ordered set when the simulated
//! column space is large but sparsely touched (equivalent behaviour, much
//! less host RAM across 128 simulated nodes).

/// A set of idx bits over `[0, n_cols)`.
///
/// # Example
///
/// ```
/// use netsparse_snic::IdxFilter;
/// let mut f = IdxFilter::new(1_000);
/// assert!(!f.contains(42));
/// assert!(f.insert(42));  // newly set
/// assert!(!f.insert(42)); // already set
/// assert!(f.contains(42));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdxFilter {
    n_cols: u32,
    backing: Backing,
    set_bits: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Backing {
    Dense(Vec<u64>),
    Sparse(std::collections::BTreeSet<u32>),
}

/// Column counts up to this use the dense bit-vector backing (512 KiB).
const DENSE_LIMIT: u32 = 1 << 22;

impl IdxFilter {
    /// Creates an empty filter over `n_cols` idxs.
    pub fn new(n_cols: u32) -> Self {
        let backing = if n_cols <= DENSE_LIMIT {
            Backing::Dense(vec![0u64; (n_cols as usize).div_ceil(64)])
        } else {
            Backing::Sparse(std::collections::BTreeSet::new())
        };
        IdxFilter {
            n_cols,
            backing,
            set_bits: 0,
        }
    }

    /// Number of idxs covered.
    pub fn n_cols(&self) -> u32 {
        self.n_cols
    }

    /// Whether `idx`'s bit is set.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_cols`.
    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        assert!(idx < self.n_cols, "idx {idx} out of filter range");
        match &self.backing {
            Backing::Dense(bits) => bits[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0,
            Backing::Sparse(set) => set.contains(&idx),
        }
    }

    /// Sets `idx`'s bit; returns `true` if it was previously clear.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_cols`.
    #[inline]
    pub fn insert(&mut self, idx: u32) -> bool {
        assert!(idx < self.n_cols, "idx {idx} out of filter range");
        let newly = match &mut self.backing {
            Backing::Dense(bits) => {
                let word = &mut bits[(idx / 64) as usize];
                let mask = 1u64 << (idx % 64);
                let was = *word & mask != 0;
                *word |= mask;
                !was
            }
            Backing::Sparse(set) => set.insert(idx),
        };
        if newly {
            self.set_bits += 1;
        }
        newly
    }

    /// Number of set bits (distinct idxs marked fetched).
    pub fn len(&self) -> u64 {
        self.set_bits
    }

    /// Whether no bits are set.
    pub fn is_empty(&self) -> bool {
        self.set_bits == 0
    }

    /// Clears `idx`'s bit; returns whether it was set. Used by watchdog
    /// recovery (§7.1): when a RIG operation times out, the properties it
    /// partially wrote to host memory are discarded, so their filter bits
    /// must be dropped or they would never be re-fetched.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n_cols`.
    pub fn remove(&mut self, idx: u32) -> bool {
        assert!(idx < self.n_cols, "idx {idx} out of filter range");
        let was = match &mut self.backing {
            Backing::Dense(bits) => {
                let word = &mut bits[(idx / 64) as usize];
                let mask = 1u64 << (idx % 64);
                let was = *word & mask != 0;
                *word &= !mask;
                was
            }
            Backing::Sparse(set) => set.remove(&idx),
        };
        if was {
            self.set_bits -= 1;
        }
        was
    }

    /// Sets the bit of every idx in `idxs` that lies *outside*
    /// `local`, in one pass — the bulk builder for per-node "needed"
    /// sets (a node needs exactly its stream's remote idxs). Equivalent
    /// to filtered per-idx [`IdxFilter::insert`] calls, but the dense
    /// backing skips per-bit bookkeeping and recounts once at the end.
    ///
    /// # Panics
    ///
    /// Panics if any idx in `idxs` (or `local.end - 1`) is `>= n_cols`.
    pub fn insert_remote(&mut self, idxs: &[u32], local: std::ops::Range<u32>) {
        match &mut self.backing {
            Backing::Dense(bits) => {
                // Branchless pass: set every stream bit, then erase the
                // local range wholesale (every local idx lies inside it,
                // so the end state is exactly "remote stream idxs").
                for &idx in idxs {
                    bits[(idx / 64) as usize] |= 1u64 << (idx % 64);
                }
                let (start, end) = (local.start as usize, local.end as usize);
                if start < end {
                    let (first, last) = (start / 64, (end - 1) / 64);
                    let head = !0u64 << (start % 64);
                    let tail = !0u64 >> (63 - (end - 1) % 64);
                    if first == last {
                        bits[first] &= !(head & tail);
                    } else {
                        bits[first] &= !head;
                        bits[first + 1..last].fill(0);
                        bits[last] &= !tail;
                    }
                }
                self.set_bits = bits.iter().map(|w| w.count_ones() as u64).sum();
            }
            Backing::Sparse(_) => {
                for &idx in idxs {
                    if !local.contains(&idx) {
                        self.insert(idx);
                    }
                }
            }
        }
    }

    /// Clears every bit (the control plane resets the filter between
    /// kernel iterations when the input property array changes).
    pub fn clear(&mut self) {
        match &mut self.backing {
            Backing::Dense(bits) => bits.fill(0),
            Backing::Sparse(set) => set.clear(),
        }
        self.set_bits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains_dense() {
        let mut f = IdxFilter::new(200);
        assert!(f.is_empty());
        assert!(f.insert(0));
        assert!(f.insert(199));
        assert!(!f.insert(0));
        assert!(f.contains(0) && f.contains(199) && !f.contains(100));
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn insert_and_contains_sparse() {
        let mut f = IdxFilter::new(DENSE_LIMIT + 10);
        assert!(matches!(f.backing, Backing::Sparse(_)));
        assert!(f.insert(DENSE_LIMIT + 5));
        assert!(!f.insert(DENSE_LIMIT + 5));
        assert!(f.contains(DENSE_LIMIT + 5));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn clear_resets_both_backings() {
        for n in [100u32, DENSE_LIMIT + 1] {
            let mut f = IdxFilter::new(n);
            f.insert(7);
            f.clear();
            assert!(!f.contains(7));
            assert!(f.is_empty());
        }
    }

    #[test]
    fn insert_remote_matches_per_idx_inserts() {
        for n in [1_000u32, DENSE_LIMIT + 100] {
            let idxs = [3u32, 999, 64, 63, 3, 500, 128, 64, 200];
            let local = 100..600;
            let mut bulk = IdxFilter::new(n);
            bulk.insert_remote(&idxs, local.clone());
            let mut one_by_one = IdxFilter::new(n);
            for &i in &idxs {
                if !local.contains(&i) {
                    one_by_one.insert(i);
                }
            }
            assert_eq!(bulk.len(), one_by_one.len());
            for i in 0..1_000 {
                assert_eq!(bulk.contains(i), one_by_one.contains(i), "idx {i}");
            }
        }
    }

    #[test]
    fn dense_and_sparse_agree() {
        let mut dense = IdxFilter::new(1_000);
        let mut sparse = IdxFilter {
            n_cols: 1_000,
            backing: Backing::Sparse(Default::default()),
            set_bits: 0,
        };
        let idxs = [3u32, 999, 64, 63, 3, 128, 64];
        for &i in &idxs {
            assert_eq!(dense.insert(i), sparse.insert(i), "idx {i}");
        }
        for i in 0..1_000 {
            assert_eq!(dense.contains(i), sparse.contains(i), "idx {i}");
        }
        assert_eq!(dense.len(), sparse.len());
    }

    #[test]
    fn remove_clears_single_bits() {
        for n in [100u32, DENSE_LIMIT + 1] {
            let mut f = IdxFilter::new(n);
            f.insert(9);
            f.insert(10);
            assert!(f.remove(9));
            assert!(!f.remove(9));
            assert!(!f.contains(9) && f.contains(10));
            assert_eq!(f.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of filter range")]
    fn out_of_range_panics() {
        IdxFilter::new(10).contains(10);
    }
}
