//! The RIG (Remote Indexed Gather) client unit (paper §5.1, §5.3).
//!
//! A client RIG unit receives a coarse-grained RIG command from the host
//! (a batch of nonzero idxs), DMAs the idxs into its Idx Buffer, and then
//! processes one idx per SNIC cycle:
//!
//! 1. **local check** — idxs owned by this node need no PR,
//! 2. **coalescing** — idxs with an outstanding PR in this unit's Pending
//!    PR Table are dropped,
//! 3. **filtering** — idxs whose Idx Filter bit is set (property already
//!    fetched by any unit of this node) are dropped,
//! 4. otherwise a read PR is generated and registered in the Pending PR
//!    Table.
//!
//! The unit stalls only when its Pending PR Table is full; the pipeline
//! otherwise sustains one idx per cycle (the paper's §5.3 overlap
//! argument). The event-loop integration — *when* cycles elapse — lives in
//! the core crate; this type answers *what happens* to each idx.

use crate::filter::IdxFilter;
use crate::pending::PendingTable;
use crate::protocol::Pr;
#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, TraceEvent, Tracer, TrackId};

/// What the RIG pipeline decided for one idx.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdxOutcome {
    /// The idx is owned locally; no network activity.
    Local,
    /// Dropped: the property was already fetched (Idx Filter hit).
    Filtered,
    /// Dropped: a PR for this idx is already outstanding in this unit.
    Coalesced,
    /// A read PR was issued.
    Issued(Pr),
    /// The Pending PR Table is full; the unit must stall and retry this
    /// idx after a response frees an entry.
    Stalled,
}

/// Per-unit statistics counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RigStats {
    /// Idxs that referenced locally owned properties.
    pub local: u64,
    /// Idxs dropped by the Idx Filter.
    pub filtered: u64,
    /// Idxs dropped by coalescing.
    pub coalesced: u64,
    /// Read PRs issued to the network.
    pub issued: u64,
    /// Stall occurrences (pending table full).
    pub stalls: u64,
}

/// A client-mode RIG unit.
///
/// # Example
///
/// ```
/// use netsparse_snic::{IdxFilter, RigClient, IdxOutcome};
///
/// let mut filter = IdxFilter::new(100);
/// let mut unit = RigClient::new(/*node*/ 0, /*tid*/ 3, /*pending*/ 8);
/// // idx 42 is remote and fresh: a PR is issued.
/// let out = unit.process_idx(42, false, true, true, &mut filter);
/// assert!(matches!(out, IdxOutcome::Issued(pr) if pr.idx == 42));
/// // The same idx again coalesces against the outstanding PR.
/// let out = unit.process_idx(42, false, true, true, &mut filter);
/// assert_eq!(out, IdxOutcome::Coalesced);
/// // The response lands: filter set, pending cleared.
/// unit.complete(42, &mut filter);
/// let out = unit.process_idx(42, false, true, true, &mut filter);
/// assert_eq!(out, IdxOutcome::Filtered);
/// ```
#[derive(Debug, Clone)]
pub struct RigClient {
    node: u32,
    tid: u16,
    pending: PendingTable,
    next_req_id: u32,
    stats: RigStats,
    #[cfg(feature = "trace")]
    tracer: Option<Tracer>,
}

impl RigClient {
    /// Creates a client unit for `node`, thread id `tid`, with a pending
    /// table of `pending_entries` accepting arbitrary `u32` idxs.
    pub fn new(node: u32, tid: u16, pending_entries: usize) -> Self {
        Self::build(node, tid, PendingTable::new(pending_entries))
    }

    /// Like [`RigClient::new`], but declares that every idx this unit will
    /// ever see lies in `[0, idx_domain)` (the workload's column count),
    /// letting the pending table use its dense-bitset backing
    /// ([`PendingTable::for_domain`]) for O(1) coalescing probes.
    pub fn with_idx_domain(node: u32, tid: u16, pending_entries: usize, idx_domain: u32) -> Self {
        Self::build(
            node,
            tid,
            PendingTable::for_domain(pending_entries, idx_domain),
        )
    }

    fn build(node: u32, tid: u16, pending: PendingTable) -> Self {
        RigClient {
            node,
            tid,
            pending,
            next_req_id: 0,
            stats: RigStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Attaches a tracer; pipeline decisions are recorded on this unit's
    /// `rig` lane of the node's track.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = Some(tracer);
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&self, event: TraceEvent) {
        if let Some(tr) = &self.tracer {
            tr.record(
                TrackId::node(self.node, lane::RIG_BASE + self.tid as u32),
                event,
            );
        }
    }

    /// The owning node.
    pub fn node(&self) -> u32 {
        self.node
    }

    /// This unit's thread id within the SNIC.
    pub fn tid(&self) -> u16 {
        self.tid
    }

    /// Outstanding PR count.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Whether the unit is stalled (pending table full).
    pub fn is_stalled(&self) -> bool {
        self.pending.is_full()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RigStats {
        self.stats
    }

    /// Runs one idx through the pipeline.
    ///
    /// `is_local` marks idxs owned by this node. `coalesce_enabled` /
    /// `filter_enabled` gate the two redundancy-elimination mechanisms
    /// (ablation Table 8 disables them independently). The shared
    /// `filter` belongs to the node's SNIC.
    #[inline]
    pub fn process_idx(
        &mut self,
        idx: u32,
        is_local: bool,
        coalesce_enabled: bool,
        filter_enabled: bool,
        filter: &mut IdxFilter,
    ) -> IdxOutcome {
        if is_local {
            self.stats.local += 1;
            return IdxOutcome::Local;
        }
        if coalesce_enabled && self.pending.contains(idx) {
            self.stats.coalesced += 1;
            #[cfg(feature = "trace")]
            self.trace(TraceEvent::Coalesced { idx });
            return IdxOutcome::Coalesced;
        }
        if filter_enabled && filter.contains(idx) {
            self.stats.filtered += 1;
            #[cfg(feature = "trace")]
            self.trace(TraceEvent::FilterHit { idx });
            return IdxOutcome::Filtered;
        }
        // Without coalescing, a duplicate outstanding idx must still not be
        // double-inserted into the pending table; issue it as a fresh PR
        // that bypasses tracking (its response is redundant traffic, which
        // is exactly the inefficiency the mechanism exists to remove).
        if !coalesce_enabled && self.pending.contains(idx) {
            self.stats.issued += 1;
            let pr = Pr {
                src_node: self.node,
                src_tid: self.tid,
                idx,
                req_id: self.bump_req_id(),
            };
            #[cfg(feature = "trace")]
            self.trace(TraceEvent::PrIssued { idx });
            return IdxOutcome::Issued(pr);
        }
        if !self.pending.insert(idx) {
            self.stats.stalls += 1;
            #[cfg(feature = "trace")]
            self.trace(TraceEvent::Stalled {
                outstanding: self.pending.len() as u32,
            });
            return IdxOutcome::Stalled;
        }
        self.stats.issued += 1;
        #[cfg(feature = "trace")]
        self.trace(TraceEvent::PrIssued { idx });
        IdxOutcome::Issued(Pr {
            src_node: self.node,
            src_tid: self.tid,
            idx,
            req_id: self.bump_req_id(),
        })
    }

    /// Bulk form of [`IdxOutcome::Local`]: credits `n` locally-served
    /// idxs in one step. The driver consumes *runs* of local idxs (the
    /// overwhelmingly common case under 1-D partitioning) without
    /// entering the per-idx pipeline; each run idx still costs its one
    /// scan cycle at the call site.
    #[inline]
    pub fn tally_local(&mut self, n: u64) {
        self.stats.local += n;
    }

    /// Handles the response for `idx`: clears the pending entry (if
    /// tracked) and sets the node's Idx Filter bit.
    #[inline]
    pub fn complete(&mut self, idx: u32, filter: &mut IdxFilter) {
        if self.pending.contains(idx) {
            self.pending.remove(idx);
        }
        filter.insert(idx);
    }

    /// Abandons every outstanding PR (watchdog recovery, §7.1). Responses
    /// that later arrive for abandoned PRs are tolerated by
    /// [`RigClient::complete`].
    pub fn reset_pending(&mut self) {
        self.pending.clear();
    }

    fn bump_req_id(&mut self) -> u32 {
        let id = self.next_req_id;
        self.next_req_id = self.next_req_id.wrapping_add(1);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RigClient, IdxFilter) {
        (RigClient::new(2, 1, 4), IdxFilter::new(1_000))
    }

    #[test]
    fn local_idxs_produce_no_pr() {
        let (mut u, mut f) = setup();
        assert_eq!(
            u.process_idx(10, true, true, true, &mut f),
            IdxOutcome::Local
        );
        assert_eq!(u.outstanding(), 0);
        assert_eq!(u.stats().local, 1);
    }

    #[test]
    fn issue_then_coalesce_then_filter() {
        let (mut u, mut f) = setup();
        assert!(matches!(
            u.process_idx(5, false, true, true, &mut f),
            IdxOutcome::Issued(_)
        ));
        assert_eq!(
            u.process_idx(5, false, true, true, &mut f),
            IdxOutcome::Coalesced
        );
        u.complete(5, &mut f);
        assert_eq!(
            u.process_idx(5, false, true, true, &mut f),
            IdxOutcome::Filtered
        );
        let s = u.stats();
        assert_eq!((s.issued, s.coalesced, s.filtered), (1, 1, 1));
    }

    #[test]
    fn stall_when_pending_full_and_recover() {
        let (mut u, mut f) = setup();
        for i in 0..4 {
            assert!(matches!(
                u.process_idx(i, false, true, true, &mut f),
                IdxOutcome::Issued(_)
            ));
        }
        assert!(u.is_stalled());
        assert_eq!(
            u.process_idx(100, false, true, true, &mut f),
            IdxOutcome::Stalled
        );
        u.complete(2, &mut f);
        assert!(matches!(
            u.process_idx(100, false, true, true, &mut f),
            IdxOutcome::Issued(_)
        ));
    }

    #[test]
    fn filtering_disabled_reissues_completed_idx() {
        let (mut u, mut f) = setup();
        u.process_idx(5, false, true, false, &mut f);
        u.complete(5, &mut f);
        // Filter bit is set, but filtering is off -> reissue.
        assert!(matches!(
            u.process_idx(5, false, true, false, &mut f),
            IdxOutcome::Issued(_)
        ));
    }

    #[test]
    fn coalescing_disabled_reissues_outstanding_idx() {
        let (mut u, mut f) = setup();
        u.process_idx(5, false, false, true, &mut f);
        // Outstanding, but coalescing off -> duplicate PR issued.
        assert!(matches!(
            u.process_idx(5, false, false, true, &mut f),
            IdxOutcome::Issued(_)
        ));
        // Only one pending entry is tracked; one completion clears it.
        assert_eq!(u.outstanding(), 1);
        u.complete(5, &mut f);
        assert_eq!(u.outstanding(), 0);
        // A second (redundant) response must not panic.
        u.complete(5, &mut f);
    }

    #[test]
    fn reset_pending_recovers_a_stalled_unit() {
        let (mut u, mut f) = setup();
        for i in 0..4 {
            u.process_idx(i, false, true, true, &mut f);
        }
        assert!(u.is_stalled());
        u.reset_pending();
        assert!(!u.is_stalled());
        assert_eq!(u.outstanding(), 0);
        // A late response for an abandoned PR must not panic.
        u.complete(0, &mut f);
    }

    #[test]
    fn req_ids_are_unique_per_unit() {
        let (mut u, mut f) = setup();
        let mut ids = std::collections::HashSet::new();
        for i in 0..4 {
            if let IdxOutcome::Issued(pr) = u.process_idx(i, false, true, true, &mut f) {
                assert!(ids.insert(pr.req_id));
                assert_eq!(pr.src_node, 2);
                assert_eq!(pr.src_tid, 1);
            } else {
                panic!("expected issue");
            }
        }
    }
}
