//! Virtualized Concatenation Queues (paper §7.2).
//!
//! The baseline Concatenator provisions one MTU-sized CQ per possible
//! `(destination, type)` pair — SRAM that scales with cluster size and
//! sits mostly idle at large scale. The paper sketches the fix: a *fixed*
//! pool of small sub-MTU "physical" CQs (e.g. 128 B), assigned on demand
//! and linked into per-destination "virtual" CQs; when a virtual CQ's
//! total occupancy reaches the MTU, its physical CQs are concatenated into
//! one packet and returned to the pool.
//!
//! [`VirtualConcatenator`] implements that design with the same external
//! contract as [`crate::Concatenator`] (push / expiry / flush, exactly-once
//! PR delivery), plus a pool-pressure policy: when a PR arrives, its
//! virtual CQ needs a new physical CQ, and the pool is empty, the oldest
//! virtual CQ is flushed early to free space.

use netsparse_desim::trace::FlushReason;
#[cfg(feature = "trace")]
use netsparse_desim::trace::{TraceEvent, Tracer, TrackId};
use netsparse_desim::{Histogram, SimTime};

use crate::concat::{ConcatConfig, ConcatPacket};
use crate::protocol::{Pr, PrKind, PR_KINDS};

/// Configuration of the physical-CQ pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VirtualCqConfig {
    /// Number of physical CQs (independent of cluster size).
    pub physical_queues: usize,
    /// Bytes of PR-layer data (headers + payloads) per physical CQ
    /// (paper's example: 128 B).
    pub physical_bytes: u32,
}

impl VirtualCqConfig {
    /// The paper's sketch: sub-MTU 128 B physical CQs. 64 of them hold
    /// ~8 KB — versus 2·(N−1)·MTU ≈ 381 KB of dedicated CQs at N = 128.
    pub fn paper_sketch() -> Self {
        VirtualCqConfig {
            physical_queues: 64,
            physical_bytes: 128,
        }
    }

    /// Total SRAM the pool occupies.
    pub fn sram_bytes(&self) -> u64 {
        self.physical_queues as u64 * self.physical_bytes as u64
    }
}

/// SRAM a dedicated (non-virtualized) concatenation point needs for
/// `nodes` cluster nodes: one MTU-sized CQ per destination and PR type.
pub fn dedicated_sram_bytes(nodes: u32, mtu: u32) -> u64 {
    2 * (nodes.saturating_sub(1)) as u64 * mtu as u64
}

#[derive(Debug)]
struct VirtualCq {
    prs: Vec<Pr>,
    bytes: u32,
    physical: usize,
    payload_per_pr: u32,
    first_enqueued: SimTime,
    last_touch: u64,
}

impl Default for VirtualCq {
    fn default() -> Self {
        VirtualCq {
            prs: Vec::new(),
            bytes: 0,
            physical: 0,
            payload_per_pr: 0,
            first_enqueued: SimTime::ZERO,
            last_touch: 0,
        }
    }
}

/// Retained emptied `prs` vectors, capped so pathological fan-out cannot
/// hoard memory (same policy as [`crate::Concatenator`]).
const SPARE_CAP: usize = 64;

/// A concatenation point backed by a fixed physical-CQ pool.
///
/// Virtual CQs live in a dense slab indexed by `dest * PR_KINDS + kind`
/// (destination ids are dense, `PrKind::Read < PrKind::Response <
/// PrKind::Partial`), so
/// ascending-slot iteration reproduces the `(dest, kind)` order the
/// former `BTreeMap` storage drained in — flush order, and therefore
/// the event stream and audit digest, are unchanged. Emptied `prs`
/// vectors are parked in a spare pool and reused on the next flush;
/// callers that consume packets can donate the allocation back via
/// [`VirtualConcatenator::recycle`].
///
/// # Example
///
/// ```
/// use netsparse_snic::{ConcatConfig, HeaderSpec, Pr, PrKind};
/// use netsparse_snic::vconcat::{VirtualCqConfig, VirtualConcatenator};
/// use netsparse_desim::SimTime;
///
/// let cfg = ConcatConfig {
///     headers: HeaderSpec::paper(),
///     mtu: 1_500,
///     delay: SimTime::from_ns(200),
///     enabled: true,
/// };
/// let mut c = VirtualConcatenator::new(cfg, VirtualCqConfig::paper_sketch());
/// let pr = Pr { src_node: 0, src_tid: 0, idx: 9, req_id: 0 };
/// assert!(c.push(SimTime::ZERO, 3, PrKind::Read, pr, 0).is_empty());
/// let pkts = c.flush_expired(SimTime::from_ns(200));
/// assert_eq!(pkts[0].prs.len(), 1);
/// ```
#[derive(Debug)]
pub struct VirtualConcatenator {
    cfg: ConcatConfig,
    pool: VirtualCqConfig,
    free_physical: usize,
    queues: Vec<VirtualCq>,
    spare: Vec<Vec<Pr>>,
    touch: u64,
    prs_per_packet: Histogram,
    packets: u64,
    early_flushes: u64,
    #[cfg(feature = "trace")]
    tracer: Option<(Tracer, TrackId)>,
}

impl VirtualConcatenator {
    /// Creates an empty point with all physical CQs free.
    ///
    /// # Panics
    ///
    /// Panics if the pool is empty or a physical CQ is larger than the MTU.
    pub fn new(cfg: ConcatConfig, pool: VirtualCqConfig) -> Self {
        assert!(pool.physical_queues > 0, "pool needs at least one CQ");
        assert!(
            pool.physical_bytes > 0 && pool.physical_bytes <= cfg.mtu,
            "physical CQs must be sub-MTU"
        );
        VirtualConcatenator {
            cfg,
            pool,
            free_physical: pool.physical_queues,
            queues: Vec::new(),
            spare: Vec::new(),
            touch: 0,
            prs_per_packet: Histogram::new(),
            packets: 0,
            early_flushes: 0,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Attaches a tracer; every emitted packet is recorded as a
    /// `concat_flush` on `track` (the owner's concat lane).
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = Some((tracer, track));
    }

    /// The pool configuration.
    pub fn pool(&self) -> &VirtualCqConfig {
        &self.pool
    }

    /// Physical CQs currently unassigned.
    pub fn free_physical(&self) -> usize {
        self.free_physical
    }

    /// Times a virtual CQ was flushed early due to pool pressure.
    pub fn early_flushes(&self) -> u64 {
        self.early_flushes
    }

    /// Packets emitted so far.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Distribution of PRs per emitted packet.
    pub fn prs_per_packet(&self) -> &Histogram {
        &self.prs_per_packet
    }

    /// Total PRs waiting.
    pub fn queued_prs(&self) -> usize {
        self.queues.iter().map(|q| q.prs.len()).sum()
    }

    /// Slab slot for a `(dest, kind)` pair.
    fn slot(dest: u32, kind: PrKind) -> usize {
        dest as usize * PR_KINDS + kind as usize
    }

    /// Inverse of [`Self::slot`].
    fn unslot(slot: usize) -> (u32, PrKind) {
        let kind = match slot % PR_KINDS {
            0 => PrKind::Read,
            1 => PrKind::Response,
            _ => PrKind::Partial,
        };
        ((slot / PR_KINDS) as u32, kind)
    }

    /// Pops a retained `prs` vector from the spare pool, or a fresh one.
    fn take_spare(&mut self) -> Vec<Pr> {
        self.spare.pop().unwrap_or_default()
    }

    /// Donates an emptied `prs` vector back for reuse by later flushes.
    pub fn recycle(&mut self, mut prs: Vec<Pr>) {
        if self.spare.len() < SPARE_CAP {
            prs.clear();
            self.spare.push(prs);
        }
    }

    /// Pushes a PR, handing every emitted packet to `sink`: the pushed
    /// CQ's own MTU-full emission and/or a victim flushed under pool
    /// pressure. This is the zero-allocation event-path entry point.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` differs from PRs already queued for the
    /// same `(dest, kind)`.
    pub fn push_with(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload_bytes: u32,
        mut sink: impl FnMut(ConcatPacket),
    ) {
        if !self.cfg.enabled {
            let mut prs = self.take_spare();
            prs.push(pr);
            sink(self.emit_prs(dest, kind, prs, payload_bytes, FlushReason::Bypass));
            return;
        }
        let pr_bytes = self.cfg.headers.pr + payload_bytes;
        // A PR the whole pool cannot hold can never concatenate: bypass
        // the queues entirely (the dedicated design has the same escape —
        // `prs_per_mtu` never returns 0).
        if pr_bytes as u64 > self.pool.sram_bytes() {
            let mut prs = self.take_spare();
            prs.push(pr);
            sink(self.emit_prs(dest, kind, prs, payload_bytes, FlushReason::Bypass));
            return;
        }
        self.touch += 1;
        let touch = self.touch;
        let budget = self.mtu_budget();
        let slot = Self::slot(dest, kind);
        if slot >= self.queues.len() {
            // Amortized: the slab grows once per destination, then stays.
            self.queues.resize_with(slot + 1, VirtualCq::default);
        }

        // MTU check first: would this PR overflow the virtual CQ?
        let q = &self.queues[slot];
        if !q.prs.is_empty() && q.bytes + pr_bytes > budget {
            if let Some(p) = self.flush_slot(slot, FlushReason::Full) {
                sink(p);
            }
        }

        // Does the CQ need another physical queue for this PR?
        loop {
            let q = &mut self.queues[slot];
            if !q.prs.is_empty() {
                assert_eq!(
                    q.payload_per_pr, payload_bytes,
                    "mixed payload sizes in one virtual CQ"
                );
            }
            let capacity = q.physical as u64 * self.pool.physical_bytes as u64;
            if (q.bytes + pr_bytes) as u64 <= capacity {
                q.prs.push(pr);
                q.bytes += pr_bytes;
                q.payload_per_pr = payload_bytes;
                q.last_touch = touch;
                if q.prs.len() == 1 {
                    q.first_enqueued = now;
                }
                break;
            }
            if self.free_physical > 0 {
                self.free_physical -= 1;
                q.physical += 1;
                continue;
            }
            // Pool exhausted: evict the least recently touched other CQ
            // (`last_touch` values are unique, so the choice does not
            // depend on iteration order).
            self.early_flushes += 1;
            let victim = self
                .queues
                .iter()
                .enumerate()
                .filter(|&(s, q)| s != slot && !q.prs.is_empty())
                .min_by_key(|(_, q)| q.last_touch)
                .map(|(s, _)| s);
            match victim {
                Some(v) => {
                    if let Some(p) = self.flush_slot(v, FlushReason::Pressure) {
                        sink(p);
                    }
                }
                None => {
                    // Nothing else holds physicals: flush ourselves.
                    if let Some(p) = self.flush_slot(slot, FlushReason::Pressure) {
                        sink(p);
                    }
                }
            }
        }
    }

    /// Pushes a PR. May return several packets: the pushed CQ's own
    /// MTU-full emission and/or a victim flushed under pool pressure.
    ///
    /// # Panics
    ///
    /// Panics if `payload_bytes` differs from PRs already queued for the
    /// same `(dest, kind)`.
    pub fn push(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: Pr,
        payload_bytes: u32,
    ) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses push_with
        self.push_with(now, dest, kind, pr, payload_bytes, |p| out.push(p));
        out
    }

    /// Largest PR-layer byte budget a virtual CQ may accumulate.
    fn mtu_budget(&self) -> u32 {
        self.cfg.mtu - self.cfg.headers.per_packet()
    }

    /// The earliest pending expiration, if any.
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        self.queues
            .iter()
            .filter(|q| !q.prs.is_empty())
            .map(|q| q.first_enqueued + self.cfg.delay)
            .min()
    }

    /// Flushes every virtual CQ whose delay budget has expired, handing
    /// each packet to `sink` in ascending `(dest, kind)` order.
    pub fn flush_expired_with(&mut self, now: SimTime, mut sink: impl FnMut(ConcatPacket)) {
        let delay = self.cfg.delay;
        for slot in 0..self.queues.len() {
            let q = &self.queues[slot];
            if !q.prs.is_empty() && q.first_enqueued + delay <= now {
                if let Some(p) = self.flush_slot(slot, FlushReason::Expired) {
                    sink(p);
                }
            }
        }
    }

    /// Flushes every virtual CQ whose delay budget has expired.
    pub fn flush_expired(&mut self, now: SimTime) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses flush_expired_with
        self.flush_expired_with(now, |p| out.push(p));
        out
    }

    /// Flushes everything (drain at kernel end), handing each packet to
    /// `sink` in ascending `(dest, kind)` order.
    pub fn flush_all_with(&mut self, mut sink: impl FnMut(ConcatPacket)) {
        for slot in 0..self.queues.len() {
            if let Some(p) = self.flush_slot(slot, FlushReason::Drained) {
                sink(p);
            }
        }
    }

    /// Flushes everything (drain at kernel end).
    pub fn flush_all(&mut self) -> Vec<ConcatPacket> {
        let mut out = Vec::new(); // simaudit:allow(no-hot-alloc): convenience wrapper for tests and doctests; the event path uses flush_all_with
        self.flush_all_with(|p| out.push(p));
        out
    }

    fn flush_slot(&mut self, slot: usize, reason: FlushReason) -> Option<ConcatPacket> {
        let VirtualConcatenator {
            queues,
            spare,
            free_physical,
            ..
        } = self;
        let q = queues.get_mut(slot)?;
        if q.prs.is_empty() {
            return None;
        }
        let prs = std::mem::replace(&mut q.prs, spare.pop().unwrap_or_default());
        let payload = q.payload_per_pr;
        *free_physical += q.physical;
        q.physical = 0;
        q.bytes = 0;
        let (dest, kind) = Self::unslot(slot);
        Some(self.emit_prs(dest, kind, prs, payload, reason))
    }

    fn emit_prs(
        &mut self,
        dest: u32,
        kind: PrKind,
        prs: Vec<Pr>,
        payload: u32,
        reason: FlushReason,
    ) -> ConcatPacket {
        let wire_bytes = self.cfg.headers.packet_bytes(prs.len() as u32, payload);
        self.prs_per_packet.record(prs.len() as u64);
        self.packets += 1;
        #[cfg(feature = "trace")]
        if let Some((tracer, track)) = &self.tracer {
            tracer.record(
                *track,
                TraceEvent::ConcatFlush {
                    reason,
                    prs: prs.len() as u32,
                    wire_bytes: wire_bytes as u32,
                },
            );
        }
        #[cfg(not(feature = "trace"))]
        let _ = reason;
        ConcatPacket {
            dest,
            kind,
            payload_per_pr: payload,
            prs,
            wire_bytes,
            degraded: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::HeaderSpec;

    fn cfg(delay_ns: u64) -> ConcatConfig {
        ConcatConfig {
            headers: HeaderSpec::paper(),
            mtu: 1_500,
            delay: SimTime::from_ns(delay_ns),
            enabled: true,
        }
    }

    fn pr(idx: u32) -> Pr {
        Pr {
            src_node: 0,
            src_tid: 0,
            idx,
            req_id: idx,
        }
    }

    #[test]
    fn sram_accounting_matches_paper_motivation() {
        let pool = VirtualCqConfig::paper_sketch();
        assert_eq!(pool.sram_bytes(), 64 * 128);
        // Dedicated CQs for 128 nodes: 2 * 127 * 1500 = 381 KB.
        assert_eq!(dedicated_sram_bytes(128, 1_500), 381_000);
        assert!(pool.sram_bytes() * 40 < dedicated_sram_bytes(128, 1_500));
    }

    #[test]
    fn exactly_once_delivery_with_pool_pressure() {
        // A tiny pool forces constant eviction; no PR may be lost or
        // duplicated regardless.
        let mut c = VirtualConcatenator::new(
            cfg(1_000_000),
            VirtualCqConfig {
                physical_queues: 3,
                physical_bytes: 64,
            },
        );
        let mut emitted = Vec::new();
        for i in 0..500u32 {
            let dest = i % 17;
            emitted.extend(
                c.push(SimTime::from_ns(i as u64), dest, PrKind::Read, pr(i), 0)
                    .into_iter()
                    .flat_map(|p| p.prs),
            );
        }
        emitted.extend(c.flush_all().into_iter().flat_map(|p| p.prs));
        assert_eq!(emitted.len(), 500);
        let mut idxs: Vec<u32> = emitted.iter().map(|p| p.idx).collect();
        idxs.sort_unstable();
        idxs.dedup();
        assert_eq!(idxs.len(), 500);
        assert!(c.early_flushes() > 0, "pressure must have occurred");
        // After the final drain every physical CQ is back in the pool.
        assert_eq!(c.free_physical(), 3);
    }

    #[test]
    fn physical_queues_return_to_pool() {
        let pool = VirtualCqConfig {
            physical_queues: 8,
            physical_bytes: 128,
        };
        let mut c = VirtualConcatenator::new(cfg(100), pool);
        for i in 0..20 {
            c.push(SimTime::ZERO, 1, PrKind::Read, pr(i), 0);
        }
        assert!(c.free_physical() < 8);
        c.flush_all();
        assert_eq!(c.free_physical(), 8);
        assert_eq!(c.queued_prs(), 0);
    }

    #[test]
    fn virtual_mtu_flush_matches_dedicated_behaviour() {
        // With an ample pool, the virtual point emits MTU-packed packets
        // just like the dedicated one.
        let mut c = VirtualConcatenator::new(
            cfg(1_000_000),
            VirtualCqConfig {
                physical_queues: 64,
                physical_bytes: 256,
            },
        );
        let cap = HeaderSpec::paper().prs_per_mtu(1_500, 0);
        let mut flushed = Vec::new();
        for i in 0..(cap * 2) {
            flushed.extend(c.push(SimTime::ZERO, 5, PrKind::Read, pr(i), 0));
        }
        assert!(!flushed.is_empty());
        for p in &flushed {
            assert!(p.wire_bytes <= 1_500);
            assert!(p.prs.len() >= (cap as usize) / 2);
        }
    }

    #[test]
    fn expiry_follows_first_pr() {
        let mut c = VirtualConcatenator::new(cfg(100), VirtualCqConfig::paper_sketch());
        c.push(SimTime::from_ns(10), 2, PrKind::Read, pr(1), 0);
        c.push(SimTime::from_ns(50), 2, PrKind::Read, pr(2), 0);
        assert_eq!(c.next_expiry(), Some(SimTime::from_ns(110)));
        assert!(c.flush_expired(SimTime::from_ns(100)).is_empty());
        let pkts = c.flush_expired(SimTime::from_ns(110));
        assert_eq!(pkts.len(), 1);
        assert_eq!(pkts[0].prs.len(), 2);
    }

    #[test]
    fn disabled_mode_is_passthrough() {
        let mut c = VirtualConcatenator::new(
            ConcatConfig::disabled(HeaderSpec::paper()),
            VirtualCqConfig::paper_sketch(),
        );
        let out = c.push(SimTime::ZERO, 1, PrKind::Response, pr(3), 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].prs.len(), 1);
    }

    #[test]
    fn pr_larger_than_pool_bypasses_the_queues() {
        // Regression: a response PR (82 B) against a 1x32 B pool must not
        // spin in the eviction loop; it bypasses as a singleton packet.
        let mut c = VirtualConcatenator::new(
            cfg(100),
            VirtualCqConfig {
                physical_queues: 1,
                physical_bytes: 32,
            },
        );
        let out = c.push(SimTime::ZERO, 4, PrKind::Response, pr(1), 64);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].prs.len(), 1);
        assert_eq!(c.queued_prs(), 0);
        assert_eq!(c.free_physical(), 1);
    }

    #[test]
    #[should_panic(expected = "sub-MTU")]
    fn oversized_physical_rejected() {
        VirtualConcatenator::new(
            cfg(10),
            VirtualCqConfig {
                physical_queues: 4,
                physical_bytes: 9_000,
            },
        );
    }
}
