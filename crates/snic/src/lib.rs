//! SmartNIC hardware models for NetSparse (paper §5 and §6.1).
//!
//! The paper extends an AMD Pensando-like SNIC with four structures, all
//! modeled here as passive, cycle-cost-annotated state machines:
//!
//! - [`protocol`] — the two-layer NetSparse packet format (Figure 6) and
//!   header-overhead accounting (Tables 3 and 5),
//! - [`filter`] — the **Idx Filter**, a per-node bit vector in SNIC DRAM
//!   marking properties already fetched (§5.2),
//! - [`pending`] — the **Pending PR Table**, a per-RIG-unit CAM tracking
//!   outstanding PRs and enabling request coalescing (§5.2),
//! - [`command`] — the host-facing RIG work request (the paper's
//!   `IBV_WR_RIG` verbs extension, §5.4): validation and batch splitting,
//! - [`rig`] — the **RIG Unit** client pipeline: scan idxs at one per
//!   cycle, drop local/filtered/coalesced ones, emit read PRs (§5.1, §5.3),
//! - [`mod@concat`] — the **Concatenator**: per-destination MTU-sized delay
//!   queues with an expiration queue, merging PRs into shared-header
//!   packets (§6.1),
//! - [`vconcat`] — the §7.2 extension: concatenation with a fixed pool of
//!   virtualized sub-MTU queues instead of per-destination SRAM,
//! - [`point`] — [`ConcatPoint`], the uniform interface over dedicated and
//!   virtualized concatenation used by every NIC and switch component,
//! - [`config`] — the SNIC parameters of Table 5.
//!
//! The event-driven composition of these pieces into a full cluster lives
//! in the `netsparse` core crate; everything here is directly
//! unit-testable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod command;
pub mod concat;
pub mod config;
pub mod filter;
pub mod pending;
pub mod point;
pub mod protocol;
pub mod rig;
pub mod vconcat;

pub use command::RigCommand;
pub use concat::{ConcatConfig, ConcatPacket, Concatenator};
pub use config::SnicConfig;
pub use filter::IdxFilter;
pub use pending::PendingTable;
pub use point::ConcatPoint;
pub use protocol::{HeaderSpec, Pr, PrKind};
pub use rig::{IdxOutcome, RigClient};
