//! The Pending PR Table: a per-RIG-unit CAM of outstanding requests
//! (paper §5.2, §5.3).
//!
//! Each client RIG unit tracks the PRs it has issued whose responses have
//! not yet arrived. The table serves two purposes:
//!
//! - **Coalescing**: a new idx matching an outstanding entry is dropped —
//!   the in-flight response will satisfy it (only PRs from the *same* RIG
//!   unit coalesce; the paper avoids cross-unit synchronization).
//! - **Flow control**: when the table is full (256 entries in Table 5) the
//!   unit stalls, bounding the node's outstanding traffic — this is what
//!   makes the lossless-network assumption self-enforcing.

/// A bounded set of outstanding PR idxs.
///
/// # Example
///
/// ```
/// use netsparse_snic::PendingTable;
/// let mut t = PendingTable::new(2);
/// assert!(t.insert(5));
/// assert!(t.insert(9));
/// assert!(t.is_full());
/// assert!(!t.insert(11)); // no room
/// assert!(t.contains(5)); // coalescing check
/// t.remove(5);
/// assert!(t.insert(11));
/// ```
#[derive(Debug, Clone)]
pub struct PendingTable {
    capacity: usize,
    entries: std::collections::BTreeSet<u32>,
    peak: usize,
}

impl PendingTable {
    /// Creates an empty table with room for `capacity` outstanding PRs.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pending table needs at least one entry");
        PendingTable {
            capacity,
            entries: std::collections::BTreeSet::new(),
            peak: 0,
        }
    }

    /// Maximum outstanding PRs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current outstanding PRs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no PRs are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the table has no free entries (the unit must stall).
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Whether a PR for `idx` is outstanding (the coalescing probe).
    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        self.entries.contains(&idx)
    }

    /// Registers an outstanding PR for `idx`. Returns `false` (and does
    /// nothing) if the table is full.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is already present — the caller must coalesce
    /// duplicates before issuing, so a double insert is a model bug.
    #[inline]
    pub fn insert(&mut self, idx: u32) -> bool {
        if self.is_full() {
            return false;
        }
        let fresh = self.entries.insert(idx);
        assert!(fresh, "idx {idx} already outstanding; caller must coalesce");
        self.peak = self.peak.max(self.entries.len());
        true
    }

    /// Clears the entry for `idx` when its response arrives.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not outstanding — a response without a matching
    /// request is a protocol violation.
    #[inline]
    pub fn remove(&mut self, idx: u32) {
        let was = self.entries.remove(&idx);
        assert!(was, "response for idx {idx} that was never outstanding");
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Forgets every outstanding entry (watchdog recovery, §7.1: the
    /// failed RIG operation's in-flight PRs are abandoned).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_and_frees() {
        let mut t = PendingTable::new(3);
        for i in 0..3 {
            assert!(t.insert(i));
        }
        assert!(t.is_full());
        assert!(!t.insert(99));
        t.remove(1);
        assert!(!t.is_full());
        assert!(t.insert(99));
        assert_eq!(t.peak(), 3);
    }

    #[test]
    fn contains_tracks_outstanding_only() {
        let mut t = PendingTable::new(4);
        t.insert(7);
        assert!(t.contains(7));
        t.remove(7);
        assert!(!t.contains(7));
    }

    #[test]
    fn clear_forgets_everything() {
        let mut t = PendingTable::new(2);
        t.insert(1);
        t.insert(2);
        t.clear();
        assert!(t.is_empty());
        assert!(t.insert(1));
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_insert_is_a_bug() {
        let mut t = PendingTable::new(4);
        t.insert(7);
        t.insert(7);
    }

    #[test]
    #[should_panic(expected = "never outstanding")]
    fn orphan_response_is_a_bug() {
        PendingTable::new(4).remove(1);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        PendingTable::new(0);
    }
}
