//! The Pending PR Table: a per-RIG-unit CAM of outstanding requests
//! (paper §5.2, §5.3).
//!
//! Each client RIG unit tracks the PRs it has issued whose responses have
//! not yet arrived. The table serves two purposes:
//!
//! - **Coalescing**: a new idx matching an outstanding entry is dropped —
//!   the in-flight response will satisfy it (only PRs from the *same* RIG
//!   unit coalesce; the paper avoids cross-unit synchronization).
//! - **Flow control**: when the table is full (256 entries in Table 5) the
//!   unit stalls, bounding the node's outstanding traffic — this is what
//!   makes the lossless-network assumption self-enforcing.

/// Widest idx domain the dense bitset backing accepts: 2^22 bits is
/// 512 KiB per table, past which the sorted fallback is cheaper to set up
/// than the bitset is to probe.
const DENSE_DOMAIN_LIMIT: u32 = 1 << 22;

/// Membership storage behind [`PendingTable`] (see [`PendingTable::for_domain`]).
#[derive(Debug, Clone)]
enum Backing {
    /// One bit per idx of a known, bounded domain: `contains` is a single
    /// word probe — the coalescing check runs once per scanned idx, so
    /// this is the hottest read in the whole client pipeline.
    Dense { words: Vec<u64> },
    /// Sorted idx list for unbounded domains (arbitrary `u32` idxs):
    /// binary search over at most `capacity` entries.
    Sorted { entries: Vec<u32> },
}

/// A bounded set of outstanding PR idxs.
///
/// # Example
///
/// ```
/// use netsparse_snic::PendingTable;
/// let mut t = PendingTable::new(2);
/// assert!(t.insert(5));
/// assert!(t.insert(9));
/// assert!(t.is_full());
/// assert!(!t.insert(11)); // no room
/// assert!(t.contains(5)); // coalescing check
/// t.remove(5);
/// assert!(t.insert(11));
/// ```
///
/// The table is a pure membership set — nothing observes an entry order —
/// so the backing is chosen by how much is known about the idx domain:
/// [`PendingTable::for_domain`] uses a dense bitset (O(1) probes) when the
/// workload's column count is bounded, and [`PendingTable::new`] falls
/// back to a sorted `Vec<u32>` for arbitrary `u32` idxs. Both backings
/// are semantically identical.
#[derive(Debug, Clone)]
pub struct PendingTable {
    capacity: usize,
    len: usize,
    peak: usize,
    backing: Backing,
}

impl PendingTable {
    /// Creates an empty table with room for `capacity` outstanding PRs,
    /// accepting arbitrary `u32` idxs (sorted backing).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "pending table needs at least one entry");
        PendingTable {
            capacity,
            len: 0,
            peak: 0,
            backing: Backing::Sorted {
                entries: Vec::with_capacity(capacity),
            },
        }
    }

    /// Creates an empty table with room for `capacity` outstanding PRs
    /// whose idxs all lie in `[0, domain)`. Small domains (the workload's
    /// column count) get a dense bitset, making the per-idx coalescing
    /// probe a single word test; oversized domains fall back to the
    /// sorted backing of [`PendingTable::new`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn for_domain(capacity: usize, domain: u32) -> Self {
        assert!(capacity > 0, "pending table needs at least one entry");
        if domain > DENSE_DOMAIN_LIMIT {
            return Self::new(capacity);
        }
        PendingTable {
            capacity,
            len: 0,
            peak: 0,
            backing: Backing::Dense {
                words: vec![0u64; (domain as usize).div_ceil(64)],
            },
        }
    }

    /// Maximum outstanding PRs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current outstanding PRs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no PRs are outstanding.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the table has no free entries (the unit must stall).
    pub fn is_full(&self) -> bool {
        self.len >= self.capacity
    }

    /// Whether a PR for `idx` is outstanding (the coalescing probe).
    #[inline]
    pub fn contains(&self, idx: u32) -> bool {
        match &self.backing {
            Backing::Dense { words } => {
                let w = (idx >> 6) as usize;
                w < words.len() && words[w] & (1u64 << (idx & 63)) != 0
            }
            Backing::Sorted { entries } => entries.binary_search(&idx).is_ok(),
        }
    }

    /// Registers an outstanding PR for `idx`. Returns `false` (and does
    /// nothing) if the table is full.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is already present — the caller must coalesce
    /// duplicates before issuing, so a double insert is a model bug.
    /// On a [`PendingTable::for_domain`] table, also panics if `idx` lies
    /// outside the declared domain.
    #[inline]
    pub fn insert(&mut self, idx: u32) -> bool {
        if self.is_full() {
            return false;
        }
        match &mut self.backing {
            Backing::Dense { words } => {
                let w = (idx >> 6) as usize;
                let bit = 1u64 << (idx & 63);
                assert!(w < words.len(), "idx {idx} outside the declared domain");
                assert!(
                    words[w] & bit == 0,
                    "idx {idx} already outstanding; caller must coalesce"
                );
                words[w] |= bit;
            }
            Backing::Sorted { entries } => {
                let pos = match entries.binary_search(&idx) {
                    // simaudit:allow(no-lib-panic): double insert is a model bug, same contract as before
                    Ok(_) => panic!("idx {idx} already outstanding; caller must coalesce"),
                    Err(pos) => pos,
                };
                entries.insert(pos, idx);
            }
        }
        self.len += 1;
        self.peak = self.peak.max(self.len);
        true
    }

    /// Clears the entry for `idx` when its response arrives.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was not outstanding — a response without a matching
    /// request is a protocol violation.
    #[inline]
    pub fn remove(&mut self, idx: u32) {
        match &mut self.backing {
            Backing::Dense { words } => {
                let w = (idx >> 6) as usize;
                let bit = 1u64 << (idx & 63);
                assert!(
                    w < words.len() && words[w] & bit != 0,
                    "response for idx {idx} that was never outstanding"
                );
                words[w] &= !bit;
            }
            Backing::Sorted { entries } => {
                let pos = entries.binary_search(&idx).unwrap_or_else(|_| {
                    // simaudit:allow(no-lib-panic): orphan response is a protocol violation, same contract as before
                    panic!("response for idx {idx} that was never outstanding")
                });
                entries.remove(pos);
            }
        }
        self.len -= 1;
    }

    /// Highest simultaneous occupancy observed.
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Forgets every outstanding entry (watchdog recovery, §7.1: the
    /// failed RIG operation's in-flight PRs are abandoned).
    pub fn clear(&mut self) {
        if self.len == 0 {
            return;
        }
        match &mut self.backing {
            Backing::Dense { words } => words.fill(0),
            Backing::Sorted { entries } => entries.clear(),
        }
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every behavioral test runs against both backings: the dense bitset
    /// and the sorted fallback must be indistinguishable through the API.
    fn both(f: impl Fn(PendingTable)) {
        f(PendingTable::new(3));
        f(PendingTable::for_domain(3, 1 << 16));
    }

    #[test]
    fn fills_and_frees() {
        both(|mut t| {
            for i in 0..3 {
                assert!(t.insert(i));
            }
            assert!(t.is_full());
            assert!(!t.insert(99));
            t.remove(1);
            assert!(!t.is_full());
            assert!(t.insert(99));
            assert_eq!(t.peak(), 3);
        });
    }

    #[test]
    fn contains_tracks_outstanding_only() {
        both(|mut t| {
            t.insert(7);
            assert!(t.contains(7));
            t.remove(7);
            assert!(!t.contains(7));
        });
    }

    #[test]
    fn clear_forgets_everything() {
        both(|mut t| {
            t.insert(1);
            t.insert(2);
            t.clear();
            assert!(t.is_empty());
            assert!(t.insert(1));
        });
    }

    #[test]
    fn oversized_domain_falls_back_to_sorted() {
        // u32::MAX exceeds the dense limit; arbitrary idxs must still work.
        let mut t = PendingTable::for_domain(4, u32::MAX);
        assert!(t.insert(u32::MAX - 1));
        assert!(t.contains(u32::MAX - 1));
        t.remove(u32::MAX - 1);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_insert_is_a_bug() {
        let mut t = PendingTable::new(4);
        t.insert(7);
        t.insert(7);
    }

    #[test]
    #[should_panic(expected = "already outstanding")]
    fn double_insert_is_a_bug_dense() {
        let mut t = PendingTable::for_domain(4, 64);
        t.insert(7);
        t.insert(7);
    }

    #[test]
    #[should_panic(expected = "never outstanding")]
    fn orphan_response_is_a_bug() {
        PendingTable::new(4).remove(1);
    }

    #[test]
    #[should_panic(expected = "never outstanding")]
    fn orphan_response_is_a_bug_dense() {
        PendingTable::for_domain(4, 64).remove(1);
    }

    #[test]
    #[should_panic(expected = "outside the declared domain")]
    fn dense_rejects_out_of_domain_insert() {
        PendingTable::for_domain(4, 64).insert(64);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        PendingTable::new(0);
    }
}
