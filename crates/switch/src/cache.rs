//! The segmented Property Cache (paper §6.2.2, Figure 9).
//!
//! The cache stores remote-rack properties keyed by idx. To support
//! different kernels' property sizes with one SRAM array, it is built from
//! 16 B **segments**: a row of 32 segments can hold thirty-two 16 B
//! properties, sixteen 32 B properties, … or one 512 B property. Before a
//! kernel runs, the control plane configures the *mode* (one property
//! size); a Segment Selector then enables the right group of segments per
//! access. Whatever the mode, the full capacity is usable.
//!
//! Functionally the cache is set-associative with true-LRU replacement
//! (Table 5: 32 MB, 16 ways, 16-cycle access). The simulation models tags
//! only — property payloads are synthesized deterministically end to end —
//! but geometry, indexing and replacement are faithful.

use serde::{Deserialize, Serialize};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{TraceEvent, Tracer, TrackId};

/// Replacement policy of the Property Cache. The paper's design point is
/// LRU (Table 5); the alternatives exist for the policy ablation — FIFO
/// ignores reuse, random needs no per-line state at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// Evict the least recently used line (Table 5's choice).
    #[default]
    Lru,
    /// Evict the oldest inserted line (hits do not refresh).
    Fifo,
    /// Evict a pseudo-random way.
    Random,
}

/// Static geometry of a Property Cache (one middle-pipe bank).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropertyCacheConfig {
    /// Total data capacity in bytes (Table 5: 32 MB per switch).
    pub capacity_bytes: u64,
    /// Bytes per segment (Table 5: 16 B minimum line).
    pub segment_bytes: u32,
    /// Segments per row (Table 5: 32, i.e. 512 B maximum line).
    pub n_segments: u32,
    /// Associativity (Table 5: 16 ways).
    pub ways: u32,
    /// Access latency in switch cycles (Table 5: 16).
    pub latency_cycles: u32,
    /// Replacement policy (Table 5: LRU).
    pub policy: ReplacementPolicy,
}

impl PropertyCacheConfig {
    /// Table 5's per-switch configuration.
    pub fn paper() -> Self {
        PropertyCacheConfig {
            capacity_bytes: 32 << 20,
            segment_bytes: 16,
            n_segments: 32,
            ways: 16,
            latency_cycles: 16,
            policy: ReplacementPolicy::Lru,
        }
    }

    /// Largest supported property size (`S_max`); larger properties must
    /// be tiled by the host (paper §6.2.2).
    pub fn max_property_bytes(&self) -> u32 {
        self.segment_bytes * self.n_segments
    }
}

impl Default for PropertyCacheConfig {
    fn default() -> Self {
        PropertyCacheConfig::paper()
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    idx: u32,
    last_use: u64,
    valid: bool,
}

/// Hit/miss counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Read-PR lookups performed.
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed (`hits + misses == lookups` always).
    pub misses: u64,
    /// Properties inserted.
    pub insertions: u64,
    /// Valid lines evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate over all lookups (0 when none).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Merges another bank's counters into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
    }

    /// Checks the internal accounting invariants against `entries`, the
    /// capacity of the cache these stats came from; called by the runtime
    /// auditor at end of run.
    ///
    /// # Panics
    ///
    /// Panics if `hits + misses != lookups` or occupancy
    /// (`insertions - evictions`) is negative or above capacity.
    pub fn check_invariants(&self, entries: u64) {
        assert!(
            self.hits + self.misses == self.lookups,
            "audit: cache hits ({}) + misses ({}) != lookups ({})",
            self.hits,
            self.misses,
            self.lookups
        );
        assert!(
            self.evictions <= self.insertions,
            "audit: cache evictions ({}) exceed insertions ({})",
            self.evictions,
            self.insertions
        );
        assert!(
            self.insertions - self.evictions <= entries,
            "audit: cache occupancy ({}) exceeds capacity ({entries})",
            self.insertions - self.evictions
        );
    }
}

/// A configured Property Cache bank.
///
/// # Example
///
/// ```
/// use netsparse_switch::{PropertyCache, PropertyCacheConfig};
///
/// let mut cfg = PropertyCacheConfig::paper();
/// cfg.capacity_bytes = 64 * 1024;
/// let mut c = PropertyCache::new(cfg, /*property bytes*/ 64);
/// assert!(!c.lookup(7));   // cold miss
/// c.insert(7);
/// assert!(c.lookup(7));    // hit
/// assert_eq!(c.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct PropertyCache {
    cfg: PropertyCacheConfig,
    property_bytes: u32,
    segments_per_entry: u32,
    sets: usize,
    lines: Vec<Line>, // sets x ways, row-major
    tick: u64,
    stats: CacheStats,
    #[cfg(feature = "trace")]
    tracer: Option<(Tracer, TrackId)>,
}

impl PropertyCache {
    /// Creates an invalid (cold) cache configured for `property_bytes`
    /// properties.
    ///
    /// Property sizes are rounded up to a whole number of segments; sizes
    /// above [`PropertyCacheConfig::max_property_bytes`] panic — the host
    /// is expected to tile such kernels.
    ///
    /// # Panics
    ///
    /// Panics if `property_bytes` is 0 or exceeds `S_max`, or the
    /// configured capacity cannot hold a single way of lines.
    pub fn new(cfg: PropertyCacheConfig, property_bytes: u32) -> Self {
        assert!(property_bytes > 0, "property size must be nonzero");
        assert!(
            property_bytes <= cfg.max_property_bytes(),
            "property size {property_bytes} exceeds S_max {}; tile the input array",
            cfg.max_property_bytes()
        );
        let segments_per_entry = property_bytes
            .div_ceil(cfg.segment_bytes)
            .next_power_of_two();
        let line_bytes = (segments_per_entry * cfg.segment_bytes) as u64;
        let entries = (cfg.capacity_bytes / line_bytes) as usize;
        assert!(
            entries >= cfg.ways as usize,
            "capacity too small for one set of {} ways",
            cfg.ways
        );
        let sets = entries / cfg.ways as usize;
        PropertyCache {
            cfg,
            property_bytes,
            segments_per_entry,
            sets,
            lines: vec![
                Line {
                    idx: 0,
                    last_use: 0,
                    valid: false
                };
                sets * cfg.ways as usize
            ],
            tick: 0,
            stats: CacheStats::default(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Attaches a tracer; probes and deposits are recorded on `track`
    /// (the owning switch's cache lane).
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = Some((tracer, track));
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&self, event: TraceEvent) {
        if let Some((tracer, track)) = &self.tracer {
            tracer.record(*track, event);
        }
    }

    /// The configured property size in bytes.
    pub fn property_bytes(&self) -> u32 {
        self.property_bytes
    }

    /// Number of lines the cache can hold in this mode.
    pub fn entries(&self) -> usize {
        self.sets * self.cfg.ways as usize
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// The geometry configuration.
    pub fn config(&self) -> &PropertyCacheConfig {
        &self.cfg
    }

    /// Figure 9's Segment Selector: the 32-bit enable mask raised for
    /// `idx`'s access in the current mode. The selector ignores the low
    /// `log2(segments_per_entry)` segment bits and enables that many
    /// adjacent segments.
    pub fn segment_enable_mask(&self, idx: u32) -> u32 {
        let seg_bits = idx % self.cfg.n_segments;
        let group = seg_bits / self.segments_per_entry;
        let base = ((1u64 << self.segments_per_entry) - 1) as u32;
        base << (group * self.segments_per_entry)
    }

    #[inline]
    fn set_of(&self, idx: u32) -> usize {
        // Low bits above the segment field index the set; a multiplicative
        // scramble avoids pathological striding from 1-D partitions.
        let segs = self.cfg.n_segments;
        let above = if segs.is_power_of_two() {
            (idx >> segs.trailing_zeros()) as u64
        } else {
            (idx / segs) as u64
        };
        let scrambled = above.wrapping_mul(0x9E37_79B9);
        // Same reduction either way; power-of-two set counts (every paper
        // geometry) skip the hardware divide on this per-PR path.
        if self.sets.is_power_of_two() {
            (scrambled as usize) & (self.sets - 1)
        } else {
            (scrambled % self.sets as u64) as usize
        }
    }

    fn set_lines(&mut self, set: usize) -> &mut [Line] {
        let w = self.cfg.ways as usize;
        &mut self.lines[set * w..(set + 1) * w]
    }

    /// Read-PR path: probes for `idx`, updating LRU and statistics.
    /// Returns whether the property was present.
    pub fn lookup(&mut self, idx: u32) -> bool {
        self.stats.lookups += 1;
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(idx);
        let refresh = self.cfg.policy == ReplacementPolicy::Lru;
        for line in self.set_lines(set) {
            if line.valid && line.idx == idx {
                if refresh {
                    line.last_use = tick;
                }
                self.stats.hits += 1;
                #[cfg(feature = "trace")]
                self.trace(TraceEvent::CacheHit { idx });
                return true;
            }
        }
        self.stats.misses += 1;
        #[cfg(feature = "trace")]
        self.trace(TraceEvent::CacheMiss { idx });
        false
    }

    /// Whether `idx` is cached, without perturbing LRU or statistics.
    pub fn contains(&self, idx: u32) -> bool {
        let set = self.set_of(idx);
        let w = self.cfg.ways as usize;
        self.lines[set * w..(set + 1) * w]
            .iter()
            .any(|l| l.valid && l.idx == idx)
    }

    /// Response-PR path: deposits `idx`'s property if absent (the paper:
    /// "If a PR finds the property, no action is taken. Otherwise, the
    /// PR's property is saved in the cache"). Evicts the set's LRU line
    /// when full.
    pub fn insert(&mut self, idx: u32) {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(idx);
        let policy = self.cfg.policy;
        let mut victim = 0usize;
        let mut victim_use = u64::MAX;
        let mut invalid_way = None;
        {
            let lines = self.set_lines(set);
            for (w, line) in lines.iter().enumerate() {
                if line.valid && line.idx == idx {
                    return; // already present: no action
                }
                if !line.valid && invalid_way.is_none() {
                    invalid_way = Some(w);
                }
                // LRU tracks recency; FIFO tracks insertion age (hits do
                // not refresh `last_use` under FIFO, so the same ranking
                // applies).
                let use_rank = if line.valid { line.last_use } else { 0 };
                if use_rank < victim_use {
                    victim_use = use_rank;
                    victim = w;
                }
            }
        }
        if let Some(w) = invalid_way {
            victim = w;
        } else if policy == ReplacementPolicy::Random {
            // Cheap stateless hash of (tick, idx) picks the way.
            let h = (tick ^ idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            victim = (h >> 33) as usize % self.cfg.ways as usize;
        }
        let w = self.cfg.ways as usize;
        let slot = set * w + victim;
        if self.lines[slot].valid {
            self.stats.evictions += 1;
            #[cfg(feature = "trace")]
            self.trace(TraceEvent::CacheEvict {
                idx: self.lines[slot].idx,
            });
        }
        self.lines[slot] = Line {
            idx,
            last_use: tick,
            valid: true,
        };
        self.stats.insertions += 1;
        #[cfg(feature = "trace")]
        self.trace(TraceEvent::CacheInsert { idx });
    }

    /// Invalidates everything (control-plane reset before a kernel).
    pub fn clear(&mut self) {
        for line in &mut self.lines {
            line.valid = false;
        }
        self.stats = CacheStats::default();
        self.tick = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(capacity: u64, prop: u32) -> PropertyCache {
        let cfg = PropertyCacheConfig {
            capacity_bytes: capacity,
            ..PropertyCacheConfig::paper()
        };
        PropertyCache::new(cfg, prop)
    }

    #[test]
    fn geometry_uses_full_capacity_at_any_property_size() {
        // 64 KB cache: 4096 lines at 16 B, 128 lines at 512 B.
        assert_eq!(small(64 << 10, 16).entries(), 4096);
        assert_eq!(small(64 << 10, 4).entries(), 4096); // K=1 rounds to 16 B
        assert_eq!(small(64 << 10, 64).entries(), 1024);
        assert_eq!(small(64 << 10, 512).entries(), 128);
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let mut c = small(64 << 10, 64);
        assert!(!c.lookup(100));
        c.insert(100);
        assert!(c.lookup(100));
        assert!(c.contains(100));
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.insertions), (2, 1, 1));
    }

    #[test]
    fn reinsert_is_a_no_op() {
        let mut c = small(64 << 10, 64);
        c.insert(5);
        c.insert(5);
        assert_eq!(c.stats().insertions, 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        // Capacity = exactly one set of 16 ways at 512 B lines: 8 KB.
        let cfg = PropertyCacheConfig {
            capacity_bytes: 16 * 512,
            ..PropertyCacheConfig::paper()
        };
        let mut c = PropertyCache::new(cfg, 512);
        assert_eq!(c.entries(), 16);
        for i in 0..16 {
            c.insert(i * 32); // same set (single set), distinct idxs
        }
        // Touch idx 0 so it is MRU; inserting a 17th evicts idx 32 (LRU).
        assert!(c.lookup(0));
        c.insert(16 * 32);
        assert!(c.contains(0));
        assert!(!c.contains(32));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn segment_selector_matches_figure9() {
        // 32 B mode (2 segments per entry): segment bits 1110x enable the
        // one-before-last pair, bits 28 and 29.
        let c = small(64 << 10, 32);
        let idx = 0b11100; // segment bits = 28
        assert_eq!(c.segment_enable_mask(idx), 0b11 << 28);
        // 16 B mode: exactly one enable bit.
        let c = small(64 << 10, 16);
        assert_eq!(c.segment_enable_mask(7).count_ones(), 1);
        // 512 B mode: all 32 segments.
        let c = small(64 << 10, 512);
        assert_eq!(c.segment_enable_mask(123), u32::MAX);
    }

    #[test]
    fn clear_invalidates() {
        let mut c = small(64 << 10, 64);
        c.insert(9);
        c.clear();
        assert!(!c.contains(9));
        assert_eq!(c.stats().lookups, 0);
    }

    #[test]
    fn hit_rate_math() {
        let mut c = small(64 << 10, 64);
        c.insert(1);
        c.lookup(1);
        c.lookup(2);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_evicts_by_insertion_order_despite_hits() {
        let cfg = PropertyCacheConfig {
            capacity_bytes: 16 * 512,
            policy: ReplacementPolicy::Fifo,
            ..PropertyCacheConfig::paper()
        };
        let mut c = PropertyCache::new(cfg, 512);
        for i in 0..16 {
            c.insert(i * 32);
        }
        // Touch the oldest line; FIFO must still evict it first.
        assert!(c.lookup(0));
        c.insert(16 * 32);
        assert!(!c.contains(0), "FIFO ignores recency");
        assert!(c.contains(32));
    }

    #[test]
    fn random_policy_stays_within_capacity() {
        let cfg = PropertyCacheConfig {
            capacity_bytes: 16 * 512,
            policy: ReplacementPolicy::Random,
            ..PropertyCacheConfig::paper()
        };
        let mut c = PropertyCache::new(cfg, 512);
        for i in 0..200u32 {
            c.insert(i * 32);
        }
        let s = c.stats();
        assert!(s.insertions - s.evictions <= c.entries() as u64);
    }

    #[test]
    #[should_panic(expected = "exceeds S_max")]
    fn oversized_property_rejected() {
        small(64 << 10, 1024);
    }
}
