//! NetSparse switch hardware models (paper §6.2).
//!
//! The paper augments Tofino-like ToR switches with a layer of **middle
//! pipes** between ingress and egress (plus a second crossbar); each middle
//! pipe carries a deconcatenator, a **Property Cache**, and a concatenator.
//! Read PRs that hit in the cache turn into response PRs on the spot;
//! response PRs passing through deposit their properties for later reuse by
//! the whole rack.
//!
//! - [`cache`] — the segmented, set-associative, LRU Property Cache
//!   (Figure 9): 16 B segments compose configurable 16–512 B lines so the
//!   full capacity is usable at any property size.
//! - [`pipes`] — the middle-pipe array: per-pipe cache banks with the
//!   deterministic home-keyed bank selection that stands in for the
//!   paper's ingress/egress-port matching argument (§6.2.1), plus the
//!   Table 5 switch configuration.
//! - [`reduce`] — the in-network reduction extension's partial-sum table:
//!   edge switches merge `Partial` contribution PRs per output row before
//!   forwarding them toward the row's owner.
//!
//! Concatenators inside switches reuse `netsparse_snic::Concatenator` (the
//! mechanism is identical; only the delay budget differs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod pipes;
pub mod reduce;

pub use cache::{PropertyCache, PropertyCacheConfig, ReplacementPolicy};
pub use pipes::{MiddlePipes, SwitchConfig};
pub use reduce::{ReduceStats, ReduceTable};
