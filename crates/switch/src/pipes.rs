//! Middle pipes: the switch's cache banks and Table 5 configuration.
//!
//! The NetSparse switch (Figure 8) routes every packet through one of its
//! middle pipes, each holding a Property Cache. For a {read, response} pair
//! to meet in the *same* cache, the paper relies on deterministic routing
//! making the read's egress port match the response's ingress port. In the
//! simulation we realize the same invariant directly: the middle pipe is
//! selected by the property's **home node**, which both the read (its
//! destination) and the response (its source) carry — a deterministic
//! function both packet types agree on, implementable in hardware from the
//! PR-layer headers.

use serde::{Deserialize, Serialize};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{Tracer, TrackId};

use crate::cache::{CacheStats, PropertyCache, PropertyCacheConfig};

/// Switch parameters (Table 5, "Switches" rows).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SwitchConfig {
    /// Ports (32 × 400 Gbps in the paper).
    pub ports: u32,
    /// Pipes (8 in the paper); middle pipes mirror this count.
    pub pipes: u32,
    /// Pipe clock in GHz (2 GHz in the paper).
    pub clock_ghz: f64,
    /// Zero-load switch traversal latency in nanoseconds (300 ns).
    pub latency_ns: u64,
    /// Concatenator delay budget in switch cycles (125).
    pub concat_delay_cycles: u64,
    /// Packet buffer size in bytes (96 MB; tracked as a statistic).
    pub packet_buffer_bytes: u64,
    /// Property Cache geometry, total per switch (split across pipes).
    pub cache: PropertyCacheConfig,
}

impl SwitchConfig {
    /// Table 5's ToR switch.
    pub fn paper() -> Self {
        SwitchConfig {
            ports: 32,
            pipes: 8,
            clock_ghz: 2.0,
            latency_ns: 300,
            concat_delay_cycles: 125,
            packet_buffer_bytes: 96 << 20,
            cache: PropertyCacheConfig::paper(),
        }
    }
}

impl Default for SwitchConfig {
    fn default() -> Self {
        SwitchConfig::paper()
    }
}

/// The array of middle-pipe Property Cache banks of one switch.
///
/// The switch's total cache capacity is divided evenly across pipes, and
/// every access for a given home node goes to the same bank.
///
/// # Example
///
/// ```
/// use netsparse_switch::{MiddlePipes, SwitchConfig};
///
/// let mut cfg = SwitchConfig::paper();
/// cfg.cache.capacity_bytes = 1 << 20;
/// let mut pipes = MiddlePipes::new(&cfg, /*property bytes*/ 64);
/// let home = 42u32;
/// assert!(!pipes.lookup(home, 7));
/// pipes.insert(home, 7);
/// assert!(pipes.lookup(home, 7));
/// ```
#[derive(Debug, Clone)]
pub struct MiddlePipes {
    banks: Vec<PropertyCache>,
}

impl MiddlePipes {
    /// Builds `cfg.pipes` banks, each with `1/pipes` of the switch's cache
    /// capacity, configured for `property_bytes`. A zero-capacity cache
    /// yields no banks (the no-cache ablation).
    pub fn new(cfg: &SwitchConfig, property_bytes: u32) -> Self {
        let per_bank = cfg.cache.capacity_bytes / cfg.pipes.max(1) as u64;
        let line = (property_bytes
            .div_ceil(cfg.cache.segment_bytes)
            .next_power_of_two()
            * cfg.cache.segment_bytes) as u64;
        if per_bank < line * cfg.cache.ways as u64 {
            // Too small to form even one set per bank: model as cacheless.
            return MiddlePipes { banks: Vec::new() };
        }
        let bank_cfg = PropertyCacheConfig {
            capacity_bytes: per_bank,
            ..cfg.cache
        };
        MiddlePipes {
            banks: (0..cfg.pipes.max(1))
                .map(|_| PropertyCache::new(bank_cfg, property_bytes))
                .collect(),
        }
    }

    /// Whether any cache exists (false under the no-cache ablation).
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.banks.is_empty()
    }

    /// Attaches a tracer to every bank; all banks share `track` (the
    /// switch's cache lane — bank interleaving is a simulation detail).
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        for b in &mut self.banks {
            b.set_tracer(tracer.clone(), track);
        }
    }

    /// The bank index serving properties homed at `home`.
    #[must_use]
    pub fn bank_of(&self, home: u32) -> usize {
        (home as usize) % self.banks.len().max(1)
    }

    /// Read-PR probe for `idx` homed at `home`.
    pub fn lookup(&mut self, home: u32, idx: u32) -> bool {
        if self.banks.is_empty() {
            return false;
        }
        let b = self.bank_of(home);
        self.banks[b].lookup(idx)
    }

    /// Response-PR deposit for `idx` homed at `home`.
    pub fn insert(&mut self, home: u32, idx: u32) {
        if self.banks.is_empty() {
            return;
        }
        let b = self.bank_of(home);
        self.banks[b].insert(idx);
    }

    /// Aggregated statistics across banks.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for b in &self.banks {
            total.merge(&b.stats());
        }
        total
    }

    /// Total line capacity across banks.
    pub fn entries(&self) -> u64 {
        self.banks.iter().map(|b| b.entries() as u64).sum()
    }

    /// Checks every bank's accounting invariants (see
    /// [`CacheStats::check_invariants`]); called by the runtime auditor.
    ///
    /// # Panics
    ///
    /// Panics on any violated invariant.
    pub fn check_invariants(&self) {
        for b in &self.banks {
            b.stats().check_invariants(b.entries() as u64);
        }
    }

    /// Invalidates all banks.
    pub fn clear(&mut self) {
        for b in &mut self.banks {
            b.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pipes(capacity: u64, prop: u32) -> MiddlePipes {
        let mut cfg = SwitchConfig::paper();
        cfg.cache.capacity_bytes = capacity;
        MiddlePipes::new(&cfg, prop)
    }

    #[test]
    fn home_keyed_banking_is_consistent() {
        let mut p = pipes(4 << 20, 64);
        // The read (home = dest) and the response (home = src) agree.
        p.insert(13, 999);
        assert!(p.lookup(13, 999));
        // A different home maps elsewhere: same idx is not visible.
        let other_home = 13 + 1;
        if p.bank_of(other_home) != p.bank_of(13) {
            assert!(!p.lookup(other_home, 999));
        }
    }

    #[test]
    fn capacity_splits_across_banks() {
        let p = pipes(8 << 20, 64);
        assert!(p.enabled());
        assert_eq!(p.banks.len(), 8);
        assert_eq!(p.banks[0].entries(), (1 << 20) / 64);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let mut p = pipes(0, 64);
        assert!(!p.enabled());
        p.insert(1, 2); // no-ops
        assert!(!p.lookup(1, 2));
        assert_eq!(p.stats().lookups, 0);
    }

    #[test]
    fn stats_aggregate_across_banks() {
        let mut p = pipes(8 << 20, 64);
        for home in 0..16u32 {
            p.insert(home, home * 100);
            p.lookup(home, home * 100);
        }
        let s = p.stats();
        assert_eq!(s.insertions, 16);
        assert_eq!(s.hits, 16);
        assert!((s.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clear_resets_all_banks() {
        let mut p = pipes(8 << 20, 64);
        p.insert(3, 30);
        p.clear();
        assert!(!p.lookup(3, 30));
    }
}
