//! In-network reduction: the switch-side partial-sum table.
//!
//! The reduction extension (SwitchML/Flare-style, the scatter-side dual
//! of NetSparse's gather mechanisms) lets edge switches merge
//! [`PrKind::Partial`] contribution PRs heading for the same output row
//! before forwarding them toward the row's owner (the *root*). A
//! [`ReduceTable`] holds one in-flight partial sum per `(row)` key: the
//! first contribution for a row allocates an entry and starts its
//! aggregation window; later contributions fold in (wrapping value sum,
//! plain contribution count) without emitting anything; when the window
//! expires the entry leaves as a single merged Partial PR. The table is
//! capacity-bounded — contributions arriving while it is full bypass
//! merging and forward unchanged, so reduction degrades to plain
//! forwarding under pressure and never loses a contribution.
//!
//! Like every other hardware model in this crate the table is a pure
//! state machine: the event loop (`netsparse::sim`) drives it through a
//! pipeline handler and owns all scheduling.

use netsparse_desim::SimTime;
use netsparse_snic::{Pr, PrKind};
use std::collections::VecDeque;

/// One in-flight partial sum.
#[derive(Debug, Clone, Copy)]
struct ReduceEntry {
    /// Output row (property index) being reduced.
    row: u32,
    /// Root node the merged PR will be forwarded to.
    root: u32,
    /// Original contributions folded in so far.
    contribs: u32,
    /// Wrapping sum of the folded contribution values.
    value: u32,
    /// When the aggregation window closes.
    deadline: SimTime,
}

/// Running counters of one table (folded into `SimReport`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReduceStats {
    /// Contributions folded into an existing entry (each one is a PR that
    /// did not travel further on its own).
    pub merged: u64,
    /// Entries allocated (first contribution for a row).
    pub allocated: u64,
    /// Merged PRs emitted by window expiry or final drain.
    pub flushed: u64,
    /// Contributions forwarded unmerged because the table was full (or a
    /// count would have overflowed the PR-layer field).
    pub bypassed: u64,
}

/// A capacity-bounded partial-sum table keyed by output row.
///
/// Entries are indexed by a sorted row list (binary search; the table is
/// small and fixed-capacity, so inserts shift at most `capacity` slots
/// and the structure never allocates after construction). Aggregation
/// windows close in arrival order — event time is monotone, so the
/// deadline queue is FIFO, mirroring the concatenator's EQ.
///
/// # Example
///
/// ```
/// use netsparse_switch::reduce::ReduceTable;
/// use netsparse_snic::{Pr, PrKind};
/// use netsparse_desim::SimTime;
///
/// let mut t = ReduceTable::new(16, SimTime::from_ns(100));
/// let a = Pr::partial(0, 7, 1, 10);
/// let b = Pr::partial(1, 7, 1, 20);
/// assert!(t.absorb(SimTime::ZERO, 5, a).is_none()); // allocates
/// assert!(t.absorb(SimTime::ZERO, 5, b).is_none()); // merges
/// assert_eq!(t.next_expiry(), Some(SimTime::from_ns(100)));
/// let mut out = Vec::new();
/// t.flush_expired_with(SimTime::from_ns(100), |root, pr| out.push((root, pr)));
/// assert_eq!(out, vec![(5, Pr::partial(5, 7, 2, 30))]);
/// ```
#[derive(Debug)]
pub struct ReduceTable {
    /// Maximum simultaneous entries.
    capacity: usize,
    /// Aggregation window per entry.
    window: SimTime,
    /// Entries sorted by `row` (unique keys).
    entries: Vec<ReduceEntry>,
    /// Rows in deadline order (deadlines are monotone in arrival order).
    expiry: VecDeque<u32>,
    stats: ReduceStats,
}

impl ReduceTable {
    /// An empty table of `capacity` entries with the given aggregation
    /// window. All storage is preallocated; the event path never grows it.
    #[must_use]
    pub fn new(capacity: usize, window: SimTime) -> Self {
        ReduceTable {
            capacity,
            window,
            entries: Vec::with_capacity(capacity),
            expiry: VecDeque::with_capacity(capacity),
            stats: ReduceStats::default(),
        }
    }

    /// Running counters.
    #[must_use]
    pub fn stats(&self) -> ReduceStats {
        self.stats
    }

    /// Partial sums currently in flight (must be zero once a run drains;
    /// checked by the runtime auditor).
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.entries.len()
    }

    /// Folds one contribution into the table. Returns the PR back when it
    /// must travel on unmerged: the table is full and `pr.idx` has no
    /// entry, or folding would overflow the PR-layer contribution count.
    /// `root` is the node the merged PR will eventually be forwarded to
    /// (the owner of `pr.idx`); contributions for one row always share it.
    pub fn absorb(&mut self, now: SimTime, root: u32, pr: Pr) -> Option<Pr> {
        debug_assert!(pr.partial_contribs() > 0, "a Partial PR carries >= 1");
        match self.entries.binary_search_by_key(&pr.idx, |e| e.row) {
            Ok(i) => {
                let e = &mut self.entries[i];
                debug_assert_eq!(e.root, root, "one row has one root");
                let folded = e.contribs as u64 + pr.partial_contribs();
                if folded > u16::MAX as u64 {
                    // The merged count must still fit the PR layer when
                    // the entry flushes; never silently saturate.
                    self.stats.bypassed += 1;
                    return Some(pr);
                }
                e.contribs = folded as u32;
                e.value = e.value.wrapping_add(pr.partial_value());
                self.stats.merged += 1;
                None
            }
            Err(i) => {
                if self.entries.len() >= self.capacity {
                    self.stats.bypassed += 1;
                    return Some(pr);
                }
                self.entries.insert(
                    i,
                    ReduceEntry {
                        row: pr.idx,
                        root,
                        contribs: pr.partial_contribs() as u32,
                        value: pr.partial_value(),
                        deadline: now + self.window,
                    },
                );
                self.expiry.push_back(pr.idx);
                self.stats.allocated += 1;
                None
            }
        }
    }

    /// The earliest aggregation-window close, if any entry is in flight.
    #[must_use]
    pub fn next_expiry(&self) -> Option<SimTime> {
        let row = *self.expiry.front()?;
        match self.entries.binary_search_by_key(&row, |e| e.row) {
            Ok(i) => Some(self.entries[i].deadline),
            // simaudit:allow(no-lib-panic): every queued row has a live entry (1:1 by construction)
            Err(_) => unreachable!("expiry queue references a missing entry"),
        }
    }

    /// Emits every entry whose window has closed, in arrival order, as
    /// `(root, merged Partial PR)` pairs handed to `sink`. Zero-allocation
    /// event-path entry point.
    pub fn flush_expired_with(&mut self, now: SimTime, mut sink: impl FnMut(u32, Pr)) {
        while let Some(&row) = self.expiry.front() {
            let Ok(i) = self.entries.binary_search_by_key(&row, |e| e.row) else {
                // simaudit:allow(no-lib-panic): every queued row has a live entry (1:1 by construction)
                unreachable!("expiry queue references a missing entry");
            };
            if self.entries[i].deadline > now {
                break;
            }
            self.expiry.pop_front();
            let e = self.entries.remove(i);
            self.stats.flushed += 1;
            sink(
                e.root,
                Pr::partial(e.root, e.row, e.contribs as u16, e.value),
            );
        }
    }

    /// Emits everything still in flight (drain at kernel end), in arrival
    /// order.
    pub fn flush_all_with(&mut self, mut sink: impl FnMut(u32, Pr)) {
        while let Some(row) = self.expiry.pop_front() {
            let Ok(i) = self.entries.binary_search_by_key(&row, |e| e.row) else {
                // simaudit:allow(no-lib-panic): every queued row has a live entry (1:1 by construction)
                unreachable!("expiry queue references a missing entry");
            };
            let e = self.entries.remove(i);
            self.stats.flushed += 1;
            sink(
                e.root,
                Pr::partial(e.root, e.row, e.contribs as u16, e.value),
            );
        }
    }
}

/// The kind every PR entering a reduce table must have.
pub const REDUCE_KIND: PrKind = PrKind::Partial;

#[cfg(test)]
mod tests {
    use super::*;
    use netsparse_snic::protocol::partial_contrib_value;

    fn contrib(src: u32, row: u32) -> Pr {
        Pr::partial(src, row, 1, partial_contrib_value(src, row))
    }

    #[test]
    fn merging_conserves_counts_and_wrapping_values() {
        let mut t = ReduceTable::new(8, SimTime::from_ns(50));
        let mut issued_value = 0u32;
        for src in 0..5u32 {
            let pr = contrib(src, 9);
            issued_value = issued_value.wrapping_add(pr.partial_value());
            assert!(t.absorb(SimTime::from_ns(src as u64), 3, pr).is_none());
        }
        let mut out = Vec::new();
        t.flush_all_with(|root, pr| out.push((root, pr)));
        assert_eq!(out.len(), 1);
        let (root, merged) = out[0];
        assert_eq!(root, 3);
        assert_eq!(merged.partial_contribs(), 5);
        assert_eq!(merged.partial_value(), issued_value);
        assert_eq!(t.stats().merged, 4);
        assert_eq!(t.stats().allocated, 1);
        assert_eq!(t.in_flight(), 0);
    }

    #[test]
    fn full_table_bypasses_instead_of_dropping() {
        let mut t = ReduceTable::new(2, SimTime::from_ns(50));
        assert!(t.absorb(SimTime::ZERO, 0, contrib(0, 1)).is_none());
        assert!(t.absorb(SimTime::ZERO, 0, contrib(0, 2)).is_none());
        // Third distinct row: no slot — the PR comes straight back.
        let back = t.absorb(SimTime::ZERO, 0, contrib(0, 3));
        assert_eq!(back, Some(contrib(0, 3)));
        // But an existing row still merges at capacity.
        assert!(t.absorb(SimTime::ZERO, 0, contrib(1, 1)).is_none());
        assert_eq!(t.stats().bypassed, 1);
    }

    #[test]
    fn windows_close_in_arrival_order() {
        let mut t = ReduceTable::new(8, SimTime::from_ns(100));
        t.absorb(SimTime::from_ns(0), 0, contrib(0, 5));
        t.absorb(SimTime::from_ns(10), 1, contrib(0, 2));
        assert_eq!(t.next_expiry(), Some(SimTime::from_ns(100)));
        let mut rows = Vec::new();
        t.flush_expired_with(SimTime::from_ns(100), |_, pr| rows.push(pr.idx));
        assert_eq!(rows, vec![5]);
        assert_eq!(t.next_expiry(), Some(SimTime::from_ns(110)));
        t.flush_expired_with(SimTime::from_ns(110), |_, pr| rows.push(pr.idx));
        assert_eq!(rows, vec![5, 2]);
        assert_eq!(t.next_expiry(), None);
    }

    #[test]
    fn count_overflow_bypasses() {
        let mut t = ReduceTable::new(4, SimTime::from_ns(50));
        assert!(t
            .absorb(SimTime::ZERO, 0, Pr::partial(0, 1, u16::MAX, 7))
            .is_none());
        let back = t.absorb(SimTime::ZERO, 0, Pr::partial(1, 1, 1, 9));
        assert_eq!(back, Some(Pr::partial(1, 1, 1, 9)));
        let mut out = Vec::new();
        t.flush_all_with(|_, pr| out.push(pr));
        assert_eq!(out[0].partial_contribs(), u16::MAX as u64);
    }
}
