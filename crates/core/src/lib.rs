//! # NetSparse — in-network acceleration of distributed sparse kernels
//!
//! A from-scratch reproduction of *NetSparse: In-Network Acceleration of
//! Distributed Sparse Kernels* (MICRO 2025). NetSparse accelerates the
//! communication of distributed SpMM/SpMV/SDDMM with four hardware
//! mechanisms: **Remote Indexed Gather (RIG)** offload in the SmartNIC,
//! **filtering + coalescing** of redundant Property Requests, **PR
//! concatenation** in NICs and switches, and an **in-switch Property
//! Cache** shared by each rack.
//!
//! This crate is the top of the workspace: it binds the substrate crates
//! (event engine, sparse workloads, network, SNIC and switch hardware
//! models, compute rooflines) into a full 128-node cluster simulation, the
//! SUOpt/SAOpt software baselines, and the experiment drivers that
//! regenerate every table and figure of the paper's evaluation.
//!
//! ## Quick start
//!
//! ```
//! use netsparse::prelude::*;
//!
//! // A small arabic-like workload on an 8-node mini cluster.
//! let wl = SuiteConfig {
//!     matrix: SuiteMatrix::Arabic,
//!     nodes: 8,
//!     rack_size: 4,
//!     scale: 0.02,
//!     seed: 1,
//! }
//! .generate();
//! let cfg = ClusterConfig::mini(Topology::LeafSpine { racks: 2, rack_size: 4, spines: 2 }, 16);
//! let report = simulate(&cfg, &wl);
//! assert!(report.functional_check_passed);
//! assert!(report.comm_time_s() > 0.0);
//! ```
//!
//! See `DESIGN.md` for the full system inventory and the per-experiment
//! index, and the `netsparse-bench` crate for the table/figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod config;
pub mod experiments;
pub mod metrics;
pub mod sim;

pub use config::{ClusterConfig, Mechanisms, ReduceConfig, SimLimits};
pub use metrics::{ReduceReport, SimReport};
pub use sim::{simulate, try_simulate, try_simulate_reference, SimError};
#[cfg(feature = "trace")]
pub use sim::{simulate_traced, try_simulate_traced};

/// One-stop imports for examples and benches.
pub mod prelude {
    pub use crate::baselines::{Baselines, CommComparison};
    pub use crate::config::{ClusterConfig, Mechanisms, ReduceConfig, SimLimits};
    pub use crate::experiments;
    pub use crate::metrics::{ReduceReport, SimReport};
    pub use crate::sim::{simulate, try_simulate, SimError};
    pub use netsparse_accel::{ComputeEngine, ComputeModel, SaOptModel, SuOptModel};
    pub use netsparse_netsim::Topology;
    pub use netsparse_sparse::suite::SuiteConfig;
    pub use netsparse_sparse::{CommWorkload, SuiteMatrix};
}
