//! Cluster configuration: Table 5 plus the mechanism ablation switches.

use std::fmt;

use netsparse_desim::{Clock, LossModel, SimTime};
use netsparse_netsim::{LinkParams, Topology};
use netsparse_snic::vconcat::VirtualCqConfig;
use netsparse_snic::{HeaderSpec, SnicConfig};
use netsparse_switch::SwitchConfig;

/// Which concatenator implementation concatenation points deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcatImpl {
    /// One MTU-sized CQ per `(destination, type)` (§6.1.2) — SRAM scales
    /// with cluster size.
    Dedicated,
    /// A fixed pool of virtualized sub-MTU physical CQs (§7.2) — SRAM is
    /// cluster-size independent.
    Virtual(VirtualCqConfig),
}

/// A configuration rejected by validation, with enough context to print a
/// useful message instead of panicking deep inside the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A probability parameter fell outside `[0, 1]`.
    ProbabilityOutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// Faults that require recovery are enabled but no watchdog is armed.
    WatchdogUnarmed,
    /// A backoff parameter is nonsensical.
    BackoffOutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A degradation factor is nonsensical.
    DegradationOutOfRange {
        /// Which parameter.
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A scheduled repair precedes its failure.
    RepairBeforeFailure {
        /// Failure time, ns.
        at_ns: u64,
        /// Repair time, ns.
        repair_at_ns: u64,
    },
    /// A fault targets an element the topology does not have.
    TargetOutOfRange {
        /// Which kind of element.
        what: &'static str,
        /// The offending index.
        index: u32,
        /// The topology's element count.
        limit: u32,
    },
    /// A structural cluster parameter is zero or degenerate.
    DegenerateCluster {
        /// Which parameter.
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::ProbabilityOutOfRange { what, value } => {
                write!(f, "{what} must be a probability in [0, 1], got {value}")
            }
            ConfigError::WatchdogUnarmed => {
                write!(f, "packet loss without a watchdog would hang the kernel")
            }
            ConfigError::BackoffOutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            ConfigError::DegradationOutOfRange { what, value } => {
                write!(f, "{what} out of range: {value}")
            }
            ConfigError::RepairBeforeFailure {
                at_ns,
                repair_at_ns,
            } => {
                write!(
                    f,
                    "repair at {repair_at_ns} ns precedes its failure at {at_ns} ns"
                )
            }
            ConfigError::TargetOutOfRange { what, index, limit } => {
                write!(f, "fault targets {what} {index} but topology has {limit}")
            }
            ConfigError::DegenerateCluster { what } => {
                write!(f, "cluster config is degenerate: {what} must be nonzero")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// What a scheduled [`FailureEvent`] kills.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultTarget {
    /// A whole switch (all its links go dark).
    Switch(u32),
    /// The directed link from switch `from` to switch `to`.
    SwitchLink {
        /// Source switch index.
        from: u32,
        /// Destination switch index.
        to: u32,
    },
}

/// One scheduled element failure, permanent or transient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureEvent {
    /// When the element dies, nanoseconds of simulated time.
    pub at_ns: u64,
    /// What dies.
    pub target: FaultTarget,
    /// When the element heals (`None` = permanent failure).
    pub repair_at_ns: Option<u64>,
}

/// Per-node degradation: a straggler that computes slowly and/or a NIC
/// running below line rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeDegradation {
    /// Which node.
    pub node: u32,
    /// Multiplier (≥ 1) on the node's compute/serve time.
    pub compute_slowdown: f64,
    /// Factor (in `(0, 1]`) on the node's NIC bandwidth.
    pub nic_bandwidth_factor: f64,
}

/// Fault injection and recovery (§7.1, grown into the faultnet subsystem).
///
/// NetSparse assumes a lossless fabric, so losses model *hardware
/// failures*. Detection is a watchdog timer per RIG operation: on timeout
/// the operation is failed, its partially gathered buffer is discarded
/// (filter bits dropped), and the command restarts — with exponential
/// backoff, a retry budget, and escalation to a degraded direct-fetch mode
/// once the budget is exhausted (see `docs/FAULTS.md`).
///
/// Construct with [`FaultConfig::none`] or the validated
/// [`FaultConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-switch-traversal packet-loss model.
    pub loss: LossModel,
    /// Watchdog timeout per RIG command, nanoseconds (0 = disabled).
    pub watchdog_ns: u64,
    /// Consecutive watchdog restarts of one command before the node
    /// escalates to degraded mode (unconcatenated, uncached PRs).
    pub max_retries: u32,
    /// Watchdog-interval multiplier per consecutive retry (exponential
    /// backoff; 1.0 = fixed interval).
    pub backoff_multiplier: f64,
    /// Jitter as a fraction of the backed-off interval, drawn from the
    /// sanctioned RNG, in `[0, 1]`.
    pub backoff_jitter: f64,
    /// Seed for the loss process and backoff jitter.
    pub seed: u64,
    /// Scheduled link/switch failures.
    pub failures: Vec<FailureEvent>,
    /// Degraded (straggler) nodes.
    pub degraded: Vec<NodeDegradation>,
}

impl FaultConfig {
    /// No faults (the paper's default lossless environment).
    pub fn none() -> Self {
        FaultConfig {
            loss: LossModel::None,
            watchdog_ns: 0,
            max_retries: 8,
            backoff_multiplier: 2.0,
            backoff_jitter: 0.1,
            seed: 0,
            failures: Vec::new(),
            degraded: Vec::new(),
        }
    }

    /// Starts a validated builder (see [`FaultConfigBuilder`]).
    pub fn builder() -> FaultConfigBuilder {
        FaultConfigBuilder {
            cfg: FaultConfig::none(),
        }
    }

    /// Whether any fault mechanism is active.
    pub fn is_active(&self) -> bool {
        self.loss.is_lossy() || !self.failures.is_empty() || !self.degraded.is_empty()
    }

    /// Whether faults that *lose data in flight* (and therefore need
    /// watchdog recovery) are active. Pure degradation only slows nodes
    /// down and cannot hang a run.
    pub fn needs_watchdog(&self) -> bool {
        self.loss.is_lossy() || !self.failures.is_empty()
    }

    /// Checks every invariant the old panicking constructor enforced, plus
    /// the burst/backoff/schedule parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let prob = |what: &'static str, value: f64| {
            if (0.0..=1.0).contains(&value) {
                Ok(())
            } else {
                Err(ConfigError::ProbabilityOutOfRange { what, value })
            }
        };
        match self.loss {
            LossModel::None => {}
            LossModel::Bernoulli { rate } => prob("loss rate", rate)?,
            LossModel::GilbertElliott {
                p_enter_burst,
                p_exit_burst,
                loss_good,
                loss_bad,
            } => {
                prob("burst entry probability", p_enter_burst)?;
                prob("burst exit probability", p_exit_burst)?;
                prob("good-state loss rate", loss_good)?;
                prob("bad-state loss rate", loss_bad)?;
                if p_exit_burst == 0.0 && p_enter_burst > 0.0 {
                    // An absorbing bad state is a config bug: the run would
                    // degrade to pure Bernoulli(loss_bad) forever.
                    return Err(ConfigError::ProbabilityOutOfRange {
                        what: "burst exit probability (absorbing bad state)",
                        value: p_exit_burst,
                    });
                }
            }
        }
        if self.needs_watchdog() && self.watchdog_ns == 0 {
            return Err(ConfigError::WatchdogUnarmed);
        }
        if !(self.backoff_multiplier >= 1.0 && self.backoff_multiplier.is_finite()) {
            return Err(ConfigError::BackoffOutOfRange {
                what: "backoff multiplier (must be >= 1)",
                value: self.backoff_multiplier,
            });
        }
        if !(0.0..=1.0).contains(&self.backoff_jitter) {
            return Err(ConfigError::BackoffOutOfRange {
                what: "backoff jitter (fraction of interval)",
                value: self.backoff_jitter,
            });
        }
        for ev in &self.failures {
            if let Some(r) = ev.repair_at_ns {
                if r <= ev.at_ns {
                    return Err(ConfigError::RepairBeforeFailure {
                        at_ns: ev.at_ns,
                        repair_at_ns: r,
                    });
                }
            }
        }
        for d in &self.degraded {
            if !(d.compute_slowdown >= 1.0 && d.compute_slowdown.is_finite()) {
                return Err(ConfigError::DegradationOutOfRange {
                    what: "compute slowdown (must be >= 1)",
                    value: d.compute_slowdown,
                });
            }
            if !(d.nic_bandwidth_factor > 0.0 && d.nic_bandwidth_factor <= 1.0) {
                return Err(ConfigError::DegradationOutOfRange {
                    what: "NIC bandwidth factor (must be in (0, 1])",
                    value: d.nic_bandwidth_factor,
                });
            }
        }
        Ok(())
    }

    /// Validates fault targets against a topology (switch indices in
    /// range, degraded nodes exist).
    pub fn validate_against(&self, topology: &Topology) -> Result<(), ConfigError> {
        self.validate()?;
        let switches = topology.switches();
        let nodes = topology.nodes();
        for ev in &self.failures {
            let check = |index: u32| {
                if index < switches {
                    Ok(())
                } else {
                    Err(ConfigError::TargetOutOfRange {
                        what: "switch",
                        index,
                        limit: switches,
                    })
                }
            };
            match ev.target {
                FaultTarget::Switch(s) => check(s)?,
                FaultTarget::SwitchLink { from, to } => {
                    check(from)?;
                    check(to)?;
                }
            }
        }
        for d in &self.degraded {
            if d.node >= nodes {
                return Err(ConfigError::TargetOutOfRange {
                    what: "node",
                    index: d.node,
                    limit: nodes,
                });
            }
        }
        Ok(())
    }
}

/// Validated builder for [`FaultConfig`]: accumulate fault settings, then
/// [`FaultConfigBuilder::build`] checks every invariant and returns
/// `Result` instead of panicking.
///
/// # Example
///
/// ```
/// use netsparse::config::FaultConfig;
///
/// let faults = FaultConfig::builder()
///     .bernoulli_loss(0.01)
///     .watchdog_ns(100_000)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert!(faults.is_active());
/// assert!(FaultConfig::builder().bernoulli_loss(1.5).build().is_err());
/// assert!(FaultConfig::builder().bernoulli_loss(0.01).build().is_err()); // no watchdog
/// ```
#[derive(Debug, Clone)]
pub struct FaultConfigBuilder {
    cfg: FaultConfig,
}

impl FaultConfigBuilder {
    /// Independent per-packet loss at `rate` per switch traversal.
    pub fn bernoulli_loss(mut self, rate: f64) -> Self {
        self.cfg.loss = LossModel::Bernoulli { rate };
        self
    }

    /// Gilbert–Elliott burst loss (see [`LossModel::GilbertElliott`]).
    pub fn burst_loss(
        mut self,
        p_enter_burst: f64,
        p_exit_burst: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        self.cfg.loss = LossModel::GilbertElliott {
            p_enter_burst,
            p_exit_burst,
            loss_good,
            loss_bad,
        };
        self
    }

    /// Any loss model directly.
    pub fn loss(mut self, model: LossModel) -> Self {
        self.cfg.loss = model;
        self
    }

    /// Arms the per-command watchdog with base timeout `ns`.
    pub fn watchdog_ns(mut self, ns: u64) -> Self {
        self.cfg.watchdog_ns = ns;
        self
    }

    /// Retry budget before escalation to degraded mode.
    pub fn max_retries(mut self, n: u32) -> Self {
        self.cfg.max_retries = n;
        self
    }

    /// Exponential-backoff shape (interval multiplier per retry, jitter
    /// fraction).
    pub fn backoff(mut self, multiplier: f64, jitter: f64) -> Self {
        self.cfg.backoff_multiplier = multiplier;
        self.cfg.backoff_jitter = jitter;
        self
    }

    /// Seed for the loss process and jitter stream.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Kills switch `switch` permanently at `at_ns`.
    pub fn fail_switch_at(mut self, switch: u32, at_ns: u64) -> Self {
        self.cfg.failures.push(FailureEvent {
            at_ns,
            target: FaultTarget::Switch(switch),
            repair_at_ns: None,
        });
        self
    }

    /// Kills switch `switch` at `at_ns` and repairs it at `repair_at_ns`.
    pub fn fail_switch_transient(mut self, switch: u32, at_ns: u64, repair_at_ns: u64) -> Self {
        self.cfg.failures.push(FailureEvent {
            at_ns,
            target: FaultTarget::Switch(switch),
            repair_at_ns: Some(repair_at_ns),
        });
        self
    }

    /// Cuts the directed switch-to-switch link permanently at `at_ns`.
    pub fn fail_link_at(mut self, from: u32, to: u32, at_ns: u64) -> Self {
        self.cfg.failures.push(FailureEvent {
            at_ns,
            target: FaultTarget::SwitchLink { from, to },
            repair_at_ns: None,
        });
        self
    }

    /// Cuts the directed link at `at_ns`, repaired at `repair_at_ns`.
    pub fn fail_link_transient(
        mut self,
        from: u32,
        to: u32,
        at_ns: u64,
        repair_at_ns: u64,
    ) -> Self {
        self.cfg.failures.push(FailureEvent {
            at_ns,
            target: FaultTarget::SwitchLink { from, to },
            repair_at_ns: Some(repair_at_ns),
        });
        self
    }

    /// Marks `node` as a straggler: compute `slowdown`× slower, NIC at
    /// `bandwidth_factor` of line rate.
    pub fn degrade_node(mut self, node: u32, slowdown: f64, bandwidth_factor: f64) -> Self {
        self.cfg.degraded.push(NodeDegradation {
            node,
            compute_slowdown: slowdown,
            nic_bandwidth_factor: bandwidth_factor,
        });
        self
    }

    /// Validates and returns the config.
    pub fn build(self) -> Result<FaultConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Which NetSparse mechanisms are active — the ablation axis of Table 8.
///
/// RIG offload itself is always on inside the simulator (it *is* the
/// simulated communication engine); the stages of Table 8 successively
/// enable the remaining mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// Idx Filter: drop PRs whose property was already fetched.
    pub filter: bool,
    /// Pending-PR coalescing within each RIG unit.
    pub coalesce: bool,
    /// Concatenation at the SNIC.
    pub nic_concat: bool,
    /// Concatenation at NetSparse (edge) switches.
    pub switch_concat: bool,
    /// The in-switch Property Cache.
    pub property_cache: bool,
}

impl Mechanisms {
    /// Everything on — the full NetSparse design.
    pub fn all() -> Self {
        Mechanisms {
            filter: true,
            coalesce: true,
            nic_concat: true,
            switch_concat: true,
            property_cache: true,
        }
    }

    /// RIG offload only (Table 8 row 1).
    pub fn rig_only() -> Self {
        Mechanisms {
            filter: false,
            coalesce: false,
            nic_concat: false,
            switch_concat: false,
            property_cache: false,
        }
    }

    /// The five cumulative ablation stages of Table 8, in order:
    /// RIG, +Filter, +Coalesce, +Conc(NIC), +Switch.
    pub fn ablation_stages() -> [(&'static str, Mechanisms); 5] {
        let rig = Mechanisms::rig_only();
        let filter = Mechanisms {
            filter: true,
            ..rig
        };
        let coalesce = Mechanisms {
            coalesce: true,
            ..filter
        };
        let conc_nic = Mechanisms {
            nic_concat: true,
            ..coalesce
        };
        let switch = Mechanisms {
            switch_concat: true,
            property_cache: true,
            ..conc_nic
        };
        [
            ("RIG", rig),
            ("Filter", filter),
            ("Coalesce", coalesce),
            ("ConcNIC", conc_nic),
            ("Switch", switch),
        ]
    }

    /// Whether edge switches run the NetSparse middle-pipe path at all.
    pub fn netsparse_switch(&self) -> bool {
        self.switch_concat || self.property_cache
    }
}

impl Default for Mechanisms {
    fn default() -> Self {
        Mechanisms::all()
    }
}

/// Liveness limits applied by [`try_simulate`](crate::sim::try_simulate):
/// a deterministic event budget and a zero-delay-loop bound, mapped onto
/// [`netsparse_desim::Liveness`]. With both `None` (the default, and what
/// every committed experiment uses) the simulator runs the exact unguarded
/// loop it always has — digests are unchanged and the checks cost nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimLimits {
    /// Abort with [`SimError::Stalled`](crate::sim::SimError) once this
    /// many events have run with work still pending.
    pub max_events: Option<u64>,
    /// Abort once this many consecutive events run at a frozen instant.
    pub max_stagnant_events: Option<u64>,
}

impl SimLimits {
    /// No limits — the unguarded default.
    pub fn none() -> Self {
        SimLimits::default()
    }

    /// Whether any limit is armed.
    pub fn is_armed(&self) -> bool {
        self.max_events.is_some() || self.max_stagnant_events.is_some()
    }
}

/// The in-network reduction extension (the scatter-side dual of the
/// paper's gather mechanisms, after SwitchML/Flare — see PAPERS.md).
///
/// When `enabled`, every issued read PR also emits one partial-sum
/// *contribution* PR ([`netsparse_snic::PrKind::Partial`]) toward the
/// owner of its output row, modeling the scatter half of SpMM. When
/// `in_network` is additionally set, edge switches run a `Reduce` pipeline
/// handler that merges contributions per row in a bounded partial-sum
/// table before forwarding, cutting the bytes arriving at each root.
/// Comparing `in_network` on vs off at fixed `enabled` isolates the
/// mechanism's saving; `enabled: false` (the default everywhere) produces
/// zero Partial traffic and leaves every existing scenario byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReduceConfig {
    /// Whether scatter contributions flow at all.
    pub enabled: bool,
    /// Whether edge switches merge contributions in-network (off =
    /// contributions travel to the root unmerged, the software baseline).
    pub in_network: bool,
    /// Partial-sum table capacity per switch, in entries (rows).
    pub table_entries: usize,
    /// Aggregation window per table entry, nanoseconds: how long a row
    /// waits for more contributions before the merged PR moves on.
    pub flush_ns: u64,
}

impl ReduceConfig {
    /// Reduction off — the default; no Partial traffic exists.
    pub fn disabled() -> Self {
        ReduceConfig {
            enabled: false,
            in_network: false,
            table_entries: 0,
            flush_ns: 0,
        }
    }

    /// Contributions flow and switches merge them (the mechanism under
    /// test), with a table/window sized for the mini profile.
    pub fn in_network() -> Self {
        ReduceConfig {
            enabled: true,
            in_network: true,
            table_entries: 4096,
            flush_ns: 200,
        }
    }

    /// Contributions flow but switches only forward — the software
    /// baseline the in-network variant is compared against.
    pub fn software_baseline() -> Self {
        ReduceConfig {
            in_network: false,
            ..ReduceConfig::in_network()
        }
    }
}

impl Default for ReduceConfig {
    fn default() -> Self {
        ReduceConfig::disabled()
    }
}

/// Full configuration of a simulated cluster.
///
/// Two profiles are provided:
///
/// - [`ClusterConfig::paper`] — Table 5 verbatim: 400 Gbps links, 450 ns
///   link / 300 ns switch latency (2.4 µs / 5.4 µs zero-load RTTs), 32 MB
///   Property Caches, 32 k RIG batches.
/// - [`ClusterConfig::mini`] — the same machine scaled coherently for the
///   synthetic workloads in this repository (~1/40 of the paper's
///   per-node nonzeros). Kernel time scales roughly with
///   `matrix bytes / bandwidth`, so with bandwidth ÷4 runtimes shrink
///   ~10x; every *fixed* per-operation cost is therefore also scaled ÷10 —
///   link/switch/PCIe latencies and per-command host software — to
///   preserve each cost's share of the kernel. Property Caches are ÷16
///   (preserving the cache-capacity-to-rack-demand ratio) and RIG batches
///   are 1024 (preserving commands-per-unit). Concatenation delay budgets
///   are *not* scaled: they are set by PR generation rates, which the
///   scaling leaves unchanged.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Network topology.
    pub topology: Topology,
    /// SmartNIC parameters.
    pub snic: SnicConfig,
    /// Edge-switch parameters.
    pub switch: SwitchConfig,
    /// Protocol header sizes.
    pub headers: HeaderSpec,
    /// Network link parameters (node-switch and switch-switch).
    pub link: LinkParams,
    /// Property size in 4-byte elements (the paper's K).
    pub k: u32,
    /// Nonzeros per RIG command.
    pub batch_size: usize,
    /// Active mechanisms.
    pub mechanisms: Mechanisms,
    /// Host software cost to issue one RIG command, nanoseconds.
    pub host_cmd_ns: u64,
    /// §9.4's future-work idea, implemented: dynamic adjustment of RIG
    /// parallelism. The host watches the duplicate-response rate (the
    /// signature of concurrent commands re-fetching each other's columns,
    /// which per-unit coalescing cannot see) and AIMD-throttles how many
    /// commands run at once.
    pub adaptive_batch: bool,
    /// Concatenator implementation (dedicated CQs vs §7.2 virtual CQs).
    pub concat_impl: ConcatImpl,
    /// In-network reduction extension; defaults to disabled (no Partial
    /// traffic, byte-identical to the pre-extension simulator).
    pub reduce: ReduceConfig,
    /// Fault injection (§7.1); defaults to lossless.
    pub faults: FaultConfig,
    /// Liveness limits for [`try_simulate`](crate::sim::try_simulate);
    /// defaults to none (the run loop is unguarded and byte-identical to
    /// the pre-limit engine).
    pub limits: SimLimits,
}

impl ClusterConfig {
    /// The paper's Table 5 configuration for `topology` at property size
    /// `k`.
    pub fn paper(topology: Topology, k: u32) -> Self {
        ClusterConfig {
            topology,
            snic: SnicConfig::paper(),
            switch: SwitchConfig::paper(),
            headers: HeaderSpec::paper(),
            link: LinkParams::new(400.0, 450),
            k,
            batch_size: 32 * 1024,
            mechanisms: Mechanisms::all(),
            host_cmd_ns: 300,
            adaptive_batch: false,
            concat_impl: ConcatImpl::Dedicated,
            reduce: ReduceConfig::disabled(),
            faults: FaultConfig::none(),
            limits: SimLimits::none(),
        }
    }

    /// The scaled profile used by the default experiments (see type-level
    /// docs for the scaling rationale).
    pub fn mini(topology: Topology, k: u32) -> Self {
        let mut cfg = ClusterConfig::paper(topology, k);
        cfg.link = LinkParams::new(100.0, 45);
        cfg.snic.line_rate_gbps = 100.0;
        cfg.snic.pcie_latency_ns = 20;
        cfg.switch.latency_ns = 30;
        cfg.switch.cache.capacity_bytes = 2 << 20;
        cfg.batch_size = 2048;
        cfg.host_cmd_ns = 30;
        cfg
    }

    /// Property payload bytes (4 per element).
    pub fn payload_bytes(&self) -> u32 {
        4 * self.k
    }

    /// The SNIC clock.
    pub fn snic_clock(&self) -> Clock {
        Clock::from_ghz(self.snic.clock_ghz)
    }

    /// The switch pipe clock.
    pub fn switch_clock(&self) -> Clock {
        Clock::from_ghz(self.switch.clock_ghz)
    }

    /// The SNIC concatenation delay budget as simulated time.
    pub fn nic_concat_delay(&self) -> SimTime {
        self.snic_clock().cycles(self.snic.concat_delay_cycles)
    }

    /// The switch concatenation delay budget as simulated time.
    pub fn switch_concat_delay(&self) -> SimTime {
        self.switch_clock().cycles(self.switch.concat_delay_cycles)
    }

    /// Zero-load switch traversal latency.
    pub fn switch_latency(&self) -> SimTime {
        SimTime::from_ns(self.switch.latency_ns)
    }

    /// PCIe one-way latency.
    pub fn pcie_latency(&self) -> SimTime {
        SimTime::from_ns(self.snic.pcie_latency_ns)
    }

    /// PCIe link parameters (for the host-SNIC DMA model). The paper's
    /// 256 GB/s Gen6 x16 link is 2048 Gbps.
    pub fn pcie_link(&self) -> LinkParams {
        LinkParams::new(self.snic.pcie_gbps * 8.0, self.snic.pcie_latency_ns)
    }

    /// Validates the whole configuration — structural parameters plus the
    /// fault schedule against the topology — so a bad config fails with a
    /// message before the simulator starts, not a panic inside it.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.k == 0 {
            return Err(ConfigError::DegenerateCluster { what: "k" });
        }
        if self.batch_size == 0 {
            return Err(ConfigError::DegenerateCluster { what: "batch_size" });
        }
        if self.reduce.enabled && self.reduce.in_network && self.reduce.table_entries == 0 {
            return Err(ConfigError::DegenerateCluster {
                what: "reduce.table_entries",
            });
        }
        self.faults.validate_against(&self.topology)
    }

    /// A coarse upper estimate of one RIG command's worst-case round-trip,
    /// in nanoseconds: host issue + PCIe both ways + concatenation delay
    /// budgets + diameter-many store-and-forward hops out and back +
    /// remote service. A watchdog below this fires on *healthy* commands,
    /// and the resulting restart storm is indistinguishable from loss in
    /// the aggregate stats — [`crate::metrics::FaultReport`] carries a
    /// warning when `faults.watchdog_ns` is under this bound.
    pub fn estimated_worst_rtt_ns(&self) -> u64 {
        // Network diameter in switch hops (edge..edge), per topology.
        let switch_hops: u64 = match self.topology {
            Topology::LeafSpine { .. } => 3, // ToR -> spine -> ToR
            Topology::HyperX { .. } => 4,    // 3 corrections + src edge
            Topology::Dragonfly { .. } => 4, // src sw, gw, gw, dst sw
        };
        // Store-and-forward: each hop pays link latency + switch traversal
        // + serialization of a full MTU.
        let mtu_ns = self.link.serialization(self.snic.mtu as u64).as_ns_f64();
        let hop_ns = self.link.latency.0 as f64 + self.switch.latency_ns as f64 + mtu_ns;
        let net_one_way = (switch_hops + 1) as f64 * hop_ns;
        let concat_budget =
            self.nic_concat_delay().as_ns_f64() + self.switch_concat_delay().as_ns_f64();
        let pcie = 2.0 * self.pcie_latency().as_ns_f64();
        let serve = self.payload_bytes() as f64 / 8.0; // ~8 B/ns serve rate floor
        (self.host_cmd_ns as f64 + pcie + concat_budget + 2.0 * net_one_way + serve).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table5() {
        let c = ClusterConfig::paper(Topology::leaf_spine_128(), 16);
        assert_eq!(c.payload_bytes(), 64);
        assert_eq!(c.batch_size, 32 * 1024);
        assert_eq!(c.link.bandwidth_bps, 400e9);
        // 500 SNIC cycles at 2.2 GHz ~ 227 ns.
        let d = c.nic_concat_delay();
        assert!((d.as_ns_f64() - 227.27).abs() < 1.0, "{d}");
        // 125 switch cycles at 2 GHz = 62.5 ns.
        assert_eq!(c.switch_concat_delay(), SimTime::from_ps(62_500));
    }

    #[test]
    fn mini_profile_scales_coherently() {
        let p = ClusterConfig::paper(Topology::leaf_spine_128(), 16);
        let m = ClusterConfig::mini(Topology::leaf_spine_128(), 16);
        // Bandwidth and latency scale together: BDP shrinks ~16x.
        assert!(m.link.bandwidth_bps < p.link.bandwidth_bps);
        assert!(m.switch.cache.capacity_bytes < p.switch.cache.capacity_bytes);
        // Concat delays are NOT scaled.
        assert_eq!(m.nic_concat_delay(), p.nic_concat_delay());
    }

    #[test]
    fn fault_builder_validates() {
        // Happy path.
        let f = FaultConfig::builder()
            .burst_loss(0.01, 0.25, 0.0, 0.9)
            .watchdog_ns(100_000)
            .max_retries(4)
            .backoff(2.0, 0.2)
            .seed(7)
            .fail_switch_transient(9, 1_000, 5_000)
            .degrade_node(3, 2.0, 0.5)
            .build()
            .unwrap();
        assert!(f.is_active());
        assert!(f.needs_watchdog());

        // Loss-rate range.
        assert!(matches!(
            FaultConfig::builder().bernoulli_loss(1.5).build(),
            Err(ConfigError::ProbabilityOutOfRange { .. })
        ));
        // Watchdog-armed.
        assert_eq!(
            FaultConfig::builder().bernoulli_loss(0.01).build(),
            Err(ConfigError::WatchdogUnarmed)
        );
        // A scheduled failure also requires a watchdog (its packets
        // blackhole until failover kicks in).
        assert_eq!(
            FaultConfig::builder().fail_switch_at(8, 100).build(),
            Err(ConfigError::WatchdogUnarmed)
        );
        // Burst parameters.
        assert!(FaultConfig::builder()
            .burst_loss(0.01, -0.1, 0.0, 1.0)
            .watchdog_ns(1)
            .build()
            .is_err());
        // Absorbing bad state.
        assert!(FaultConfig::builder()
            .burst_loss(0.01, 0.0, 0.0, 1.0)
            .watchdog_ns(1)
            .build()
            .is_err());
        // Backoff and degradation shapes.
        assert!(FaultConfig::builder().backoff(0.5, 0.1).build().is_err());
        assert!(FaultConfig::builder().backoff(2.0, 1.5).build().is_err());
        assert!(FaultConfig::builder()
            .degrade_node(0, 0.5, 1.0)
            .build()
            .is_err());
        assert!(FaultConfig::builder()
            .degrade_node(0, 2.0, 0.0)
            .build()
            .is_err());
        // Repair before failure.
        assert!(FaultConfig::builder()
            .fail_switch_transient(8, 5_000, 1_000)
            .watchdog_ns(1)
            .build()
            .is_err());
    }

    #[test]
    fn cluster_validation_catches_out_of_range_targets() {
        let mut cfg = ClusterConfig::mini(Topology::leaf_spine_128(), 16);
        cfg.validate().unwrap();
        // Leaf-spine 128 has 24 switches; 99 is out of range.
        cfg.faults = FaultConfig::builder()
            .fail_switch_at(99, 100)
            .watchdog_ns(1)
            .build()
            .unwrap();
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TargetOutOfRange { what: "switch", .. })
        ));
        cfg.faults = FaultConfig::builder()
            .degrade_node(999, 2.0, 1.0)
            .build()
            .unwrap();
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::TargetOutOfRange { what: "node", .. })
        ));
        cfg.faults = FaultConfig::none();
        cfg.k = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::DegenerateCluster { what: "k" })
        ));
    }

    #[test]
    fn reduce_config_validates() {
        let mut cfg = ClusterConfig::mini(Topology::leaf_spine_128(), 16);
        assert_eq!(cfg.reduce, ReduceConfig::disabled());
        cfg.reduce = ReduceConfig::in_network();
        cfg.validate().unwrap();
        // In-network merging with a zero-entry table is degenerate...
        cfg.reduce.table_entries = 0;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::DegenerateCluster {
                what: "reduce.table_entries"
            })
        ));
        // ...but the software baseline never touches the table.
        cfg.reduce = ReduceConfig::software_baseline();
        cfg.reduce.table_entries = 0;
        cfg.validate().unwrap();
    }

    #[test]
    fn config_error_messages_are_informative() {
        let msg = ConfigError::WatchdogUnarmed.to_string();
        assert!(msg.contains("watchdog"), "{msg}");
        let msg = ConfigError::ProbabilityOutOfRange {
            what: "loss rate",
            value: 2.0,
        }
        .to_string();
        assert!(msg.contains("loss rate") && msg.contains('2'), "{msg}");
    }

    #[test]
    fn worst_rtt_estimate_is_sane() {
        // The mini profile's estimate must sit well under the test suite's
        // 50-100 us watchdogs (otherwise every faulted test would warn)
        // but above one zero-load network RTT.
        let m = ClusterConfig::mini(Topology::leaf_spine_128(), 16);
        let est = m.estimated_worst_rtt_ns();
        assert!(est > 500, "{est}");
        assert!(est < 50_000, "{est}");
        // The paper profile is slower in absolute terms.
        let p = ClusterConfig::paper(Topology::leaf_spine_128(), 16);
        assert!(p.estimated_worst_rtt_ns() > est);
    }

    #[test]
    fn ablation_stages_are_cumulative() {
        let stages = Mechanisms::ablation_stages();
        let count = |m: Mechanisms| {
            [
                m.filter,
                m.coalesce,
                m.nic_concat,
                m.switch_concat,
                m.property_cache,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        let mut prev = 0;
        for (name, m) in stages {
            let c = count(m);
            assert!(c >= prev, "stage {name} lost mechanisms");
            prev = c;
        }
        assert_eq!(stages[4].1, Mechanisms::all());
    }
}
