//! Cluster configuration: Table 5 plus the mechanism ablation switches.

use netsparse_desim::{Clock, SimTime};
use netsparse_netsim::{LinkParams, Topology};
use netsparse_snic::vconcat::VirtualCqConfig;
use netsparse_snic::{HeaderSpec, SnicConfig};
use netsparse_switch::SwitchConfig;

/// Which concatenator implementation concatenation points deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConcatImpl {
    /// One MTU-sized CQ per `(destination, type)` (§6.1.2) — SRAM scales
    /// with cluster size.
    Dedicated,
    /// A fixed pool of virtualized sub-MTU physical CQs (§7.2) — SRAM is
    /// cluster-size independent.
    Virtual(VirtualCqConfig),
}

/// Fault injection and recovery (§7.1).
///
/// NetSparse assumes a lossless fabric, so losses model *hardware
/// failures*. Detection is a watchdog timer per RIG operation: on timeout
/// the operation is failed, its partially gathered buffer is discarded
/// (filter bits dropped), and the command restarts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a packet is dropped at each switch traversal.
    pub loss_rate: f64,
    /// Watchdog timeout per RIG command, nanoseconds (0 = disabled).
    pub watchdog_ns: u64,
    /// Seed for the loss process.
    pub seed: u64,
}

impl FaultConfig {
    /// No faults (the paper's default lossless environment).
    pub fn none() -> Self {
        FaultConfig {
            loss_rate: 0.0,
            watchdog_ns: 0,
            seed: 0,
        }
    }

    /// Drops packets at `loss_rate` per hop with a `watchdog_ns` recovery
    /// timer.
    ///
    /// # Panics
    ///
    /// Panics unless `loss_rate` is a probability and, when nonzero, a
    /// watchdog is armed (without one a lost packet hangs the kernel).
    pub fn lossy(loss_rate: f64, watchdog_ns: u64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_rate),
            "loss rate is a probability"
        );
        assert!(
            loss_rate == 0.0 || watchdog_ns > 0,
            "packet loss without a watchdog would hang the kernel"
        );
        FaultConfig {
            loss_rate,
            watchdog_ns,
            seed,
        }
    }
}

/// Which NetSparse mechanisms are active — the ablation axis of Table 8.
///
/// RIG offload itself is always on inside the simulator (it *is* the
/// simulated communication engine); the stages of Table 8 successively
/// enable the remaining mechanisms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mechanisms {
    /// Idx Filter: drop PRs whose property was already fetched.
    pub filter: bool,
    /// Pending-PR coalescing within each RIG unit.
    pub coalesce: bool,
    /// Concatenation at the SNIC.
    pub nic_concat: bool,
    /// Concatenation at NetSparse (edge) switches.
    pub switch_concat: bool,
    /// The in-switch Property Cache.
    pub property_cache: bool,
}

impl Mechanisms {
    /// Everything on — the full NetSparse design.
    pub fn all() -> Self {
        Mechanisms {
            filter: true,
            coalesce: true,
            nic_concat: true,
            switch_concat: true,
            property_cache: true,
        }
    }

    /// RIG offload only (Table 8 row 1).
    pub fn rig_only() -> Self {
        Mechanisms {
            filter: false,
            coalesce: false,
            nic_concat: false,
            switch_concat: false,
            property_cache: false,
        }
    }

    /// The five cumulative ablation stages of Table 8, in order:
    /// RIG, +Filter, +Coalesce, +Conc(NIC), +Switch.
    pub fn ablation_stages() -> [(&'static str, Mechanisms); 5] {
        let rig = Mechanisms::rig_only();
        let filter = Mechanisms {
            filter: true,
            ..rig
        };
        let coalesce = Mechanisms {
            coalesce: true,
            ..filter
        };
        let conc_nic = Mechanisms {
            nic_concat: true,
            ..coalesce
        };
        let switch = Mechanisms {
            switch_concat: true,
            property_cache: true,
            ..conc_nic
        };
        [
            ("RIG", rig),
            ("Filter", filter),
            ("Coalesce", coalesce),
            ("ConcNIC", conc_nic),
            ("Switch", switch),
        ]
    }

    /// Whether edge switches run the NetSparse middle-pipe path at all.
    pub fn netsparse_switch(&self) -> bool {
        self.switch_concat || self.property_cache
    }
}

impl Default for Mechanisms {
    fn default() -> Self {
        Mechanisms::all()
    }
}

/// Full configuration of a simulated cluster.
///
/// Two profiles are provided:
///
/// - [`ClusterConfig::paper`] — Table 5 verbatim: 400 Gbps links, 450 ns
///   link / 300 ns switch latency (2.4 µs / 5.4 µs zero-load RTTs), 32 MB
///   Property Caches, 32 k RIG batches.
/// - [`ClusterConfig::mini`] — the same machine scaled coherently for the
///   synthetic workloads in this repository (~1/40 of the paper's
///   per-node nonzeros). Kernel time scales roughly with
///   `matrix bytes / bandwidth`, so with bandwidth ÷4 runtimes shrink
///   ~10x; every *fixed* per-operation cost is therefore also scaled ÷10 —
///   link/switch/PCIe latencies and per-command host software — to
///   preserve each cost's share of the kernel. Property Caches are ÷16
///   (preserving the cache-capacity-to-rack-demand ratio) and RIG batches
///   are 1024 (preserving commands-per-unit). Concatenation delay budgets
///   are *not* scaled: they are set by PR generation rates, which the
///   scaling leaves unchanged.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Network topology.
    pub topology: Topology,
    /// SmartNIC parameters.
    pub snic: SnicConfig,
    /// Edge-switch parameters.
    pub switch: SwitchConfig,
    /// Protocol header sizes.
    pub headers: HeaderSpec,
    /// Network link parameters (node-switch and switch-switch).
    pub link: LinkParams,
    /// Property size in 4-byte elements (the paper's K).
    pub k: u32,
    /// Nonzeros per RIG command.
    pub batch_size: usize,
    /// Active mechanisms.
    pub mechanisms: Mechanisms,
    /// Host software cost to issue one RIG command, nanoseconds.
    pub host_cmd_ns: u64,
    /// §9.4's future-work idea, implemented: dynamic adjustment of RIG
    /// parallelism. The host watches the duplicate-response rate (the
    /// signature of concurrent commands re-fetching each other's columns,
    /// which per-unit coalescing cannot see) and AIMD-throttles how many
    /// commands run at once.
    pub adaptive_batch: bool,
    /// Concatenator implementation (dedicated CQs vs §7.2 virtual CQs).
    pub concat_impl: ConcatImpl,
    /// Fault injection (§7.1); defaults to lossless.
    pub faults: FaultConfig,
}

impl ClusterConfig {
    /// The paper's Table 5 configuration for `topology` at property size
    /// `k`.
    pub fn paper(topology: Topology, k: u32) -> Self {
        ClusterConfig {
            topology,
            snic: SnicConfig::paper(),
            switch: SwitchConfig::paper(),
            headers: HeaderSpec::paper(),
            link: LinkParams::new(400.0, 450),
            k,
            batch_size: 32 * 1024,
            mechanisms: Mechanisms::all(),
            host_cmd_ns: 300,
            adaptive_batch: false,
            concat_impl: ConcatImpl::Dedicated,
            faults: FaultConfig::none(),
        }
    }

    /// The scaled profile used by the default experiments (see type-level
    /// docs for the scaling rationale).
    pub fn mini(topology: Topology, k: u32) -> Self {
        let mut cfg = ClusterConfig::paper(topology, k);
        cfg.link = LinkParams::new(100.0, 45);
        cfg.snic.line_rate_gbps = 100.0;
        cfg.snic.pcie_latency_ns = 20;
        cfg.switch.latency_ns = 30;
        cfg.switch.cache.capacity_bytes = 2 << 20;
        cfg.batch_size = 2048;
        cfg.host_cmd_ns = 30;
        cfg
    }

    /// Property payload bytes (4 per element).
    pub fn payload_bytes(&self) -> u32 {
        4 * self.k
    }

    /// The SNIC clock.
    pub fn snic_clock(&self) -> Clock {
        Clock::from_ghz(self.snic.clock_ghz)
    }

    /// The switch pipe clock.
    pub fn switch_clock(&self) -> Clock {
        Clock::from_ghz(self.switch.clock_ghz)
    }

    /// The SNIC concatenation delay budget as simulated time.
    pub fn nic_concat_delay(&self) -> SimTime {
        self.snic_clock().cycles(self.snic.concat_delay_cycles)
    }

    /// The switch concatenation delay budget as simulated time.
    pub fn switch_concat_delay(&self) -> SimTime {
        self.switch_clock().cycles(self.switch.concat_delay_cycles)
    }

    /// Zero-load switch traversal latency.
    pub fn switch_latency(&self) -> SimTime {
        SimTime::from_ns(self.switch.latency_ns)
    }

    /// PCIe one-way latency.
    pub fn pcie_latency(&self) -> SimTime {
        SimTime::from_ns(self.snic.pcie_latency_ns)
    }

    /// PCIe link parameters (for the host-SNIC DMA model). The paper's
    /// 256 GB/s Gen6 x16 link is 2048 Gbps.
    pub fn pcie_link(&self) -> LinkParams {
        LinkParams::new(self.snic.pcie_gbps * 8.0, self.snic.pcie_latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_table5() {
        let c = ClusterConfig::paper(Topology::leaf_spine_128(), 16);
        assert_eq!(c.payload_bytes(), 64);
        assert_eq!(c.batch_size, 32 * 1024);
        assert_eq!(c.link.bandwidth_bps, 400e9);
        // 500 SNIC cycles at 2.2 GHz ~ 227 ns.
        let d = c.nic_concat_delay();
        assert!((d.as_ns_f64() - 227.27).abs() < 1.0, "{d}");
        // 125 switch cycles at 2 GHz = 62.5 ns.
        assert_eq!(c.switch_concat_delay(), SimTime::from_ps(62_500));
    }

    #[test]
    fn mini_profile_scales_coherently() {
        let p = ClusterConfig::paper(Topology::leaf_spine_128(), 16);
        let m = ClusterConfig::mini(Topology::leaf_spine_128(), 16);
        // Bandwidth and latency scale together: BDP shrinks ~16x.
        assert!(m.link.bandwidth_bps < p.link.bandwidth_bps);
        assert!(m.switch.cache.capacity_bytes < p.switch.cache.capacity_bytes);
        // Concat delays are NOT scaled.
        assert_eq!(m.nic_concat_delay(), p.nic_concat_delay());
    }

    #[test]
    fn ablation_stages_are_cumulative() {
        let stages = Mechanisms::ablation_stages();
        let count = |m: Mechanisms| {
            [
                m.filter,
                m.coalesce,
                m.nic_concat,
                m.switch_concat,
                m.property_cache,
            ]
            .iter()
            .filter(|&&b| b)
            .count()
        };
        let mut prev = 0;
        for (name, m) in stages {
            let c = count(m);
            assert!(c >= prev, "stage {name} lost mechanisms");
            prev = c;
        }
        assert_eq!(stages[4].1, Mechanisms::all());
    }
}
