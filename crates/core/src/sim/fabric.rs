//! The network fabric: link state, routing tables, and failover.
//!
//! [`Fabric`] is the shared transport substrate underneath the node and
//! rack components. Components never touch links or forwarding tables
//! directly — they hand packet batches to [`Fabric::send_batch_from_nic`]
//! / [`Fabric::send_from_switch`], and the fabric serializes them onto
//! links, consults the forwarding tables, and schedules the arrival
//! events. Fault transitions (scheduled failures and repairs) are fabric
//! events: they mutate the [`FailureSet`] and reconverge every route over
//! the survivors.

use netsparse_desim::{Scheduler, SimTime};
use netsparse_netsim::topology::FailureSet;
use netsparse_netsim::{Element, Link, LinkId, Network, SwitchId, Topology};
use netsparse_snic::ConcatPacket;

#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, DropReason, TraceEvent, TrackId};

use crate::config::{ClusterConfig, FaultTarget};
use crate::sim::driver::Shared;
use crate::sim::error::SimError;
use crate::sim::events::{Event, FaultAction};

/// Link state, routing tables, and the live failure set of the cluster
/// network (NIC uplinks, ToR and spine switches, and their wiring).
pub(crate) struct Fabric {
    pub(crate) net: Network,
    pub(crate) links: Vec<Link>,
    /// Per node: its uplink and ToR.
    pub(crate) from_nic: Vec<(LinkId, u32)>,
    /// Per node: its downlink (ToR -> NIC), for rx accounting.
    pub(crate) downlink: Vec<LinkId>,
    /// `[switch][dest node]` -> next hop.
    pub(crate) from_switch: Vec<Vec<Option<(LinkId, Element)>>>,
    /// Currently-dead links and switches.
    pub(crate) failures: FailureSet,
}

impl Fabric {
    /// Builds the network, its per-link runtime state, and the initial
    /// (failure-free) routing tables from the precomputed paths. An
    /// unroutable or degenerate topology comes back as a typed
    /// [`SimError::Route`] so generated configurations can be rejected.
    pub(crate) fn try_new(cfg: &ClusterConfig) -> Result<Self, SimError> {
        let net = Network::try_new(cfg.topology)?;
        let n_nodes = net.nodes();
        let n_switches = net.switches();

        // Runtime link states.
        let mut links: Vec<Link> = (0..net.links()).map(|_| Link::new(cfg.link)).collect();

        // Routing tables from the precomputed paths.
        let mut from_nic = vec![(LinkId(0), 0u32); n_nodes as usize];
        let mut downlink = vec![LinkId(0); n_nodes as usize];
        let mut from_switch: Vec<Vec<Option<(LinkId, Element)>>> =
            vec![vec![None; n_nodes as usize]; n_switches as usize];
        for src in 0..n_nodes {
            for dst in 0..n_nodes {
                if src == dst {
                    continue;
                }
                let path = net.try_path(src, dst)?;
                let mut prev = Element::Nic(src);
                for hop in &path.hops {
                    match prev {
                        Element::Nic(n) if n == src => {
                            let Element::Switch(sw) = hop.to else {
                                // simaudit:allow(no-lib-panic): netsim paths start NIC->switch by construction
                                panic!("first hop must reach a switch");
                            };
                            from_nic[src as usize] = (hop.link, sw.0);
                        }
                        Element::Switch(sw) => {
                            let entry = &mut from_switch[sw.0 as usize][dst as usize];
                            if let Some(existing) = entry {
                                debug_assert_eq!(
                                    *existing,
                                    (hop.link, hop.to),
                                    "routing must be destination-deterministic"
                                );
                            } else {
                                *entry = Some((hop.link, hop.to));
                            }
                            if let Element::Nic(n) = hop.to {
                                downlink[n as usize] = hop.link;
                            }
                        }
                        // simaudit:allow(no-lib-panic): netsim paths terminate at the first foreign NIC
                        Element::Nic(_) => panic!("path passes through a foreign NIC"),
                    }
                    prev = hop.to;
                }
            }
        }

        // Per-node degradation: a reduced-bandwidth NIC slows both the
        // uplink and the ToR->NIC downlink of the affected node.
        for d in &cfg.faults.degraded {
            let mut params = cfg.link;
            params.bandwidth_bps *= d.nic_bandwidth_factor;
            links[from_nic[d.node as usize].0 .0 as usize] = Link::new(params);
            links[downlink[d.node as usize].0 as usize] = Link::new(params);
        }

        Ok(Fabric {
            net,
            links,
            from_nic,
            downlink,
            from_switch,
            failures: FailureSet::new(),
        })
    }

    /// Resolves the config's fault schedule to concrete netsim ids up
    /// front, so transitions are O(1) mutations at event time. A schedule
    /// naming a switch-switch link the topology does not have is a typed
    /// [`SimError::MissingFaultLink`] — config validation checks index
    /// ranges, but only the built network knows its adjacencies.
    pub(crate) fn resolve_fault_schedule(
        &self,
        cfg: &ClusterConfig,
    ) -> Result<Vec<(SimTime, FaultAction)>, SimError> {
        let mut pending: Vec<(SimTime, FaultAction)> = Vec::new();
        for ev in &cfg.faults.failures {
            match ev.target {
                FaultTarget::Switch(s) => {
                    let s = SwitchId(s);
                    pending.push((SimTime::from_ns(ev.at_ns), FaultAction::FailSwitch(s)));
                    if let Some(r) = ev.repair_at_ns {
                        pending.push((SimTime::from_ns(r), FaultAction::RepairSwitch(s)));
                    }
                }
                FaultTarget::SwitchLink { from, to } => {
                    let link = self
                        .net
                        .find_link(
                            Element::Switch(SwitchId(from)),
                            Element::Switch(SwitchId(to)),
                        )
                        .ok_or(SimError::MissingFaultLink { from, to })?;
                    pending.push((SimTime::from_ns(ev.at_ns), FaultAction::FailLink(link)));
                    if let Some(r) = ev.repair_at_ns {
                        pending.push((SimTime::from_ns(r), FaultAction::RepairLink(link)));
                    }
                }
            }
        }
        Ok(pending)
    }

    /// The static topology the fabric was built over.
    pub(crate) fn topology(&self) -> Topology {
        *self.net.topology()
    }

    /// Serializes a batch of packets onto `node`'s uplink and schedules
    /// their arrivals at the node's ToR as one scheduler batch (a single
    /// queue operation per flush instead of one heap push per packet).
    /// Drains `batch` so the caller can reuse its allocation.
    pub(crate) fn send_batch_from_nic(
        &mut self,
        node: u32,
        batch: &mut Vec<(SimTime, ConcatPacket)>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if batch.is_empty() {
            return;
        }
        let (link, sw) = self.from_nic[node as usize];
        let link = &mut self.links[link.0 as usize];
        let now = sched.now();
        sched.schedule_batch(batch.drain(..).map(|(at, pkt)| {
            let arrive = link.transmit(at.max(now), pkt.wire_bytes);
            (
                arrive,
                Event::PacketAtSwitch {
                    switch: sw,
                    from_nic: true,
                    pkt,
                },
            )
        }));
    }

    /// Forwards a batch of packets one hop from `sw`, scheduling every
    /// surviving arrival as one scheduler batch; unroutable packets are
    /// blackholed and counted exactly as in [`Fabric::send_from_switch`].
    /// Drains `batch` so the caller can reuse its allocation.
    pub(crate) fn send_batch_from_switch(
        &mut self,
        shared: &mut Shared,
        sw: u32,
        batch: &mut Vec<(SimTime, ConcatPacket)>,
        sched: &mut Scheduler<'_, Event>,
    ) {
        if batch.is_empty() {
            return;
        }
        let Fabric {
            links,
            from_switch,
            failures,
            ..
        } = self;
        let row = &from_switch[sw as usize];
        let now = sched.now();
        sched.schedule_batch(batch.drain(..).filter_map(|(at, pkt)| {
            let Some((link, to)) = row[pkt.dest as usize] else {
                shared.faults.dropped_dead += 1;
                shared.account_partial_drop(&pkt);
                #[cfg(feature = "trace")]
                shared.trace(
                    TrackId::switch(sw, lane::FAULT),
                    TraceEvent::PacketDropped {
                        reason: DropReason::Dead,
                        prs: pkt.prs.len() as u32,
                    },
                );
                return None;
            };
            if failures.link_dead(link) {
                shared.faults.dropped_dead += 1;
                shared.account_partial_drop(&pkt);
                #[cfg(feature = "trace")]
                shared.trace(
                    TrackId::switch(sw, lane::FAULT),
                    TraceEvent::PacketDropped {
                        reason: DropReason::Dead,
                        prs: pkt.prs.len() as u32,
                    },
                );
                return None;
            }
            let arrive = links[link.0 as usize].transmit(at.max(now), pkt.wire_bytes);
            Some(match to {
                Element::Switch(next) => (
                    arrive,
                    Event::PacketAtSwitch {
                        switch: next.0,
                        from_nic: false,
                        pkt,
                    },
                ),
                Element::Nic(n) => (arrive, Event::PacketAtNic { node: n, pkt }),
            })
        }));
    }

    /// Forwards `pkt` one hop from `sw` toward its destination, or
    /// blackholes it if the route is gone.
    pub(crate) fn send_from_switch(
        &mut self,
        shared: &mut Shared,
        sw: u32,
        at: SimTime,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        // With no failures the table is total by construction; under an
        // active failure set it can have holes — the destination may be
        // unreachable, or the packet may sit on a stale path after a
        // failover rebuild. Either way the packet is blackholed here and
        // the watchdog recovers the PRs it carried.
        let Some((link, to)) = self.from_switch[sw as usize][pkt.dest as usize] else {
            shared.faults.dropped_dead += 1;
            shared.account_partial_drop(&pkt);
            #[cfg(feature = "trace")]
            shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        };
        if self.failures.link_dead(link) {
            shared.faults.dropped_dead += 1;
            shared.account_partial_drop(&pkt);
            #[cfg(feature = "trace")]
            shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        }
        let bytes = pkt.wire_bytes;
        let arrive = self.links[link.0 as usize].transmit(at.max(sched.now()), bytes);
        match to {
            Element::Switch(next) => sched.schedule(
                arrive,
                Event::PacketAtSwitch {
                    switch: next.0,
                    from_nic: false,
                    pkt,
                },
            ),
            Element::Nic(n) => sched.schedule(arrive, Event::PacketAtNic { node: n, pkt }),
        }
    }

    /// Applies a scheduled failure or repair, then reconverges routing.
    pub(crate) fn apply_fault(&mut self, shared: &mut Shared, action: FaultAction) {
        match action {
            FaultAction::FailSwitch(s) => self.failures.fail_switch(s),
            FaultAction::RepairSwitch(s) => self.failures.repair_switch(s),
            FaultAction::FailLink(l) => self.failures.fail_link(l),
            FaultAction::RepairLink(l) => self.failures.repair_link(l),
        }
        shared.faults.fault_transitions += 1;
        #[cfg(feature = "trace")]
        let failovers_before = shared.faults.route_failovers;
        self.rebuild_routes(shared);
        #[cfg(feature = "trace")]
        shared.trace(
            TrackId::cluster(),
            TraceEvent::FaultApplied {
                failovers: (shared.faults.route_failovers - failovers_before) as u32,
            },
        );
    }

    /// Recomputes every (switch, dest) forwarding entry over the surviving
    /// elements using deterministic failover paths (ECMP next-choice).
    /// Entries whose next hop changed are counted as route failovers.
    /// Packets already in flight on a stale path are blackholed at their
    /// next hop lookup — exactly what a real reconvergence does to
    /// in-flight traffic — and recovered by the watchdog.
    fn rebuild_routes(&mut self, shared: &mut Shared) {
        let n_nodes = self.net.nodes();
        let n_switches = self.net.switches();
        let mut table: Vec<Vec<Option<(LinkId, Element)>>> =
            vec![vec![None; n_nodes as usize]; n_switches as usize];
        for src in 0..n_nodes {
            for dst in 0..n_nodes {
                if src == dst {
                    continue;
                }
                let Some(path) = self.net.failover_path(src, dst, &self.failures) else {
                    continue; // dst unreachable from src right now
                };
                let mut prev = Element::Nic(src);
                for hop in &path.hops {
                    if let Element::Switch(sw) = prev {
                        let entry = &mut table[sw.0 as usize][dst as usize];
                        // First writer wins: sources sharing a switch on
                        // their paths to dst agree by construction on most
                        // topologies; where they don't (HyperX dim-order
                        // fallbacks), any surviving choice is loop-free.
                        if entry.is_none() {
                            *entry = Some((hop.link, hop.to));
                        }
                    }
                    prev = hop.to;
                }
            }
        }
        let mut changed = 0u64;
        for (old_row, new_row) in self.from_switch.iter().zip(&table) {
            for (old, new) in old_row.iter().zip(new_row) {
                if old != new {
                    changed += 1;
                }
            }
        }
        shared.faults.route_failovers += changed;
        self.from_switch = table;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsparse_netsim::Topology;

    fn fabric_and_shared() -> (Fabric, Shared) {
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let cfg = ClusterConfig::mini(topo, 16);
        (Fabric::try_new(&cfg).unwrap(), Shared::new(&cfg))
    }

    /// The fabric can be constructed and exercised without any node or
    /// rack component: the initial tables are total, and a spine death
    /// reconverges every inter-rack route onto the surviving spine.
    #[test]
    fn failover_reroutes_around_a_dead_spine_in_isolation() {
        let (mut f, mut shared) = fabric_and_shared();
        // Initially every ToR row is total: a ToR can forward toward any
        // destination. (Spine rows may have holes — ECMP need not select
        // every spine for every destination.)
        for sw in 0..2u32 {
            for dst in 0..f.net.nodes() {
                let entry = f.from_switch[sw as usize][dst as usize];
                assert!(entry.is_some(), "hole in initial routing: {sw} -> {dst}");
            }
        }
        // Leaf-spine with 2 racks of 4: switches 0..2 are ToRs, 2..4 are
        // spines. Kill spine 2; routes must reconverge via spine 3.
        let spine = SwitchId(2);
        f.apply_fault(&mut shared, FaultAction::FailSwitch(spine));
        assert_eq!(shared.faults.fault_transitions, 1);
        assert!(shared.faults.route_failovers > 0, "no route changed");
        // Cross-rack routes from ToR 0 must now avoid the dead spine.
        for dst in 4..8 {
            let (_, to) = f.from_switch[0][dst].expect("dst must stay reachable");
            assert_ne!(to, Element::Switch(spine), "route still uses dead spine");
        }
        // Repair heals the ToR rows back to a total map.
        f.apply_fault(&mut shared, FaultAction::RepairSwitch(spine));
        for sw in 0..2u32 {
            for dst in 0..f.net.nodes() {
                assert!(f.from_switch[sw as usize][dst as usize].is_some());
            }
        }
    }

    /// A packet toward an unreachable destination is blackholed and
    /// counted, not forwarded or panicked on.
    #[test]
    fn unreachable_destination_blackholes_and_counts() {
        let (mut f, mut shared) = fabric_and_shared();
        // Kill node 7's downlink path entirely by failing its ToR.
        f.apply_fault(&mut shared, FaultAction::FailSwitch(SwitchId(1)));
        let dropped_before = shared.faults.dropped_dead;
        let pkt = ConcatPacket::degraded_singleton(
            &netsparse_snic::HeaderSpec::paper(),
            7,
            netsparse_snic::PrKind::Read,
            netsparse_snic::Pr {
                src_node: 0,
                src_tid: 0,
                idx: 1,
                req_id: 1,
            },
            0,
        );
        let mut queue = netsparse_desim::EventQueue::new();
        let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
        f.send_from_switch(&mut shared, 0, SimTime::ZERO, pkt, &mut sched);
        assert_eq!(shared.faults.dropped_dead, dropped_before + 1);
        assert!(queue.is_empty(), "blackholed packet must not schedule");
    }
}
