//! The rack component: one switch (ToR or spine) with its NetSparse
//! extensions.
//!
//! A [`RackState`] owns a switch's middle-pipe handler [`Pipeline`]
//! (Property-Cache probe/fill, optional in-network reduction, cross-node
//! concatenation) and the NetSparse enablement flag. Edge (ToR) switches
//! deconcatenate arriving packets and drive every PR through the pipeline;
//! spines (and every switch when the mechanisms are off) forward packets
//! verbatim through the [`Fabric`](super::fabric::Fabric). Ingress fault
//! handling — dead-switch blackholing and the configured loss process —
//! also happens here, before any processing, exactly once per traversal.

use netsparse_desim::{Scheduler, SimTime};
use netsparse_snic::{ConcatConfig, ConcatPacket};
use netsparse_switch::{MiddlePipes, ReduceTable};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, DropReason, TraceEvent, TrackId};

use netsparse_netsim::SwitchId;

use crate::config::ClusterConfig;
use crate::sim::driver::{Component, Ctx};
use crate::sim::events::Event;
use crate::sim::node::concat_point;
use crate::sim::pipeline::{Pipeline, PrCtx};

/// One switch of the cluster: the component bound to `Port::Rack(id)`.
pub(crate) struct RackState {
    /// This switch's id (netsim switch index).
    pub(crate) id: u32,
    /// The middle-pipe handler pipeline: cache, optional reduce, concat.
    pub(crate) pipeline: Pipeline,
    pub(crate) concat_sched: Option<SimTime>,
    /// Earliest scheduled reduce-window expiry, if any.
    pub(crate) reduce_sched: Option<SimTime>,
    /// Whether this switch runs the NetSparse extensions (edge switches
    /// with the mechanisms enabled).
    pub(crate) netsparse: bool,
    /// Pooled per-event output batch (time-stamped packets bound for the
    /// fabric), reused across events so the hot path never allocates.
    pub(crate) out_buf: Vec<(SimTime, ConcatPacket)>,
}

/// Builds every switch component of the cluster (`n_switches` of them,
/// ToRs first, matching netsim's switch numbering).
pub(crate) fn build_racks(cfg: &ClusterConfig, n_switches: u32) -> Vec<RackState> {
    let payload = cfg.payload_bytes();
    let switch_concat_cfg = ConcatConfig {
        headers: cfg.headers,
        mtu: cfg.snic.mtu,
        delay: cfg.switch_concat_delay(),
        enabled: cfg.mechanisms.switch_concat,
    };
    let cache_bytes = if cfg.mechanisms.property_cache {
        cfg.switch.cache.capacity_bytes
    } else {
        0
    };
    let cache_on = cfg.mechanisms.property_cache;
    let cache_lat = cfg
        .switch_clock()
        .cycles(cfg.switch.cache.latency_cycles as u64);
    let reduce_on = cfg.reduce.enabled && cfg.reduce.in_network;
    (0..n_switches)
        .map(|s| {
            let edge = cfg.topology.is_edge_switch(SwitchId(s));
            let mut sw_cfg = cfg.switch;
            // Non-edge switches carry no NetSparse extensions.
            sw_cfg.cache.capacity_bytes = if edge { cache_bytes } else { 0 };
            let reduce = if reduce_on && edge {
                Some(ReduceTable::new(
                    cfg.reduce.table_entries,
                    SimTime::from_ns(cfg.reduce.flush_ns),
                ))
            } else {
                None
            };
            RackState {
                id: s,
                pipeline: Pipeline::for_rack(
                    MiddlePipes::new(&sw_cfg, payload.max(1)),
                    cache_lat,
                    cache_on,
                    reduce,
                    concat_point(switch_concat_cfg, cfg.concat_impl),
                ),
                concat_sched: None,
                reduce_sched: None,
                netsparse: edge && cfg.mechanisms.netsparse_switch(),
                out_buf: Vec::new(),
            }
        })
        .collect()
}

impl Component for RackState {
    fn handle(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx<'_, '_, '_>) {
        match ev {
            Event::PacketAtSwitch { from_nic, pkt, .. } => {
                self.packet_at_switch(now, from_nic, pkt, ctx);
            }
            Event::SwitchConcatExpire { .. } => self.concat_expire(now, ctx),
            Event::ReduceExpire { .. } => self.reduce_expire(now, ctx),
            // simaudit:allow(no-lib-panic): the port-wiring lint pass proves this arm unreachable
            _ => unreachable!("event routed to the wrong port"),
        }
    }
}

impl RackState {
    /// (Re-)schedules the earliest pending concatenator expiry.
    fn arm_concat(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(t) = self.pipeline.next_concat_expiry() {
            let t = t.max(sched.now());
            if self.concat_sched.is_none_or(|cur| t < cur) {
                self.concat_sched = Some(t);
                sched.schedule(t, Event::SwitchConcatExpire { switch: self.id });
            }
        }
    }

    /// (Re-)schedules the earliest pending reduce-window close.
    fn arm_reduce(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(t) = self.pipeline.next_reduce_expiry() {
            let t = t.max(sched.now());
            if self.reduce_sched.is_none_or(|cur| t < cur) {
                self.reduce_sched = Some(t);
                sched.schedule(t, Event::ReduceExpire { switch: self.id });
            }
        }
    }

    /// Flushes expired concatenation queues onto the forwarding path as
    /// one scheduler batch.
    fn concat_expire(&mut self, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        self.concat_sched = None;
        let mut out = std::mem::take(&mut self.out_buf);
        self.pipeline.flush_concat(now, &mut out);
        ctx.fabric
            .send_batch_from_switch(ctx.shared, self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
    }

    /// Flushes reduce-table entries whose aggregation window closed: each
    /// merged Partial PR re-enters the pipeline below the reduce stage and
    /// concatenates toward its root.
    fn reduce_expire(&mut self, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        self.reduce_sched = None;
        let mut out = std::mem::take(&mut self.out_buf);
        {
            let prc = PrCtx {
                sw: self.id,
                pkt_dest: 0, // unused: each flushed PR carries its own root
                payload: ctx.shared.payload,
                topo: ctx.fabric.topology(),
                partition: ctx.wl.partition(),
            };
            self.pipeline.flush_reduce(now, &prc, &mut out);
        }
        ctx.fabric
            .send_batch_from_switch(ctx.shared, self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
        self.arm_reduce(ctx.sched);
    }

    fn packet_at_switch(
        &mut self,
        now: SimTime,
        from_nic: bool,
        pkt: ConcatPacket,
        ctx: &mut Ctx<'_, '_, '_>,
    ) {
        let sw = self.id;
        // §7.1 hardware faults: a dead switch blackholes everything it
        // receives; surviving packets then face the configured loss
        // process (Bernoulli or Gilbert–Elliott bursts) per traversal.
        // Detection/recovery is the RIG watchdog.
        if ctx.fabric.failures.switch_dead(SwitchId(sw)) {
            ctx.shared.faults.dropped_dead += 1;
            ctx.shared.account_partial_drop(&pkt);
            #[cfg(feature = "trace")]
            ctx.shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        }
        if ctx.shared.loss_active && ctx.shared.loss.drop_packet() {
            ctx.shared.account_partial_drop(&pkt);
            #[cfg(feature = "trace")]
            ctx.shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Loss,
                    prs: pkt.prs.len() as u32,
                },
            );
            return; // counted by the loss process, surfaced in FaultReport
        }
        let t = now + ctx.shared.switch_lat;
        let topo = ctx.fabric.topology();
        let process =
            !pkt.degraded && self.netsparse && (from_nic || topo.edge_switch_of(pkt.dest).0 == sw);
        if !process {
            ctx.fabric
                .send_from_switch(ctx.shared, sw, t, pkt, ctx.sched);
            return;
        }

        // The processing path: deconcatenate and drive every PR through
        // the handler pipeline (cache probe/fill, optional reduce fold,
        // reconcatenation). Each handler charges its own cycle cost.
        let mut out = std::mem::take(&mut self.out_buf);
        {
            let prc = PrCtx {
                sw,
                pkt_dest: pkt.dest,
                payload: ctx.shared.payload,
                topo,
                partition: ctx.wl.partition(),
            };
            for &pr in &pkt.prs {
                self.pipeline.run(t, pr, pkt.kind, &prc, &mut out);
            }
            self.pipeline.concat_mut().recycle(pkt.prs);
        }
        ctx.fabric
            .send_batch_from_switch(ctx.shared, sw, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
        self.arm_reduce(ctx.sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ReduceConfig;
    use crate::sim::driver::Shared;
    use crate::sim::fabric::Fabric;
    use netsparse_desim::EventQueue;
    use netsparse_netsim::Topology;
    use netsparse_snic::protocol::partial_contrib_value;
    use netsparse_snic::{Pr, PrKind};
    use netsparse_sparse::{CommWorkload, Partition1D};

    fn topo() -> Topology {
        Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        }
    }

    fn workload() -> CommWorkload {
        let part = Partition1D::even(8 * 16, 8);
        CommWorkload::from_streams(part, vec![16; 8], vec![vec![]; 8])
    }

    fn pr(idx: u32) -> Pr {
        Pr {
            src_node: 0,
            src_tid: 0,
            idx,
            req_id: 1,
        }
    }

    /// The rack component is testable in isolation: a response PR crossing
    /// a ToR fills the Property Cache for its (remote) home, and a
    /// subsequent read for the same idx hits instead of being forwarded.
    #[test]
    fn cache_fills_on_response_and_hits_on_read_in_isolation() {
        let cfg = ClusterConfig::mini(topo(), 16);
        let wl = workload();
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);
        let mut racks = build_racks(&cfg, fabric.net.switches());
        let tor = &mut racks[0];
        assert!(tor.netsparse, "mini config must enable the edge extensions");

        // idx 64 is owned by node 4 (rack 1): remote from ToR 0's rack.
        let idx = 64;
        assert_eq!(wl.partition().owner(idx), 4);

        let mut queue: EventQueue<Event> = EventQueue::new();
        {
            let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched: &mut sched,
            };
            // A response for idx 64 headed back to requester 0 crosses
            // ToR 0 and fills the cache line for home 4.
            let resp = ConcatPacket::degraded_singleton(
                &cfg.headers,
                0,
                PrKind::Response,
                pr(idx),
                cfg.payload_bytes(),
            );
            // Force it through the processing path (degraded packets skip
            // it by design).
            let resp = ConcatPacket {
                degraded: false,
                ..resp
            };
            tor.packet_at_switch(SimTime::ZERO, false, resp, &mut ctx);
            assert_eq!(
                tor.pipeline.pipes().unwrap().stats().insertions,
                1,
                "response must fill the cache"
            );

            // A read for the same idx entering from a local NIC now hits.
            let read = ConcatPacket::degraded_singleton(&cfg.headers, 4, PrKind::Read, pr(idx), 0);
            let read = ConcatPacket {
                degraded: false,
                ..read
            };
            tor.packet_at_switch(SimTime::ZERO, true, read, &mut ctx);
            let stats = tor.pipeline.pipes().unwrap().stats();
            assert_eq!(stats.lookups, 1);
            assert_eq!(stats.hits, 1, "second reference must be served by the ToR");
        }
    }

    /// A spine never processes: packets forward through the fabric
    /// untouched, leaving its cache pipeline idle.
    #[test]
    fn spine_forwards_without_processing() {
        let cfg = ClusterConfig::mini(topo(), 16);
        let wl = workload();
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);
        let mut racks = build_racks(&cfg, fabric.net.switches());
        // Leaf-spine 2x4: switches 0..2 are ToRs, 2..4 spines.
        let spine = &mut racks[2];
        assert!(!spine.netsparse);

        let mut queue: EventQueue<Event> = EventQueue::new();
        {
            let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched: &mut sched,
            };
            let read = ConcatPacket::degraded_singleton(&cfg.headers, 4, PrKind::Read, pr(64), 0);
            let read = ConcatPacket {
                degraded: false,
                ..read
            };
            spine.packet_at_switch(SimTime::ZERO, false, read, &mut ctx);
        }
        assert_eq!(spine.pipeline.pipes().unwrap().stats().lookups, 0);
        assert_eq!(queue.len(), 1, "the packet must be forwarded onward");
    }

    /// An edge switch with in-network reduction absorbs Partial
    /// contributions into its table and, when the window expires, emits a
    /// single merged PR toward the root — conserving counts and values.
    #[test]
    fn reduce_absorbs_partials_and_emits_merged_on_expiry() {
        let mut cfg = ClusterConfig::mini(topo(), 16);
        cfg.reduce = ReduceConfig::in_network();
        let wl = workload();
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);
        let mut racks = build_racks(&cfg, fabric.net.switches());
        let tor = &mut racks[0];
        assert!(
            tor.pipeline.reduce_stats().is_some(),
            "edge ToR has a table"
        );

        // Contributions from nodes 0 and 1 (rack 0) toward row 64's owner
        // (node 4, rack 1) arrive from local NICs.
        let root = wl.partition().owner(64);
        let mut queue: EventQueue<Event> = EventQueue::new();
        {
            let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched: &mut sched,
            };
            for src in 0..2u32 {
                let p = Pr::partial(src, 64, 1, partial_contrib_value(src, 64));
                let pkt = ConcatPacket::degraded_singleton(
                    &cfg.headers,
                    root,
                    PrKind::Partial,
                    p,
                    cfg.payload_bytes(),
                );
                let pkt = ConcatPacket {
                    degraded: false,
                    ..pkt
                };
                tor.packet_at_switch(SimTime::ZERO, true, pkt, &mut ctx);
            }
            let stats = tor.pipeline.reduce_stats().unwrap();
            assert_eq!((stats.allocated, stats.merged), (1, 1));
            assert_eq!(stats.allocated - stats.flushed, 1, "one entry in flight");
            assert!(
                tor.reduce_sched.is_some(),
                "an aggregation window must be armed"
            );

            // Fire the expiry: the merged PR flushes through the concat
            // stage toward the root.
            let t = tor.reduce_sched.unwrap();
            tor.reduce_expire(t, &mut ctx);
        }
        let stats = tor.pipeline.reduce_stats().unwrap();
        assert_eq!(stats.allocated - stats.flushed, 0, "table drained");
        assert_eq!(stats.flushed, 1);
    }

    /// With `in_network` off no switch builds a reduce stage, so Partial
    /// traffic flows through concat untouched.
    #[test]
    fn software_baseline_has_no_reduce_stage() {
        let mut cfg = ClusterConfig::mini(topo(), 16);
        cfg.reduce = ReduceConfig::software_baseline();
        let fabric = Fabric::try_new(&cfg).unwrap();
        let racks = build_racks(&cfg, fabric.net.switches());
        assert!(racks.iter().all(|r| r.pipeline.reduce_stats().is_none()));
    }
}
