//! The rack component: one switch (ToR or spine) with its NetSparse
//! extensions.
//!
//! A [`RackState`] owns a switch's middle-pipeline model (Property Cache
//! banks), its cross-node concatenation point, and the NetSparse
//! enablement flag. Edge (ToR) switches deconcatenate arriving packets,
//! probe/fill the cache for inter-rack properties, and reconcatenate;
//! spines (and every switch when the mechanisms are off) forward packets
//! verbatim through the [`Fabric`](super::fabric::Fabric). Ingress fault
//! handling — dead-switch blackholing and the configured loss process —
//! also happens here, before any processing, exactly once per traversal.

use netsparse_desim::{Scheduler, SimTime};
use netsparse_snic::{ConcatConfig, ConcatPacket, ConcatPoint, PrKind};
use netsparse_switch::MiddlePipes;

#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, DropReason, TraceEvent, TrackId};

use netsparse_netsim::SwitchId;

use crate::config::ClusterConfig;
use crate::sim::driver::{Component, Ctx};
use crate::sim::events::Event;
use crate::sim::node::concat_point;

/// One switch of the cluster: the component bound to `Port::Rack(id)`.
pub(crate) struct RackState {
    /// This switch's id (netsim switch index).
    pub(crate) id: u32,
    pub(crate) pipes: MiddlePipes,
    pub(crate) concat: ConcatPoint,
    pub(crate) concat_sched: Option<SimTime>,
    /// Whether this switch runs the NetSparse extensions (edge switches
    /// with the mechanisms enabled).
    pub(crate) netsparse: bool,
    /// Pooled per-event output batch (time-stamped packets bound for the
    /// fabric), reused across events so the hot path never allocates.
    pub(crate) out_buf: Vec<(SimTime, ConcatPacket)>,
}

/// Builds every switch component of the cluster (`n_switches` of them,
/// ToRs first, matching netsim's switch numbering).
pub(crate) fn build_racks(cfg: &ClusterConfig, n_switches: u32) -> Vec<RackState> {
    let payload = cfg.payload_bytes();
    let switch_concat_cfg = ConcatConfig {
        headers: cfg.headers,
        mtu: cfg.snic.mtu,
        delay: cfg.switch_concat_delay(),
        enabled: cfg.mechanisms.switch_concat,
    };
    let cache_bytes = if cfg.mechanisms.property_cache {
        cfg.switch.cache.capacity_bytes
    } else {
        0
    };
    (0..n_switches)
        .map(|s| {
            let edge = cfg.topology.is_edge_switch(SwitchId(s));
            let mut sw_cfg = cfg.switch;
            sw_cfg.cache.capacity_bytes = cache_bytes;
            RackState {
                id: s,
                pipes: if edge {
                    MiddlePipes::new(&sw_cfg, payload.max(1))
                } else {
                    // Non-edge switches carry no NetSparse extensions.
                    sw_cfg.cache.capacity_bytes = 0;
                    MiddlePipes::new(&sw_cfg, payload.max(1))
                },
                concat: concat_point(switch_concat_cfg, cfg.concat_impl),
                concat_sched: None,
                netsparse: edge && cfg.mechanisms.netsparse_switch(),
                out_buf: Vec::new(),
            }
        })
        .collect()
}

impl Component for RackState {
    fn handle(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx<'_, '_, '_>) {
        match ev {
            Event::PacketAtSwitch { from_nic, pkt, .. } => {
                self.packet_at_switch(now, from_nic, pkt, ctx);
            }
            Event::SwitchConcatExpire { .. } => self.concat_expire(now, ctx),
            // simaudit:allow(no-lib-panic): the port-wiring lint pass proves this arm unreachable
            _ => unreachable!("event routed to the wrong port"),
        }
    }
}

impl RackState {
    /// (Re-)schedules the earliest pending concatenator expiry.
    fn arm_concat(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(t) = self.concat.next_expiry() {
            let t = t.max(sched.now());
            if self.concat_sched.is_none_or(|cur| t < cur) {
                self.concat_sched = Some(t);
                sched.schedule(t, Event::SwitchConcatExpire { switch: self.id });
            }
        }
    }

    /// Flushes expired concatenation queues onto the forwarding path as
    /// one scheduler batch.
    fn concat_expire(&mut self, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        self.concat_sched = None;
        let mut out = std::mem::take(&mut self.out_buf);
        self.concat.flush_expired_with(now, |p| out.push((now, p)));
        ctx.fabric
            .send_batch_from_switch(ctx.shared, self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
    }

    fn packet_at_switch(
        &mut self,
        now: SimTime,
        from_nic: bool,
        pkt: ConcatPacket,
        ctx: &mut Ctx<'_, '_, '_>,
    ) {
        let sw = self.id;
        // §7.1 hardware faults: a dead switch blackholes everything it
        // receives; surviving packets then face the configured loss
        // process (Bernoulli or Gilbert–Elliott bursts) per traversal.
        // Detection/recovery is the RIG watchdog.
        if ctx.fabric.failures.switch_dead(SwitchId(sw)) {
            ctx.shared.faults.dropped_dead += 1;
            #[cfg(feature = "trace")]
            ctx.shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        }
        if ctx.shared.loss_active && ctx.shared.loss.drop_packet() {
            #[cfg(feature = "trace")]
            ctx.shared.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Loss,
                    prs: pkt.prs.len() as u32,
                },
            );
            return; // counted by the loss process, surfaced in FaultReport
        }
        let t = now + ctx.shared.switch_lat;
        let topo = ctx.fabric.topology();
        let process =
            !pkt.degraded && self.netsparse && (from_nic || topo.edge_switch_of(pkt.dest).0 == sw);
        if !process {
            ctx.fabric
                .send_from_switch(ctx.shared, sw, t, pkt, ctx.sched);
            return;
        }

        let cache_on = ctx.cfg.mechanisms.property_cache;
        let payload = ctx.shared.payload;
        let t_pr = if cache_on {
            t + ctx.shared.cache_lat
        } else {
            t
        };
        let wl = ctx.wl;
        let partition = wl.partition();
        let mut out = std::mem::take(&mut self.out_buf);
        {
            let st = &mut *self;
            match pkt.kind {
                PrKind::Read => {
                    let home = pkt.dest;
                    let cacheable =
                        cache_on && st.pipes.enabled() && topo.edge_switch_of(home).0 != sw;
                    for &pr in &pkt.prs {
                        if cacheable && st.pipes.lookup(home, pr.idx) {
                            // Hit: the read becomes a response to its source.
                            st.concat.push_with(
                                t_pr,
                                pr.src_node,
                                PrKind::Response,
                                pr,
                                payload,
                                |p| out.push((t_pr, p)),
                            );
                        } else {
                            st.concat.push_with(t_pr, home, PrKind::Read, pr, 0, |p| {
                                out.push((t_pr, p));
                            });
                        }
                    }
                }
                PrKind::Response => {
                    let requester = pkt.dest;
                    for &pr in &pkt.prs {
                        let home = partition.owner(pr.idx);
                        if cache_on && st.pipes.enabled() && topo.edge_switch_of(home).0 != sw {
                            st.pipes.insert(home, pr.idx);
                        }
                        st.concat
                            .push_with(t_pr, requester, PrKind::Response, pr, payload, |p| {
                                out.push((t_pr, p));
                            });
                    }
                }
            }
            st.concat.recycle(pkt.prs);
        }
        ctx.fabric
            .send_batch_from_switch(ctx.shared, sw, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::driver::Shared;
    use crate::sim::fabric::Fabric;
    use netsparse_desim::EventQueue;
    use netsparse_netsim::Topology;
    use netsparse_snic::Pr;
    use netsparse_sparse::{CommWorkload, Partition1D};

    fn topo() -> Topology {
        Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        }
    }

    fn workload() -> CommWorkload {
        let part = Partition1D::even(8 * 16, 8);
        CommWorkload::from_streams(part, vec![16; 8], vec![vec![]; 8])
    }

    fn pr(idx: u32) -> Pr {
        Pr {
            src_node: 0,
            src_tid: 0,
            idx,
            req_id: 1,
        }
    }

    /// The rack component is testable in isolation: a response PR crossing
    /// a ToR fills the Property Cache for its (remote) home, and a
    /// subsequent read for the same idx hits instead of being forwarded.
    #[test]
    fn cache_fills_on_response_and_hits_on_read_in_isolation() {
        let cfg = ClusterConfig::mini(topo(), 16);
        let wl = workload();
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);
        let mut racks = build_racks(&cfg, fabric.net.switches());
        let tor = &mut racks[0];
        assert!(tor.netsparse, "mini config must enable the edge extensions");

        // idx 64 is owned by node 4 (rack 1): remote from ToR 0's rack.
        let idx = 64;
        assert_eq!(wl.partition().owner(idx), 4);

        let mut queue: EventQueue<Event> = EventQueue::new();
        {
            let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched: &mut sched,
            };
            // A response for idx 64 headed back to requester 0 crosses
            // ToR 0 and fills the cache line for home 4.
            let resp = ConcatPacket::degraded_singleton(
                &cfg.headers,
                0,
                PrKind::Response,
                pr(idx),
                cfg.payload_bytes(),
            );
            // Force it through the processing path (degraded packets skip
            // it by design).
            let resp = ConcatPacket {
                degraded: false,
                ..resp
            };
            tor.packet_at_switch(SimTime::ZERO, false, resp, &mut ctx);
            assert_eq!(
                tor.pipes.stats().insertions,
                1,
                "response must fill the cache"
            );

            // A read for the same idx entering from a local NIC now hits.
            let read = ConcatPacket::degraded_singleton(&cfg.headers, 4, PrKind::Read, pr(idx), 0);
            let read = ConcatPacket {
                degraded: false,
                ..read
            };
            tor.packet_at_switch(SimTime::ZERO, true, read, &mut ctx);
            let stats = tor.pipes.stats();
            assert_eq!(stats.lookups, 1);
            assert_eq!(stats.hits, 1, "second reference must be served by the ToR");
        }
    }

    /// A spine never processes: packets forward through the fabric
    /// untouched, leaving its cache pipeline idle.
    #[test]
    fn spine_forwards_without_processing() {
        let cfg = ClusterConfig::mini(topo(), 16);
        let wl = workload();
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);
        let mut racks = build_racks(&cfg, fabric.net.switches());
        // Leaf-spine 2x4: switches 0..2 are ToRs, 2..4 spines.
        let spine = &mut racks[2];
        assert!(!spine.netsparse);

        let mut queue: EventQueue<Event> = EventQueue::new();
        {
            let mut sched = netsparse_desim::Scheduler::at(&mut queue, SimTime::ZERO);
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched: &mut sched,
            };
            let read = ConcatPacket::degraded_singleton(&cfg.headers, 4, PrKind::Read, pr(64), 0);
            let read = ConcatPacket {
                degraded: false,
                ..read
            };
            spine.packet_at_switch(SimTime::ZERO, false, read, &mut ctx);
        }
        assert_eq!(spine.pipes.stats().lookups, 0);
        assert_eq!(queue.len(), 1, "the packet must be forwarded onward");
    }
}
