//! The node component: host core + SmartNIC command lifecycle.
//!
//! One [`NodeState`] models a host and its SNIC: the host core issuing
//! RIG commands (paying per-command software cost plus the PCIe DMA of
//! the idx batch), the client RIG units scanning idxs and emitting read
//! PRs through the NIC concatenator, the server units fetching properties
//! over PCIe for inbound reads, and the response path that clears pending
//! entries, sets Idx Filter bits, and completes commands. The §7.1
//! watchdog (exponential backoff, degraded-mode escalation, final
//! abandon) also lives here — recovery is a node-local protocol.
//!
//! All handlers touch only this node's state plus the shared context
//! ([`Ctx`]): the fabric for egress, the scheduler for follow-up events,
//! and the shared counters/auditor/tracer.

use netsparse_desim::{Scheduler, SimTime};
use netsparse_netsim::Link;
use netsparse_snic::protocol::partial_contrib_value;
use netsparse_snic::{
    ConcatConfig, ConcatPacket, ConcatPoint, IdxFilter, IdxOutcome, Pr, PrKind, RigClient,
};
use netsparse_sparse::CommWorkload;

#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, TraceEvent, TrackId};

use crate::config::{ClusterConfig, ConcatImpl};
use crate::sim::driver::{Component, Ctx};
use crate::sim::events::Event;
use crate::sim::pipeline::{Pipeline, PrCtx};

/// Instantiates a concatenation point for the configured implementation.
pub(crate) fn concat_point(cfg: ConcatConfig, implementation: ConcatImpl) -> ConcatPoint {
    match implementation {
        ConcatImpl::Dedicated => ConcatPoint::dedicated(cfg),
        ConcatImpl::Virtual(pool) => ConcatPoint::virtualized(cfg, pool),
    }
}

/// Issue timestamps of outstanding PRs, slab-indexed by client unit.
///
/// Each unit's entries stay sorted by `req_id` — `RigClient` allocates
/// req_ids monotonically, so recording is an append and resolution a
/// binary search over a short vector (bounded by the pending-table
/// capacity). A watchdog abandon drains a whole unit in one clear.
/// req_id (not idx) keeps duplicate issues of one idx distinct, so a
/// watchdog abandon and a late response can't collide.
pub(crate) struct IssueLedger {
    units: Vec<Vec<(u32, SimTime)>>,
}

impl IssueLedger {
    fn new(units: usize) -> Self {
        IssueLedger {
            units: vec![Vec::new(); units],
        }
    }

    /// Records the issue time of `(unit, req_id)`.
    #[inline]
    fn record(&mut self, unit: u16, req_id: u32, t: SimTime) {
        let u = &mut self.units[unit as usize];
        match u.last() {
            // req_id wrapped (u32 rollover): fall back to a sorted insert
            // so the binary-search invariant survives.
            Some(&(last, _)) if last >= req_id => {
                let pos = u.partition_point(|&(r, _)| r < req_id);
                u.insert(pos, (req_id, t));
            }
            _ => u.push((req_id, t)),
        }
    }

    /// Removes and returns the issue time of `(unit, req_id)`, if that PR
    /// is still outstanding.
    #[inline]
    fn resolve(&mut self, unit: u16, req_id: u32) -> Option<SimTime> {
        let u = self.units.get_mut(unit as usize)?;
        let pos = u.binary_search_by_key(&req_id, |&(r, _)| r).ok()?;
        Some(u.remove(pos).1)
    }

    /// Forgets every outstanding PR of `unit` (watchdog abandon); returns
    /// how many were dropped.
    fn abandon_unit(&mut self, unit: u16) -> u64 {
        let u = &mut self.units[unit as usize];
        let n = u.len() as u64;
        u.clear();
        n
    }

    /// Outstanding PRs across all units.
    pub(crate) fn len(&self) -> usize {
        self.units.iter().map(Vec::len).sum()
    }

    /// Whether no PR is outstanding.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.units.iter().all(Vec::is_empty)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UnitState {
    /// No command assigned.
    Idle,
    /// Scanning idxs (a ClientProcess event is pending).
    Running,
    /// Pending PR Table full; waiting for a response to free an entry.
    Stalled,
    /// Stream fully scanned; waiting for outstanding responses.
    Draining,
}

pub(crate) struct ClientUnit {
    pub(crate) rig: RigClient,
    pub(crate) state: UnitState,
    /// Current command's idx range within the node's stream.
    pub(crate) cmd: Option<(usize, usize)>,
    pub(crate) pos: usize,
    /// Bumped on every command assignment and watchdog restart; stale
    /// watchdog events check it and stand down.
    pub(crate) generation: u64,
    /// Properties delivered for the current command (discarded on a
    /// watchdog failure, per §7.1).
    pub(crate) received_this_cmd: Vec<u32>,
    /// Watchdog restarts suffered by this unit (lifetime total).
    pub(crate) retries: u64,
    /// Watchdog restarts of the *current* command; drives the exponential
    /// backoff and the escalation ladder, reset on every assignment.
    pub(crate) cmd_retries: u32,
}

/// One host + SNIC pair: the component bound to `Port::Node(id)`.
pub(crate) struct NodeState {
    /// This node's id (its rank and its NIC's element id).
    pub(crate) id: u32,
    pub(crate) units: Vec<ClientUnit>,
    pub(crate) filter: IdxFilter,
    /// The NIC egress handler pipeline (terminal concat stage only).
    pub(crate) pipeline: Pipeline,
    pub(crate) concat_sched: Option<SimTime>,
    pub(crate) server_busy: SimTime,
    pub(crate) pcie_h2d: Link,
    pub(crate) pcie_d2h: Link,
    pub(crate) host_busy: SimTime,
    /// Next unscheduled position in the node's idx stream (commands are
    /// carved from here at issue time, so batch sizes may vary).
    pub(crate) stream_pos: usize,
    pub(crate) active_cmds: usize,
    /// Adaptive concurrency control (§9.4): how many commands may run at
    /// once. Cross-unit duplicate responses shrink it; clean completions
    /// grow it.
    pub(crate) concurrency_limit: usize,
    /// Duplicate/response counters at the last adaptation step.
    pub(crate) last_dup: u64,
    pub(crate) last_resp: u64,
    pub(crate) finish: Option<SimTime>,
    /// Remote idxs this node's stream references (fixed-word bitset; the
    /// functional check compares it against `received`).
    pub(crate) needed: IdxFilter,
    /// Distinct idxs a response has arrived for (bitset, same layout as
    /// `needed` so equality is a word-wise compare).
    pub(crate) received: IdxFilter,
    /// Issue timestamp of each outstanding PR — the PR round-trip-latency
    /// probe and the conservation ledger's outstanding set.
    pub(crate) issue_times: IssueLedger,
    pub(crate) responses: u64,
    pub(crate) dup_responses: u64,
    pub(crate) rx_payload: u64,
    /// SNIC client cycle period, scaled by this node's straggler slowdown.
    pub(crate) cycle: SimTime,
    /// Server PR service time, scaled by this node's straggler slowdown.
    pub(crate) serve: SimTime,
    /// §7.1 escalation: once set, this node's client units stop using
    /// concatenation and the cached path and emit bare singleton PRs.
    pub(crate) degraded_mode: bool,
    /// Pooled per-event output batch (time-stamped packets bound for the
    /// fabric), reused across events so the hot path never allocates.
    pub(crate) out_buf: Vec<(SimTime, ConcatPacket)>,
    /// Pooled unit-id batches for the response path (stalled units to
    /// wake, drained units to complete).
    pub(crate) wake_buf: Vec<u16>,
    pub(crate) done_buf: Vec<u16>,
}

/// Builds every node component of the cluster from the configuration and
/// the workload (one per workload rank).
pub(crate) fn build_nodes(cfg: &ClusterConfig, wl: &CommWorkload) -> Vec<NodeState> {
    let snic_clock = cfg.snic_clock();
    let cycle = snic_clock.period();
    let payload = cfg.payload_bytes();
    // Server PR service: one PR per cycle across the server units,
    // floored by the PCIe fetch bandwidth for the property payload.
    let per_unit = cycle.as_ps() as f64 / cfg.snic.server_units() as f64;
    let fetch_ps = payload as f64 * 8.0 / (cfg.snic.pcie_gbps * 8e9) * 1e12;
    let server_svc = SimTime::from_ps_f64(per_unit.max(fetch_ps));

    let nic_concat_cfg = ConcatConfig {
        headers: cfg.headers,
        mtu: cfg.snic.mtu,
        delay: cfg.nic_concat_delay(),
        enabled: cfg.mechanisms.nic_concat,
    };

    (0..wl.nodes())
        .map(|p| {
            let stream = wl.stream(p);
            let mut needed = IdxFilter::new(wl.n_cols());
            // Node `p` owns exactly `partition().range(p)`; everything
            // else in its stream is a remote property it needs.
            needed.insert_remote(stream, wl.partition().range(p));
            // Straggler slowdown stretches this node's SNIC cycle and
            // server service times.
            let slowdown = cfg
                .faults
                .degraded
                .iter()
                .find(|d| d.node == p)
                .map_or(1.0, |d| d.compute_slowdown);
            NodeState {
                id: p,
                units: (0..cfg.snic.client_units())
                    .map(|tid| ClientUnit {
                        rig: RigClient::with_idx_domain(
                            p,
                            tid as u16,
                            cfg.snic.pending_entries,
                            wl.n_cols(),
                        ),
                        state: UnitState::Idle,
                        cmd: None,
                        pos: 0,
                        generation: 0,
                        received_this_cmd: Vec::new(),
                        retries: 0,
                        cmd_retries: 0,
                    })
                    .collect(),
                filter: IdxFilter::new(wl.n_cols()),
                pipeline: Pipeline::for_nic(concat_point(nic_concat_cfg, cfg.concat_impl)),
                concat_sched: None,
                server_busy: SimTime::ZERO,
                pcie_h2d: Link::new(cfg.pcie_link()),
                pcie_d2h: Link::new(cfg.pcie_link()),
                host_busy: SimTime::ZERO,
                stream_pos: 0,
                active_cmds: 0,
                concurrency_limit: cfg.snic.client_units() as usize,
                last_dup: 0,
                last_resp: 0,
                finish: if stream.is_empty() {
                    Some(SimTime::ZERO)
                } else {
                    None
                },
                needed,
                received: IdxFilter::new(wl.n_cols()),
                issue_times: IssueLedger::new(cfg.snic.client_units() as usize),
                responses: 0,
                dup_responses: 0,
                rx_payload: 0,
                cycle: SimTime::from_ps_f64(cycle.as_ps() as f64 * slowdown),
                serve: SimTime::from_ps_f64(server_svc.as_ps() as f64 * slowdown),
                degraded_mode: false,
                out_buf: Vec::new(),
                wake_buf: Vec::new(),
                done_buf: Vec::new(),
            }
        })
        .collect()
}

impl Component for NodeState {
    fn handle(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx<'_, '_, '_>) {
        match ev {
            Event::HostIssue { .. } => self.host_issue(now, ctx),
            Event::ClientProcess { unit, .. } => self.client_process(now, unit, ctx),
            Event::NicConcatExpire { .. } => self.concat_expire(now, ctx),
            Event::PacketAtNic { pkt, .. } => self.packet_at_nic(now, pkt, ctx),
            Event::Watchdog {
                unit, generation, ..
            } => self.watchdog(now, unit, generation, ctx),
            // simaudit:allow(no-lib-panic): the port-wiring lint pass proves this arm unreachable
            _ => unreachable!("event routed to the wrong port"),
        }
    }
}

impl NodeState {
    /// (Re-)schedules the earliest pending concatenator expiry.
    fn arm_concat(&mut self, sched: &mut Scheduler<'_, Event>) {
        if let Some(t) = self.pipeline.next_concat_expiry() {
            let t = t.max(sched.now());
            if self.concat_sched.is_none_or(|cur| t < cur) {
                self.concat_sched = Some(t);
                sched.schedule(t, Event::NicConcatExpire { node: self.id });
            }
        }
    }

    /// Flushes expired NIC concatenation queues onto the uplink as one
    /// scheduler batch.
    fn concat_expire(&mut self, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        self.concat_sched = None;
        let mut out = std::mem::take(&mut self.out_buf);
        self.pipeline.flush_concat(now, &mut out);
        ctx.fabric.send_batch_from_nic(self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
    }

    fn host_issue(&mut self, now: SimTime, ctx: &mut Ctx<'_, '_, '_>) {
        let cfg = ctx.cfg;
        let wl = ctx.wl;
        let batch = cfg.batch_size.max(1);
        let host_cmd = SimTime::from_ns(cfg.host_cmd_ns);
        let idx_buffer = cfg.snic.idx_buffer_bytes as u64;
        let stream_len = wl.stream(self.id).len();
        if self.stream_pos >= stream_len {
            return;
        }
        if cfg.adaptive_batch && self.active_cmds >= self.concurrency_limit {
            return; // re-triggered when a command completes
        }
        let Some(unit_id) = self.units.iter().position(|u| u.state == UnitState::Idle) else {
            return; // re-triggered when a command completes
        };
        // The host core serializes command issues.
        let t_cmd = self.host_busy.max(now) + host_cmd;
        self.host_busy = t_cmd;
        let start = self.stream_pos;
        let end = (start + batch).min(stream_len);
        self.stream_pos = end;
        self.active_cmds += 1;
        #[cfg(feature = "trace")]
        ctx.shared.trace(
            TrackId::node(self.id, lane::HOST),
            TraceEvent::CmdIssued {
                unit: unit_id as u16,
                idxs: (end - start) as u32,
            },
        );
        // Idx batch DMA: the unit starts once the first Idx Buffer chunk
        // has crossed PCIe; the full batch is charged to the link.
        let bytes = (end - start) as u64 * 4;
        let first_chunk = bytes.min(idx_buffer);
        self.pcie_h2d.transmit(t_cmd, bytes);
        let start_t =
            t_cmd + ctx.shared.pcie_lat + self.pcie_h2d.params().serialization(first_chunk);
        let unit = &mut self.units[unit_id];
        unit.cmd = Some((start, end));
        unit.pos = start;
        unit.state = UnitState::Running;
        unit.generation += 1;
        unit.received_this_cmd.clear();
        unit.cmd_retries = 0;
        let generation = unit.generation;
        ctx.sched.schedule(
            start_t,
            Event::ClientProcess {
                node: self.id,
                unit: unit_id as u16,
            },
        );
        if cfg.faults.watchdog_ns > 0 {
            ctx.sched.schedule(
                start_t + SimTime::from_ns(cfg.faults.watchdog_ns),
                Event::Watchdog {
                    node: self.id,
                    unit: unit_id as u16,
                    generation,
                },
            );
        }
        // Chain: keep issuing while units are free and commands remain.
        let below_limit = !cfg.adaptive_batch || self.active_cmds < self.concurrency_limit;
        if self.stream_pos < stream_len
            && below_limit
            && self.units.iter().any(|u| u.state == UnitState::Idle)
        {
            ctx.sched
                .schedule(t_cmd, Event::HostIssue { node: self.id });
        }
    }

    fn client_process(&mut self, now: SimTime, unit_id: u16, ctx: &mut Ctx<'_, '_, '_>) {
        let cfg = ctx.cfg;
        let wl = ctx.wl;
        let chunk = cfg.snic.idx_chunk();
        let mechanisms = cfg.mechanisms;
        let headers = cfg.headers;
        let cycle = self.cycle;
        let degraded_mode = self.degraded_mode;
        let id = self.id;
        let stream = wl.stream(id);
        let partition = wl.partition();
        // Scatter-side reduction: every issued read also owes the owner a
        // partial-sum contribution for its output row.
        let reduce_on = cfg.reduce.enabled;
        let payload = ctx.shared.payload;
        let mut out = std::mem::take(&mut self.out_buf);
        let mut command_done = false;
        let mut degraded_sent = 0u64;

        {
            let topo = ctx.fabric.topology();
            let NodeState {
                units,
                filter,
                pipeline,
                issue_times,
                ..
            } = self;
            let unit = &mut units[unit_id as usize];
            let Some((_, end)) = unit.cmd else {
                return; // spurious wakeup after completion
            };
            debug_assert!(matches!(unit.state, UnitState::Running));
            let mut cycles: u64 = 0;
            let mut processed = 0usize;
            // One range lookup for the whole chunk: node `id` owns exactly
            // this contiguous idx range, so locality is two compares.
            let local = partition.range(id);
            while processed < chunk && unit.pos < end {
                let idx = stream[unit.pos];
                if local.contains(&idx) {
                    // Local idxs dominate real streams (>90% under 1-D
                    // partitioning), and each one only costs a scan cycle
                    // and a stat tick — consume the whole run here instead
                    // of round-tripping the RIG pipeline per idx.
                    let stop = unit.pos + (chunk - processed).min(end - unit.pos);
                    let run = stream[unit.pos..stop]
                        .iter()
                        .take_while(|i| local.contains(i))
                        .count();
                    unit.pos += run;
                    cycles += run as u64;
                    processed += run;
                    unit.rig.tally_local(run as u64);
                    continue;
                }
                match unit.rig.process_idx(
                    idx,
                    false,
                    mechanisms.coalesce,
                    mechanisms.filter,
                    filter,
                ) {
                    IdxOutcome::Stalled => {
                        unit.state = UnitState::Stalled;
                        break;
                    }
                    IdxOutcome::Issued(pr) => {
                        cycles += 1;
                        processed += 1;
                        unit.pos += 1;
                        let t_pr = now + cycle * cycles;
                        #[cfg(any(debug_assertions, feature = "audit"))]
                        ctx.shared.audit.issue("pr");
                        issue_times.record(unit_id, pr.req_id, t_pr);
                        let dest = partition.owner(idx);
                        let prc = PrCtx {
                            sw: id,
                            pkt_dest: dest,
                            payload,
                            topo,
                            partition,
                        };
                        if degraded_mode {
                            // §7.1 escalation: bypass concatenation and
                            // the cached switch path entirely — one bare
                            // packet per PR, forwarded verbatim.
                            degraded_sent += 1;
                            out.push((
                                t_pr,
                                ConcatPacket::degraded_singleton(
                                    &headers,
                                    dest,
                                    PrKind::Read,
                                    pr,
                                    0,
                                ),
                            ));
                        } else {
                            pipeline.run(t_pr, pr, PrKind::Read, &prc, &mut out);
                        }
                        if reduce_on {
                            // One contribution per issued read, toward the
                            // row owner (`dest` is the reduction root).
                            let v = partial_contrib_value(id, idx);
                            let contrib = Pr::partial(id, idx, 1, v);
                            ctx.shared.reduce.contribs_issued += 1;
                            ctx.shared.reduce.value_issued =
                                ctx.shared.reduce.value_issued.wrapping_add(v);
                            if degraded_mode {
                                out.push((
                                    t_pr,
                                    ConcatPacket::degraded_singleton(
                                        &headers,
                                        dest,
                                        PrKind::Partial,
                                        contrib,
                                        payload,
                                    ),
                                ));
                            } else {
                                pipeline.run(t_pr, contrib, PrKind::Partial, &prc, &mut out);
                            }
                        }
                    }
                    IdxOutcome::Local | IdxOutcome::Filtered | IdxOutcome::Coalesced => {
                        cycles += 1;
                        processed += 1;
                        unit.pos += 1;
                    }
                }
            }
            let t_end = now + cycle * cycles.max(1);
            if unit.state == UnitState::Stalled {
                // Woken by the next response.
            } else if unit.pos >= end {
                if unit.rig.outstanding() == 0 {
                    command_done = true;
                } else {
                    unit.state = UnitState::Draining;
                }
            } else {
                ctx.sched.schedule(
                    t_end,
                    Event::ClientProcess {
                        node: self.id,
                        unit: unit_id,
                    },
                );
            }
        }

        ctx.shared.faults.degraded_prs += degraded_sent;
        ctx.fabric.send_batch_from_nic(self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
        if command_done {
            self.complete_command(now, unit_id, ctx);
        }
    }

    fn complete_command(&mut self, now: SimTime, unit_id: u16, ctx: &mut Ctx<'_, '_, '_>) {
        let pcie_lat = ctx.shared.pcie_lat;
        let adaptive = ctx.cfg.adaptive_batch;
        let unit = &mut self.units[unit_id as usize];
        if unit.cmd.is_none() {
            // Already completed (e.g. two duplicate responses for this
            // unit landed in one packet with coalescing disabled).
            return;
        }
        unit.cmd = None;
        unit.state = UnitState::Idle;
        unit.generation += 1;
        unit.received_this_cmd.clear();
        unit.cmd_retries = 0;
        self.active_cmds -= 1;
        #[cfg(feature = "trace")]
        ctx.shared.trace(
            TrackId::node(self.id, lane::HOST),
            TraceEvent::CmdCompleted { unit: unit_id },
        );
        if adaptive {
            // §9.4 adaptive control: cross-unit duplicate responses mean
            // concurrent commands are re-fetching each other's columns —
            // halve the concurrency (AIMD); clean intervals grow it.
            let dup = self.dup_responses - self.last_dup;
            let resp = self.responses - self.last_resp;
            self.last_dup = self.dup_responses;
            self.last_resp = self.responses;
            if resp > 0 {
                // Thresholds are deliberately permissive: duplicates are
                // only worth trading concurrency for when they dominate
                // the response stream (their absolute byte cost is small
                // for high-reuse matrices with small unique sets).
                let rate = dup as f64 / resp as f64;
                if rate > 0.25 {
                    self.concurrency_limit = (self.concurrency_limit / 2).max(2);
                } else if rate < 0.05 {
                    self.concurrency_limit = (self.concurrency_limit + 1).min(self.units.len());
                }
            }
        }
        if self.stream_pos < ctx.wl.stream(self.id).len() {
            // Completion notification crosses PCIe before the host reacts.
            ctx.sched
                .schedule(now + pcie_lat, Event::HostIssue { node: self.id });
        } else if self.active_cmds == 0 {
            self.finish = Some(self.finish.map_or(now, |f| f.max(now)));
        }
    }

    fn packet_at_nic(&mut self, now: SimTime, pkt: ConcatPacket, ctx: &mut Ctx<'_, '_, '_>) {
        match pkt.kind {
            PrKind::Read => self.serve_reads(now, pkt, ctx),
            PrKind::Response => self.accept_responses(now, pkt, ctx),
            PrKind::Partial => self.accept_partials(now, pkt, ctx),
        }
    }

    /// Server path: fetch each requested property over PCIe and emit a
    /// response PR.
    fn serve_reads(&mut self, now: SimTime, pkt: ConcatPacket, ctx: &mut Ctx<'_, '_, '_>) {
        debug_assert_eq!(pkt.dest, self.id, "read packet delivered to wrong node");
        let payload = ctx.shared.payload;
        let pcie_lat = ctx.shared.pcie_lat;
        let headers = ctx.cfg.headers;
        let degraded = pkt.degraded;
        let mut out = std::mem::take(&mut self.out_buf);
        {
            let topo = ctx.fabric.topology();
            let partition = ctx.wl.partition();
            let svc = self.serve;
            for &pr in &pkt.prs {
                let t = self.server_busy.max(now) + svc;
                self.server_busy = t;
                self.pcie_h2d.transmit(t, payload as u64);
                let t_resp = t + pcie_lat;
                if degraded {
                    // Degraded requests get degraded responses: same bare
                    // forward-only path back to the requester.
                    out.push((
                        t_resp,
                        ConcatPacket::degraded_singleton(
                            &headers,
                            pr.src_node,
                            PrKind::Response,
                            pr,
                            payload,
                        ),
                    ));
                } else {
                    let prc = PrCtx {
                        sw: self.id,
                        pkt_dest: pr.src_node,
                        payload,
                        topo,
                        partition,
                    };
                    self.pipeline
                        .run(t_resp, pr, PrKind::Response, &prc, &mut out);
                }
            }
        }
        self.pipeline.concat_mut().recycle(pkt.prs);
        ctx.fabric.send_batch_from_nic(self.id, &mut out, ctx.sched);
        self.out_buf = out;
        self.arm_concat(ctx.sched);
    }

    /// Client path: deliver arrived properties, clear pending entries, set
    /// filter bits, wake stalled units, complete commands.
    fn accept_responses(&mut self, now: SimTime, pkt: ConcatPacket, ctx: &mut Ctx<'_, '_, '_>) {
        debug_assert_eq!(pkt.dest, self.id, "response packet delivered to wrong node");
        #[cfg(feature = "trace")]
        let id = self.id;
        let payload = ctx.shared.payload as u64;
        let mut wake = std::mem::take(&mut self.wake_buf);
        let mut completed = std::mem::take(&mut self.done_buf);
        {
            for &pr in &pkt.prs {
                let NodeState {
                    units,
                    filter,
                    received,
                    issue_times,
                    ..
                } = self;
                if let Some(t_issue) = issue_times.resolve(pr.src_tid, pr.req_id) {
                    ctx.shared
                        .pr_latency
                        .record(now.saturating_sub(t_issue).as_ps());
                    #[cfg(any(debug_assertions, feature = "audit"))]
                    ctx.shared.audit.resolve("pr");
                    #[cfg(feature = "trace")]
                    ctx.shared.trace(
                        TrackId::node(id, lane::RIG_BASE + pr.src_tid as u32),
                        TraceEvent::PrResolved { idx: pr.idx },
                    );
                } else {
                    // The watchdog already abandoned this PR (its ledger
                    // entry is closed); the data is still good, so deliver
                    // it, but don't resolve or time it.
                    ctx.shared.faults.stale_responses += 1;
                    #[cfg(feature = "trace")]
                    ctx.shared.trace(
                        TrackId::node(id, lane::RIG_BASE + pr.src_tid as u32),
                        TraceEvent::StaleResponse { idx: pr.idx },
                    );
                }
                let unit = &mut units[pr.src_tid as usize];
                unit.rig.complete(pr.idx, filter);
                if unit.cmd.is_some() {
                    unit.received_this_cmd.push(pr.idx);
                }
                if !received.insert(pr.idx) {
                    self.dup_responses += 1;
                }
                self.responses += 1;
                self.rx_payload += payload;
                self.pcie_d2h.transmit(now, payload);
                let unit = &mut self.units[pr.src_tid as usize];
                match unit.state {
                    UnitState::Stalled => {
                        unit.state = UnitState::Running;
                        wake.push(pr.src_tid);
                    }
                    UnitState::Draining if unit.rig.outstanding() == 0 => {
                        completed.push(pr.src_tid);
                    }
                    _ => {}
                }
            }
        }
        self.pipeline.concat_mut().recycle(pkt.prs);
        for u in wake.drain(..) {
            ctx.sched.schedule(
                now,
                Event::ClientProcess {
                    node: self.id,
                    unit: u,
                },
            );
        }
        self.wake_buf = wake;
        for &u in &completed {
            self.complete_command(now, u, ctx);
        }
        completed.clear();
        self.done_buf = completed;
    }

    /// Root path of the reduction extension: partial-sum contributions for
    /// rows this node owns arrive (merged or not), are accounted for
    /// conservation, and cross PCIe into host memory for the final fold.
    fn accept_partials(&mut self, now: SimTime, pkt: ConcatPacket, ctx: &mut Ctx<'_, '_, '_>) {
        debug_assert_eq!(pkt.dest, self.id, "partial packet delivered to wrong node");
        let payload = ctx.shared.payload as u64;
        let r = &mut ctx.shared.reduce;
        r.partial_prs_at_root += pkt.prs.len() as u64;
        r.root_wire_bytes += pkt.wire_bytes;
        for pr in &pkt.prs {
            r.contribs_delivered += pr.partial_contribs();
            r.value_delivered = r.value_delivered.wrapping_add(pr.partial_value());
        }
        self.pcie_d2h.transmit(now, pkt.prs.len() as u64 * payload);
        self.pipeline.concat_mut().recycle(pkt.prs);
    }

    /// §7.1 recovery: the RIG operation timed out. Abandon outstanding
    /// PRs, discard the partial gather (drop its filter bits and received
    /// records), and restart the command from its first idx with an
    /// exponentially backed-off, jittered watchdog. The escalation ladder:
    /// after `max_retries` restarts the node enters degraded mode
    /// (singleton PRs, forward-only switching); after twice that budget
    /// the command is abandoned outright so the run terminates instead of
    /// hanging on an unreachable destination.
    fn watchdog(&mut self, now: SimTime, unit_id: u16, generation: u64, ctx: &mut Ctx<'_, '_, '_>) {
        let base_ns = ctx.cfg.faults.watchdog_ns;
        let max_retries = ctx.cfg.faults.max_retries.max(1);
        let multiplier = ctx.cfg.faults.backoff_multiplier;
        let jitter_frac = ctx.cfg.faults.backoff_jitter;

        let cmd_retries;
        {
            let unit = &mut self.units[unit_id as usize];
            if unit.generation != generation {
                return; // the command completed; stand down
            }
            if unit.cmd.is_none() {
                return; // spurious wakeup after completion
            }
            unit.retries += 1;
            unit.cmd_retries += 1;
            cmd_retries = unit.cmd_retries;
        }

        // Abandon the unit's outstanding PRs: any response that still
        // arrives is stale and must not resolve the ledger twice.
        let n_stale = self.issue_times.abandon_unit(unit_id);
        ctx.shared.faults.abandoned_prs += n_stale;
        #[cfg(any(debug_assertions, feature = "audit"))]
        ctx.shared.audit.abandon_n("pr", n_stale);
        #[cfg(feature = "trace")]
        ctx.shared.trace(
            TrackId::node(self.id, lane::RIG_BASE + unit_id as u32),
            TraceEvent::WatchdogRetry {
                retry: cmd_retries,
                abandoned: n_stale as u32,
            },
        );

        // Final escalation rung: the retry budget is exhausted twice over
        // (degraded mode included) — the destination is presumed gone.
        // Keep whatever data arrived, clear the pending table, and retire
        // the command; the functional check will flag the missing columns.
        if cmd_retries > 2 * max_retries {
            let unit = &mut self.units[unit_id as usize];
            unit.received_this_cmd.clear();
            unit.rig.reset_pending();
            ctx.shared.faults.abandoned_commands += 1;
            self.complete_command(now, unit_id, ctx);
            return;
        }

        // First escalation rung: out of direct retries — fall back to
        // degraded direct PRs that skip every mechanism that kept failing.
        if cmd_retries >= max_retries {
            self.degraded_mode = true;
        }

        let new_generation;
        {
            let NodeState {
                units,
                filter,
                received,
                ..
            } = self;
            let unit = &mut units[unit_id as usize];
            let Some((start, _)) = unit.cmd else {
                return;
            };
            for idx in unit.received_this_cmd.drain(..) {
                filter.remove(idx);
                received.remove(idx);
            }
            unit.rig.reset_pending();
            unit.pos = start;
            unit.generation += 1;
            new_generation = unit.generation;
            let was_running = unit.state == UnitState::Running;
            unit.state = UnitState::Running;
            if !was_running {
                ctx.sched.schedule(
                    now,
                    Event::ClientProcess {
                        node: self.id,
                        unit: unit_id,
                    },
                );
            }
        }

        // Exponential backoff with jitter: doubling (by default) spreads
        // retries past transient outages; the jitter desynchronizes units
        // that all timed out on the same failure.
        let exponent = cmd_retries.saturating_sub(1).min(16) as i32;
        let jitter = 1.0 + jitter_frac * ctx.shared.jitter_rng.next_f64();
        let interval_ns = (base_ns as f64 * multiplier.powi(exponent) * jitter) as u64;
        let interval = SimTime::from_ns(interval_ns.max(base_ns));
        ctx.shared.faults.backoff_wait += interval.saturating_sub(SimTime::from_ns(base_ns));
        ctx.sched.schedule(
            now + interval,
            Event::Watchdog {
                node: self.id,
                unit: unit_id,
                generation: new_generation,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::driver::{Ctx, Shared};
    use crate::sim::events::Port;
    use crate::sim::fabric::Fabric;
    use netsparse_desim::Engine;
    use netsparse_netsim::Topology;
    use netsparse_sparse::Partition1D;

    fn topo() -> Topology {
        Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        }
    }

    /// The node component runs its full command lifecycle in isolation —
    /// no rack, no cluster driver. A stream referencing only the node's
    /// own columns completes entirely on-NIC: every event the node emits
    /// routes back to itself, nothing reaches the network, and the node
    /// finishes with all units idle.
    #[test]
    fn local_only_command_lifecycle_in_isolation() {
        let cfg = ClusterConfig::mini(topo(), 16);
        let part = Partition1D::even(8 * 16, 8);
        let mut streams: Vec<Vec<u32>> = vec![vec![]; 8];
        streams[0] = vec![0, 1, 2, 3, 0, 1]; // node 0 owns cols 0..16
        let wl = CommWorkload::from_streams(part, vec![16; 8], streams);

        let mut nodes = build_nodes(&cfg, &wl);
        let node = &mut nodes[0];
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);

        let mut engine: Engine<Event> = Engine::new();
        engine.schedule(SimTime::ZERO, Event::HostIssue { node: 0 });
        engine.run(|now, ev, sched| {
            assert_eq!(ev.port(), Port::Node(0), "event escaped the node");
            let mut ctx = Ctx {
                cfg: &cfg,
                wl: &wl,
                fabric: &mut fabric,
                shared: &mut shared,
                sched,
            };
            node.handle(now, ev, &mut ctx);
        });

        assert!(node.finish.is_some(), "local-only command must complete");
        assert_eq!(node.active_cmds, 0);
        assert_eq!(node.stream_pos, 6);
        assert!(node.units.iter().all(|u| u.state == UnitState::Idle));
        assert!(node.issue_times.is_empty());
        assert_eq!(node.responses, 0, "no PR may cross the fabric");
        let scanned: u64 = node.units.iter().map(|u| u.rig.stats().local).sum();
        assert_eq!(scanned, 6);
    }

    /// Stalling and draining: with a single pending entry and remote refs,
    /// the unit transitions Running -> Stalled/Draining and only completes
    /// once responses arrive. Responses are injected by hand — still no
    /// rack or fabric forwarding involved.
    #[test]
    fn remote_refs_drain_only_after_responses() {
        let mut cfg = ClusterConfig::mini(topo(), 16);
        cfg.mechanisms.nic_concat = false; // singleton packets, no expiry
        let part = Partition1D::even(8 * 16, 8);
        let mut streams: Vec<Vec<u32>> = vec![vec![]; 8];
        streams[0] = vec![16, 17]; // owned by node 1
        let wl = CommWorkload::from_streams(part, vec![16; 8], streams);

        let mut nodes = build_nodes(&cfg, &wl);
        let node = &mut nodes[0];
        let mut fabric = Fabric::try_new(&cfg).unwrap();
        let mut shared = Shared::new(&cfg);

        let mut engine: Engine<Event> = Engine::new();
        engine.schedule(SimTime::ZERO, Event::HostIssue { node: 0 });
        let mut outbound: Vec<netsparse_snic::Pr> = Vec::new();
        engine.run(|now, ev, sched| {
            // Intercept the node's own uplink sends: the fabric would
            // schedule PacketAtSwitch; deliver responses directly instead.
            match ev.port() {
                Port::Node(n) => {
                    assert_eq!(n, 0);
                    let mut ctx = Ctx {
                        cfg: &cfg,
                        wl: &wl,
                        fabric: &mut fabric,
                        shared: &mut shared,
                        sched,
                    };
                    node.handle(now, ev, &mut ctx);
                }
                Port::Rack(_) => {
                    let Event::PacketAtSwitch { pkt, .. } = ev else {
                        unreachable!();
                    };
                    outbound.extend(pkt.prs.iter().copied());
                    // Answer every read with an immediate response packet.
                    for pr in pkt.prs {
                        let resp = ConcatPacket::degraded_singleton(
                            &cfg.headers,
                            pr.src_node,
                            PrKind::Response,
                            pr,
                            cfg.payload_bytes(),
                        );
                        sched.schedule(now, Event::PacketAtNic { node: 0, pkt: resp });
                    }
                }
                Port::Fabric => unreachable!("no fault schedule in this test"),
            }
        });

        assert_eq!(outbound.len(), 2, "both remote refs must issue PRs");
        assert!(node.finish.is_some());
        assert_eq!(node.responses, 2);
        assert!(node.issue_times.is_empty(), "all PRs resolved");
        assert!(node.units.iter().all(|u| u.rig.outstanding() == 0));
    }
}
