//! The generic simulation driver: component wiring, shared state, and the
//! single event loop behind [`simulate`] and `simulate_traced`.
//!
//! The driver owns the component instances (one [`NodeState`] per rank,
//! one [`RackState`] per switch), the transport [`Fabric`], and the
//! [`Shared`] cross-cutting state (global latencies, the loss process,
//! fault counters, the PR-latency reservoir, and — when compiled in — the
//! model auditor and the structured tracer). Each delivered event is
//! routed by [`Event::port`] to exactly one component's
//! [`Component::handle`]; the component sees its own state as `&mut self`
//! and everything else through [`Ctx`], so a handler *cannot* reach into
//! another component's state — the port map is the complete coupling
//! surface.
//!
//! Auditing and tracing are hooks, not forks: the same driver body runs
//! with or without them (they compile to nothing when the features are
//! off), which is what lets [`simulate`] and `simulate_traced` share every
//! line of the event loop.

use netsparse_desim::{
    Engine, Histogram, Liveness, LossProcess, Reservoir, Scheduler, SimTime, SplitMix64,
};
use netsparse_netsim::Element;
use netsparse_snic::{ConcatPacket, PrKind};
use netsparse_sparse::CommWorkload;

#[cfg(feature = "trace")]
use netsparse_desim::trace::{lane, TraceConfig, TraceEvent, TraceReport, Tracer, TrackId};

use crate::config::ClusterConfig;
use crate::metrics::{FaultReport, HotLink, NodeReport, ReduceReport, SimReport};
use crate::sim::error::SimError;
use crate::sim::events::{Event, FaultAction, Port};
use crate::sim::fabric::Fabric;
use crate::sim::node::{build_nodes, NodeState};
use crate::sim::rack::{build_racks, RackState};

/// A component of the cluster model: handles exactly the events addressed
/// to its port, touching only its own state and the shared context.
pub(crate) trait Component {
    /// Handles one event delivered at `now`.
    fn handle(&mut self, now: SimTime, ev: Event, ctx: &mut Ctx<'_, '_, '_>);
}

/// Everything a component may touch besides its own state: the (immutable)
/// configuration and workload, the transport fabric, the shared
/// cross-cutting state, and the scheduler for follow-up events.
pub(crate) struct Ctx<'r, 'w, 'q> {
    pub(crate) cfg: &'w ClusterConfig,
    pub(crate) wl: &'w CommWorkload,
    pub(crate) fabric: &'r mut Fabric,
    pub(crate) shared: &'r mut Shared,
    pub(crate) sched: &'r mut Scheduler<'q, Event>,
}

/// Cross-cutting run state shared by every component: precomputed global
/// latencies, the packet-loss process, fault accounting, the PR round-trip
/// reservoir, and the (feature-gated) audit/trace hooks.
pub(crate) struct Shared {
    /// Property payload bytes (`k * 4`).
    pub(crate) payload: u32,
    /// Baseline switch traversal latency.
    pub(crate) switch_lat: SimTime,
    /// One-way PCIe latency.
    pub(crate) pcie_lat: SimTime,
    /// The configured packet-loss process (applied per switch traversal).
    pub(crate) loss: LossProcess,
    /// Cached `loss.is_lossy()`: skips the RNG entirely when loss is off.
    pub(crate) loss_active: bool,
    /// Deterministic jitter source for watchdog backoff.
    pub(crate) jitter_rng: SplitMix64,
    /// Fault/recovery accounting, folded into the report.
    pub(crate) faults: FaultReport,
    /// Reduction conservation counters (contributions issued, delivered at
    /// roots, dropped by faults), folded into the report's `ReduceReport`.
    pub(crate) reduce: ReduceCounters,
    /// Reservoir sample of PR round-trip latencies (ps).
    pub(crate) pr_latency: Reservoir,
    /// Model-level conservation ledger ("pr" issued/resolved/abandoned).
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub(crate) audit: netsparse_desim::Auditor,
    /// Structured tracer, when one is attached.
    #[cfg(feature = "trace")]
    pub(crate) tracer: Option<Tracer>,
}

impl Shared {
    /// Precomputes the shared run state from the configuration.
    pub(crate) fn new(cfg: &ClusterConfig) -> Self {
        Shared {
            payload: cfg.payload_bytes(),
            switch_lat: cfg.switch_latency(),
            pcie_lat: cfg.pcie_latency(),
            loss: LossProcess::new(cfg.faults.loss, cfg.faults.seed ^ 0x10DD_F00D),
            loss_active: cfg.faults.loss.is_lossy(),
            jitter_rng: SplitMix64::new(cfg.faults.seed ^ 0x0BAC_C0FF),
            faults: FaultReport::default(),
            reduce: ReduceCounters::default(),
            pr_latency: Reservoir::new(4_096, 0x01A7_E0C1),
            #[cfg(any(debug_assertions, feature = "audit"))]
            audit: netsparse_desim::Auditor::new(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Records a trace event if a tracer is attached.
    #[cfg(feature = "trace")]
    #[inline]
    pub(crate) fn trace(&self, track: TrackId, event: TraceEvent) {
        if let Some(tr) = &self.tracer {
            tr.record(track, event);
        }
    }

    /// Closes the reduction conservation ledger for a dropped packet: any
    /// Partial contributions it carried are counted as dropped (so
    /// `issued == delivered + dropped` holds under faults too).
    #[inline]
    pub(crate) fn account_partial_drop(&mut self, pkt: &ConcatPacket) {
        if pkt.kind != PrKind::Partial {
            return;
        }
        for pr in &pkt.prs {
            self.reduce.contribs_dropped += pr.partial_contribs();
            self.reduce.value_dropped = self.reduce.value_dropped.wrapping_add(pr.partial_value());
        }
    }
}

/// Running reduction-conservation counters: contribution counts and
/// wrapping value sums at issue, delivery (root NICs) and drop sites, plus
/// root-side traffic totals. Folded into [`ReduceReport`] at report time.
#[derive(Debug, Default)]
pub(crate) struct ReduceCounters {
    pub(crate) contribs_issued: u64,
    pub(crate) contribs_delivered: u64,
    pub(crate) contribs_dropped: u64,
    pub(crate) value_issued: u32,
    pub(crate) value_delivered: u32,
    pub(crate) value_dropped: u32,
    pub(crate) partial_prs_at_root: u64,
    pub(crate) root_wire_bytes: u64,
}

/// The assembled cluster: components, fabric, shared state, and the
/// resolved fault schedule awaiting injection into the engine.
struct World<'a> {
    cfg: &'a ClusterConfig,
    wl: &'a CommWorkload,
    nodes: Vec<NodeState>,
    racks: Vec<RackState>,
    fabric: Fabric,
    shared: Shared,
    pending_transitions: Vec<(SimTime, FaultAction)>,
}

impl<'a> World<'a> {
    fn try_new(cfg: &'a ClusterConfig, wl: &'a CommWorkload) -> Result<Self, SimError> {
        let fabric = Fabric::try_new(cfg)?;
        if fabric.net.nodes() != wl.nodes() {
            return Err(SimError::WorkloadMismatch {
                workload_nodes: wl.nodes(),
                topology_nodes: fabric.net.nodes(),
            });
        }
        let pending_transitions = fabric.resolve_fault_schedule(cfg)?;
        let nodes = build_nodes(cfg, wl);
        let racks = build_racks(cfg, fabric.net.switches());
        Ok(World {
            cfg,
            wl,
            nodes,
            racks,
            fabric,
            shared: Shared::new(cfg),
            pending_transitions,
        })
    }

    /// Wires `tracer` into every instrumented component: RIG units, NIC
    /// and switch concatenation points, Property-Cache banks, and the
    /// *network* links (PCIe links are excluded so that the sum of
    /// `link_tx` bytes replays to exactly `total_link_bytes`).
    #[cfg(feature = "trace")]
    fn attach_tracer(&mut self, tracer: &Tracer) {
        for st in &mut self.nodes {
            let p = st.id;
            for u in &mut st.units {
                u.rig.set_tracer(tracer.clone());
            }
            st.pipeline.set_tracer(
                tracer,
                TrackId::node(p, lane::CONCAT),
                TrackId::node(p, lane::CACHE),
            );
        }
        for st in &mut self.racks {
            st.pipeline.set_tracer(
                tracer,
                TrackId::switch(st.id, lane::CONCAT),
                TrackId::switch(st.id, lane::CACHE),
            );
        }
        for (i, link) in self.fabric.links.iter_mut().enumerate() {
            link.set_tracer(tracer.clone(), TrackId::link(i as u32));
        }
        self.shared.tracer = Some(tracer.clone());
    }

    /// Routes one event to the component that owns its port.
    fn dispatch(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<'_, Event>) {
        // Advance the tracer's stamp clock once per delivered event; every
        // component record within this event carries this (monotone) time.
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.shared.tracer {
            tr.set_now(now);
        }
        let mut ctx = Ctx {
            cfg: self.cfg,
            wl: self.wl,
            fabric: &mut self.fabric,
            shared: &mut self.shared,
            sched,
        };
        match ev.port() {
            Port::Node(n) => self.nodes[n as usize].handle(now, ev, &mut ctx),
            Port::Rack(s) => self.racks[s as usize].handle(now, ev, &mut ctx),
            Port::Fabric => {
                let Event::FaultTransition { action } = ev else {
                    // simaudit:allow(no-lib-panic): the port-wiring lint pass proves this arm unreachable
                    unreachable!("only fault transitions address the fabric port");
                };
                ctx.fabric.apply_fault(ctx.shared, action);
            }
        }
    }

    /// Final invariant sweep, run before the report is assembled: cache
    /// accounting per switch, concatenators drained, link utilization
    /// physical, and (loss-free, retry-free runs only) PR conservation.
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn audit_end_of_run(&self, comm_end: SimTime) {
        for s in &self.racks {
            if let Some(p) = s.pipeline.pipes() {
                p.check_invariants();
            }
        }
        for n in &self.nodes {
            self.shared.audit.check(
                n.pipeline.concat().queued_prs() == 0,
                "NIC concatenators drained at end of run",
            );
            self.shared.audit.check(
                n.finish.is_none() || n.units.iter().all(|u| u.rig.outstanding() == 0),
                "no PR outstanding on a finished node",
            );
        }
        for s in &self.racks {
            self.shared.audit.check(
                s.pipeline.concat().queued_prs() == 0,
                "switch concatenators drained at end of run",
            );
            self.shared.audit.check(
                s.pipeline.reduce_in_flight() == 0,
                "reduce tables drained at end of run",
            );
        }
        if comm_end > SimTime::ZERO {
            for l in &self.fabric.links {
                self.shared.audit.check(
                    l.utilization(comm_end) <= 1.0 + 1e-9,
                    "link utilization within line rate",
                );
            }
        }
        let retries: u64 = self
            .nodes
            .iter()
            .flat_map(|n| n.units.iter())
            .map(|u| u.retries)
            .sum();
        if self.shared.audit.ledger("pr").is_some() {
            if !self.cfg.faults.needs_watchdog() && retries == 0 {
                // Fault-free runs must balance exactly: every issued PR
                // resolved, nothing abandoned.
                self.shared.audit.check_balanced("pr");
            } else {
                // Faulted runs conserve instead: issued PRs are resolved,
                // abandoned by the watchdog, or still tracked (a dropped
                // duplicate whose command completed without it).
                let outstanding: u64 = self.nodes.iter().map(|n| n.issue_times.len() as u64).sum();
                self.shared.audit.check_conserved("pr", outstanding);
            }
        }
    }

    fn into_report(mut self, events: u64, audit_digest: Option<u64>) -> SimReport {
        let k = self.cfg.k;
        self.shared.loss.finish();
        let mut fr = std::mem::take(&mut self.shared.faults);
        // Ledger entries still open at termination (dropped PRs whose
        // command completed without them) close the conservation law:
        // issued == resolved + abandoned + orphaned.
        fr.orphaned_prs = self.nodes.iter().map(|n| n.issue_times.len() as u64).sum();
        fr.dropped_loss = self.shared.loss.drops();
        fr.drop_bursts = self.shared.loss.burst_lengths().clone();
        fr.degraded_nodes = self.nodes.iter().filter(|n| n.degraded_mode).count() as u64;
        let mut prs_per_packet = Histogram::new();
        for n in &self.nodes {
            prs_per_packet.merge(n.pipeline.concat().prs_per_packet());
        }
        let mut cache_lookups = 0;
        let mut cache_hits = 0;
        let mut reduce_merges = 0;
        let mut reduce_bypassed = 0;
        for s in &self.racks {
            prs_per_packet.merge(s.pipeline.concat().prs_per_packet());
            if let Some(cs) = s.pipeline.pipes().map(|p| p.stats()) {
                cache_lookups += cs.lookups;
                cache_hits += cs.hits;
            }
            if let Some(rs) = s.pipeline.reduce_stats() {
                reduce_merges += rs.merged;
                reduce_bypassed += rs.bypassed;
            }
        }
        let reduce = if self.cfg.reduce.enabled {
            let rc = &self.shared.reduce;
            Some(ReduceReport {
                contribs_issued: rc.contribs_issued,
                contribs_delivered: rc.contribs_delivered,
                contribs_dropped: rc.contribs_dropped,
                value_issued: rc.value_issued,
                value_delivered: rc.value_delivered,
                value_dropped: rc.value_dropped,
                merges: reduce_merges,
                bypassed: reduce_bypassed,
                partial_prs_at_root: rc.partial_prs_at_root,
                root_wire_bytes: rc.root_wire_bytes,
            })
        } else {
            None
        };
        let total_link_bytes = self.fabric.links.iter().map(|l| l.bytes()).sum();
        let comm_end = self
            .nodes
            .iter()
            .filter_map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        #[cfg(any(debug_assertions, feature = "audit"))]
        self.audit_end_of_run(comm_end);
        let describe = |e: Element| match e {
            Element::Nic(n) => format!("nic {n}"),
            Element::Switch(s) => format!("switch {}", s.0),
        };
        let mut ranked: Vec<(u64, u32)> = self
            .fabric
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.bytes() > 0)
            .map(|(i, l)| (l.bytes(), i as u32))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let hot_links: Vec<HotLink> = ranked
            .into_iter()
            .take(5)
            .map(|(bytes, i)| {
                let (from, to) = self.fabric.net.link_ends(netsparse_netsim::LinkId(i));
                HotLink {
                    from: describe(from),
                    to: describe(to),
                    bytes,
                    utilization: self.fabric.links[i as usize].utilization(comm_end),
                }
            })
            .collect();
        // Worst output-queue backlog across all links, expressed in bytes
        // at the line rate: the switch packet-buffer occupancy audit.
        let max_backlog = self
            .fabric
            .links
            .iter()
            .map(|l| (l.max_backlog().as_secs_f64() * l.params().bandwidth_bps / 8.0) as u64)
            .max()
            .unwrap_or(0);
        let mut functional = true;
        let nodes: Vec<NodeReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(p, n)| {
                if n.received != n.needed {
                    functional = false;
                }
                let mut r = NodeReport {
                    idxs_scanned: self.wl.stream(p as u32).len() as u64,
                    responses: n.responses,
                    duplicate_responses: n.dup_responses,
                    rx_payload_bytes: n.rx_payload,
                    rx_wire_bytes: self.fabric.links[self.fabric.downlink[p].0 as usize].bytes(),
                    tx_wire_bytes: self.fabric.links[self.fabric.from_nic[p].0 .0 as usize].bytes(),
                    finish: n.finish.unwrap_or(SimTime::ZERO),
                    ..NodeReport::default()
                };
                for u in &n.units {
                    let s = u.rig.stats();
                    r.local += s.local;
                    r.filtered += s.filtered;
                    r.coalesced += s.coalesced;
                    r.issued += s.issued;
                    r.stalls += s.stalls;
                    r.watchdog_retries += u.retries;
                }
                if n.finish.is_none() {
                    functional = false;
                }
                r
            })
            .collect();
        let comm_time = nodes
            .iter()
            .map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        fr.watchdog_retries = nodes.iter().map(|n| n.watchdog_retries).sum();
        let wd = self.cfg.faults.watchdog_ns;
        if wd > 0 {
            // Watchdog-sanity check (satellite of §7.1): a timeout below
            // the worst-case PR round trip restarts healthy commands.
            let est = self.cfg.estimated_worst_rtt_ns();
            if wd < est {
                fr.watchdog_warning = Some(format!(
                    "watchdog_ns = {wd} is below the estimated worst-case \
                     PR round trip of {est} ns; expect spurious restarts"
                ));
            }
        }
        let dropped_packets = fr.total_dropped();
        let faults = if self.cfg.faults.is_active() || wd > 0 {
            Some(fr)
        } else {
            None
        };
        // Fold the trace into the report: raw buffer, derived timeline
        // (16 windows), and the full-trace digest.
        #[cfg(feature = "trace")]
        let trace = self
            .shared
            .tracer
            .as_ref()
            .map(|t| TraceReport::from_tracer(t, 16));
        SimReport {
            k,
            nodes,
            comm_time,
            prs_per_packet,
            cache_lookups,
            cache_hits,
            total_link_bytes,
            line_rate_bps: self.cfg.link.bandwidth_bps,
            functional_check_passed: functional,
            events,
            dropped_packets,
            pr_latency: self.shared.pr_latency,
            max_link_backlog_bytes: max_backlog,
            hot_links,
            audit_digest,
            faults,
            reduce,
            #[cfg(feature = "trace")]
            trace,
        }
    }
}

/// Runs the communication phase of one distributed sparse kernel under
/// `cfg` and returns the full report.
///
/// # Panics
///
/// Panics on any [`SimError`]: the workload's node count differs from the
/// topology's, the configuration fails [`ClusterConfig::validate`] (e.g.
/// packet loss configured without a watchdog), the topology is
/// unroutable, or an armed [`SimLimits`](crate::config::SimLimits)
/// liveness budget trips. Callers that must survive arbitrary generated
/// configurations use [`try_simulate`] instead.
///
/// # Example
///
/// See the crate-level example.
pub fn simulate(cfg: &ClusterConfig, wl: &CommWorkload) -> SimReport {
    // simaudit:allow(no-lib-panic): documented panicking wrapper over try_simulate for experiments
    try_simulate(cfg, wl).unwrap_or_else(|e| panic!("simulate: {e}"))
}

/// The fallible simulation entry point: every failure mode — invalid
/// configuration, workload/topology mismatch, unroutable topology, fault
/// schedule naming absent links, liveness stall — comes back as a typed
/// [`SimError`] instead of a panic. Validation is front-loaded, so a bad
/// configuration is rejected before any event runs.
pub fn try_simulate(cfg: &ClusterConfig, wl: &CommWorkload) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let world = World::try_new(cfg, wl)?;
    drive(world, Engine::new())
}

/// Runs exactly like [`try_simulate`] but on the engine's *reference*
/// binary-heap event queue instead of the default calendar queue. The two
/// paths must produce bit-identical reports and audit digests — this is
/// the production entry point of the equivalence oracle
/// (`tests/engine_equivalence.rs`); it is not faster or slower in any way
/// that matters to callers.
pub fn try_simulate_reference(
    cfg: &ClusterConfig,
    wl: &CommWorkload,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let world = World::try_new(cfg, wl)?;
    drive(world, Engine::new().with_reference_queue())
}

/// Runs exactly like [`simulate`] with a structured tracer attached; the
/// returned report additionally carries a `TraceReport` (records,
/// timeline metrics, full-trace digest). Available only under the `trace`
/// feature — default builds compile no trace code at all.
///
/// # Panics
///
/// Same conditions as [`simulate`].
#[cfg(feature = "trace")]
pub fn simulate_traced(cfg: &ClusterConfig, wl: &CommWorkload, tcfg: TraceConfig) -> SimReport {
    // simaudit:allow(no-lib-panic): documented panicking wrapper over try_simulate_traced
    try_simulate_traced(cfg, wl, tcfg).unwrap_or_else(|e| panic!("simulate: {e}"))
}

/// The fallible counterpart of [`simulate_traced`]; see [`try_simulate`].
#[cfg(feature = "trace")]
pub fn try_simulate_traced(
    cfg: &ClusterConfig,
    wl: &CommWorkload,
    tcfg: TraceConfig,
) -> Result<SimReport, SimError> {
    cfg.validate()?;
    let mut world = World::try_new(cfg, wl)?;
    let tracer = Tracer::new(tcfg);
    world.attach_tracer(&tracer);
    drive(world, Engine::new())
}

/// The single event-loop body behind [`simulate`] and `simulate_traced`:
/// inject the fault schedule and the initial host stimuli, drain the
/// queue through the port dispatcher, then assemble the report. With
/// `cfg.limits` unarmed (every committed experiment) this runs the exact
/// unguarded engine loop; armed limits route through
/// [`Engine::run_guarded`] and surface stalls as [`SimError::Stalled`].
fn drive(mut world: World<'_>, mut engine: Engine<Event>) -> Result<SimReport, SimError> {
    for (t, action) in std::mem::take(&mut world.pending_transitions) {
        engine.schedule(t, Event::FaultTransition { action });
    }
    for node in 0..world.wl.nodes() {
        if !world.wl.stream(node).is_empty() {
            engine.schedule(SimTime::ZERO, Event::HostIssue { node });
        }
    }
    // The run drains naturally: every queued PR has an armed expiry and
    // every outstanding PR a response in flight. The liveness guard only
    // exists to turn a model bug (or an adversarial chaos scenario) into
    // a structured stall instead of a hang.
    let limits = world.cfg.limits;
    if limits.is_armed() {
        let guard = Liveness {
            max_events: limits.max_events,
            max_stagnant_events: limits.max_stagnant_events,
        };
        engine.run_guarded(guard, |now, ev, sched| world.dispatch(now, ev, sched))?;
    } else {
        engine.run(|now, ev, sched| world.dispatch(now, ev, sched));
    }
    let digest = engine.audit_digest();
    Ok(world.into_report(engine.processed(), digest))
}
