//! The typed event vocabulary of the cluster simulation and its port map.
//!
//! Every event names the component instance it is delivered to; the
//! [`Event::port`] mapping is the single routing table the
//! [`driver`](super::driver) uses to dispatch events, so adding an event
//! kind forces a (compile-checked) decision about which component owns it.

use netsparse_netsim::{LinkId, SwitchId};
use netsparse_snic::ConcatPacket;

/// An event delivered to one component of the cluster model.
pub(crate) enum Event {
    /// The host core of `node` issues the next RIG command.
    HostIssue {
        /// Target node.
        node: u32,
    },
    /// Client RIG unit `unit` of `node` scans its next idx chunk.
    ClientProcess {
        /// Target node.
        node: u32,
        /// Client unit within the node's SNIC.
        unit: u16,
    },
    /// The NIC concatenator of `node` has queues past their delay budget.
    NicConcatExpire {
        /// Target node.
        node: u32,
    },
    /// The concatenator of `switch` has queues past their delay budget.
    SwitchConcatExpire {
        /// Target switch.
        switch: u32,
    },
    /// The reduce table of `switch` has partial sums whose aggregation
    /// window has closed.
    ReduceExpire {
        /// Target switch.
        switch: u32,
    },
    /// A packet arrives at `switch`.
    PacketAtSwitch {
        /// Target switch.
        switch: u32,
        /// Whether the packet entered from a directly attached NIC (the
        /// cross-node concatenation trigger) rather than another switch.
        from_nic: bool,
        /// The packet.
        pkt: ConcatPacket,
    },
    /// A packet arrives at the NIC of `node`.
    PacketAtNic {
        /// Target node.
        node: u32,
        /// The packet.
        pkt: ConcatPacket,
    },
    /// §7.1 watchdog: fires once per RIG command issue; acts only if the
    /// same command generation is still running.
    Watchdog {
        /// Target node.
        node: u32,
        /// Client unit within the node's SNIC.
        unit: u16,
        /// Command generation the timer was armed for.
        generation: u64,
    },
    /// A scheduled hardware failure or repair takes effect: the failure
    /// set is updated and every route is recomputed over the survivors.
    FaultTransition {
        /// The resolved failure or repair.
        action: FaultAction,
    },
}

/// A resolved fault-schedule entry (config targets are mapped to concrete
/// netsim ids once, at construction).
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultAction {
    /// A switch dies.
    FailSwitch(SwitchId),
    /// A switch comes back.
    RepairSwitch(SwitchId),
    /// A link dies.
    FailLink(LinkId),
    /// A link comes back.
    RepairLink(LinkId),
}

/// The component instance an event is addressed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Port {
    /// A host + SNIC node component (`sim::node`).
    Node(u32),
    /// A switch component (`sim::rack`).
    Rack(u32),
    /// The network fabric itself (`sim::fabric`): fault transitions.
    Fabric,
}

impl Event {
    /// The port this event is delivered to.
    pub(crate) fn port(&self) -> Port {
        match *self {
            Event::HostIssue { node }
            | Event::ClientProcess { node, .. }
            | Event::NicConcatExpire { node }
            | Event::PacketAtNic { node, .. }
            | Event::Watchdog { node, .. } => Port::Node(node),
            Event::PacketAtSwitch { switch, .. }
            | Event::SwitchConcatExpire { switch }
            | Event::ReduceExpire { switch } => Port::Rack(switch),
            Event::FaultTransition { .. } => Port::Fabric,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_route_to_their_owning_component() {
        assert_eq!(Event::HostIssue { node: 3 }.port(), Port::Node(3));
        assert_eq!(
            Event::ClientProcess { node: 1, unit: 2 }.port(),
            Port::Node(1)
        );
        assert_eq!(Event::NicConcatExpire { node: 5 }.port(), Port::Node(5));
        assert_eq!(
            Event::Watchdog {
                node: 4,
                unit: 0,
                generation: 9
            }
            .port(),
            Port::Node(4)
        );
        assert_eq!(
            Event::SwitchConcatExpire { switch: 7 }.port(),
            Port::Rack(7)
        );
        assert_eq!(Event::ReduceExpire { switch: 6 }.port(), Port::Rack(6));
        assert_eq!(
            Event::FaultTransition {
                action: FaultAction::FailSwitch(SwitchId(0))
            }
            .port(),
            Port::Fabric
        );
    }
}
