//! The event-driven NetSparse cluster simulation.
//!
//! One call to [`simulate`] runs a full distributed sparse kernel's
//! communication phase (the paper's Figure 3 lifetime) over a cluster:
//!
//! 1. each node's host core issues RIG commands (batches of nonzeros) to
//!    the free client RIG units of its SNIC, paying a per-command software
//!    cost plus the PCIe DMA of the idx batch;
//! 2. client units scan idxs at one per SNIC cycle, dropping local /
//!    filtered / coalesced ones and pushing read PRs into the NIC's
//!    concatenator; units stall when their Pending PR Table fills;
//! 3. packets traverse the network hop by hop over bandwidth/latency
//!    links; NetSparse edge switches deconcatenate, probe/fill the
//!    Property Cache for inter-rack properties, and reconcatenate
//!    (cross-node concatenation);
//! 4. server RIG units at home nodes fetch properties over PCIe and emit
//!    response PRs; responses retrace the network, update caches, clear
//!    pending entries, set Idx Filter bits, and DMA properties to host
//!    memory;
//! 5. a RIG command completes when its stream is scanned and all its
//!    responses have arrived; the node finishes when all commands do.
//!
//! Event granularity is chosen for scale: per-idx work happens in tight
//! loops inside chunk events (one event per ~1024 idxs), and events exist
//! only for packets, concatenation expiries and command boundaries — so
//! event count is proportional to packets, not cycles.
//!
//! # Architecture
//!
//! The simulation is layered as components behind ports (see
//! `docs/ARCHITECTURE.md` for the full contract):
//!
//! - [`events`](self) — the typed event vocabulary and the event → port
//!   routing map;
//! - `node` — the host + SNIC command lifecycle (issue, scan, serve,
//!   respond, watchdog recovery), one component per rank;
//! - `rack` — one component per switch: Property-Cache probe/fill and
//!   cross-node concatenation at ToRs, verbatim forwarding at spines;
//! - `fabric` — the shared transport substrate: links, routing tables,
//!   failover reconvergence;
//! - `pipeline` — the pluggable handler pipeline NIC and middle-pipe
//!   components drive generically: Property-Cache, in-network reduction
//!   and concatenation as [`Handler`](pipeline::Handler) stages;
//! - `driver` — the component wiring and the single generic event loop
//!   behind [`simulate`] (and `simulate_traced` under the `trace`
//!   feature), with auditing and tracing injected as feature-gated hooks.

mod driver;
mod error;
mod events;
mod fabric;
mod node;
mod pipeline;
mod rack;

pub use driver::{simulate, try_simulate, try_simulate_reference};
#[cfg(feature = "trace")]
pub use driver::{simulate_traced, try_simulate_traced};
pub use error::SimError;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ClusterConfig, Mechanisms};
    use crate::metrics::SimReport;
    use netsparse_desim::SimTime;
    use netsparse_netsim::Topology;
    use netsparse_sparse::{CommWorkload, Partition1D};

    fn small_topo() -> Topology {
        Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        }
    }

    /// 8 nodes; node 0 references properties of nodes 1 (same rack) and
    /// 4 (other rack), with repeats.
    fn tiny_workload() -> CommWorkload {
        let part = Partition1D::even(8 * 16, 8);
        let mut streams: Vec<Vec<u32>> = vec![vec![]; 8];
        streams[0] = vec![16, 17, 16, 64, 65, 64, 0, 1, 16];
        streams[2] = vec![64, 65, 66]; // same rack as 0, shares node 4's idxs
        CommWorkload::from_streams(part, vec![16; 8], streams)
    }

    fn cfg(k: u32) -> ClusterConfig {
        ClusterConfig::mini(small_topo(), k)
    }

    #[test]
    fn tiny_run_is_functionally_correct() {
        let wl = tiny_workload();
        let r = simulate(&cfg(16), &wl);
        assert!(r.functional_check_passed);
        // Node 0 needed {16, 17, 64, 65}: responses = 4 with filtering.
        assert_eq!(r.nodes[0].responses, 4);
        assert_eq!(r.nodes[0].issued, 4);
        assert_eq!(r.nodes[0].local, 2);
        assert_eq!(r.nodes[0].filtered + r.nodes[0].coalesced, 3);
        // Node 2 needed {64, 65, 66}.
        assert_eq!(r.nodes[2].responses, 3);
        // Idle nodes finish instantly.
        assert_eq!(r.nodes[7].finish, SimTime::ZERO);
        assert!(r.comm_time > SimTime::ZERO);
    }

    #[test]
    fn disabling_filter_and_coalesce_issues_every_remote_ref() {
        let wl = tiny_workload();
        let mut c = cfg(16);
        c.mechanisms = Mechanisms {
            filter: false,
            coalesce: false,
            ..Mechanisms::all()
        };
        let r = simulate(&c, &wl);
        assert!(r.functional_check_passed);
        // All 7 remote refs of node 0 become PRs.
        assert_eq!(r.nodes[0].issued, 7);
        assert_eq!(r.nodes[0].responses, 7);
        assert_eq!(r.nodes[0].duplicate_responses, 3);
    }

    #[test]
    fn rig_only_matches_full_on_traffic_ordering() {
        let wl = tiny_workload();
        let mut c = cfg(16);
        c.mechanisms = Mechanisms::rig_only();
        let rig = simulate(&c, &wl);
        let full = simulate(&cfg(16), &wl);
        assert!(rig.functional_check_passed && full.functional_check_passed);
        // The full design never moves more bytes than RIG-only.
        assert!(full.total_link_bytes <= rig.total_link_bytes);
    }

    #[test]
    fn property_cache_serves_rack_sharing() {
        // Node 0 and node 2 (same rack) both need node 4's properties.
        // Whichever asks second should hit the ToR cache.
        let wl = tiny_workload();
        let r = simulate(&cfg(16), &wl);
        assert!(r.cache_lookups > 0);
        // Cache hits are possible but timing-dependent; inserts must have
        // happened for the inter-rack responses.
        assert!(r.functional_check_passed);
    }

    #[test]
    fn simulation_is_deterministic() {
        let wl = tiny_workload();
        let a = simulate(&cfg(16), &wl);
        let b = simulate(&cfg(16), &wl);
        assert_eq!(a.comm_time, b.comm_time);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn larger_k_means_more_bytes() {
        let wl = tiny_workload();
        let r16 = simulate(&cfg(16), &wl);
        let r128 = simulate(&cfg(128), &wl);
        assert!(r128.total_link_bytes > r16.total_link_bytes);
    }

    #[test]
    fn adaptive_throttle_reduces_duplicates_for_reuse_heavy_workloads() {
        // A small batch size over a reuse-heavy (arabic-like) workload
        // maximizes concurrent-command overlap; the adaptive controller
        // should cut duplicate responses without breaking delivery.
        let wl = netsparse_sparse::suite::SuiteConfig {
            matrix: netsparse_sparse::SuiteMatrix::Arabic,
            nodes: 8,
            rack_size: 4,
            scale: 0.2,
            seed: 9,
        }
        .generate();
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let mut fixed = ClusterConfig::mini(topo, 16);
        fixed.batch_size = 256;
        let mut adaptive = fixed.clone();
        adaptive.adaptive_batch = true;
        let r_fixed = simulate(&fixed, &wl);
        let r_adapt = simulate(&adaptive, &wl);
        assert!(r_fixed.functional_check_passed && r_adapt.functional_check_passed);
        let dups = |r: &SimReport| -> u64 { r.nodes.iter().map(|n| n.duplicate_responses).sum() };
        assert!(
            dups(&r_adapt) <= dups(&r_fixed),
            "adaptive {} vs fixed {} duplicates",
            dups(&r_adapt),
            dups(&r_fixed)
        );
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_workload_panics() {
        let part = Partition1D::even(64, 4);
        let wl = CommWorkload::from_streams(part, vec![16; 4], vec![vec![]; 4]);
        simulate(&cfg(16), &wl);
    }
}
