//! Programmable handler pipelines: the pluggable-mechanism seam.
//!
//! NetSparse's in-network mechanisms used to be hard-wired fields of the
//! node and rack components. This module re-expresses them as **handlers**
//! behind one small contract — a PR goes in, a [`Verdict`] comes out, and
//! any emitted packets land in a pooled [`Actions`] buffer — so NIC and
//! middle-pipe components drive an ordered [`Pipeline`] of stages
//! generically instead of open-coding each mechanism (the sPIN/PsPIN
//! shape: small handlers bound to packet ports).
//!
//! Three packet-phase mechanisms are handlers today:
//!
//! - [`CacheHandler`] — the Property Cache probe/fill (middle pipes):
//!   read hits turn into responses on the spot, responses passing through
//!   deposit their property for the rack.
//! - [`ReduceHandler`] — the in-network reduction extension: `Partial`
//!   contribution PRs fold into a bounded per-row partial-sum table and
//!   re-emerge merged when their aggregation window closes.
//! - [`ConcatHandler`] — the terminal stage: every surviving PR is pushed
//!   into the concatenation point, which emits MTU-bounded packets into
//!   the action buffer.
//!
//! The idx-phase mechanisms (RIG scan, Idx Filter, Pending-coalesce) stay
//! fused inside `netsparse_snic::RigClient` for speed — their per-idx
//! contract, `IdxOutcome`, is the same shape as [`Verdict`] (Issued ≅
//! Forward; Local/Filtered/Coalesced ≅ Absorb), and `docs/ARCHITECTURE.md`
//! documents the correspondence. Cycle costs are accounted per handler:
//! each stage that [`Handler::wants`] a PR charges its [`Handler::cost`]
//! to that PR's processing time before acting, which reproduces the
//! hard-wired model exactly (e.g. the cache probe latency every PR paid on
//! a cache-enabled switch).

use netsparse_desim::SimTime;
use netsparse_netsim::Topology;
use netsparse_snic::{ConcatPacket, ConcatPoint, Pr, PrKind};
use netsparse_sparse::Partition1D;
use netsparse_switch::{MiddlePipes, ReduceStats, ReduceTable};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{Tracer, TrackId};

/// The pooled action buffer handlers emit into: time-stamped packets bound
/// for the fabric. Components own one, lend it to the pipeline per event,
/// and hand it to the fabric's batch send — the hot path never allocates.
pub(crate) type Actions = Vec<(SimTime, ConcatPacket)>;

/// What a handler decides about one PR.
pub(crate) enum Verdict {
    /// The PR continues to the next stage, possibly rewritten (a cache hit
    /// turns a read into a response; a bypassed contribution keeps going).
    Forward {
        /// Destination node of the (possibly rewritten) PR.
        dest: u32,
        /// Kind of the (possibly rewritten) PR.
        kind: PrKind,
        /// Payload bytes the PR now carries.
        payload: u32,
    },
    /// The PR stops here: absorbed into handler state (a folded partial
    /// sum) or already emitted into the action buffer (a concatenated
    /// packet). Later stages never see it.
    Absorb,
}

/// Per-packet context a handler may consult: where the pipeline runs,
/// where the packet was headed, and the workload's ownership map.
pub(crate) struct PrCtx<'a> {
    /// The element driving the pipeline (switch id for middle pipes, node
    /// id for NIC egress).
    pub(crate) sw: u32,
    /// The carrying packet's destination field (home node for reads,
    /// requester for responses, root for partials).
    pub(crate) pkt_dest: u32,
    /// Property payload bytes (`k * 4`).
    pub(crate) payload: u32,
    /// The cluster topology (for rack-locality tests; `Copy`, held by
    /// value).
    pub(crate) topo: Topology,
    /// The workload's idx → owner map.
    pub(crate) partition: &'a Partition1D,
}

/// One pipeline stage: a PR goes in, a verdict comes out.
///
/// The contract has four obligations:
///
/// 1. **Selectivity** — [`Handler::wants`] names the PR kinds the stage
///    acts on; the pipeline skips it (cost and all) for everything else.
/// 2. **Cost** — [`Handler::cost`] is charged to a PR's processing time
///    *before* [`Handler::on_pr`] runs, once per wanted PR.
/// 3. **Actions, not side effects** — emitted packets go into the pooled
///    [`Actions`] buffer; a handler never touches the scheduler or fabric.
/// 4. **Timed state** — a stage holding PRs back ([`ReduceHandler`],
///    [`ConcatHandler`]) reports its earliest deadline via
///    [`Handler::next_expiry`] so the owning component can arm a wakeup.
pub(crate) trait Handler {
    /// Whether this stage acts on PRs of `kind`.
    fn wants(&self, kind: PrKind) -> bool;
    /// Processing latency charged to each wanted PR.
    fn cost(&self) -> SimTime;
    /// Processes one PR at (already cost-adjusted) time `t_pr`.
    fn on_pr(
        &mut self,
        t_pr: SimTime,
        pr: Pr,
        state: &PrState,
        prc: &PrCtx<'_>,
        actions: &mut Actions,
    ) -> Verdict;
    /// Earliest deadline of held-back state, if any.
    fn next_expiry(&mut self) -> Option<SimTime>;
}

/// The mutable in-flight attributes of a PR between stages.
pub(crate) struct PrState {
    /// Current destination node.
    pub(crate) dest: u32,
    /// Current PR kind.
    pub(crate) kind: PrKind,
    /// Current payload bytes.
    pub(crate) payload: u32,
}

/// The Property-Cache stage (middle pipes of a NetSparse edge switch).
pub(crate) struct CacheHandler {
    /// The banked, set-associative Property Cache.
    pub(crate) pipes: MiddlePipes,
    /// Probe latency (the cache pipeline's cycle budget); ZERO when the
    /// property-cache mechanism is ablated.
    cost: SimTime,
    /// Whether the mechanism is on (ablated caches keep their pipes for
    /// uniform accounting but neither probe nor charge cost).
    probe: bool,
}

impl Handler for CacheHandler {
    fn wants(&self, kind: PrKind) -> bool {
        self.probe && matches!(kind, PrKind::Read | PrKind::Response)
    }

    fn cost(&self) -> SimTime {
        self.cost
    }

    fn on_pr(
        &mut self,
        _t_pr: SimTime,
        pr: Pr,
        state: &PrState,
        prc: &PrCtx<'_>,
        _actions: &mut Actions,
    ) -> Verdict {
        match state.kind {
            PrKind::Read => {
                // Only inter-rack properties are cacheable: rack-local
                // traffic never crosses this switch twice.
                let home = prc.pkt_dest;
                let cacheable = self.pipes.enabled() && prc.topo.edge_switch_of(home).0 != prc.sw;
                if cacheable && self.pipes.lookup(home, pr.idx) {
                    // Hit: the read becomes a response to its source.
                    Verdict::Forward {
                        dest: pr.src_node,
                        kind: PrKind::Response,
                        payload: prc.payload,
                    }
                } else {
                    Verdict::Forward {
                        dest: home,
                        kind: PrKind::Read,
                        payload: 0,
                    }
                }
            }
            PrKind::Response => {
                let home = prc.partition.owner(pr.idx);
                if self.pipes.enabled() && prc.topo.edge_switch_of(home).0 != prc.sw {
                    self.pipes.insert(home, pr.idx);
                }
                Verdict::Forward {
                    dest: prc.pkt_dest,
                    kind: PrKind::Response,
                    payload: prc.payload,
                }
            }
            // simaudit:allow(no-lib-panic): wants() filters to Read | Response
            PrKind::Partial => unreachable!("cache stage never wants partials"),
        }
    }

    fn next_expiry(&mut self) -> Option<SimTime> {
        None
    }
}

/// The in-network reduction stage: a bounded partial-sum table.
pub(crate) struct ReduceHandler {
    /// The per-row partial-sum table.
    pub(crate) table: ReduceTable,
    /// Table probe/fold latency.
    cost: SimTime,
}

impl Handler for ReduceHandler {
    fn wants(&self, kind: PrKind) -> bool {
        kind == PrKind::Partial
    }

    fn cost(&self) -> SimTime {
        self.cost
    }

    fn on_pr(
        &mut self,
        t_pr: SimTime,
        pr: Pr,
        state: &PrState,
        _prc: &PrCtx<'_>,
        _actions: &mut Actions,
    ) -> Verdict {
        match self.table.absorb(t_pr, state.dest, pr) {
            None => Verdict::Absorb,
            // Table full (or fold-count overflow): degrade to plain
            // forwarding — the contribution travels on unmerged.
            Some(_) => Verdict::Forward {
                dest: state.dest,
                kind: PrKind::Partial,
                payload: state.payload,
            },
        }
    }

    fn next_expiry(&mut self) -> Option<SimTime> {
        self.table.next_expiry()
    }
}

/// The terminal concatenation stage: surviving PRs enter the
/// concatenation point, which emits MTU-bounded packets into the action
/// buffer (immediately when a queue fills, or later on expiry).
pub(crate) struct ConcatHandler {
    /// The dedicated or virtualized concatenation point.
    pub(crate) point: ConcatPoint,
}

impl Handler for ConcatHandler {
    fn wants(&self, _kind: PrKind) -> bool {
        true
    }

    fn cost(&self) -> SimTime {
        SimTime::ZERO
    }

    fn on_pr(
        &mut self,
        t_pr: SimTime,
        pr: Pr,
        state: &PrState,
        _prc: &PrCtx<'_>,
        actions: &mut Actions,
    ) -> Verdict {
        self.point
            .push_with(t_pr, state.dest, state.kind, pr, state.payload, |p| {
                actions.push((t_pr, p));
            });
        Verdict::Absorb
    }

    fn next_expiry(&mut self) -> Option<SimTime> {
        self.point.next_expiry()
    }
}

/// Drives one PR through one stage via the [`Handler`] contract: skip if
/// the stage doesn't want the kind, otherwise charge cost and rule.
/// Returns `false` when the stage absorbed the PR (later stages must not
/// see it). Monomorphized per handler type, so the event path pays no
/// dispatch at all.
#[inline(always)]
fn step<H: Handler>(
    h: &mut H,
    t_pr: &mut SimTime,
    pr: Pr,
    state: &mut PrState,
    prc: &PrCtx<'_>,
    actions: &mut Actions,
) -> bool {
    if !h.wants(state.kind) {
        return true;
    }
    *t_pr += h.cost();
    match h.on_pr(*t_pr, pr, state, prc, actions) {
        Verdict::Absorb => false,
        Verdict::Forward {
            dest,
            kind,
            payload,
        } => {
            state.dest = dest;
            state.kind = kind;
            state.payload = payload;
            true
        }
    }
}

/// An ordered pipeline of handler stages, driven generically through
/// [`step`]: a PR enters at a base time, each stage that wants its
/// current kind charges cost and rules, and the PR either gets absorbed
/// or reaches the terminal [`ConcatHandler`] (which wants everything).
///
/// The stage order is fixed — `[cache?, reduce?, concat]` — and each slot
/// holds its concrete handler type, so every [`Handler`] call inlines
/// statically; the generic `step` driver is the only thing that speaks
/// the trait on the event path.
pub(crate) struct Pipeline {
    /// Property-Cache probe/fill (present on every middle-pipe pipeline,
    /// absent on NIC egress).
    cache: Option<CacheHandler>,
    /// In-network partial-sum reduction (edge switches of reduce-enabled
    /// runs only).
    reduce: Option<ReduceHandler>,
    /// Terminal concatenation — every pipeline ends here.
    concat: ConcatHandler,
    /// Pooled scratch for re-injecting reduce flushes downstream.
    flush_buf: Vec<(u32, Pr)>,
}

impl Pipeline {
    /// A middle-pipe pipeline: [cache, reduce?, concat].
    ///
    /// The cache stage is always present (uniform stats/tracing across
    /// switches) but only probes — and only charges its cost — when
    /// `cache_on`. The reduce stage exists only where in-network
    /// reduction is configured (edge switches of reduce-enabled runs).
    pub(crate) fn for_rack(
        pipes: MiddlePipes,
        cache_lat: SimTime,
        cache_on: bool,
        reduce: Option<ReduceTable>,
        concat: ConcatPoint,
    ) -> Self {
        Pipeline {
            cache: Some(CacheHandler {
                pipes,
                cost: if cache_on { cache_lat } else { SimTime::ZERO },
                probe: cache_on,
            }),
            reduce: reduce.map(|table| ReduceHandler {
                table,
                // A fold costs one table probe — same budget as a cache
                // probe on this switch.
                cost: cache_lat,
            }),
            concat: ConcatHandler { point: concat },
            flush_buf: Vec::with_capacity(64),
        }
    }

    /// A NIC egress pipeline: [concat].
    pub(crate) fn for_nic(concat: ConcatPoint) -> Self {
        Pipeline {
            cache: None,
            reduce: None,
            concat: ConcatHandler { point: concat },
            flush_buf: Vec::new(),
        }
    }

    /// Drives one PR through every stage from the top. `t` is the base
    /// processing time before any handler cost.
    #[inline]
    pub(crate) fn run(
        &mut self,
        t: SimTime,
        pr: Pr,
        kind: PrKind,
        prc: &PrCtx<'_>,
        actions: &mut Actions,
    ) {
        let mut state = PrState {
            dest: prc.pkt_dest,
            kind,
            // A read PR carries no property; responses and partials carry
            // one property's worth each.
            payload: match kind {
                PrKind::Read => 0,
                PrKind::Response | PrKind::Partial => prc.payload,
            },
        };
        let mut t_pr = t;
        if let Some(h) = &mut self.cache {
            if !step(h, &mut t_pr, pr, &mut state, prc, actions) {
                return;
            }
        }
        if let Some(h) = &mut self.reduce {
            if !step(h, &mut t_pr, pr, &mut state, prc, actions) {
                return;
            }
        }
        step(&mut self.concat, &mut t_pr, pr, &mut state, prc, actions);
    }

    /// Flushes reduce-table entries whose aggregation window closed by
    /// `now`, re-injecting each merged PR into the stages *after* the
    /// reduce stage (in practice: the concatenator) so merged PRs are
    /// never re-absorbed by the table that just emitted them.
    pub(crate) fn flush_reduce(&mut self, now: SimTime, prc: &PrCtx<'_>, actions: &mut Actions) {
        let mut buf = std::mem::take(&mut self.flush_buf);
        if let Some(r) = &mut self.reduce {
            r.table
                .flush_expired_with(now, |root, pr| buf.push((root, pr)));
        } else {
            self.flush_buf = buf;
            return;
        }
        for (root, pr) in buf.drain(..) {
            let mut state = PrState {
                dest: root,
                kind: PrKind::Partial,
                payload: prc.payload,
            };
            let mut t_pr = now;
            step(&mut self.concat, &mut t_pr, pr, &mut state, prc, actions);
        }
        self.flush_buf = buf;
    }

    /// Flushes concatenation queues past their delay budget into the
    /// action buffer.
    pub(crate) fn flush_concat(&mut self, now: SimTime, actions: &mut Actions) {
        let concat = self.concat_mut();
        concat.flush_expired_with(now, |p| actions.push((now, p)));
    }

    /// Earliest pending concatenator expiry.
    pub(crate) fn next_concat_expiry(&mut self) -> Option<SimTime> {
        self.concat_mut().next_expiry()
    }

    /// Earliest pending reduce-window close, if a reduce stage exists.
    pub(crate) fn next_reduce_expiry(&mut self) -> Option<SimTime> {
        self.reduce.as_mut().and_then(|h| h.next_expiry())
    }

    /// The terminal concatenation point.
    pub(crate) fn concat(&self) -> &ConcatPoint {
        &self.concat.point
    }

    /// The terminal concatenation point, mutably.
    pub(crate) fn concat_mut(&mut self) -> &mut ConcatPoint {
        &mut self.concat.point
    }

    /// The cache stage's middle pipes, if this pipeline has one.
    pub(crate) fn pipes(&self) -> Option<&MiddlePipes> {
        self.cache.as_ref().map(|h| &h.pipes)
    }

    /// The cache stage's middle pipes, mutably.
    #[cfg(feature = "trace")]
    pub(crate) fn pipes_mut(&mut self) -> Option<&mut MiddlePipes> {
        self.cache.as_mut().map(|h| &mut h.pipes)
    }

    /// The reduce stage's running counters, if this pipeline has one.
    pub(crate) fn reduce_stats(&self) -> Option<ReduceStats> {
        self.reduce.as_ref().map(|h| h.table.stats())
    }

    /// Partial sums still held by the reduce stage (0 for pipelines
    /// without one) — must be zero once a run drains. Only the runtime
    /// auditor consults it.
    #[cfg(any(debug_assertions, feature = "audit"))]
    pub(crate) fn reduce_in_flight(&self) -> usize {
        self.reduce.as_ref().map_or(0, |h| h.table.in_flight())
    }

    /// Wires a tracer into the traceable stages.
    #[cfg(feature = "trace")]
    pub(crate) fn set_tracer(
        &mut self,
        tracer: &Tracer,
        concat_track: TrackId,
        cache_track: TrackId,
    ) {
        self.concat_mut().set_tracer(tracer.clone(), concat_track);
        if let Some(p) = self.pipes_mut() {
            p.set_tracer(tracer.clone(), cache_track);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsparse_snic::protocol::partial_contrib_value;
    use netsparse_snic::ConcatConfig;
    use netsparse_switch::SwitchConfig;

    fn prc(topo: Topology, part: &Partition1D, sw: u32, pkt_dest: u32) -> PrCtx<'_> {
        PrCtx {
            sw,
            pkt_dest,
            payload: 64,
            topo,
            partition: part,
        }
    }

    fn rack_pipeline(reduce: Option<ReduceTable>) -> Pipeline {
        let sw_cfg = SwitchConfig::paper();
        let concat = ConcatPoint::dedicated(ConcatConfig {
            headers: netsparse_snic::HeaderSpec::paper(),
            mtu: 1500,
            delay: SimTime::from_ns(50),
            enabled: true,
        });
        Pipeline::for_rack(
            MiddlePipes::new(&sw_cfg, 64),
            SimTime::from_ns(2),
            true,
            reduce,
            concat,
        )
    }

    #[test]
    fn cache_stage_charges_cost_and_turns_hits_into_responses() {
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let part = Partition1D::even(8 * 16, 8);
        let mut p = rack_pipeline(None);
        let mut actions: Actions = Vec::new();
        // A response for a remote home crossing switch 0 fills the cache.
        let pr = Pr {
            src_node: 0,
            src_tid: 0,
            idx: 64, // owned by node 4, rack 1
            req_id: 1,
        };
        let ctx = prc(topo, &part, 0, 0);
        p.run(SimTime::ZERO, pr, PrKind::Response, &ctx, &mut actions);
        assert_eq!(p.pipes().unwrap().stats().insertions, 1);
        // A read for the same idx now hits and becomes a response.
        let ctx = prc(topo, &part, 0, 4);
        p.run(SimTime::ZERO, pr, PrKind::Read, &ctx, &mut actions);
        let stats = p.pipes().unwrap().stats();
        assert_eq!((stats.lookups, stats.hits), (1, 1));
    }

    #[test]
    fn reduce_stage_absorbs_partials_and_flushes_merged() {
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let part = Partition1D::even(8 * 16, 8);
        let mut p = rack_pipeline(Some(ReduceTable::new(16, SimTime::from_ns(100))));
        let mut actions: Actions = Vec::new();
        let ctx = prc(topo, &part, 0, 4);
        for src in 0..3u32 {
            let pr = Pr::partial(src, 70, 1, partial_contrib_value(src, 70));
            p.run(SimTime::ZERO, pr, PrKind::Partial, &ctx, &mut actions);
        }
        assert!(actions.is_empty(), "absorbed partials emit nothing");
        let stats = p.reduce_stats().unwrap();
        assert_eq!((stats.allocated, stats.merged), (1, 2));
        assert_eq!(stats.allocated - stats.flushed, 1, "one entry in flight");
        // The window closes: one merged PR re-enters below the reduce
        // stage and lands in the concatenator (not back in the table).
        let t = p.next_reduce_expiry().unwrap();
        p.flush_reduce(t, &ctx, &mut actions);
        let stats = p.reduce_stats().unwrap();
        assert_eq!(stats.allocated - stats.flushed, 0, "table drained");
        assert_eq!(p.concat().queued_prs(), 1);
        // Drain the concatenator and check conservation through the merge.
        let t = p.next_concat_expiry().unwrap();
        p.flush_concat(t, &mut actions);
        let merged: Vec<Pr> = actions.drain(..).flat_map(|(_, pkt)| pkt.prs).collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].partial_contribs(), 3);
        let expect = (0..3u32)
            .map(|s| partial_contrib_value(s, 70))
            .fold(0u32, u32::wrapping_add);
        assert_eq!(merged[0].partial_value(), expect);
    }

    #[test]
    fn nic_pipeline_is_concat_only() {
        let concat = ConcatPoint::dedicated(ConcatConfig {
            headers: netsparse_snic::HeaderSpec::paper(),
            mtu: 1500,
            delay: SimTime::from_ns(50),
            enabled: true,
        });
        let mut p = Pipeline::for_nic(concat);
        assert!(p.pipes().is_none());
        assert!(p.reduce_stats().is_none());
        assert!(p.next_reduce_expiry().is_none());
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let part = Partition1D::even(8 * 16, 8);
        let ctx = prc(topo, &part, 0, 1);
        let pr = Pr {
            src_node: 0,
            src_tid: 0,
            idx: 16,
            req_id: 1,
        };
        let mut actions: Actions = Vec::new();
        p.run(SimTime::ZERO, pr, PrKind::Read, &ctx, &mut actions);
        assert_eq!(p.concat().queued_prs(), 1);
    }
}
