//! Typed failures for the fallible simulation entry point.
//!
//! [`try_simulate`](crate::sim::try_simulate) front-loads every way a run
//! can go wrong — bad configuration, workload/topology mismatch, an
//! unroutable topology, a fault schedule naming links that do not exist —
//! and reports them as a [`SimError`] instead of aborting the process.
//! The panicking [`simulate`](crate::sim::simulate) wrapper keeps the old
//! contract for hand-written experiments; generated configurations (the
//! chaoscheck harness) must go through the `Result` surface so invalid
//! scenarios are *rejected* and counted, not crashed on.

use netsparse_desim::StallReport;
use netsparse_netsim::RouteError;

use crate::config::ConfigError;

/// Why a simulation could not start, or could not finish.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration failed [`ClusterConfig::validate`]
    /// (e.g. packet loss without a watchdog, degenerate k/batch,
    /// fault targets out of range). See
    /// [`ClusterConfig::validate`](crate::config::ClusterConfig::validate).
    Config(ConfigError),
    /// The workload was generated for a different cluster size than the
    /// topology provides.
    WorkloadMismatch {
        /// Nodes the workload was partitioned over.
        workload_nodes: u32,
        /// Nodes the topology actually has.
        topology_nodes: u32,
    },
    /// The topology could not be constructed or routed.
    Route(RouteError),
    /// The fault schedule cuts a switch-to-switch link the topology does
    /// not have (indices in range, but no such adjacency).
    MissingFaultLink {
        /// Upstream switch of the named link.
        from: u32,
        /// Downstream switch of the named link.
        to: u32,
    },
    /// The run tripped the liveness watchdog
    /// ([`SimLimits`](crate::config::SimLimits)) before draining its
    /// event queue.
    Stalled(StallReport),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Config(e) => write!(f, "invalid cluster config: {e}"),
            SimError::WorkloadMismatch {
                workload_nodes,
                topology_nodes,
            } => write!(
                f,
                "workload node count ({workload_nodes}) must match the \
                 topology ({topology_nodes} nodes)"
            ),
            SimError::Route(e) => write!(f, "unroutable topology: {e}"),
            SimError::MissingFaultLink { from, to } => write!(
                f,
                "fault schedule cuts a nonexistent link: switch {from} -> switch {to}"
            ),
            SimError::Stalled(r) => write!(f, "simulation stalled: {r}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Config(e) => Some(e),
            SimError::Route(e) => Some(e),
            SimError::Stalled(r) => Some(r),
            _ => None,
        }
    }
}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> Self {
        SimError::Config(e)
    }
}

impl From<RouteError> for SimError {
    fn from(e: RouteError) -> Self {
        SimError::Route(e)
    }
}

impl From<StallReport> for SimError {
    fn from(r: StallReport) -> Self {
        SimError::Stalled(r)
    }
}
