//! The event-driven NetSparse cluster simulation.
//!
//! One call to [`simulate`] runs a full distributed sparse kernel's
//! communication phase (the paper's Figure 3 lifetime) over a cluster:
//!
//! 1. each node's host core issues RIG commands (batches of nonzeros) to
//!    the free client RIG units of its SNIC, paying a per-command software
//!    cost plus the PCIe DMA of the idx batch;
//! 2. client units scan idxs at one per SNIC cycle, dropping local /
//!    filtered / coalesced ones and pushing read PRs into the NIC's
//!    concatenator; units stall when their Pending PR Table fills;
//! 3. packets traverse the network hop by hop over bandwidth/latency
//!    links; NetSparse edge switches deconcatenate, probe/fill the
//!    Property Cache for inter-rack properties, and reconcatenate
//!    (cross-node concatenation);
//! 4. server RIG units at home nodes fetch properties over PCIe and emit
//!    response PRs; responses retrace the network, update caches, clear
//!    pending entries, set Idx Filter bits, and DMA properties to host
//!    memory;
//! 5. a RIG command completes when its stream is scanned and all its
//!    responses have arrived; the node finishes when all commands do.
//!
//! Event granularity is chosen for scale: per-idx work happens in tight
//! loops inside chunk events (one event per ~1024 idxs), and events exist
//! only for packets, concatenation expiries and command boundaries — so
//! event count is proportional to packets, not cycles.

use std::collections::{BTreeMap, BTreeSet};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{
    lane, DropReason, TraceConfig, TraceEvent, TraceReport, Tracer, TrackId,
};
use netsparse_desim::{Engine, Histogram, LossProcess, Reservoir, Scheduler, SimTime, SplitMix64};
use netsparse_netsim::topology::FailureSet;
use netsparse_netsim::{Element, Link, LinkId, Network, SwitchId};
use netsparse_snic::vconcat::VirtualConcatenator;
use netsparse_snic::{
    ConcatConfig, ConcatPacket, Concatenator, IdxFilter, IdxOutcome, PrKind, RigClient,
};
use netsparse_sparse::CommWorkload;
use netsparse_switch::MiddlePipes;

use crate::config::{ClusterConfig, ConcatImpl, FaultTarget};
use crate::metrics::{FaultReport, HotLink, NodeReport, SimReport};

/// A concatenation point of either implementation (§6.1.2 dedicated CQs
/// or §7.2 virtualized CQs), with a uniform interface for the event loop.
enum ConcatPoint {
    Dedicated(Concatenator),
    Virtual(VirtualConcatenator),
}

impl ConcatPoint {
    fn new(cfg: ConcatConfig, implementation: ConcatImpl) -> Self {
        match implementation {
            ConcatImpl::Dedicated => ConcatPoint::Dedicated(Concatenator::new(cfg)),
            ConcatImpl::Virtual(pool) => ConcatPoint::Virtual(VirtualConcatenator::new(cfg, pool)),
        }
    }

    fn push(
        &mut self,
        now: SimTime,
        dest: u32,
        kind: PrKind,
        pr: netsparse_snic::Pr,
        payload: u32,
    ) -> Vec<ConcatPacket> {
        match self {
            ConcatPoint::Dedicated(c) => c.push(now, dest, kind, pr, payload).into_iter().collect(),
            ConcatPoint::Virtual(c) => c.push(now, dest, kind, pr, payload),
        }
    }

    fn next_expiry(&mut self) -> Option<SimTime> {
        match self {
            ConcatPoint::Dedicated(c) => c.next_expiry(),
            ConcatPoint::Virtual(c) => c.next_expiry(),
        }
    }

    fn flush_expired(&mut self, now: SimTime) -> Vec<ConcatPacket> {
        match self {
            ConcatPoint::Dedicated(c) => c.flush_expired(now),
            ConcatPoint::Virtual(c) => c.flush_expired(now),
        }
    }

    fn prs_per_packet(&self) -> &Histogram {
        match self {
            ConcatPoint::Dedicated(c) => c.prs_per_packet(),
            ConcatPoint::Virtual(c) => c.prs_per_packet(),
        }
    }

    /// PRs still waiting in concatenation queues (must be zero once the
    /// run drains; checked by the runtime auditor).
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn queued_prs(&self) -> usize {
        match self {
            ConcatPoint::Dedicated(c) => c.queued_prs(),
            ConcatPoint::Virtual(c) => c.queued_prs(),
        }
    }

    #[cfg(feature = "trace")]
    fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        match self {
            ConcatPoint::Dedicated(c) => c.set_tracer(tracer, track),
            ConcatPoint::Virtual(c) => c.set_tracer(tracer, track),
        }
    }
}

enum Event {
    HostIssue {
        node: u32,
    },
    ClientProcess {
        node: u32,
        unit: u16,
    },
    NicConcatExpire {
        node: u32,
    },
    SwitchConcatExpire {
        switch: u32,
    },
    PacketAtSwitch {
        switch: u32,
        from_nic: bool,
        pkt: ConcatPacket,
    },
    PacketAtNic {
        node: u32,
        pkt: ConcatPacket,
    },
    /// §7.1 watchdog: fires once per RIG command issue; acts only if the
    /// same command generation is still running.
    Watchdog {
        node: u32,
        unit: u16,
        generation: u64,
    },
    /// A scheduled hardware failure or repair takes effect: the failure
    /// set is updated and every route is recomputed over the survivors.
    FaultTransition {
        action: FaultAction,
    },
}

/// A resolved fault-schedule entry (config targets are mapped to concrete
/// netsim ids once, at construction).
#[derive(Debug, Clone, Copy)]
enum FaultAction {
    FailSwitch(SwitchId),
    RepairSwitch(SwitchId),
    FailLink(LinkId),
    RepairLink(LinkId),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnitState {
    /// No command assigned.
    Idle,
    /// Scanning idxs (a ClientProcess event is pending).
    Running,
    /// Pending PR Table full; waiting for a response to free an entry.
    Stalled,
    /// Stream fully scanned; waiting for outstanding responses.
    Draining,
}

struct ClientUnit {
    rig: RigClient,
    state: UnitState,
    /// Current command's idx range within the node's stream.
    cmd: Option<(usize, usize)>,
    pos: usize,
    /// Bumped on every command assignment and watchdog restart; stale
    /// watchdog events check it and stand down.
    generation: u64,
    /// Properties delivered for the current command (discarded on a
    /// watchdog failure, per §7.1).
    received_this_cmd: Vec<u32>,
    /// Watchdog restarts suffered by this unit (lifetime total).
    retries: u64,
    /// Watchdog restarts of the *current* command; drives the exponential
    /// backoff and the escalation ladder, reset on every assignment.
    cmd_retries: u32,
}

struct NodeState {
    units: Vec<ClientUnit>,
    filter: IdxFilter,
    concat: ConcatPoint,
    concat_sched: Option<SimTime>,
    server_busy: SimTime,
    pcie_h2d: Link,
    pcie_d2h: Link,
    host_busy: SimTime,
    /// Next unscheduled position in the node's idx stream (commands are
    /// carved from here at issue time, so batch sizes may vary).
    stream_pos: usize,
    active_cmds: usize,
    /// Adaptive concurrency control (§9.4): how many commands may run at
    /// once. Cross-unit duplicate responses shrink it; clean completions
    /// grow it.
    concurrency_limit: usize,
    /// Duplicate/response counters at the last adaptation step.
    last_dup: u64,
    last_resp: u64,
    finish: Option<SimTime>,
    needed: BTreeSet<u32>,
    received: BTreeSet<u32>,
    /// Issue timestamp of each outstanding PR, keyed by (unit, req_id) —
    /// the PR round-trip-latency probe and the conservation ledger's
    /// outstanding set. req_id (not idx) keeps duplicate issues of one idx
    /// distinct, so a watchdog abandon and a late response can't collide.
    issue_times: BTreeMap<(u16, u32), SimTime>,
    responses: u64,
    dup_responses: u64,
    rx_payload: u64,
    /// SNIC client cycle period, scaled by this node's straggler slowdown.
    cycle: SimTime,
    /// Server PR service time, scaled by this node's straggler slowdown.
    serve: SimTime,
    /// §7.1 escalation: once set, this node's client units stop using
    /// concatenation and the cached path and emit bare singleton PRs.
    degraded_mode: bool,
}

struct SwitchState {
    pipes: MiddlePipes,
    concat: ConcatPoint,
    concat_sched: Option<SimTime>,
    netsparse: bool,
}

struct World<'a> {
    cfg: &'a ClusterConfig,
    wl: &'a CommWorkload,
    net: Network,
    links: Vec<Link>,
    /// Per node: its uplink and ToR.
    from_nic: Vec<(LinkId, u32)>,
    /// Per node: its downlink (ToR -> NIC), for rx accounting.
    downlink: Vec<LinkId>,
    /// `[switch][dest node]` -> next hop.
    from_switch: Vec<Vec<Option<(LinkId, Element)>>>,
    nodes: Vec<NodeState>,
    switches: Vec<SwitchState>,
    cache_lat: SimTime,
    switch_lat: SimTime,
    pcie_lat: SimTime,
    payload: u32,
    /// Packet-drop process for the configured loss model.
    loss: LossProcess,
    loss_active: bool,
    /// Backoff-jitter randomness, independent of the loss stream.
    jitter_rng: SplitMix64,
    /// Currently-dead links and switches.
    failures: FailureSet,
    /// Fault-schedule entries resolved to concrete actions; drained into
    /// the engine by [`simulate`].
    pending_transitions: Vec<(SimTime, FaultAction)>,
    /// Live fault counters; finalized into `SimReport::faults`.
    faults: FaultReport,
    pr_latency: Reservoir,
    /// Runtime invariant auditor (PR conservation ledger); compiled only
    /// in debug builds or under the `audit` feature.
    #[cfg(any(debug_assertions, feature = "audit"))]
    audit: netsparse_desim::Auditor,
    /// Structured tracer; attached by [`simulate_traced`], absent (and the
    /// field itself compiled out) in default builds.
    #[cfg(feature = "trace")]
    tracer: Option<Tracer>,
}

impl<'a> World<'a> {
    fn new(cfg: &'a ClusterConfig, wl: &'a CommWorkload) -> Self {
        let net = Network::new(cfg.topology);
        assert_eq!(
            net.nodes(),
            wl.nodes(),
            "workload node count must match the topology"
        );
        let n_nodes = net.nodes();
        let n_switches = net.switches();

        // Runtime link states.
        let mut links: Vec<Link> = (0..net.links()).map(|_| Link::new(cfg.link)).collect();

        // Routing tables from the precomputed paths.
        let mut from_nic = vec![(LinkId(0), 0u32); n_nodes as usize];
        let mut downlink = vec![LinkId(0); n_nodes as usize];
        let mut from_switch: Vec<Vec<Option<(LinkId, Element)>>> =
            vec![vec![None; n_nodes as usize]; n_switches as usize];
        for src in 0..n_nodes {
            for dst in 0..n_nodes {
                if src == dst {
                    continue;
                }
                let path = net.path(src, dst);
                let mut prev = Element::Nic(src);
                for hop in &path.hops {
                    match prev {
                        Element::Nic(n) if n == src => {
                            let Element::Switch(sw) = hop.to else {
                                panic!("first hop must reach a switch");
                            };
                            from_nic[src as usize] = (hop.link, sw.0);
                        }
                        Element::Switch(sw) => {
                            let entry = &mut from_switch[sw.0 as usize][dst as usize];
                            if let Some(existing) = entry {
                                debug_assert_eq!(
                                    *existing,
                                    (hop.link, hop.to),
                                    "routing must be destination-deterministic"
                                );
                            } else {
                                *entry = Some((hop.link, hop.to));
                            }
                            if let Element::Nic(n) = hop.to {
                                downlink[n as usize] = hop.link;
                            }
                        }
                        Element::Nic(_) => panic!("path passes through a foreign NIC"),
                    }
                    prev = hop.to;
                }
            }
        }

        // Per-node degradation: a reduced-bandwidth NIC slows both the
        // uplink and the ToR->NIC downlink of the affected node.
        for d in &cfg.faults.degraded {
            let mut params = cfg.link;
            params.bandwidth_bps *= d.nic_bandwidth_factor;
            links[from_nic[d.node as usize].0 .0 as usize] = Link::new(params);
            links[downlink[d.node as usize].0 as usize] = Link::new(params);
        }

        // Resolve the fault schedule to concrete netsim ids up front, so
        // transitions are O(1) mutations at event time.
        let mut pending_transitions: Vec<(SimTime, FaultAction)> = Vec::new();
        for ev in &cfg.faults.failures {
            match ev.target {
                FaultTarget::Switch(s) => {
                    let s = SwitchId(s);
                    pending_transitions
                        .push((SimTime::from_ns(ev.at_ns), FaultAction::FailSwitch(s)));
                    if let Some(r) = ev.repair_at_ns {
                        pending_transitions
                            .push((SimTime::from_ns(r), FaultAction::RepairSwitch(s)));
                    }
                }
                FaultTarget::SwitchLink { from, to } => {
                    let link = match net.find_link(
                        Element::Switch(SwitchId(from)),
                        Element::Switch(SwitchId(to)),
                    ) {
                        Some(l) => l,
                        None => panic!(
                            "fault schedule cuts a nonexistent link: switch {from} -> switch {to}"
                        ),
                    };
                    pending_transitions
                        .push((SimTime::from_ns(ev.at_ns), FaultAction::FailLink(link)));
                    if let Some(r) = ev.repair_at_ns {
                        pending_transitions
                            .push((SimTime::from_ns(r), FaultAction::RepairLink(link)));
                    }
                }
            }
        }

        let snic_clock = cfg.snic_clock();
        let cycle = snic_clock.period();
        let payload = cfg.payload_bytes();
        // Server PR service: one PR per cycle across the server units,
        // floored by the PCIe fetch bandwidth for the property payload.
        let per_unit = cycle.as_ps() as f64 / cfg.snic.server_units() as f64;
        let fetch_ps = payload as f64 * 8.0 / (cfg.snic.pcie_gbps * 8e9) * 1e12;
        let server_svc = SimTime::from_ps_f64(per_unit.max(fetch_ps));

        let nic_concat_cfg = ConcatConfig {
            headers: cfg.headers,
            mtu: cfg.snic.mtu,
            delay: cfg.nic_concat_delay(),
            enabled: cfg.mechanisms.nic_concat,
        };
        let switch_concat_cfg = ConcatConfig {
            headers: cfg.headers,
            mtu: cfg.snic.mtu,
            delay: cfg.switch_concat_delay(),
            enabled: cfg.mechanisms.switch_concat,
        };

        let nodes = (0..n_nodes)
            .map(|p| {
                let stream = wl.stream(p);
                let mut needed = BTreeSet::new();
                for &idx in stream {
                    if wl.owner(idx) != p {
                        needed.insert(idx);
                    }
                }
                // Straggler slowdown stretches this node's SNIC cycle and
                // server service times.
                let slowdown = cfg
                    .faults
                    .degraded
                    .iter()
                    .find(|d| d.node == p)
                    .map_or(1.0, |d| d.compute_slowdown);
                NodeState {
                    units: (0..cfg.snic.client_units())
                        .map(|tid| ClientUnit {
                            rig: RigClient::new(p, tid as u16, cfg.snic.pending_entries),
                            state: UnitState::Idle,
                            cmd: None,
                            pos: 0,
                            generation: 0,
                            received_this_cmd: Vec::new(),
                            retries: 0,
                            cmd_retries: 0,
                        })
                        .collect(),
                    filter: IdxFilter::new(wl.n_cols()),
                    concat: ConcatPoint::new(nic_concat_cfg, cfg.concat_impl),
                    concat_sched: None,
                    server_busy: SimTime::ZERO,
                    pcie_h2d: Link::new(cfg.pcie_link()),
                    pcie_d2h: Link::new(cfg.pcie_link()),
                    host_busy: SimTime::ZERO,
                    stream_pos: 0,
                    active_cmds: 0,
                    concurrency_limit: cfg.snic.client_units() as usize,
                    last_dup: 0,
                    last_resp: 0,
                    finish: if stream.is_empty() {
                        Some(SimTime::ZERO)
                    } else {
                        None
                    },
                    needed,
                    received: BTreeSet::new(),
                    issue_times: BTreeMap::new(),
                    responses: 0,
                    dup_responses: 0,
                    rx_payload: 0,
                    cycle: SimTime::from_ps_f64(cycle.as_ps() as f64 * slowdown),
                    serve: SimTime::from_ps_f64(server_svc.as_ps() as f64 * slowdown),
                    degraded_mode: false,
                }
            })
            .collect();

        let cache_bytes = if cfg.mechanisms.property_cache {
            cfg.switch.cache.capacity_bytes
        } else {
            0
        };
        let switches = (0..n_switches)
            .map(|s| {
                let edge = cfg.topology.is_edge_switch(SwitchId(s));
                let mut sw_cfg = cfg.switch;
                sw_cfg.cache.capacity_bytes = cache_bytes;
                SwitchState {
                    pipes: if edge {
                        MiddlePipes::new(&sw_cfg, payload.max(1))
                    } else {
                        // Non-edge switches carry no NetSparse extensions.
                        sw_cfg.cache.capacity_bytes = 0;
                        MiddlePipes::new(&sw_cfg, payload.max(1))
                    },
                    concat: ConcatPoint::new(switch_concat_cfg, cfg.concat_impl),
                    concat_sched: None,
                    netsparse: edge && cfg.mechanisms.netsparse_switch(),
                }
            })
            .collect();

        World {
            cfg,
            wl,
            net,
            links,
            from_nic,
            downlink,
            from_switch,
            nodes,
            switches,
            cache_lat: cfg
                .switch_clock()
                .cycles(cfg.switch.cache.latency_cycles as u64),
            switch_lat: cfg.switch_latency(),
            pcie_lat: cfg.pcie_latency(),
            payload,
            loss: LossProcess::new(cfg.faults.loss, cfg.faults.seed ^ 0x10DD_F00D),
            loss_active: cfg.faults.loss.is_lossy(),
            jitter_rng: SplitMix64::new(cfg.faults.seed ^ 0x0BAC_C0FF),
            failures: FailureSet::new(),
            pending_transitions,
            faults: FaultReport::default(),
            pr_latency: Reservoir::new(4_096, 0x01A7_E0C1),
            #[cfg(any(debug_assertions, feature = "audit"))]
            audit: netsparse_desim::Auditor::new(),
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Wires `tracer` into every instrumented component: RIG units, NIC
    /// and switch concatenation points, Property-Cache banks, and the
    /// *network* links (PCIe links are excluded so that the sum of
    /// `link_tx` bytes replays to exactly `total_link_bytes`).
    #[cfg(feature = "trace")]
    fn attach_tracer(&mut self, tracer: &Tracer) {
        for (p, st) in self.nodes.iter_mut().enumerate() {
            for u in &mut st.units {
                u.rig.set_tracer(tracer.clone());
            }
            st.concat
                .set_tracer(tracer.clone(), TrackId::node(p as u32, lane::CONCAT));
        }
        for (s, st) in self.switches.iter_mut().enumerate() {
            st.concat
                .set_tracer(tracer.clone(), TrackId::switch(s as u32, lane::CONCAT));
            st.pipes
                .set_tracer(tracer.clone(), TrackId::switch(s as u32, lane::CACHE));
        }
        for (i, link) in self.links.iter_mut().enumerate() {
            link.set_tracer(tracer.clone(), TrackId::link(i as u32));
        }
        self.tracer = Some(tracer.clone());
    }

    #[cfg(feature = "trace")]
    #[inline]
    fn trace(&self, track: TrackId, event: TraceEvent) {
        if let Some(tr) = &self.tracer {
            tr.record(track, event);
        }
    }

    fn send_from_nic(
        &mut self,
        node: u32,
        at: SimTime,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let (link, sw) = self.from_nic[node as usize];
        let bytes = pkt.wire_bytes;
        let arrive = self.links[link.0 as usize].transmit(at.max(sched.now()), bytes);
        sched.schedule(
            arrive,
            Event::PacketAtSwitch {
                switch: sw,
                from_nic: true,
                pkt,
            },
        );
    }

    fn send_from_switch(
        &mut self,
        sw: u32,
        at: SimTime,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        // With no failures the table is total by construction; under an
        // active failure set it can have holes — the destination may be
        // unreachable, or the packet may sit on a stale path after a
        // failover rebuild. Either way the packet is blackholed here and
        // the watchdog recovers the PRs it carried.
        let Some((link, to)) = self.from_switch[sw as usize][pkt.dest as usize] else {
            self.faults.dropped_dead += 1;
            #[cfg(feature = "trace")]
            self.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        };
        if self.failures.link_dead(link) {
            self.faults.dropped_dead += 1;
            #[cfg(feature = "trace")]
            self.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        }
        let bytes = pkt.wire_bytes;
        let arrive = self.links[link.0 as usize].transmit(at.max(sched.now()), bytes);
        match to {
            Element::Switch(next) => sched.schedule(
                arrive,
                Event::PacketAtSwitch {
                    switch: next.0,
                    from_nic: false,
                    pkt,
                },
            ),
            Element::Nic(n) => sched.schedule(arrive, Event::PacketAtNic { node: n, pkt }),
        }
    }

    /// Applies a scheduled failure or repair, then reconverges routing.
    fn apply_fault(&mut self, action: FaultAction) {
        match action {
            FaultAction::FailSwitch(s) => self.failures.fail_switch(s),
            FaultAction::RepairSwitch(s) => self.failures.repair_switch(s),
            FaultAction::FailLink(l) => self.failures.fail_link(l),
            FaultAction::RepairLink(l) => self.failures.repair_link(l),
        }
        self.faults.fault_transitions += 1;
        #[cfg(feature = "trace")]
        let failovers_before = self.faults.route_failovers;
        self.rebuild_routes();
        #[cfg(feature = "trace")]
        self.trace(
            TrackId::cluster(),
            TraceEvent::FaultApplied {
                failovers: (self.faults.route_failovers - failovers_before) as u32,
            },
        );
    }

    /// Recomputes every (switch, dest) forwarding entry over the surviving
    /// elements using deterministic failover paths (ECMP next-choice).
    /// Entries whose next hop changed are counted as route failovers.
    /// Packets already in flight on a stale path are blackholed at their
    /// next hop lookup — exactly what a real reconvergence does to
    /// in-flight traffic — and recovered by the watchdog.
    fn rebuild_routes(&mut self) {
        let n_nodes = self.net.nodes();
        let n_switches = self.net.switches();
        let mut table: Vec<Vec<Option<(LinkId, Element)>>> =
            vec![vec![None; n_nodes as usize]; n_switches as usize];
        for src in 0..n_nodes {
            for dst in 0..n_nodes {
                if src == dst {
                    continue;
                }
                let Some(path) = self.net.failover_path(src, dst, &self.failures) else {
                    continue; // dst unreachable from src right now
                };
                let mut prev = Element::Nic(src);
                for hop in &path.hops {
                    if let Element::Switch(sw) = prev {
                        let entry = &mut table[sw.0 as usize][dst as usize];
                        // First writer wins: sources sharing a switch on
                        // their paths to dst agree by construction on most
                        // topologies; where they don't (HyperX dim-order
                        // fallbacks), any surviving choice is loop-free.
                        if entry.is_none() {
                            *entry = Some((hop.link, hop.to));
                        }
                    }
                    prev = hop.to;
                }
            }
        }
        let mut changed = 0u64;
        for (old_row, new_row) in self.from_switch.iter().zip(&table) {
            for (old, new) in old_row.iter().zip(new_row) {
                if old != new {
                    changed += 1;
                }
            }
        }
        self.faults.route_failovers += changed;
        self.from_switch = table;
    }

    /// (Re-)schedules the earliest pending concatenator expiry for a NIC.
    fn arm_nic_concat(&mut self, node: u32, sched: &mut Scheduler<'_, Event>) {
        let st = &mut self.nodes[node as usize];
        if let Some(t) = st.concat.next_expiry() {
            let t = t.max(sched.now());
            if st.concat_sched.is_none_or(|cur| t < cur) {
                st.concat_sched = Some(t);
                sched.schedule(t, Event::NicConcatExpire { node });
            }
        }
    }

    fn arm_switch_concat(&mut self, sw: u32, sched: &mut Scheduler<'_, Event>) {
        let st = &mut self.switches[sw as usize];
        if let Some(t) = st.concat.next_expiry() {
            let t = t.max(sched.now());
            if st.concat_sched.is_none_or(|cur| t < cur) {
                st.concat_sched = Some(t);
                sched.schedule(t, Event::SwitchConcatExpire { switch: sw });
            }
        }
    }

    fn host_issue(&mut self, now: SimTime, node: u32, sched: &mut Scheduler<'_, Event>) {
        let batch = self.cfg.batch_size.max(1);
        let host_cmd = SimTime::from_ns(self.cfg.host_cmd_ns);
        let idx_buffer = self.cfg.snic.idx_buffer_bytes as u64;
        let stream_len = self.wl.stream(node).len();
        let st = &mut self.nodes[node as usize];
        if st.stream_pos >= stream_len {
            return;
        }
        if self.cfg.adaptive_batch && st.active_cmds >= st.concurrency_limit {
            return; // re-triggered when a command completes
        }
        let Some(unit_id) = st.units.iter().position(|u| u.state == UnitState::Idle) else {
            return; // re-triggered when a command completes
        };
        // The host core serializes command issues.
        let t_cmd = st.host_busy.max(now) + host_cmd;
        st.host_busy = t_cmd;
        let start = st.stream_pos;
        let end = (start + batch).min(stream_len);
        st.stream_pos = end;
        st.active_cmds += 1;
        #[cfg(feature = "trace")]
        self.trace(
            TrackId::node(node, lane::HOST),
            TraceEvent::CmdIssued {
                unit: unit_id as u16,
                idxs: (end - start) as u32,
            },
        );
        let st = &mut self.nodes[node as usize];
        // Idx batch DMA: the unit starts once the first Idx Buffer chunk
        // has crossed PCIe; the full batch is charged to the link.
        let bytes = (end - start) as u64 * 4;
        let first_chunk = bytes.min(idx_buffer);
        st.pcie_h2d.transmit(t_cmd, bytes);
        let start_t = t_cmd
            + self.pcie_lat
            + self.nodes[node as usize]
                .pcie_h2d
                .params()
                .serialization(first_chunk);
        let st = &mut self.nodes[node as usize];
        let unit = &mut st.units[unit_id];
        unit.cmd = Some((start, end));
        unit.pos = start;
        unit.state = UnitState::Running;
        unit.generation += 1;
        unit.received_this_cmd.clear();
        unit.cmd_retries = 0;
        let generation = unit.generation;
        sched.schedule(
            start_t,
            Event::ClientProcess {
                node,
                unit: unit_id as u16,
            },
        );
        if self.cfg.faults.watchdog_ns > 0 {
            sched.schedule(
                start_t + SimTime::from_ns(self.cfg.faults.watchdog_ns),
                Event::Watchdog {
                    node,
                    unit: unit_id as u16,
                    generation,
                },
            );
        }
        // Chain: keep issuing while units are free and commands remain.
        let below_limit = !self.cfg.adaptive_batch
            || self.nodes[node as usize].active_cmds < self.nodes[node as usize].concurrency_limit;
        let st = &self.nodes[node as usize];
        if st.stream_pos < stream_len
            && below_limit
            && st.units.iter().any(|u| u.state == UnitState::Idle)
        {
            sched.schedule(t_cmd, Event::HostIssue { node });
        }
    }

    fn client_process(
        &mut self,
        now: SimTime,
        node: u32,
        unit_id: u16,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let chunk = self.cfg.snic.idx_chunk();
        let mechanisms = self.cfg.mechanisms;
        let headers = self.cfg.headers;
        let cycle = self.nodes[node as usize].cycle;
        let degraded_mode = self.nodes[node as usize].degraded_mode;
        let stream = self.wl.stream(node);
        let partition = self.wl.partition();
        let mut out: Vec<(SimTime, ConcatPacket)> = Vec::new();
        let mut command_done = false;
        let mut degraded_sent = 0u64;

        {
            let st = &mut self.nodes[node as usize];
            let NodeState {
                units,
                filter,
                concat,
                issue_times,
                ..
            } = st;
            let unit = &mut units[unit_id as usize];
            let Some((_, end)) = unit.cmd else {
                return; // spurious wakeup after completion
            };
            debug_assert!(matches!(unit.state, UnitState::Running));
            let mut cycles: u64 = 0;
            let mut processed = 0usize;
            while processed < chunk && unit.pos < end {
                let idx = stream[unit.pos];
                let is_local = partition.is_local(node, idx);
                match unit.rig.process_idx(
                    idx,
                    is_local,
                    mechanisms.coalesce,
                    mechanisms.filter,
                    filter,
                ) {
                    IdxOutcome::Stalled => {
                        unit.state = UnitState::Stalled;
                        break;
                    }
                    IdxOutcome::Issued(pr) => {
                        cycles += 1;
                        processed += 1;
                        unit.pos += 1;
                        let t_pr = now + cycle * cycles;
                        #[cfg(any(debug_assertions, feature = "audit"))]
                        self.audit.issue("pr");
                        issue_times.insert((unit_id, pr.req_id), t_pr);
                        let dest = partition.owner(idx);
                        if degraded_mode {
                            // §7.1 escalation: bypass concatenation and
                            // the cached switch path entirely — one bare
                            // packet per PR, forwarded verbatim.
                            degraded_sent += 1;
                            out.push((
                                t_pr,
                                ConcatPacket::degraded_singleton(
                                    &headers,
                                    dest,
                                    PrKind::Read,
                                    pr,
                                    0,
                                ),
                            ));
                        } else {
                            for pkt in concat.push(t_pr, dest, PrKind::Read, pr, 0) {
                                out.push((t_pr, pkt));
                            }
                        }
                    }
                    IdxOutcome::Local | IdxOutcome::Filtered | IdxOutcome::Coalesced => {
                        cycles += 1;
                        processed += 1;
                        unit.pos += 1;
                    }
                }
            }
            let t_end = now + cycle * cycles.max(1);
            if unit.state == UnitState::Stalled {
                // Woken by the next response.
            } else if unit.pos >= end {
                if unit.rig.outstanding() == 0 {
                    command_done = true;
                } else {
                    unit.state = UnitState::Draining;
                }
            } else {
                sched.schedule(
                    t_end,
                    Event::ClientProcess {
                        node,
                        unit: unit_id,
                    },
                );
            }
        }

        self.faults.degraded_prs += degraded_sent;
        for (t, pkt) in out {
            self.send_from_nic(node, t, pkt, sched);
        }
        self.arm_nic_concat(node, sched);
        if command_done {
            self.complete_command(now, node, unit_id, sched);
        }
    }

    fn complete_command(
        &mut self,
        now: SimTime,
        node: u32,
        unit_id: u16,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let pcie_lat = self.pcie_lat;
        let adaptive = self.cfg.adaptive_batch;
        let st = &mut self.nodes[node as usize];
        let unit = &mut st.units[unit_id as usize];
        if unit.cmd.is_none() {
            // Already completed (e.g. two duplicate responses for this
            // unit landed in one packet with coalescing disabled).
            return;
        }
        unit.cmd = None;
        unit.state = UnitState::Idle;
        unit.generation += 1;
        unit.received_this_cmd.clear();
        unit.cmd_retries = 0;
        st.active_cmds -= 1;
        #[cfg(feature = "trace")]
        self.trace(
            TrackId::node(node, lane::HOST),
            TraceEvent::CmdCompleted { unit: unit_id },
        );
        let st = &mut self.nodes[node as usize];
        if adaptive {
            // §9.4 adaptive control: cross-unit duplicate responses mean
            // concurrent commands are re-fetching each other's columns —
            // halve the concurrency (AIMD); clean intervals grow it.
            let dup = st.dup_responses - st.last_dup;
            let resp = st.responses - st.last_resp;
            st.last_dup = st.dup_responses;
            st.last_resp = st.responses;
            if resp > 0 {
                // Thresholds are deliberately permissive: duplicates are
                // only worth trading concurrency for when they dominate
                // the response stream (their absolute byte cost is small
                // for high-reuse matrices with small unique sets).
                let rate = dup as f64 / resp as f64;
                if rate > 0.25 {
                    st.concurrency_limit = (st.concurrency_limit / 2).max(2);
                } else if rate < 0.05 {
                    st.concurrency_limit = (st.concurrency_limit + 1).min(st.units.len());
                }
            }
        }
        if st.stream_pos < self.wl.stream(node).len() {
            // Completion notification crosses PCIe before the host reacts.
            sched.schedule(now + pcie_lat, Event::HostIssue { node });
        } else if st.active_cmds == 0 {
            st.finish = Some(st.finish.map_or(now, |f| f.max(now)));
        }
    }

    fn packet_at_nic(
        &mut self,
        now: SimTime,
        node: u32,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        match pkt.kind {
            PrKind::Read => self.serve_reads(now, node, pkt, sched),
            PrKind::Response => self.accept_responses(now, node, pkt, sched),
        }
    }

    /// Server path: fetch each requested property over PCIe and emit a
    /// response PR.
    fn serve_reads(
        &mut self,
        now: SimTime,
        node: u32,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        debug_assert_eq!(pkt.dest, node, "read packet delivered to wrong node");
        let payload = self.payload;
        let pcie_lat = self.pcie_lat;
        let headers = self.cfg.headers;
        let degraded = pkt.degraded;
        let mut out: Vec<(SimTime, ConcatPacket)> = Vec::new();
        {
            let st = &mut self.nodes[node as usize];
            let svc = st.serve;
            for pr in pkt.prs {
                let t = st.server_busy.max(now) + svc;
                st.server_busy = t;
                st.pcie_h2d.transmit(t, payload as u64);
                let t_resp = t + pcie_lat;
                if degraded {
                    // Degraded requests get degraded responses: same bare
                    // forward-only path back to the requester.
                    out.push((
                        t_resp,
                        ConcatPacket::degraded_singleton(
                            &headers,
                            pr.src_node,
                            PrKind::Response,
                            pr,
                            payload,
                        ),
                    ));
                } else {
                    for p in st
                        .concat
                        .push(t_resp, pr.src_node, PrKind::Response, pr, payload)
                    {
                        out.push((t_resp, p));
                    }
                }
            }
        }
        for (t, p) in out {
            self.send_from_nic(node, t, p, sched);
        }
        self.arm_nic_concat(node, sched);
    }

    /// Client path: deliver arrived properties, clear pending entries, set
    /// filter bits, wake stalled units, complete commands.
    fn accept_responses(
        &mut self,
        now: SimTime,
        node: u32,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        debug_assert_eq!(pkt.dest, node, "response packet delivered to wrong node");
        let payload = self.payload as u64;
        let mut wake: Vec<u16> = Vec::new();
        let mut completed: Vec<u16> = Vec::new();
        #[cfg(feature = "trace")]
        let tracer = self.tracer.clone();
        {
            let st = &mut self.nodes[node as usize];
            for pr in pkt.prs {
                let NodeState {
                    units,
                    filter,
                    received,
                    issue_times,
                    ..
                } = st;
                if let Some(t_issue) = issue_times.remove(&(pr.src_tid, pr.req_id)) {
                    self.pr_latency.record(now.saturating_sub(t_issue).as_ps());
                    #[cfg(any(debug_assertions, feature = "audit"))]
                    self.audit.resolve("pr");
                    #[cfg(feature = "trace")]
                    if let Some(tr) = &tracer {
                        tr.record(
                            TrackId::node(node, lane::RIG_BASE + pr.src_tid as u32),
                            TraceEvent::PrResolved { idx: pr.idx },
                        );
                    }
                } else {
                    // The watchdog already abandoned this PR (its ledger
                    // entry is closed); the data is still good, so deliver
                    // it, but don't resolve or time it.
                    self.faults.stale_responses += 1;
                    #[cfg(feature = "trace")]
                    if let Some(tr) = &tracer {
                        tr.record(
                            TrackId::node(node, lane::RIG_BASE + pr.src_tid as u32),
                            TraceEvent::StaleResponse { idx: pr.idx },
                        );
                    }
                }
                let unit = &mut units[pr.src_tid as usize];
                unit.rig.complete(pr.idx, filter);
                if unit.cmd.is_some() {
                    unit.received_this_cmd.push(pr.idx);
                }
                if !received.insert(pr.idx) {
                    st.dup_responses += 1;
                }
                st.responses += 1;
                st.rx_payload += payload;
                st.pcie_d2h.transmit(now, payload);
                let unit = &mut st.units[pr.src_tid as usize];
                match unit.state {
                    UnitState::Stalled => {
                        unit.state = UnitState::Running;
                        wake.push(pr.src_tid);
                    }
                    UnitState::Draining if unit.rig.outstanding() == 0 => {
                        completed.push(pr.src_tid);
                    }
                    _ => {}
                }
            }
        }
        for u in wake {
            sched.schedule(now, Event::ClientProcess { node, unit: u });
        }
        for u in completed {
            self.complete_command(now, node, u, sched);
        }
    }

    fn packet_at_switch(
        &mut self,
        now: SimTime,
        sw: u32,
        from_nic: bool,
        pkt: ConcatPacket,
        sched: &mut Scheduler<'_, Event>,
    ) {
        // §7.1 hardware faults: a dead switch blackholes everything it
        // receives; surviving packets then face the configured loss
        // process (Bernoulli or Gilbert–Elliott bursts) per traversal.
        // Detection/recovery is the RIG watchdog.
        if self.failures.switch_dead(SwitchId(sw)) {
            self.faults.dropped_dead += 1;
            #[cfg(feature = "trace")]
            self.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Dead,
                    prs: pkt.prs.len() as u32,
                },
            );
            return;
        }
        if self.loss_active && self.loss.drop_packet() {
            #[cfg(feature = "trace")]
            self.trace(
                TrackId::switch(sw, lane::FAULT),
                TraceEvent::PacketDropped {
                    reason: DropReason::Loss,
                    prs: pkt.prs.len() as u32,
                },
            );
            return; // counted by the loss process, surfaced in FaultReport
        }
        let t = now + self.switch_lat;
        let topo = *self.net.topology();
        let process = !pkt.degraded
            && self.switches[sw as usize].netsparse
            && (from_nic || topo.edge_switch_of(pkt.dest).0 == sw);
        if !process {
            self.send_from_switch(sw, t, pkt, sched);
            return;
        }

        let cache_on = self.cfg.mechanisms.property_cache;
        let payload = self.payload;
        let t_pr = if cache_on { t + self.cache_lat } else { t };
        let partition = self.wl.partition();
        let mut out: Vec<(SimTime, ConcatPacket)> = Vec::new();
        {
            let st = &mut self.switches[sw as usize];
            match pkt.kind {
                PrKind::Read => {
                    let home = pkt.dest;
                    let cacheable =
                        cache_on && st.pipes.enabled() && topo.edge_switch_of(home).0 != sw;
                    for pr in pkt.prs {
                        if cacheable && st.pipes.lookup(home, pr.idx) {
                            // Hit: the read becomes a response to its source.
                            for p in
                                st.concat
                                    .push(t_pr, pr.src_node, PrKind::Response, pr, payload)
                            {
                                out.push((t_pr, p));
                            }
                        } else {
                            for p in st.concat.push(t_pr, home, PrKind::Read, pr, 0) {
                                out.push((t_pr, p));
                            }
                        }
                    }
                }
                PrKind::Response => {
                    let requester = pkt.dest;
                    for pr in pkt.prs {
                        let home = partition.owner(pr.idx);
                        if cache_on && st.pipes.enabled() && topo.edge_switch_of(home).0 != sw {
                            st.pipes.insert(home, pr.idx);
                        }
                        for p in st
                            .concat
                            .push(t_pr, requester, PrKind::Response, pr, payload)
                        {
                            out.push((t_pr, p));
                        }
                    }
                }
            }
        }
        for (at, p) in out {
            self.send_from_switch(sw, at, p, sched);
        }
        self.arm_switch_concat(sw, sched);
    }

    fn handle(&mut self, now: SimTime, ev: Event, sched: &mut Scheduler<'_, Event>) {
        // Advance the tracer's stamp clock once per delivered event; every
        // component record within this event carries this (monotone) time.
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.tracer {
            tr.set_now(now);
        }
        match ev {
            Event::HostIssue { node } => self.host_issue(now, node, sched),
            Event::ClientProcess { node, unit } => self.client_process(now, node, unit, sched),
            Event::NicConcatExpire { node } => {
                self.nodes[node as usize].concat_sched = None;
                let pkts = self.nodes[node as usize].concat.flush_expired(now);
                for p in pkts {
                    self.send_from_nic(node, now, p, sched);
                }
                self.arm_nic_concat(node, sched);
            }
            Event::SwitchConcatExpire { switch } => {
                self.switches[switch as usize].concat_sched = None;
                let pkts = self.switches[switch as usize].concat.flush_expired(now);
                for p in pkts {
                    self.send_from_switch(switch, now, p, sched);
                }
                self.arm_switch_concat(switch, sched);
            }
            Event::PacketAtSwitch {
                switch,
                from_nic,
                pkt,
            } => self.packet_at_switch(now, switch, from_nic, pkt, sched),
            Event::PacketAtNic { node, pkt } => self.packet_at_nic(now, node, pkt, sched),
            Event::Watchdog {
                node,
                unit,
                generation,
            } => self.watchdog(now, node, unit, generation, sched),
            Event::FaultTransition { action } => self.apply_fault(action),
        }
    }

    /// §7.1 recovery: the RIG operation timed out. Abandon outstanding
    /// PRs, discard the partial gather (drop its filter bits and received
    /// records), and restart the command from its first idx with an
    /// exponentially backed-off, jittered watchdog. The escalation ladder:
    /// after `max_retries` restarts the node enters degraded mode
    /// (singleton PRs, forward-only switching); after twice that budget
    /// the command is abandoned outright so the run terminates instead of
    /// hanging on an unreachable destination.
    fn watchdog(
        &mut self,
        now: SimTime,
        node: u32,
        unit_id: u16,
        generation: u64,
        sched: &mut Scheduler<'_, Event>,
    ) {
        let base_ns = self.cfg.faults.watchdog_ns;
        let max_retries = self.cfg.faults.max_retries.max(1);
        let multiplier = self.cfg.faults.backoff_multiplier;
        let jitter_frac = self.cfg.faults.backoff_jitter;

        let cmd_retries;
        {
            let unit = &mut self.nodes[node as usize].units[unit_id as usize];
            if unit.generation != generation {
                return; // the command completed; stand down
            }
            if unit.cmd.is_none() {
                return; // spurious wakeup after completion
            }
            unit.retries += 1;
            unit.cmd_retries += 1;
            cmd_retries = unit.cmd_retries;
        }

        // Abandon the unit's outstanding PRs: any response that still
        // arrives is stale and must not resolve the ledger twice.
        let stale: Vec<(u16, u32)> = self.nodes[node as usize]
            .issue_times
            .range((unit_id, 0)..=(unit_id, u32::MAX))
            .map(|(&k, _)| k)
            .collect();
        for k in &stale {
            self.nodes[node as usize].issue_times.remove(k);
        }
        let n_stale = stale.len() as u64;
        self.faults.abandoned_prs += n_stale;
        #[cfg(any(debug_assertions, feature = "audit"))]
        self.audit.abandon_n("pr", n_stale);
        #[cfg(feature = "trace")]
        self.trace(
            TrackId::node(node, lane::RIG_BASE + unit_id as u32),
            TraceEvent::WatchdogRetry {
                retry: cmd_retries,
                abandoned: n_stale as u32,
            },
        );

        // Final escalation rung: the retry budget is exhausted twice over
        // (degraded mode included) — the destination is presumed gone.
        // Keep whatever data arrived, clear the pending table, and retire
        // the command; the functional check will flag the missing columns.
        if cmd_retries > 2 * max_retries {
            let unit = &mut self.nodes[node as usize].units[unit_id as usize];
            unit.received_this_cmd.clear();
            unit.rig.reset_pending();
            self.faults.abandoned_commands += 1;
            self.complete_command(now, node, unit_id, sched);
            return;
        }

        // First escalation rung: out of direct retries — fall back to
        // degraded direct PRs that skip every mechanism that kept failing.
        if cmd_retries >= max_retries {
            self.nodes[node as usize].degraded_mode = true;
        }

        let new_generation;
        {
            let st = &mut self.nodes[node as usize];
            let NodeState {
                units,
                filter,
                received,
                ..
            } = st;
            let unit = &mut units[unit_id as usize];
            let Some((start, _)) = unit.cmd else {
                return;
            };
            for idx in unit.received_this_cmd.drain(..) {
                filter.remove(idx);
                received.remove(&idx);
            }
            unit.rig.reset_pending();
            unit.pos = start;
            unit.generation += 1;
            new_generation = unit.generation;
            let was_running = unit.state == UnitState::Running;
            unit.state = UnitState::Running;
            if !was_running {
                sched.schedule(
                    now,
                    Event::ClientProcess {
                        node,
                        unit: unit_id,
                    },
                );
            }
        }

        // Exponential backoff with jitter: doubling (by default) spreads
        // retries past transient outages; the jitter desynchronizes units
        // that all timed out on the same failure.
        let exponent = cmd_retries.saturating_sub(1).min(16) as i32;
        let jitter = 1.0 + jitter_frac * self.jitter_rng.next_f64();
        let interval_ns = (base_ns as f64 * multiplier.powi(exponent) * jitter) as u64;
        let interval = SimTime::from_ns(interval_ns.max(base_ns));
        self.faults.backoff_wait += interval.saturating_sub(SimTime::from_ns(base_ns));
        sched.schedule(
            now + interval,
            Event::Watchdog {
                node,
                unit: unit_id,
                generation: new_generation,
            },
        );
    }

    /// Final invariant sweep, run before the report is assembled: cache
    /// accounting per switch, concatenators drained, link utilization
    /// physical, and (loss-free, retry-free runs only) PR conservation.
    #[cfg(any(debug_assertions, feature = "audit"))]
    fn audit_end_of_run(&self, comm_end: SimTime) {
        for s in &self.switches {
            s.pipes.check_invariants();
        }
        for n in &self.nodes {
            self.audit.check(
                n.concat.queued_prs() == 0,
                "NIC concatenators drained at end of run",
            );
            self.audit.check(
                n.finish.is_none() || n.units.iter().all(|u| u.rig.outstanding() == 0),
                "no PR outstanding on a finished node",
            );
        }
        for s in &self.switches {
            self.audit.check(
                s.concat.queued_prs() == 0,
                "switch concatenators drained at end of run",
            );
        }
        if comm_end > SimTime::ZERO {
            for l in &self.links {
                self.audit.check(
                    l.utilization(comm_end) <= 1.0 + 1e-9,
                    "link utilization within line rate",
                );
            }
        }
        let retries: u64 = self
            .nodes
            .iter()
            .flat_map(|n| n.units.iter())
            .map(|u| u.retries)
            .sum();
        if self.audit.ledger("pr").is_some() {
            if !self.cfg.faults.needs_watchdog() && retries == 0 {
                // Fault-free runs must balance exactly: every issued PR
                // resolved, nothing abandoned.
                self.audit.check_balanced("pr");
            } else {
                // Faulted runs conserve instead: issued PRs are resolved,
                // abandoned by the watchdog, or still tracked (a dropped
                // duplicate whose command completed without it).
                let outstanding: u64 = self.nodes.iter().map(|n| n.issue_times.len() as u64).sum();
                self.audit.check_conserved("pr", outstanding);
            }
        }
    }

    fn into_report(mut self, events: u64, audit_digest: Option<u64>) -> SimReport {
        let k = self.cfg.k;
        self.loss.finish();
        let mut fr = std::mem::take(&mut self.faults);
        fr.dropped_loss = self.loss.drops();
        fr.drop_bursts = self.loss.burst_lengths().clone();
        fr.degraded_nodes = self.nodes.iter().filter(|n| n.degraded_mode).count() as u64;
        let mut prs_per_packet = Histogram::new();
        for n in &self.nodes {
            prs_per_packet.merge(n.concat.prs_per_packet());
        }
        let mut cache_lookups = 0;
        let mut cache_hits = 0;
        for s in &self.switches {
            prs_per_packet.merge(s.concat.prs_per_packet());
            let cs = s.pipes.stats();
            cache_lookups += cs.lookups;
            cache_hits += cs.hits;
        }
        let total_link_bytes = self.links.iter().map(|l| l.bytes()).sum();
        let comm_end = self
            .nodes
            .iter()
            .filter_map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        #[cfg(any(debug_assertions, feature = "audit"))]
        self.audit_end_of_run(comm_end);
        let describe = |e: Element| match e {
            Element::Nic(n) => format!("nic {n}"),
            Element::Switch(s) => format!("switch {}", s.0),
        };
        let mut ranked: Vec<(u64, u32)> = self
            .links
            .iter()
            .enumerate()
            .filter(|(_, l)| l.bytes() > 0)
            .map(|(i, l)| (l.bytes(), i as u32))
            .collect();
        ranked.sort_unstable_by(|a, b| b.cmp(a));
        let hot_links: Vec<HotLink> = ranked
            .into_iter()
            .take(5)
            .map(|(bytes, i)| {
                let (from, to) = self.net.link_ends(netsparse_netsim::LinkId(i));
                HotLink {
                    from: describe(from),
                    to: describe(to),
                    bytes,
                    utilization: self.links[i as usize].utilization(comm_end),
                }
            })
            .collect();
        // Worst output-queue backlog across all links, expressed in bytes
        // at the line rate: the switch packet-buffer occupancy audit.
        let max_backlog = self
            .links
            .iter()
            .map(|l| (l.max_backlog().as_secs_f64() * l.params().bandwidth_bps / 8.0) as u64)
            .max()
            .unwrap_or(0);
        let mut functional = true;
        let nodes: Vec<NodeReport> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(p, n)| {
                if n.received != n.needed {
                    functional = false;
                }
                let mut r = NodeReport {
                    idxs_scanned: self.wl.stream(p as u32).len() as u64,
                    responses: n.responses,
                    duplicate_responses: n.dup_responses,
                    rx_payload_bytes: n.rx_payload,
                    rx_wire_bytes: self.links[self.downlink[p].0 as usize].bytes(),
                    tx_wire_bytes: self.links[self.from_nic[p].0 .0 as usize].bytes(),
                    finish: n.finish.unwrap_or(SimTime::ZERO),
                    ..NodeReport::default()
                };
                for u in &n.units {
                    let s = u.rig.stats();
                    r.local += s.local;
                    r.filtered += s.filtered;
                    r.coalesced += s.coalesced;
                    r.issued += s.issued;
                    r.stalls += s.stalls;
                    r.watchdog_retries += u.retries;
                }
                if n.finish.is_none() {
                    functional = false;
                }
                r
            })
            .collect();
        let comm_time = nodes
            .iter()
            .map(|n| n.finish)
            .max()
            .unwrap_or(SimTime::ZERO);
        fr.watchdog_retries = nodes.iter().map(|n| n.watchdog_retries).sum();
        let wd = self.cfg.faults.watchdog_ns;
        if wd > 0 {
            // Watchdog-sanity check (satellite of §7.1): a timeout below
            // the worst-case PR round trip restarts healthy commands.
            let est = self.cfg.estimated_worst_rtt_ns();
            if wd < est {
                fr.watchdog_warning = Some(format!(
                    "watchdog_ns = {wd} is below the estimated worst-case \
                     PR round trip of {est} ns; expect spurious restarts"
                ));
            }
        }
        let dropped_packets = fr.total_dropped();
        let faults = if self.cfg.faults.is_active() || wd > 0 {
            Some(fr)
        } else {
            None
        };
        // Fold the trace into the report: raw buffer, derived timeline
        // (16 windows), and the full-trace digest.
        #[cfg(feature = "trace")]
        let trace = self
            .tracer
            .as_ref()
            .map(|t| TraceReport::from_tracer(t, 16));
        SimReport {
            k,
            nodes,
            comm_time,
            prs_per_packet,
            cache_lookups,
            cache_hits,
            total_link_bytes,
            line_rate_bps: self.cfg.link.bandwidth_bps,
            functional_check_passed: functional,
            events,
            dropped_packets,
            pr_latency: self.pr_latency,
            max_link_backlog_bytes: max_backlog,
            hot_links,
            audit_digest,
            faults,
            #[cfg(feature = "trace")]
            trace,
        }
    }
}

/// Runs the communication phase of one distributed sparse kernel under
/// `cfg` and returns the full report.
///
/// # Panics
///
/// Panics if the workload's node count differs from the topology's, or if
/// the configuration fails [`ClusterConfig::validate`] (e.g. packet loss
/// configured without a watchdog).
///
/// # Example
///
/// See the crate-level example.
pub fn simulate(cfg: &ClusterConfig, wl: &CommWorkload) -> SimReport {
    if let Err(e) = cfg.validate() {
        panic!("invalid cluster config: {e}");
    }
    let world = World::new(cfg, wl);
    run(world, wl)
}

/// Runs exactly like [`simulate`] with a structured tracer attached; the
/// returned report additionally carries a `TraceReport` (records,
/// timeline metrics, full-trace digest). Available only under the `trace`
/// feature — default builds compile no trace code at all.
///
/// # Panics
///
/// Same conditions as [`simulate`].
#[cfg(feature = "trace")]
pub fn simulate_traced(cfg: &ClusterConfig, wl: &CommWorkload, tcfg: TraceConfig) -> SimReport {
    if let Err(e) = cfg.validate() {
        panic!("invalid cluster config: {e}");
    }
    let mut world = World::new(cfg, wl);
    let tracer = Tracer::new(tcfg);
    world.attach_tracer(&tracer);
    run(world, wl)
}

/// The shared event-loop body of [`simulate`] and `simulate_traced`.
fn run(mut world: World<'_>, wl: &CommWorkload) -> SimReport {
    let mut engine: Engine<Event> = Engine::new();
    for (t, action) in std::mem::take(&mut world.pending_transitions) {
        engine.schedule(t, Event::FaultTransition { action });
    }
    for node in 0..wl.nodes() {
        if !wl.stream(node).is_empty() {
            engine.schedule(SimTime::ZERO, Event::HostIssue { node });
        }
    }
    // The run drains naturally: every queued PR has an armed expiry and
    // every outstanding PR a response in flight.
    engine.run(|now, ev, sched| world.handle(now, ev, sched));
    let digest = engine.audit_digest();
    world.into_report(engine.processed(), digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanisms;
    use crate::metrics::SimReport;
    use netsparse_netsim::Topology;
    use netsparse_sparse::Partition1D;

    fn small_topo() -> Topology {
        Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        }
    }

    /// 8 nodes; node 0 references properties of nodes 1 (same rack) and
    /// 4 (other rack), with repeats.
    fn tiny_workload() -> CommWorkload {
        let part = Partition1D::even(8 * 16, 8);
        let mut streams: Vec<Vec<u32>> = vec![vec![]; 8];
        streams[0] = vec![16, 17, 16, 64, 65, 64, 0, 1, 16];
        streams[2] = vec![64, 65, 66]; // same rack as 0, shares node 4's idxs
        CommWorkload::from_streams(part, vec![16; 8], streams)
    }

    fn cfg(k: u32) -> ClusterConfig {
        ClusterConfig::mini(small_topo(), k)
    }

    #[test]
    fn tiny_run_is_functionally_correct() {
        let wl = tiny_workload();
        let r = simulate(&cfg(16), &wl);
        assert!(r.functional_check_passed);
        // Node 0 needed {16, 17, 64, 65}: responses = 4 with filtering.
        assert_eq!(r.nodes[0].responses, 4);
        assert_eq!(r.nodes[0].issued, 4);
        assert_eq!(r.nodes[0].local, 2);
        assert_eq!(r.nodes[0].filtered + r.nodes[0].coalesced, 3);
        // Node 2 needed {64, 65, 66}.
        assert_eq!(r.nodes[2].responses, 3);
        // Idle nodes finish instantly.
        assert_eq!(r.nodes[7].finish, SimTime::ZERO);
        assert!(r.comm_time > SimTime::ZERO);
    }

    #[test]
    fn disabling_filter_and_coalesce_issues_every_remote_ref() {
        let wl = tiny_workload();
        let mut c = cfg(16);
        c.mechanisms = Mechanisms {
            filter: false,
            coalesce: false,
            ..Mechanisms::all()
        };
        let r = simulate(&c, &wl);
        assert!(r.functional_check_passed);
        // All 7 remote refs of node 0 become PRs.
        assert_eq!(r.nodes[0].issued, 7);
        assert_eq!(r.nodes[0].responses, 7);
        assert_eq!(r.nodes[0].duplicate_responses, 3);
    }

    #[test]
    fn rig_only_matches_full_on_traffic_ordering() {
        let wl = tiny_workload();
        let mut c = cfg(16);
        c.mechanisms = Mechanisms::rig_only();
        let rig = simulate(&c, &wl);
        let full = simulate(&cfg(16), &wl);
        assert!(rig.functional_check_passed && full.functional_check_passed);
        // The full design never moves more bytes than RIG-only.
        assert!(full.total_link_bytes <= rig.total_link_bytes);
    }

    #[test]
    fn property_cache_serves_rack_sharing() {
        // Node 0 and node 2 (same rack) both need node 4's properties.
        // Whichever asks second should hit the ToR cache.
        let wl = tiny_workload();
        let r = simulate(&cfg(16), &wl);
        assert!(r.cache_lookups > 0);
        // Cache hits are possible but timing-dependent; inserts must have
        // happened for the inter-rack responses.
        assert!(r.functional_check_passed);
    }

    #[test]
    fn simulation_is_deterministic() {
        let wl = tiny_workload();
        let a = simulate(&cfg(16), &wl);
        let b = simulate(&cfg(16), &wl);
        assert_eq!(a.comm_time, b.comm_time);
        assert_eq!(a.total_link_bytes, b.total_link_bytes);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn larger_k_means_more_bytes() {
        let wl = tiny_workload();
        let r16 = simulate(&cfg(16), &wl);
        let r128 = simulate(&cfg(128), &wl);
        assert!(r128.total_link_bytes > r16.total_link_bytes);
    }

    #[test]
    fn adaptive_throttle_reduces_duplicates_for_reuse_heavy_workloads() {
        // A small batch size over a reuse-heavy (arabic-like) workload
        // maximizes concurrent-command overlap; the adaptive controller
        // should cut duplicate responses without breaking delivery.
        let wl = netsparse_sparse::suite::SuiteConfig {
            matrix: netsparse_sparse::SuiteMatrix::Arabic,
            nodes: 8,
            rack_size: 4,
            scale: 0.2,
            seed: 9,
        }
        .generate();
        let topo = Topology::LeafSpine {
            racks: 2,
            rack_size: 4,
            spines: 2,
        };
        let mut fixed = ClusterConfig::mini(topo, 16);
        fixed.batch_size = 256;
        let mut adaptive = fixed.clone();
        adaptive.adaptive_batch = true;
        let r_fixed = simulate(&fixed, &wl);
        let r_adapt = simulate(&adaptive, &wl);
        assert!(r_fixed.functional_check_passed && r_adapt.functional_check_passed);
        let dups = |r: &SimReport| -> u64 { r.nodes.iter().map(|n| n.duplicate_responses).sum() };
        assert!(
            dups(&r_adapt) <= dups(&r_fixed),
            "adaptive {} vs fixed {} duplicates",
            dups(&r_adapt),
            dups(&r_fixed)
        );
    }

    #[test]
    #[should_panic(expected = "node count")]
    fn mismatched_workload_panics() {
        let part = Partition1D::even(64, 4);
        let wl = CommWorkload::from_streams(part, vec![16; 4], vec![vec![]; 4]);
        simulate(&cfg(16), &wl);
    }
}
