//! Simulation reports: everything the paper's tables and figures read off.

use std::fmt;

use netsparse_desim::{Histogram, Reservoir, SimTime};

/// Per-node results of a NetSparse simulation.
#[derive(Debug, Clone, Default)]
pub struct NodeReport {
    /// Idxs scanned (nonzeros of the node's rows).
    pub idxs_scanned: u64,
    /// Idxs that referenced local properties.
    pub local: u64,
    /// PRs dropped by the Idx Filter.
    pub filtered: u64,
    /// PRs dropped by coalescing.
    pub coalesced: u64,
    /// Read PRs issued into the network.
    pub issued: u64,
    /// Responses received (property payloads written to host memory).
    pub responses: u64,
    /// Responses carrying a property this node already had (cross-unit
    /// duplicates; zero when filtering+coalescing fully succeed).
    pub duplicate_responses: u64,
    /// Property payload bytes received.
    pub rx_payload_bytes: u64,
    /// Wire bytes received on the node's downlink (headers included).
    pub rx_wire_bytes: u64,
    /// Wire bytes sent on the node's uplink.
    pub tx_wire_bytes: u64,
    /// When the node finished all its RIG commands.
    pub finish: SimTime,
    /// RIG-unit stall events (Pending PR Table full).
    pub stalls: u64,
    /// RIG commands restarted by the §7.1 watchdog.
    pub watchdog_retries: u64,
}

impl NodeReport {
    /// Remote references scanned (idxs that needed a remote property).
    pub fn remote_refs(&self) -> u64 {
        self.filtered + self.coalesced + self.issued
    }

    /// Fraction of remote references eliminated by filtering + coalescing
    /// (Table 7, "F+C Rate").
    pub fn fc_rate(&self) -> f64 {
        let remote = self.remote_refs();
        if remote == 0 {
            0.0
        } else {
            (self.filtered + self.coalesced) as f64 / remote as f64
        }
    }
}

/// Everything the fault-injection layer observed in one run — populated
/// only when faults are configured (see `docs/FAULTS.md`).
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    /// Packets dropped by the stochastic loss process (Bernoulli or
    /// Gilbert–Elliott), per switch traversal.
    pub dropped_loss: u64,
    /// Packets blackholed by a dead switch or severed route.
    pub dropped_dead: u64,
    /// Distribution of consecutive-drop burst lengths from the loss
    /// process (the Gilbert–Elliott signature; Bernoulli runs cluster at
    /// 1).
    pub drop_bursts: Histogram,
    /// Total watchdog command restarts across the cluster.
    pub watchdog_retries: u64,
    /// Extra waiting accumulated by exponential backoff beyond the base
    /// watchdog interval.
    pub backoff_wait: SimTime,
    /// Next-hop routing entries rewritten by failover recomputations.
    pub route_failovers: u64,
    /// Scheduled failure/repair transitions applied.
    pub fault_transitions: u64,
    /// Nodes that escalated to degraded mode (retry budget exhausted).
    pub degraded_nodes: u64,
    /// PRs sent via the degraded direct path (unconcatenated, uncached).
    pub degraded_prs: u64,
    /// PRs abandoned by watchdog restarts (conservation ledger's
    /// `abandoned` column).
    pub abandoned_prs: u64,
    /// Commands given up entirely after the extended budget (destination
    /// unreachable); nonzero here means `functional_check_passed` is
    /// expected to be false.
    pub abandoned_commands: u64,
    /// Responses that arrived for already-abandoned PRs (the data is
    /// still delivered; the ledger counts them separately to avoid
    /// over-resolving).
    pub stale_responses: u64,
    /// PR ledger entries still open at termination: PRs whose packet was
    /// dropped but whose command completed without them (e.g. a lost
    /// duplicate). Closes the conservation law exactly:
    /// `issued == resolved + abandoned_prs + orphaned_prs`.
    pub orphaned_prs: u64,
    /// Set when `watchdog_ns` is below the estimated worst-case command
    /// RTT: the watchdog restarts *healthy* commands, and the resulting
    /// storm masquerades as loss.
    pub watchdog_warning: Option<String>,
}

impl FaultReport {
    /// Total packets lost to any cause.
    pub fn total_dropped(&self) -> u64 {
        self.dropped_loss + self.dropped_dead
    }
}

/// What the in-network reduction extension observed in one run —
/// populated only when `ClusterConfig::reduce.enabled` is set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReduceReport {
    /// Partial-sum contributions issued by nodes (one per issued read PR).
    pub contribs_issued: u64,
    /// Original contributions that reached their root (counted through
    /// merged PRs' fold counts).
    pub contribs_delivered: u64,
    /// Original contributions lost in flight (fault runs only), counted at
    /// the drop site through each dropped PR's fold count.
    pub contribs_dropped: u64,
    /// Wrapping sum of issued contribution values.
    pub value_issued: u32,
    /// Wrapping sum of delivered contribution values at the roots.
    pub value_delivered: u32,
    /// Wrapping sum of dropped contribution values.
    pub value_dropped: u32,
    /// Contributions folded into existing partial-sum table entries — each
    /// one is a PR that stopped traveling at a switch.
    pub merges: u64,
    /// Contributions forwarded unmerged because a table was full (or a
    /// fold would overflow the PR-layer count field).
    pub bypassed: u64,
    /// Partial PRs that arrived at root NICs (merged or not).
    pub partial_prs_at_root: u64,
    /// Wire bytes of Partial-carrying packets received on root downlinks.
    pub root_wire_bytes: u64,
}

impl ReduceReport {
    /// Exact conservation check: every issued contribution is delivered or
    /// accounted for at a drop site, and values match wrappingly.
    pub fn conserved(&self) -> bool {
        self.contribs_issued == self.contribs_delivered + self.contribs_dropped
            && self.value_issued == self.value_delivered.wrapping_add(self.value_dropped)
    }
}

/// The full result of one cluster simulation.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Property size (elements).
    pub k: u32,
    /// Per-node breakdown.
    pub nodes: Vec<NodeReport>,
    /// Kernel communication time (the slowest node's finish).
    pub comm_time: SimTime,
    /// PRs per packet across every concatenation point (Table 7).
    pub prs_per_packet: Histogram,
    /// Property Cache lookups across all switches.
    pub cache_lookups: u64,
    /// Property Cache hits across all switches.
    pub cache_hits: u64,
    /// Total wire bytes over all network links (per-hop accounting).
    pub total_link_bytes: u64,
    /// Network line rate in bits/second (for utilization math).
    pub line_rate_bps: f64,
    /// Every node received exactly its needed set of remote properties.
    pub functional_check_passed: bool,
    /// Total events processed by the engine.
    pub events: u64,
    /// Packets lost to injected hardware failures (§7.1).
    pub dropped_packets: u64,
    /// Sampled PR round-trip latencies (issue to response arrival).
    pub pr_latency: Reservoir,
    /// Worst per-link output-queue occupancy in bytes — must stay far
    /// below the switch packet buffer (Table 5: 96 MB) for the lossless
    /// assumption to hold.
    pub max_link_backlog_bytes: u64,
    /// The five busiest links, most-loaded first — where the bottleneck
    /// lives.
    pub hot_links: Vec<HotLink>,
    /// Event-stream digest from the engine's auditor: two same-seed runs
    /// must report identical digests. `None` in release builds without the
    /// `audit` feature (auditing compiled out).
    pub audit_digest: Option<u64>,
    /// Fault-injection observations; `None` when the run was fault-free.
    pub faults: Option<FaultReport>,
    /// In-network reduction observations; `None` when the extension is
    /// disabled (every pre-extension scenario).
    pub reduce: Option<ReduceReport>,
    /// Structured trace capture (`simulate_traced`); `None` for untraced
    /// runs. Only present when the `trace` feature is enabled.
    #[cfg(feature = "trace")]
    pub trace: Option<netsparse_desim::TraceReport>,
}

/// One heavily loaded link in the run.
#[derive(Debug, Clone, PartialEq)]
pub struct HotLink {
    /// Human-readable source element (e.g. `switch 3`, `nic 17`).
    pub from: String,
    /// Human-readable destination element.
    pub to: String,
    /// Bytes carried.
    pub bytes: u64,
    /// Fraction of the line rate used over the kernel.
    pub utilization: f64,
}

impl SimReport {
    /// Communication time in seconds.
    pub fn comm_time_s(&self) -> f64 {
        self.comm_time.as_secs_f64()
    }

    /// Index of the tail node (latest finish).
    pub fn tail_node(&self) -> usize {
        self.nodes
            .iter()
            .enumerate()
            .max_by_key(|(_, n)| n.finish)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }

    /// The tail node's report.
    pub fn tail(&self) -> &NodeReport {
        &self.nodes[self.tail_node()]
    }

    /// Property Cache hit rate (Table 7).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Tail-node goodput: useful payload bits over `comm_time` at the line
    /// rate (Table 7, "Gput").
    pub fn tail_goodput(&self) -> f64 {
        let t = self.comm_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        let bits = self.tail().rx_payload_bytes as f64 * 8.0;
        bits / t / self.line_rate_bps
    }

    /// Tail-node downlink line utilization (Table 7, "Line Util.").
    pub fn tail_line_utilization(&self) -> f64 {
        let t = self.comm_time_s();
        if t <= 0.0 {
            return 0.0;
        }
        let bits = self.tail().rx_wire_bytes as f64 * 8.0;
        bits / t / self.line_rate_bps
    }

    /// Total read PRs issued cluster-wide.
    pub fn total_issued(&self) -> u64 {
        self.nodes.iter().map(|n| n.issued).sum()
    }

    /// The `q`-quantile of PR round-trip latency, if any PRs completed.
    pub fn pr_latency_quantile(&self, q: f64) -> Option<SimTime> {
        self.pr_latency.quantile(q).map(SimTime::from_ps)
    }

    /// Figure 19's curve: how many nodes are still communicating at each
    /// of `samples` evenly spaced instants of the kernel.
    pub fn active_nodes_curve(&self, samples: usize) -> Vec<u32> {
        let end = self.comm_time;
        (0..samples)
            .map(|i| {
                // simaudit:allow(no-raw-time-math): exact u128 integer interpolation, no float rounding
                let t = SimTime::from_ps(
                    ((end.as_ps() as u128 * i as u128) / samples.max(1) as u128) as u64,
                );
                self.nodes.iter().filter(|n| n.finish > t).count() as u32
            })
            .collect()
    }
}

impl fmt::Display for SimReport {
    /// A one-screen human summary of the run (examples print this).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "communication: {} over {} nodes (K={}, {} events)",
            self.comm_time,
            self.nodes.len(),
            self.k,
            self.events
        )?;
        let tail = self.tail();
        writeln!(
            f,
            "tail node {}: F+C {:.1}% | goodput {:.1}% | line util {:.1}%",
            self.tail_node(),
            tail.fc_rate() * 100.0,
            self.tail_goodput() * 100.0,
            self.tail_line_utilization() * 100.0
        )?;
        writeln!(
            f,
            "PRs: {} issued, {:.1}/packet | cache hits {:.1}% | {} B on the wire",
            self.total_issued(),
            self.prs_per_packet.mean(),
            self.cache_hit_rate() * 100.0,
            self.total_link_bytes
        )?;
        if let (Some(p50), Some(p99)) = (
            self.pr_latency_quantile(0.5),
            self.pr_latency_quantile(0.99),
        ) {
            writeln!(f, "PR latency: p50 {p50}, p99 {p99}")?;
        }
        if let Some(fr) = &self.faults {
            writeln!(
                f,
                "faults: {} dropped ({} loss / {} dead), {} retries, {} failovers",
                fr.total_dropped(),
                fr.dropped_loss,
                fr.dropped_dead,
                fr.watchdog_retries,
                fr.route_failovers
            )?;
            if fr.degraded_nodes > 0 {
                writeln!(
                    f,
                    "degraded mode: {} nodes, {} direct PRs, {} PRs abandoned",
                    fr.degraded_nodes, fr.degraded_prs, fr.abandoned_prs
                )?;
            }
            if let Some(w) = &fr.watchdog_warning {
                writeln!(f, "warning: {w}")?;
            }
        } else if self.dropped_packets > 0 {
            writeln!(f, "faults: {} packets dropped", self.dropped_packets)?;
        }
        if let Some(rr) = &self.reduce {
            writeln!(
                f,
                "reduction: {} contribs, {} merged in-network ({} bypassed), {} PRs / {} B at roots",
                rr.contribs_issued,
                rr.merges,
                rr.bypassed,
                rr.partial_prs_at_root,
                rr.root_wire_bytes
            )?;
        }
        #[cfg(feature = "trace")]
        if let Some(tr) = &self.trace {
            writeln!(
                f,
                "trace: {} records ({} dropped), digest {:#018x}",
                tr.buffer.len(),
                tr.buffer.dropped(),
                tr.digest
            )?;
        }
        write!(
            f,
            "functional check: {}",
            if self.functional_check_passed {
                "passed"
            } else {
                "FAILED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(finish_ns: u64, payload: u64, wire: u64) -> NodeReport {
        NodeReport {
            finish: SimTime::from_ns(finish_ns),
            rx_payload_bytes: payload,
            rx_wire_bytes: wire,
            filtered: 6,
            coalesced: 2,
            issued: 2,
            ..NodeReport::default()
        }
    }

    fn report() -> SimReport {
        SimReport {
            k: 16,
            nodes: vec![node(100, 800, 1_000), node(200, 1_600, 2_000)],
            comm_time: SimTime::from_ns(200),
            prs_per_packet: Histogram::new(),
            cache_lookups: 10,
            cache_hits: 4,
            total_link_bytes: 3_000,
            line_rate_bps: 400e9,
            functional_check_passed: true,
            events: 42,
            dropped_packets: 0,
            pr_latency: Reservoir::new(16, 0),
            max_link_backlog_bytes: 0,
            hot_links: Vec::new(),
            audit_digest: None,
            faults: None,
            reduce: None,
            #[cfg(feature = "trace")]
            trace: None,
        }
    }

    #[test]
    fn tail_node_is_latest_finisher() {
        let r = report();
        assert_eq!(r.tail_node(), 1);
        assert_eq!(r.tail().rx_payload_bytes, 1_600);
    }

    #[test]
    fn fc_rate_counts_drops() {
        let n = node(1, 0, 0);
        assert_eq!(n.remote_refs(), 10);
        assert!((n.fc_rate() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn goodput_and_utilization() {
        let r = report();
        // 1600 B in 200 ns at 400 Gbps: 1600*8 / 200e-9 / 400e9 = 0.16.
        assert!((r.tail_goodput() - 0.16).abs() < 1e-12);
        assert!((r.tail_line_utilization() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn cache_hit_rate() {
        assert!((report().cache_hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn display_summarizes_the_run() {
        let text = report().to_string();
        assert!(text.contains("tail node 1"));
        assert!(text.contains("functional check: passed"));
    }

    #[test]
    fn display_summarizes_faults() {
        let mut r = report();
        r.faults = Some(FaultReport {
            dropped_loss: 7,
            dropped_dead: 3,
            watchdog_retries: 5,
            route_failovers: 2,
            degraded_nodes: 1,
            degraded_prs: 11,
            watchdog_warning: Some("watchdog 1 us below estimated RTT 4 us".into()),
            ..FaultReport::default()
        });
        let text = r.to_string();
        assert!(text.contains("10 dropped (7 loss / 3 dead)"), "{text}");
        assert!(text.contains("degraded mode: 1 nodes"), "{text}");
        assert!(text.contains("warning: watchdog"), "{text}");
        assert_eq!(r.faults.as_ref().unwrap().total_dropped(), 10);
    }

    #[test]
    fn reduce_report_conservation_and_display() {
        let mut r = report();
        let mut rr = ReduceReport {
            contribs_issued: 10,
            contribs_delivered: 9,
            contribs_dropped: 1,
            value_issued: 5u32.wrapping_add(u32::MAX),
            value_delivered: u32::MAX,
            value_dropped: 5,
            merges: 6,
            bypassed: 1,
            partial_prs_at_root: 3,
            root_wire_bytes: 512,
        };
        assert!(rr.conserved());
        rr.contribs_dropped = 0;
        assert!(!rr.conserved());
        rr.contribs_dropped = 1;
        r.reduce = Some(rr);
        let text = r.to_string();
        assert!(text.contains("reduction: 10 contribs, 6 merged"), "{text}");
        assert!(text.contains("512 B at roots"), "{text}");
    }

    #[test]
    fn active_nodes_curve_decreases() {
        let r = report();
        let curve = r.active_nodes_curve(4);
        assert_eq!(curve, vec![2, 2, 1, 1]);
    }
}
