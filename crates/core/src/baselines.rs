//! SUOpt / SAOpt baselines and baseline-vs-NetSparse comparisons (§8.1).

use netsparse_accel::{SaOptModel, SuOptModel};
use netsparse_sparse::CommWorkload;

use crate::metrics::SimReport;

/// The two idealized software baselines, configured for one cluster.
#[derive(Debug, Clone, Copy)]
pub struct Baselines {
    /// The sparsity-unaware optimum.
    pub su: SuOptModel,
    /// The Conveyors-augmented sparsity-aware baseline.
    pub sa: SaOptModel,
}

impl Baselines {
    /// Baselines at the paper's 400 Gbps line rate.
    pub fn paper() -> Self {
        Baselines {
            su: SuOptModel::new(400.0),
            sa: SaOptModel::paper(),
        }
    }

    /// Baselines matched to a simulated line rate (the mini profile runs
    /// at 100 Gbps; the baselines must see the same wire).
    ///
    /// SAOpt's per-PR software cost is a *fixed* real-time cost; on a
    /// scaled-down machine it would claim a smaller share of the kernel
    /// than it does at paper scale. To keep SAOpt's position relative to
    /// SUOpt invariant under the scaling (both are bandwidth-normalized),
    /// the per-PR cost is scaled by `400 / line_rate` — at 400 Gbps this
    /// is exactly the paper-calibrated value.
    pub fn for_line_rate(gbps: f64) -> Self {
        let paper = SaOptModel::paper();
        Baselines {
            su: SuOptModel::new(gbps),
            sa: SaOptModel {
                line_rate_gbps: gbps,
                per_pr_ns: paper.per_pr_ns * (400.0 / gbps),
                ..paper
            },
        }
    }
}

/// Communication-time comparison for one workload and property size
/// (the data behind Figure 12 and Table 8's speedup columns).
#[derive(Debug, Clone, Copy)]
pub struct CommComparison {
    /// Property size in elements.
    pub k: u32,
    /// SUOpt kernel communication time, seconds.
    pub su_time: f64,
    /// SAOpt kernel communication time, seconds.
    pub sa_time: f64,
    /// NetSparse simulated communication time, seconds.
    pub netsparse_time: f64,
}

impl CommComparison {
    /// Builds the comparison from the analytic baselines and a simulation
    /// report.
    pub fn new(baselines: &Baselines, wl: &CommWorkload, report: &SimReport) -> Self {
        CommComparison {
            k: report.k,
            su_time: baselines.su.kernel_comm_time(wl, report.k),
            sa_time: baselines.sa.kernel_comm_time(wl, report.k),
            netsparse_time: report.comm_time_s(),
        }
    }

    /// NetSparse speedup over SUOpt (Figure 12's main series).
    pub fn netsparse_over_su(&self) -> f64 {
        safe_ratio(self.su_time, self.netsparse_time)
    }

    /// SAOpt speedup over SUOpt (Figure 12's second series).
    pub fn sa_over_su(&self) -> f64 {
        safe_ratio(self.su_time, self.sa_time)
    }

    /// NetSparse speedup over SAOpt.
    pub fn netsparse_over_sa(&self) -> f64 {
        safe_ratio(self.sa_time, self.netsparse_time)
    }
}

fn safe_ratio(num: f64, den: f64) -> f64 {
    if den <= 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Geometric mean of a nonempty slice (0 for empty input).
pub fn gmean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmean_of_constants() {
        assert!((gmean(&[4.0, 4.0, 4.0]) - 4.0).abs() < 1e-12);
        assert!((gmean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(gmean(&[]), 0.0);
    }

    #[test]
    fn ratios_guard_division_by_zero() {
        let c = CommComparison {
            k: 16,
            su_time: 1.0,
            sa_time: 0.0,
            netsparse_time: 0.0,
        };
        assert_eq!(c.netsparse_over_su(), 0.0);
        assert_eq!(c.sa_over_su(), 0.0);
    }

    #[test]
    fn baselines_share_line_rate() {
        let b = Baselines::for_line_rate(100.0);
        assert_eq!(b.su.line_rate_gbps, 100.0);
        assert_eq!(b.sa.line_rate_gbps, 100.0);
    }
}
