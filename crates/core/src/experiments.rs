//! High-level experiment drivers shared by the bench harness, examples
//! and integration tests.
//!
//! Each paper experiment composes three things: a calibrated workload
//! (generated once per matrix and reused across property sizes), a
//! [`ClusterConfig`], and either the full simulation, the analytic
//! baselines, or both. The bench crate's binaries do the sweeping and
//! table formatting; the building blocks live here.

use netsparse_accel::{ComputeEngine, ComputeModel};
use netsparse_netsim::Topology;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::{CommWorkload, SuiteMatrix};
use serde::{Deserialize, Serialize};

use crate::baselines::{Baselines, CommComparison};
use crate::config::ClusterConfig;
use crate::metrics::SimReport;
use crate::sim::simulate;

/// The three sparse kernels of the paper (§2.1). Their *communication*
/// pattern is identical — a remote indexed gather of K-element input
/// properties driven by the nonzero column ids — so one simulated gather
/// serves all three; only the compute-side cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SparseKernel {
    /// Sparse matrix x dense vector (K = 1).
    SpMV,
    /// Sparse matrix x tall-skinny dense matrix.
    SpMM {
        /// Property width in elements.
        k: u32,
    },
    /// Sampled dense-dense multiply over the nonzero pattern.
    Sddmm {
        /// Property width in elements.
        k: u32,
    },
}

impl SparseKernel {
    /// The property width this kernel gathers.
    pub fn k(&self) -> u32 {
        match *self {
            SparseKernel::SpMV => 1,
            SparseKernel::SpMM { k } | SparseKernel::Sddmm { k } => k,
        }
    }

    /// Per-node compute time under `model`.
    pub fn compute_time(&self, model: &ComputeModel, nnz: u64, rows: u64) -> f64 {
        match *self {
            SparseKernel::SpMV => model.spmm_time(nnz, rows, 1),
            SparseKernel::SpMM { k } => model.spmm_time(nnz, rows, k),
            SparseKernel::Sddmm { k } => model.sddmm_time(nnz, k),
        }
    }
}

/// A matrix's workload pinned to a cluster size, reused across runs.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Which benchmark matrix.
    pub matrix: SuiteMatrix,
    /// The generated communication workload.
    pub wl: CommWorkload,
}

impl Experiment {
    /// Generates `matrix` for a 128-node, rack-of-16 cluster at `scale`.
    pub fn new(matrix: SuiteMatrix, scale: f64, seed: u64) -> Self {
        Experiment {
            matrix,
            wl: matrix.workload(scale, seed),
        }
    }

    /// Generates `matrix` for an arbitrary cluster shape.
    pub fn with_cluster(
        matrix: SuiteMatrix,
        nodes: u32,
        rack_size: u32,
        scale: f64,
        seed: u64,
    ) -> Self {
        Experiment {
            matrix,
            wl: SuiteConfig {
                matrix,
                nodes,
                rack_size,
                scale,
                seed,
            }
            .generate(),
        }
    }

    /// Runs the NetSparse simulation under `cfg`.
    pub fn run(&self, cfg: &ClusterConfig) -> SimReport {
        simulate(cfg, &self.wl)
    }

    /// Runs the simulation with a structured trace capture attached; the
    /// report's `trace` field carries the buffer, timeline and digest.
    #[cfg(feature = "trace")]
    pub fn run_traced(&self, cfg: &ClusterConfig, tcfg: netsparse_desim::TraceConfig) -> SimReport {
        crate::sim::simulate_traced(cfg, &self.wl, tcfg)
    }

    /// Runs the simulation and compares against the software baselines at
    /// the same line rate (Figure 12's bars for one matrix and K).
    pub fn compare(&self, cfg: &ClusterConfig) -> (CommComparison, SimReport) {
        let report = self.run(cfg);
        let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);
        let cmp = CommComparison::new(&baselines, &self.wl, &report);
        (cmp, report)
    }

    /// Runs the five cumulative ablation stages of Table 8.
    pub fn ablation(&self, base_cfg: &ClusterConfig) -> Vec<AblationRow> {
        crate::config::Mechanisms::ablation_stages()
            .into_iter()
            .map(|(name, mechanisms)| {
                let mut cfg = base_cfg.clone();
                cfg.mechanisms = mechanisms;
                let (cmp, report) = self.compare(&cfg);
                let su_tail_bytes = self.su_tail_bytes(&report);
                AblationRow {
                    stage: name,
                    speedup_vs_su: cmp.netsparse_over_su(),
                    traffic_reduction_vs_su: su_tail_bytes as f64
                        / report.tail().rx_wire_bytes.max(1) as f64,
                    goodput: report.tail_goodput(),
                }
            })
            .collect()
    }

    /// SUOpt bytes the simulated tail node would have received.
    fn su_tail_bytes(&self, report: &SimReport) -> u64 {
        let tail = report.tail_node() as u32;
        let stats = self.wl.pattern_stats();
        stats.per_node[tail as usize].su_received * 4 * report.k as u64
    }

    /// Full end-to-end SpMM comparison (Figures 13/14/21).
    pub fn end_to_end(&self, cfg: &ClusterConfig, engine: ComputeEngine) -> EndToEnd {
        let report = self.run(cfg);
        self.end_to_end_from(cfg, engine, &report)
    }

    /// End-to-end comparison for any of the paper's kernels (§2.1). The
    /// gather is identical across kernels at equal K — one simulation at
    /// `kernel.k()` serves — but the compute roofline differs.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.k` differs from the kernel's property width.
    pub fn end_to_end_kernel(
        &self,
        cfg: &ClusterConfig,
        engine: ComputeEngine,
        kernel: SparseKernel,
    ) -> EndToEnd {
        assert_eq!(
            cfg.k,
            kernel.k(),
            "cluster K must match the kernel's property width"
        );
        let report = self.run(cfg);
        let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);
        let bw_scale = cfg.link.bandwidth_bps / 400e9;
        let mut model = ComputeModel::new(engine);
        model.mem_bw *= bw_scale;
        model.peak_flops *= bw_scale;
        let k = cfg.k;
        let wl = &self.wl;
        let total_rows: u64 = (0..wl.nodes()).map(|p| wl.rows_of(p) as u64).sum();
        let t1 = kernel.compute_time(&model, wl.total_nnz(), total_rows);
        let comp: Vec<f64> = (0..wl.nodes())
            .map(|p| kernel.compute_time(&model, wl.stream(p).len() as u64, wl.rows_of(p) as u64))
            .collect();
        let stats = wl.pattern_stats();
        let fold_max = |it: Box<dyn Iterator<Item = f64> + '_>| it.fold(0.0f64, f64::max);
        let t_netsparse = fold_max(Box::new(
            comp.iter()
                .enumerate()
                .map(|(p, &c)| c.max(report.nodes[p].finish.as_secs_f64())),
        ));
        let t_su = fold_max(Box::new(comp.iter().enumerate().map(|(p, &c)| {
            c.max(baselines.su.comm_time(stats.per_node[p].su_received, k))
        })));
        let t_sa =
            fold_max(Box::new(comp.iter().enumerate().map(|(p, &c)| {
                c.max(baselines.sa.node_comm_time(wl, p as u32, k))
            })));
        let t_ideal = fold_max(Box::new(comp.iter().copied()));
        let tail = report.tail_node();
        EndToEnd {
            engine,
            k,
            speedup_su: t1 / t_su,
            speedup_sa: t1 / t_sa,
            speedup_netsparse: t1 / t_netsparse,
            speedup_ideal: t1 / t_ideal,
            tail_comp_s: comp[tail],
            tail_comm_netsparse_s: report.nodes[tail].finish.as_secs_f64(),
            tail_comm_sa_s: baselines.sa.node_comm_time(wl, tail as u32, k),
        }
    }

    /// Like [`Experiment::end_to_end`], but reusing an existing simulation
    /// report (the compute engine only affects the analytic compute side,
    /// so one simulation serves several engines).
    pub fn end_to_end_from(
        &self,
        cfg: &ClusterConfig,
        engine: ComputeEngine,
        report: &SimReport,
    ) -> EndToEnd {
        let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);
        // The mini profile scales every bandwidth of the machine by the
        // same factor (network 400 -> 100 Gbps); the node's memory system
        // scales with it, or the compute/communication ratios of
        // Figures 13/14/21 would be distorted by exactly that factor.
        let bw_scale = cfg.link.bandwidth_bps / 400e9;
        let mut model = ComputeModel::new(engine);
        model.mem_bw *= bw_scale;
        model.peak_flops *= bw_scale;
        let k = cfg.k;
        let wl = &self.wl;

        let total_nnz = wl.total_nnz();
        let total_rows: u64 = (0..wl.nodes()).map(|p| wl.rows_of(p) as u64).sum();
        let t1 = model.spmm_time(total_nnz, total_rows, k);

        let comp: Vec<f64> = (0..wl.nodes())
            .map(|p| model.spmm_time(wl.stream(p).len() as u64, wl.rows_of(p) as u64, k))
            .collect();
        let stats = wl.pattern_stats();

        let fold_max = |it: Box<dyn Iterator<Item = f64> + '_>| it.fold(0.0f64, f64::max);
        // Communication and computation partially overlap: per node the
        // kernel takes max(comp, comm).
        let t_netsparse = fold_max(Box::new(
            comp.iter()
                .enumerate()
                .map(|(p, &c)| c.max(report.nodes[p].finish.as_secs_f64())),
        ));
        let t_su = fold_max(Box::new(comp.iter().enumerate().map(|(p, &c)| {
            c.max(baselines.su.comm_time(stats.per_node[p].su_received, k))
        })));
        let t_sa =
            fold_max(Box::new(comp.iter().enumerate().map(|(p, &c)| {
                c.max(baselines.sa.node_comm_time(wl, p as u32, k))
            })));
        let t_ideal = fold_max(Box::new(comp.iter().copied()));

        let tail = report.tail_node();
        EndToEnd {
            engine,
            k,
            speedup_su: t1 / t_su,
            speedup_sa: t1 / t_sa,
            speedup_netsparse: t1 / t_netsparse,
            speedup_ideal: t1 / t_ideal,
            tail_comp_s: comp[tail],
            tail_comm_netsparse_s: report.nodes[tail].finish.as_secs_f64(),
            tail_comm_sa_s: baselines.sa.node_comm_time(wl, tail as u32, k),
        }
    }
}

/// One row of the Table 8 ablation.
#[derive(Debug, Clone, Copy)]
pub struct AblationRow {
    /// Mechanism stage name (RIG, Filter, Coalesce, ConcNIC, Switch).
    pub stage: &'static str,
    /// Communication speedup over SUOpt ("Spd").
    pub speedup_vs_su: f64,
    /// Tail-node traffic reduction over SUOpt ("-Trfc").
    pub traffic_reduction_vs_su: f64,
    /// Tail-node goodput ("Gput").
    pub goodput: f64,
}

/// End-to-end strong-scaling results (one matrix, one K, one engine).
#[derive(Debug, Clone, Copy)]
pub struct EndToEnd {
    /// Compute engine used.
    pub engine: ComputeEngine,
    /// Property size.
    pub k: u32,
    /// 128-node speedup over 1 node with SUOpt communication.
    pub speedup_su: f64,
    /// … with SAOpt communication.
    pub speedup_sa: f64,
    /// … with NetSparse communication.
    pub speedup_netsparse: f64,
    /// … with free communication (the dashed ideal).
    pub speedup_ideal: f64,
    /// Tail node's compute time (seconds).
    pub tail_comp_s: f64,
    /// Tail node's NetSparse communication time (seconds).
    pub tail_comm_netsparse_s: f64,
    /// Tail node's SAOpt communication time (seconds).
    pub tail_comm_sa_s: f64,
}

/// The topology set of Figure 22.
pub fn figure22_topologies() -> [(&'static str, Topology); 3] {
    [
        ("Leaf-Spine", Topology::leaf_spine_128()),
        ("HyperX", Topology::hyperx_128()),
        ("Dragonfly", Topology::dragonfly_128()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsparse_netsim::Topology;

    fn tiny_experiment() -> Experiment {
        Experiment::with_cluster(SuiteMatrix::Queen, 8, 4, 0.02, 3)
    }

    fn tiny_cfg(k: u32) -> ClusterConfig {
        ClusterConfig::mini(
            Topology::LeafSpine {
                racks: 2,
                rack_size: 4,
                spines: 2,
            },
            k,
        )
    }

    #[test]
    fn compare_produces_positive_speedups() {
        let e = tiny_experiment();
        let (cmp, report) = e.compare(&tiny_cfg(16));
        assert!(report.functional_check_passed);
        assert!(cmp.netsparse_over_su() > 0.0);
        assert!(cmp.sa_over_su() > 0.0);
    }

    #[test]
    fn ablation_has_five_cumulative_stages() {
        let e = tiny_experiment();
        let rows = e.ablation(&tiny_cfg(16));
        assert_eq!(rows.len(), 5);
        // The full design should not be slower than RIG-only.
        assert!(rows[4].speedup_vs_su >= rows[0].speedup_vs_su * 0.8);
        // Traffic monotonically improves for queen (heavy reuse).
        assert!(rows[4].traffic_reduction_vs_su > rows[0].traffic_reduction_vs_su);
    }

    #[test]
    fn end_to_end_speedups_are_ordered() {
        let e = tiny_experiment();
        let r = e.end_to_end(&tiny_cfg(16), ComputeEngine::Spade);
        assert!(r.speedup_ideal >= r.speedup_netsparse);
        assert!(r.speedup_netsparse >= r.speedup_sa * 0.9);
        assert!(r.speedup_ideal > 0.0);
    }

    #[test]
    fn kernels_share_the_gather_but_not_the_compute() {
        let e = tiny_experiment();
        let spmm = e.end_to_end_kernel(
            &tiny_cfg(16),
            ComputeEngine::Spade,
            SparseKernel::SpMM { k: 16 },
        );
        let sddmm = e.end_to_end_kernel(
            &tiny_cfg(16),
            ComputeEngine::Spade,
            SparseKernel::Sddmm { k: 16 },
        );
        let spmv = e.end_to_end_kernel(&tiny_cfg(1), ComputeEngine::Spade, SparseKernel::SpMV);
        // Same ordering invariants hold for every kernel.
        for r in [spmm, sddmm, spmv] {
            assert!(r.speedup_ideal >= r.speedup_netsparse);
            assert!(r.speedup_netsparse > 0.0);
        }
        // SDDMM's compute profile differs from SpMM's.
        assert!(spmm.tail_comp_s != sddmm.tail_comp_s);
    }

    #[test]
    #[should_panic(expected = "must match")]
    fn kernel_k_mismatch_panics() {
        let e = tiny_experiment();
        e.end_to_end_kernel(&tiny_cfg(16), ComputeEngine::Spade, SparseKernel::SpMV);
    }
}
