//! Benchmark harness for the NetSparse reproduction.
//!
//! One public function per paper table/figure (see `DESIGN.md`'s
//! experiment index); each returns its formatted output so the per-target
//! binaries (`table1` … `fig22`) and the all-in-one `repro_all` binary can
//! share the logic. Simulation-backed sweeps fan their independent points
//! across threads via [`sweep::SweepRunner`] (`--workers`/`--parallel`)
//! with byte-identical output at any worker count. Micro-benchmarks of
//! the substrate components live in `benches/`, running on the in-tree
//! [`microbench`] harness. The [`chaos`] module is the chaoscheck
//! harness: seed-derived fault scenarios, invariant oracles, and the
//! failing-schedule shrinker behind the `chaos` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod microbench;
pub mod opts;
pub mod sweep;
pub mod tables;

pub use chaos::{ChaosScenario, ScenarioOutcome};
pub use opts::BenchOpts;
pub use sweep::{SweepError, SweepRunner};
