//! Deterministic parallel execution of benchmark sweeps.
//!
//! Every table/figure of the evaluation is a grid of *independent*
//! simulation points: (matrix, K), (matrix, batch size), (scenario, …).
//! Each point derives everything it needs — workload seed, cluster
//! config — from its submission index alone, so points can run on any
//! thread in any order without changing their results. [`SweepRunner`]
//! exploits that: it fans the points of one sweep across a fixed pool of
//! scoped threads and returns the results **in submission order**, so a
//! parallel sweep is byte-for-byte identical to a serial one. The only
//! thing parallelism may change is wall-clock time.
//!
//! Determinism contract: the closure passed to [`SweepRunner::run`] must
//! be a pure function of its index (plus captured immutable state). The
//! simulator itself guarantees this — `netsparse::simulate` is
//! deterministic per (config, workload) — so a sweep point must simply
//! not smuggle state between indices. `tests/sweep_parallel.rs` pins the
//! contract end to end against the engine's audit digests.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use crate::opts::BenchOpts;

/// A sweep point that panicked, identified by its submission index.
///
/// [`SweepRunner::try_run`] catches the unwind at the failing point,
/// poisons the work queue so the other workers stop claiming, and hands
/// back this structured error instead of hanging or aborting the whole
/// sweep. The original panic payload is preserved for callers
/// (like [`SweepRunner::run`]) that want to re-raise it.
pub struct SweepError {
    /// Submission index of the point that panicked. When several points
    /// panic concurrently, the lowest recorded index is reported.
    pub index: usize,
    /// The panic message, when the payload was a string (the usual
    /// `panic!`/`assert!` case).
    pub message: String,
    payload: Box<dyn std::any::Any + Send>,
}

impl SweepError {
    fn new(index: usize, payload: Box<dyn std::any::Any + Send>) -> Self {
        let message = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "<non-string panic payload>".to_string());
        SweepError {
            index,
            message,
            payload,
        }
    }

    /// The original panic payload, for re-raising with
    /// `std::panic::resume_unwind`.
    pub fn into_payload(self) -> Box<dyn std::any::Any + Send> {
        self.payload
    }
}

impl std::fmt::Debug for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SweepError")
            .field("index", &self.index)
            .field("message", &self.message)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sweep point {} panicked: {}", self.index, self.message)
    }
}

/// Runs the independent points of a sweep across a worker pool,
/// returning results in submission order.
#[derive(Debug, Clone, Copy)]
pub struct SweepRunner {
    workers: usize,
}

impl SweepRunner {
    /// A runner that executes every point inline on the calling thread.
    #[must_use]
    pub fn serial() -> Self {
        SweepRunner { workers: 1 }
    }

    /// A runner with the given worker count (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        SweepRunner {
            workers: workers.max(1),
        }
    }

    /// The runner selected by the benchmark options (`--workers N` /
    /// `--parallel`).
    #[must_use]
    pub fn from_opts(o: &BenchOpts) -> Self {
        SweepRunner::new(o.workers)
    }

    /// The worker count this runner fans out across.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Evaluates `point(i)` for every `i in 0..n` and returns the results
    /// in index order.
    ///
    /// With one worker (or one point) this is exactly a serial loop. With
    /// more, points are claimed from a shared atomic counter by scoped
    /// threads; each worker tags its results with their indices and the
    /// merged output is sorted back into submission order, so the caller
    /// sees the same `Vec` either way.
    ///
    /// A panic inside `point` propagates to the caller (after the other
    /// workers stop at the next claim), preserving the panic payload —
    /// sweep assertions behave the same serial and parallel. Use
    /// [`SweepRunner::try_run`] to receive the failing index as a
    /// structured [`SweepError`] instead of unwinding.
    pub fn run<T, F>(&self, n: usize, point: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        match self.try_run(n, point) {
            Ok(results) => results,
            Err(e) => std::panic::resume_unwind(e.into_payload()),
        }
    }

    /// Panic-isolating variant of [`SweepRunner::run`]: each point runs
    /// under `catch_unwind`, so one exploding point cannot take down (or
    /// hang) the sweep. On failure the work queue is poisoned — workers
    /// stop claiming new points, in-flight points finish, the scope joins
    /// — and the first failing point (lowest index among those recorded)
    /// comes back as a [`SweepError`] carrying its panic payload.
    pub fn try_run<T, F>(&self, n: usize, point: F) -> Result<Vec<T>, SweepError>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // A panicked point's partially-built value is dropped wholesale
        // and the sweep result discarded, so unwind safety holds.
        let guarded = |i: usize| catch_unwind(AssertUnwindSafe(|| point(i)));
        if self.workers == 1 || n <= 1 {
            let mut results = Vec::with_capacity(n);
            for i in 0..n {
                results.push(guarded(i).map_err(|p| SweepError::new(i, p))?);
            }
            return Ok(results);
        }
        let next = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let guarded = &guarded;
        let next = &next;
        let poisoned = &poisoned;
        let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
        let mut failures: Vec<(usize, Box<dyn std::any::Any + Send>)> = Vec::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.workers.min(n))
                .map(|_| {
                    s.spawn(move || {
                        let mut local = Vec::new();
                        let mut failed = None;
                        while !poisoned.load(Ordering::Relaxed) {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            match guarded(i) {
                                Ok(v) => local.push((i, v)),
                                Err(payload) => {
                                    poisoned.store(true, Ordering::Relaxed);
                                    failed = Some((i, payload));
                                    break;
                                }
                            }
                        }
                        (local, failed)
                    })
                })
                .collect();
            for h in handles {
                // Workers cannot unwind (every point is caught), so the
                // join itself is infallible.
                if let Ok((local, failed)) = h.join() {
                    tagged.extend(local);
                    failures.extend(failed);
                }
            }
        });
        if let Some((index, payload)) = failures.into_iter().min_by_key(|&(i, _)| i) {
            return Err(SweepError::new(index, payload));
        }
        tagged.sort_unstable_by_key(|&(i, _)| i);
        Ok(tagged.into_iter().map(|(_, v)| v).collect())
    }

    /// [`run`](Self::run) over a slice: evaluates `f` on every item,
    /// results in item order.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync,
    {
        self.run(items.len(), |i| f(&items[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_results_match_serial_in_submission_order() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let serial = SweepRunner::serial().run(100, f);
        for workers in [2usize, 3, 8, 64] {
            assert_eq!(SweepRunner::new(workers).run(100, f), serial);
        }
    }

    #[test]
    fn unbalanced_points_still_come_back_in_order() {
        // Later indices finish first; order must still be by submission.
        let f = |i: usize| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 5 * i as u64));
            }
            i
        };
        let got = SweepRunner::new(4).run(12, f);
        assert_eq!(got, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn degenerate_sizes_work() {
        let r = SweepRunner::new(8);
        assert_eq!(r.run(0, |i| i), Vec::<usize>::new());
        assert_eq!(r.run(1, |i| i), vec![0]);
        assert_eq!(SweepRunner::new(0).workers(), 1);
    }

    #[test]
    fn map_preserves_item_order() {
        let items = ["a", "bb", "ccc"];
        let lens = SweepRunner::new(2).map(&items, |s| s.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn try_run_identifies_the_failing_point() {
        for workers in [1usize, 2, 8] {
            let err = SweepRunner::new(workers)
                .try_run(16, |i| {
                    assert!(i != 5, "point 5 exploded");
                    i
                })
                .expect_err("point 5 must fail the sweep");
            assert_eq!(err.index, 5);
            assert!(err.message.contains("point 5 exploded"), "{err}");
            assert!(err.to_string().contains("sweep point 5"), "{err}");
        }
    }

    #[test]
    fn try_run_succeeds_when_no_point_panics() {
        let got = SweepRunner::new(4).try_run(12, |i| i * 2).unwrap();
        assert_eq!(got, (0..12).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn point_panics_propagate_with_their_payload() {
        let result = std::panic::catch_unwind(|| {
            SweepRunner::new(2).run(8, |i| {
                assert!(i != 5, "point 5 exploded");
                i
            })
        });
        let payload = result.expect_err("the sweep must propagate the panic");
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(msg.contains("point 5 exploded"), "payload: {msg}");
    }
}
