//! One function per paper table/figure.
//!
//! Every function returns its formatted output (side by side with the
//! paper's reported values where the paper gives them) so the standalone
//! binaries and `repro_all` share one implementation. Simulation-backed
//! experiments use the `mini` cluster profile; the scaling rationale is in
//! `netsparse::config` and `DESIGN.md`.

use std::fmt::Write as _;

use netsparse::baselines::gmean;
use netsparse::experiments::{figure22_topologies, Experiment};
use netsparse::prelude::*;
use netsparse_hwmodel::{rig_unit_breakdown, snic_extension_report, TechParams};
use netsparse_snic::HeaderSpec;
use netsparse_sparse::SuiteMatrix;

use crate::opts::BenchOpts;
use crate::sweep::SweepRunner;

/// Property sizes evaluated throughout the paper.
pub const K_VALUES: [u32; 3] = [1, 16, 128];

/// Evaluates an `exps.len() x cols` grid of independent simulation
/// points through the sweep runner selected by `o`, returning one row of
/// results per experiment. Execution order is row-major by submission
/// index; results are identical at any worker count, so the serial
/// formatting loops downstream render byte-identical tables.
fn sweep_grid<T: Send>(
    o: &BenchOpts,
    exps: &[Experiment],
    cols: usize,
    cell: impl Fn(&Experiment, usize) -> T + Sync,
) -> Vec<Vec<T>> {
    let flat =
        SweepRunner::from_opts(o).run(exps.len() * cols, |i| cell(&exps[i / cols], i % cols));
    let mut it = flat.into_iter();
    (0..exps.len())
        .map(|_| (&mut it).take(cols).collect())
        .collect()
}

fn mini_cfg(k: u32) -> ClusterConfig {
    ClusterConfig::mini(Topology::leaf_spine_128(), k)
}

/// The cluster profile selected by the options: `mini` by default, the
/// verbatim Table 5 machine under `--paper` (with the RIG batch kept at
/// the scale-appropriate 2048 — 32 k batches would leave most units idle
/// on ~131 k-nonzero streams).
fn cfg_for(o: &BenchOpts, k: u32) -> ClusterConfig {
    if o.paper_profile {
        let mut cfg = ClusterConfig::paper(Topology::leaf_spine_128(), k);
        cfg.batch_size = 2048;
        cfg
    } else {
        mini_cfg(k)
    }
}

/// Generates all five benchmark workloads at the given options.
pub fn all_experiments(o: &BenchOpts) -> Vec<Experiment> {
    SuiteMatrix::ALL
        .iter()
        .map(|&m| Experiment::new(m, o.scale, o.seed))
        .collect()
}

/// Table 1: useful-to-redundant property-transfer ratios for SU and SA.
pub fn table1(o: &BenchOpts) -> String {
    let paper_su = [1947.0, 582.0, 74.0, 32.0, 966.0];
    let paper_sa = [27.0, 0.02, 25.0, 3.6, 4.5];
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: useful:redundant transfers (128 nodes)");
    let _ = writeln!(
        out,
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "Matrix", "SU (paper)", "SU (ours)", "SA (paper)", "SA (ours)"
    );
    for (i, e) in all_experiments(o).iter().enumerate() {
        let stats = e.wl.pattern_stats();
        let _ = writeln!(
            out,
            "{:<8} {:>14} {:>14} {:>14} {:>14}",
            e.matrix.name(),
            format!("1:{:.0}", paper_su[i]),
            format!("1:{:.0}", stats.su_redundancy()),
            format!("1:{:.2}", paper_sa[i]),
            format!("1:{:.2}", stats.sa_redundancy()),
        );
    }
    out
}

/// Table 2: vanilla-SA transfer rate, line utilization and goodput for a
/// 2-node Slingshot-class setup at K=32 (model described in
/// `netsparse_accel::sw_model`).
pub fn table2(o: &BenchOpts) -> String {
    let k = 32;
    let model = netsparse_accel::VanillaSaModel::paper();
    let headers = HeaderSpec::paper();
    // (name, rate Gbps, line-util %, goodput %).
    let paper: [(&str, f64, f64, f64); 4] = [
        ("arabic", 0.5, 0.26, 0.11),
        ("europe", 0.2, 0.09, 0.04),
        ("queen", 0.7, 0.36, 0.16),
        ("uk", 0.5, 0.25, 0.11),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 2: vanilla SA on a 2-node setup (K=32)");
    let _ = writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "Matrix", "Gbps(p)", "Gbps", "Util%(p)", "Util%", "Gput%(p)", "Gput%"
    );
    for (name, p_rate, p_util, p_gput) in paper {
        let m: SuiteMatrix = name.parse().expect("paper matrix name");
        let e = Experiment::new(m, o.scale, o.seed);
        let dests = e.wl.dest_locality(64);
        let rate = model.transfer_rate_gbps(k, dests);
        let util = model.line_utilization(k, dests);
        let gput = model.goodput(k, dests, headers.sa_header_fraction(k));
        let _ = writeln!(
            out,
            "{:<8} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            name,
            p_rate,
            rate,
            p_util,
            util * 100.0,
            p_gput,
            gput * 100.0,
        );
    }
    out
}

/// Table 3: packet-header share of total SA traffic per property size.
pub fn table3() -> String {
    let paper = [97.6, 95.2, 90.9, 83.3, 71.4, 55.6, 38.5, 23.8, 13.5];
    let headers = HeaderSpec::paper();
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: header share of SA traffic vs K");
    let _ = writeln!(out, "{:<6} {:>12} {:>12}", "K", "paper %", "ours %");
    for (i, k) in [1u32, 2, 4, 8, 16, 32, 64, 128, 256].iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<6} {:>12.1} {:>12.1}",
            k,
            paper[i],
            headers.sa_header_fraction(*k) * 100.0
        );
    }
    out
}

/// Table 4: unique destination nodes per 64 consecutive PRs.
pub fn table4(o: &BenchOpts) -> String {
    let paper = [2.51, 7.43, 1.00, 1.85, 5.61];
    let mut out = String::new();
    let _ = writeln!(out, "Table 4: unique destinations in 64 consecutive PRs");
    let _ = writeln!(out, "{:<8} {:>10} {:>10}", "Matrix", "paper", "ours");
    for (i, e) in all_experiments(o).iter().enumerate() {
        let _ = writeln!(
            out,
            "{:<8} {:>10.2} {:>10.2}",
            e.matrix.name(),
            paper[i],
            e.wl.dest_locality(64)
        );
    }
    out
}

/// Figure 10: ideal SAOpt goodput vs communication cores, for K=32 and
/// K=128.
pub fn fig10() -> String {
    let model = SaOptModel::paper();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10: ideal SAOpt goodput vs cores");
    let _ = writeln!(out, "{:<8} {:>12} {:>12}", "cores", "K=32 %", "K=128 %");
    for cores in [1u32, 2, 4, 8, 16, 32, 64] {
        let _ = writeln!(
            out,
            "{:<8} {:>12.2} {:>12.2}",
            cores,
            model.goodput_fraction(cores, 32) * 100.0,
            model.goodput_fraction(cores, 128) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "(calibration anchor: 64 cores at K=32 sits near 10%; goodput is far\n from 100% even at 64 cores, matching the paper's observation)"
    );
    out
}

/// Figure 12: communication speedup of NetSparse and SAOpt over SUOpt for
/// K in {{1, 16, 128}} on the 128-node leaf-spine cluster.
pub fn fig12(o: &BenchOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12: communication speedup over SUOpt");
    let _ = writeln!(
        out,
        "{:<8} {:>4} {:>14} {:>14}",
        "Matrix", "K", "SAOpt/SUOpt", "NetSparse/SUOpt"
    );
    let exps = all_experiments(o);
    let cells = sweep_grid(o, &exps, K_VALUES.len(), |e, ki| {
        let (cmp, _) = e.compare(&cfg_for(o, K_VALUES[ki]));
        (cmp.sa_over_su(), cmp.netsparse_over_su())
    });
    let mut ns_all = Vec::new();
    let mut sa_all = Vec::new();
    for (e, row) in exps.iter().zip(&cells) {
        for (&k, &(sa, ns)) in K_VALUES.iter().zip(row) {
            ns_all.push(ns);
            sa_all.push(sa);
            let _ = writeln!(
                out,
                "{:<8} {:>4} {:>14.2} {:>14.2}",
                e.matrix.name(),
                k,
                sa,
                ns
            );
        }
    }
    let _ = writeln!(
        out,
        "{:<8} {:>4} {:>14.2} {:>14.2}   (paper gmeans: SAOpt ~2.2x, NetSparse 33x)",
        "gmean",
        "-",
        gmean(&sa_all),
        gmean(&ns_all)
    );
    out
}

/// Table 7: tail-node performance statistics at K=16, with the SU/SA
/// comparisons.
pub fn table7(o: &BenchOpts) -> String {
    let k = 16;
    /// One paper row: F+C %, PR/pkt, cache %, gput %, util %, -Trfc,
    /// GputSA %, -#PR.
    type PaperRow = (f64, f64, f64, f64, f64, f64, f64, f64);
    let paper: [PaperRow; 5] = [
        (97.0, 5.7, 26.0, 35.0, 65.0, 283.0, 1.0, 3.8),
        (8.0, 4.5, 5.0, 37.0, 70.0, 188.0, 10.0, 1.3),
        (95.0, 19.6, 50.0, 40.0, 66.0, 42.0, 11.0, 1.1),
        (90.0, 12.1, 6.0, 38.0, 64.0, 17.0, 8.0, 4.4),
        (61.0, 17.0, 30.0, 30.0, 50.0, 271.0, 9.0, 2.6),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 7: tail-node statistics (K=16); 'p:' = paper");
    let _ = writeln!(
        out,
        "{:<8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "Matrix", "F+C%", "PR/pkt", "Cache%", "Gput%", "Util%", "-Trfc", "GputSA%", "-#PRvsSA"
    );
    let cfg = cfg_for(o, k);
    let sa = netsparse::baselines::Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9).sa;
    let exps = all_experiments(o);
    let reports = SweepRunner::from_opts(o).map(&exps, |e| e.run(&cfg));
    for (i, e) in exps.iter().enumerate() {
        let report = &reports[i];
        let tail = report.tail_node();
        let stats = e.wl.pattern_stats();
        let su_tail_bytes = stats.per_node[tail].su_received * 4 * k as u64;
        let trfc = su_tail_bytes as f64 / report.tail().rx_wire_bytes.max(1) as f64;
        let sa_prs = sa.node_pr_count(&e.wl, tail as u32);
        let pr_red = sa_prs as f64 / report.tail().issued.max(1) as f64;
        let p = paper[i];
        let _ = writeln!(
            out,
            "{:<8} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
            e.matrix.name(),
            format!("{:.0}|p:{:.0}", report.tail().fc_rate() * 100.0, p.0),
            format!("{:.1}|p:{:.1}", report.prs_per_packet.mean(), p.1),
            format!("{:.0}|p:{:.0}", report.cache_hit_rate() * 100.0, p.2),
            format!("{:.0}|p:{:.0}", report.tail_goodput() * 100.0, p.3),
            format!("{:.0}|p:{:.0}", report.tail_line_utilization() * 100.0, p.4),
            format!("{:.0}x|p:{:.0}", trfc, p.5),
            format!("{:.0}|p:{:.0}", sa.tail_goodput(&e.wl, k) * 100.0, p.6),
            format!("{:.1}x|p:{:.1}", pr_red, p.7),
        );
    }
    out
}

/// Figure 13: end-to-end SpMM strong scaling (SPADE accelerators),
/// 128 nodes over 1 node, K in {{16, 128}}.
pub fn fig13(o: &BenchOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 13: end-to-end 128-node speedup over 1 node (SpMM, SPADE)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>4} {:>8} {:>8} {:>10} {:>8}",
        "Matrix", "K", "SUOpt", "SAOpt", "NetSparse", "Ideal"
    );
    let ks = [16u32, 128];
    let exps = all_experiments(o);
    let cells = sweep_grid(o, &exps, ks.len(), |e, ki| {
        e.end_to_end(&cfg_for(o, ks[ki]), ComputeEngine::Spade)
    });
    let mut per_k: Vec<(f64, f64, f64, f64)> = Vec::new();
    for (e, row) in exps.iter().zip(&cells) {
        for (&k, r) in ks.iter().zip(row) {
            per_k.push((
                r.speedup_su,
                r.speedup_sa,
                r.speedup_netsparse,
                r.speedup_ideal,
            ));
            let _ = writeln!(
                out,
                "{:<8} {:>4} {:>8.2} {:>8.2} {:>10.2} {:>8.2}",
                e.matrix.name(),
                k,
                r.speedup_su,
                r.speedup_sa,
                r.speedup_netsparse,
                r.speedup_ideal
            );
        }
    }
    let su: Vec<f64> = per_k.iter().map(|r| r.0).collect();
    let sa: Vec<f64> = per_k.iter().map(|r| r.1).collect();
    let ns: Vec<f64> = per_k.iter().map(|r| r.2).collect();
    let id: Vec<f64> = per_k.iter().map(|r| r.3).collect();
    let _ = writeln!(
        out,
        "{:<8} {:>4} {:>8.2} {:>8.2} {:>10.2} {:>8.2}   (paper avgs: 0.7x, 3x, 38x, 72x)",
        "avg",
        "-",
        gmean(&su),
        gmean(&sa),
        gmean(&ns),
        gmean(&id)
    );
    out
}

/// Figure 14: tail-node communication/computation ratio for SAOpt and
/// NetSparse at K=16.
pub fn fig14(o: &BenchOpts) -> String {
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14: tail-node comm/comp time ratio (K=16)");
    let _ = writeln!(out, "{:<8} {:>14} {:>14}", "Matrix", "SAOpt", "NetSparse");
    let exps = all_experiments(o);
    let results = SweepRunner::from_opts(o).map(&exps, |e| {
        e.end_to_end(&cfg_for(o, k), ComputeEngine::Spade)
    });
    for (e, r) in exps.iter().zip(&results) {
        let _ = writeln!(
            out,
            "{:<8} {:>14.2} {:>14.2}",
            e.matrix.name(),
            r.tail_comm_sa_s / r.tail_comp_s,
            r.tail_comm_netsparse_s / r.tail_comp_s
        );
    }
    let _ = writeln!(
        out,
        "(paper: SAOpt dominated by communication everywhere; NetSparse\n comm comparable to or faster than compute for arabic/queen/uk)"
    );
    out
}

/// Table 8: cumulative mechanism ablation for arabic and europe.
pub fn table8(o: &BenchOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 8: ablation vs SUOpt (cumulative stages)");
    let exps: Vec<Experiment> = [SuiteMatrix::Arabic, SuiteMatrix::Europe]
        .iter()
        .map(|&m| Experiment::new(m, o.scale, o.seed))
        .collect();
    let cells = sweep_grid(o, &exps, K_VALUES.len(), |e, ki| {
        e.ablation(&mini_cfg(K_VALUES[ki]))
            .iter()
            .map(|r| (r.speedup_vs_su, r.traffic_reduction_vs_su, r.goodput))
            .collect::<Vec<_>>()
    });
    for (e, krows) in exps.iter().zip(&cells) {
        let _ = writeln!(out, "--- {} ---", e.matrix.name());
        let _ = writeln!(
            out,
            "{:<10} {}",
            "Stage",
            K_VALUES
                .iter()
                .map(|k| format!("{:>8} {:>9} {:>7}", format!("SpdK{k}"), "-Trfc", "Gput%"))
                .collect::<Vec<_>>()
                .join(" | ")
        );
        let mut rows: Vec<Vec<(f64, f64, f64)>> = vec![Vec::new(); 5];
        for stage_rows in krows {
            for (i, r) in stage_rows.iter().enumerate() {
                rows[i].push(*r);
            }
        }
        let stage_names = ["RIG", "Filter", "Coalesce", "ConcNIC", "Switch"];
        for (i, name) in stage_names.iter().enumerate() {
            let cells = rows[i]
                .iter()
                .map(|(s, t, g)| format!("{:>8.1} {:>8.1}x {:>7.1}", s, t, g * 100.0))
                .collect::<Vec<_>>()
                .join(" | ");
            let _ = writeln!(out, "{:<10} {}", name, cells);
        }
    }
    let _ = writeln!(
        out,
        "(paper shapes: filtering/coalescing dominate arabic's gains; RIG\n dominates europe's; concatenation helps most at small K)"
    );
    out
}

/// Figure 15: sensitivity to the RIG batch size (normalized to the
/// paper-equivalent of 16k nonzeros, i.e. 512 at mini scale).
pub fn fig15(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let batches = [128usize, 256, 512, 1024, 2048, 8192];
    let baseline = 512usize;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 15: speedup vs RIG batch size (normalized to batch {baseline})"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for b in batches {
        let _ = write!(out, " {:>8}", b);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    let cells = sweep_grid(&o, &exps, batches.len(), |e, bi| {
        let mut cfg = mini_cfg(k);
        cfg.batch_size = batches[bi];
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let base = times[batches
            .iter()
            .position(|&b| b == baseline)
            .expect("present")];
        let _ = write!(out, "{:<8}", e.matrix.name());
        for t in times {
            let _ = write!(out, " {:>8.2}", base / t);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: optima are input-sensitive and not at the extremes)"
    );
    out
}

/// Figure 16: sensitivity to the number of RIG units (total; half client,
/// half server), normalized to 2 units.
pub fn fig16(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let units = [2u32, 4, 8, 16, 32, 64];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 16: speedup vs number of RIG units (vs 2 units)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for u in units {
        let _ = write!(out, " {:>8}", u);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    let cells = sweep_grid(&o, &exps, units.len(), |e, ui| {
        let mut cfg = mini_cfg(k);
        cfg.snic.rig_units = units[ui];
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        for t in times {
            let _ = write!(out, " {:>8.2}", times[0] / t);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "(paper: gains grow up to 32 units, then flatten)");
    out
}

/// Figure 17: sensitivity to the concatenation delay budget (SNIC cycles;
/// switch budget scales proportionally), normalized to no concatenation.
pub fn fig17(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let delays = [50u64, 125, 500, 2_000, 10_000, 50_000];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 17: speedup vs concat delay cycles (vs no concatenation)"
    );
    let _ = write!(out, "{:<8} {:>8}", "Matrix", "none");
    for d in delays {
        let _ = write!(out, " {:>8}", d);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    // Column 0 is the no-concatenation baseline each row normalizes to.
    let cells = sweep_grid(&o, &exps, 1 + delays.len(), |e, ci| {
        let mut cfg = mini_cfg(k);
        if ci == 0 {
            cfg.mechanisms.nic_concat = false;
            cfg.mechanisms.switch_concat = false;
        } else {
            let d = delays[ci - 1];
            cfg.snic.concat_delay_cycles = d;
            cfg.switch.concat_delay_cycles = (d / 4).max(1);
        }
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let base = times[0];
        let _ = write!(out, "{:<8} {:>8.2}", e.matrix.name(), 1.0);
        for t in &times[1..] {
            let _ = write!(out, " {:>8.2}", base / t);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: an inverted U — moderate delays help, huge delays hurt;\n queen benefits most, europe least)"
    );
    out
}

/// Figure 18: speedup vs Property Cache size, normalized to no cache.
pub fn fig18(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let sizes: [(&str, u64); 7] = [
        ("32K", 32 << 10),
        ("64K", 64 << 10),
        ("128K", 128 << 10),
        ("256K", 256 << 10),
        ("1M", 1 << 20),
        ("8M", 8 << 20),
        ("inf", 1 << 30),
    ];
    // The cache's timing benefit comes from halving the RTT of hits
    // (rack-local service), which only shows when the outstanding window
    // binds. The mini profile's scaled-down latencies hide that, so this
    // sweep restores the paper's zero-load latencies (450 ns links,
    // 300 ns switches) on the otherwise-mini cluster.
    let stressed = |k: u32| -> ClusterConfig {
        let mut cfg = mini_cfg(k);
        cfg.link = netsparse_netsim::LinkParams::new(100.0, 450);
        cfg.switch.latency_ns = 300;
        cfg
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 18: speedup vs Property Cache size (vs no cache;
 paper-latency regime, where the outstanding window binds)"
    );
    let _ = write!(out, "{:<8} {:>8}", "Matrix", "none");
    for (name, _) in sizes {
        let _ = write!(out, " {:>8}", name);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    // Column 0 is the cache-disabled baseline each row normalizes to.
    let cells = sweep_grid(&o, &exps, 1 + sizes.len(), |e, ci| {
        let mut cfg = stressed(k);
        if ci == 0 {
            cfg.mechanisms.property_cache = false;
        } else {
            cfg.switch.cache.capacity_bytes = sizes[ci - 1].1;
        }
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let base = times[0];
        let _ = write!(out, "{:<8} {:>8.2}", e.matrix.name(), 1.0);
        for t in &times[1..] {
            let _ = write!(out, " {:>8.2}", base / t);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: arabic gains up to ~40%; stokes is insensitive at any size)"
    );
    out
}

/// Figure 19: active nodes over normalized execution time (communication
/// only), 10 samples per matrix.
pub fn fig19(o: &BenchOpts) -> String {
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 19: nodes still communicating at each tenth of the kernel"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for i in 0..10 {
        let _ = write!(out, " {:>5}", format!("{}0%", i));
    }
    let _ = writeln!(out);
    let exps = all_experiments(o);
    let curves =
        SweepRunner::from_opts(o).map(&exps, |e| e.run(&mini_cfg(k)).active_nodes_curve(10));
    for (e, curve) in exps.iter().zip(&curves) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        for v in curve {
            let _ = write!(out, " {:>5}", v);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: every matrix except queen shows a long imbalance tail)"
    );
    out
}

/// Figure 20: area/power breakdown of the SNIC extensions.
pub fn fig20() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 20: SNIC extension area & power (10 nm)");
    let _ = writeln!(
        out,
        "{:<16} {:>10} {:>12} {:>12}",
        "Component", "area mm2", "static W", "dynamic W"
    );
    let report = snic_extension_report(&TechParams::n10());
    let (mut area, mut stat, mut dynp) = (0.0, 0.0, 0.0);
    for c in &report {
        area += c.area_mm2;
        stat += c.static_w;
        dynp += c.dynamic_w;
        let _ = writeln!(
            out,
            "{:<16} {:>10.3} {:>12.3} {:>12.3}",
            c.name, c.area_mm2, c.static_w, c.dynamic_w
        );
    }
    let _ = writeln!(
        out,
        "{:<16} {:>10.3} {:>12.3} {:>12.3}   (paper: 1.43 mm2, 2.1 W peak)",
        "total", area, stat, dynp
    );
    out
}

/// Table 9: RIG-unit area breakdown.
pub fn table9() -> String {
    let paper = [
        ("Idx Buffer", 12.0),
        ("Pending PR Table", 53.0),
        ("Property Buffer", 12.0),
        ("LSQ", 10.0),
        ("Rest", 13.0),
    ];
    let mut out = String::new();
    let _ = writeln!(out, "Table 9: RIG unit area breakdown");
    let _ = writeln!(
        out,
        "{:<18} {:>10} {:>10}",
        "Structure", "paper %", "ours %"
    );
    let parts = rig_unit_breakdown(&TechParams::n10());
    for ((name, frac), (p_name, p_frac)) in parts.iter().zip(paper) {
        debug_assert_eq!(*name, p_name);
        let _ = writeln!(out, "{:<18} {:>10.0} {:>10.1}", name, p_frac, frac * 100.0);
    }
    out
}

/// Figure 21: end-to-end SpMM speedup with CPU compute (SPR DDR and HBM),
/// K=128 plus the K=16 column used in the paper's averages.
pub fn fig21(o: &BenchOpts) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 21: end-to-end 128-node speedup with CPU compute"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>4} {:<7} {:>8} {:>8} {:>10} {:>8}",
        "Matrix", "K", "engine", "SUOpt", "SAOpt", "NetSparse", "Ideal"
    );
    let ks = [16u32, 128];
    let exps = all_experiments(o);
    // One grid cell per (matrix, K): the simulation runs once and both
    // CPU engines are derived from the same report, as in the paper.
    let cells = sweep_grid(o, &exps, ks.len(), |e, ki| {
        let cfg = mini_cfg(ks[ki]);
        let report = e.run(&cfg);
        [ComputeEngine::CpuDdr, ComputeEngine::CpuHbm]
            .map(|engine| e.end_to_end_from(&cfg, engine, &report))
    });
    let mut acc: Vec<(ComputeEngine, f64, f64, f64)> = Vec::new();
    for (e, row) in exps.iter().zip(&cells) {
        for (&k, engines) in ks.iter().zip(row) {
            for (engine, r) in [ComputeEngine::CpuDdr, ComputeEngine::CpuHbm]
                .into_iter()
                .zip(engines)
            {
                acc.push((engine, r.speedup_su, r.speedup_sa, r.speedup_netsparse));
                if k == 128 {
                    let _ = writeln!(
                        out,
                        "{:<8} {:>4} {:<7} {:>8.2} {:>8.2} {:>10.2} {:>8.2}",
                        e.matrix.name(),
                        k,
                        match engine {
                            ComputeEngine::CpuDdr => "DDR",
                            ComputeEngine::CpuHbm => "HBM",
                            ComputeEngine::Spade => "SPADE",
                        },
                        r.speedup_su,
                        r.speedup_sa,
                        r.speedup_netsparse,
                        r.speedup_ideal
                    );
                }
            }
        }
    }
    for engine in [ComputeEngine::CpuDdr, ComputeEngine::CpuHbm] {
        let rows: Vec<&(ComputeEngine, f64, f64, f64)> =
            acc.iter().filter(|r| r.0 == engine).collect();
        let su: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let sa: Vec<f64> = rows.iter().map(|r| r.2).collect();
        let ns: Vec<f64> = rows.iter().map(|r| r.3).collect();
        let paper = match engine {
            ComputeEngine::CpuDdr => "paper avg: 2.6x / 13x / 53x",
            _ => "paper avg: 1.4x / 7x / 42x",
        };
        let _ = writeln!(
            out,
            "avg {:<4} (K=16,128): SU {:>6.2} SA {:>6.2} NetSparse {:>6.2}   ({paper})",
            match engine {
                ComputeEngine::CpuDdr => "DDR",
                _ => "HBM",
            },
            gmean(&su),
            gmean(&sa),
            gmean(&ns)
        );
    }
    out
}

/// Figure 22: NetSparse-over-SUOpt communication speedup across the three
/// topologies at K=16.
pub fn fig22(o: &BenchOpts) -> String {
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 22: NetSparse/SUOpt comm speedup per topology (K=16)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for (name, _) in figure22_topologies() {
        let _ = write!(out, " {:>11}", name);
    }
    let _ = writeln!(out);
    let exps = all_experiments(o);
    let topos = figure22_topologies();
    let cells = sweep_grid(o, &exps, topos.len(), |e, ti| {
        let (cmp, _) = e.compare(&ClusterConfig::mini(topos[ti].1, k));
        cmp.netsparse_over_su()
    });
    for (e, row) in exps.iter().zip(&cells) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        for ns in row {
            let _ = write!(out, " {:>11.2}", ns);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(paper: performance stays high everywhere; stokes drops >2x on\n HyperX due to the extra hops)"
    );
    out
}

/// Extension experiment (§7.2): dedicated vs virtualized Concatenation
/// Queues — same kernel, a fraction of the CQ SRAM.
pub fn ext_virtual_cq(o: &BenchOpts) -> String {
    use netsparse::config::ConcatImpl;
    use netsparse_snic::vconcat::{dedicated_sram_bytes, VirtualCqConfig};
    let o = o.scaled(0.5);
    let k = 16;
    let pools: [(&str, VirtualCqConfig); 3] = [
        (
            "16x128B",
            VirtualCqConfig {
                physical_queues: 16,
                physical_bytes: 128,
            },
        ),
        ("64x128B", VirtualCqConfig::paper_sketch()),
        (
            "128x256B",
            VirtualCqConfig {
                physical_queues: 128,
                physical_bytes: 256,
            },
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§7.2): virtual CQs vs dedicated CQs (K=16, slowdown vs dedicated)"
    );
    let dedicated_sram = dedicated_sram_bytes(128, 1_500);
    let _ = write!(out, "{:<8} {:>10}", "Matrix", "dedicated");
    for (name, _) in pools {
        let _ = write!(out, " {:>10}", name);
    }
    let _ = writeln!(out);
    let _ = write!(out, "{:<8} {:>9}K", "SRAM", dedicated_sram / 1024);
    for (_, pool) in pools {
        let _ = write!(out, " {:>9}K", pool.sram_bytes() / 1024);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    // Column 0 is the dedicated-CQ baseline each row normalizes to.
    let cells = sweep_grid(&o, &exps, 1 + pools.len(), |e, ci| {
        let mut cfg = mini_cfg(k);
        if ci > 0 {
            cfg.concat_impl = ConcatImpl::Virtual(pools[ci - 1].1);
        }
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let base = times[0];
        let _ = write!(out, "{:<8} {:>10.2}", e.matrix.name(), 1.0);
        for t in &times[1..] {
            let _ = write!(out, " {:>10.2}", t / base);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(the paper's sketch: cluster-size-independent SRAM at comparable
 performance; slowdowns near 1.0 confirm it)"
    );
    out
}

/// Extension experiment (§7.1): packet loss, watchdog recovery, and what
/// recovery costs.
pub fn ext_faults(o: &BenchOpts) -> String {
    use netsparse::config::FaultConfig;
    let o = o.scaled(0.5);
    let k = 16;
    // Whole-command retry (the paper's recovery granularity) only
    // converges if a command's packets have a decent chance of all
    // surviving: recovery viability scales with command *size*. The sweep
    // therefore uses 512-idx commands (~15 packets each); the default
    // 2048-idx commands approach livelock already at 2% per-hop loss.
    // Even at 512, the heaviest matrices can exhaust the §7.1 retry
    // ladder at 2% — those runs end in the ladder's final *abandon*
    // escape, which the table reports honestly instead of asserting away.
    let rates = [0.0f64, 0.001, 0.005, 0.02];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§7.1): packet loss + RIG watchdog (K=16; slowdown vs lossless)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for r in rates {
        let _ = write!(out, " {:>16}", format!("loss {:.1}%", r * 100.0));
    }
    let _ = writeln!(out, "   (slowdown | retries)");
    let exps = all_experiments(&o);
    let cells = sweep_grid(&o, &exps, rates.len(), |e, ri| {
        let mut cfg = mini_cfg(k);
        cfg.batch_size = 512;
        cfg.faults = FaultConfig::builder()
            .bernoulli_loss(rates[ri])
            .watchdog_ns(50_000)
            .seed(13)
            .build()
            .expect("static sweep config is valid");
        let report = e.run(&cfg);
        let retries: u64 = report.nodes.iter().map(|n| n.watchdog_retries).sum();
        (
            report.comm_time_s(),
            retries,
            report.functional_check_passed,
            report.faults.as_ref().map_or(0, |f| f.abandoned_commands),
        )
    });
    for (e, row) in exps.iter().zip(&cells) {
        let mut base = 0.0;
        let _ = write!(out, "{:<8}", e.matrix.name());
        for (r, &(t, retries, passed, abandoned)) in rates.iter().zip(row) {
            if *r == 0.0 {
                // A lossless run failing exactly-once delivery is a model
                // bug, not a recovery outcome.
                assert!(passed, "lossless run failed the delivery check");
                base = t;
            }
            let cell = if passed {
                format!("{:.2}x | {}", t / base, retries)
            } else {
                format!("abandoned {abandoned} | {retries}")
            };
            let _ = write!(out, " {:>16}", cell);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(numeric cells passed the exactly-once delivery check: the watchdog
 re-fetched whatever the lost packets carried. \"abandoned N\" cells hit
 the §7.1 ladder's final escape on N commands — whole-command retry
 stops converging as loss approaches a packet-per-command)"
    );
    out
}

/// Extension experiment (§7.1 extended): the fault sweep — burst loss vs
/// uniform loss at a matched expected rate, a spine death healed by
/// deterministic failover routing, a straggler node, and the combination,
/// with the `FaultReport` counters that explain each slowdown.
pub fn ext_fault_sweep(o: &BenchOpts) -> String {
    use netsparse::config::{FaultConfig, FaultConfigBuilder};
    use netsparse_desim::LossModel;

    let o = o.scaled(0.5);
    let k = 16;
    let e = Experiment::new(SuiteMatrix::Queen, o.scale, o.seed);
    // Gilbert–Elliott tuned to the same ~0.5% expected loss as the
    // uniform row: rare bursts (mean length 10 packets) dropping ~4.5%
    // inside — same average, very different recovery behaviour.
    let burst = LossModel::GilbertElliott {
        p_enter_burst: 0.01,
        p_exit_burst: 0.1,
        loss_good: 0.001,
        loss_bad: 0.045,
    };
    let build = |b: FaultConfigBuilder| -> FaultConfig {
        b.watchdog_ns(50_000)
            .seed(13)
            .build()
            .expect("static sweep config is valid")
    };
    // Switch 8 is the first spine of the 8-rack leaf-spine profile.
    let scenarios: Vec<(&str, FaultConfig)> = vec![
        ("lossless", build(FaultConfig::builder())),
        (
            "uniform 0.5%",
            build(FaultConfig::builder().bernoulli_loss(0.005)),
        ),
        ("burst 0.5%", build(FaultConfig::builder().loss(burst))),
        (
            "spine death",
            build(FaultConfig::builder().fail_switch_at(8, 100_000)),
        ),
        (
            "straggler",
            build(FaultConfig::builder().degrade_node(3, 2.0, 0.5)),
        ),
        (
            "combined",
            build(
                FaultConfig::builder()
                    .loss(burst)
                    .fail_switch_at(8, 100_000)
                    .degrade_node(3, 2.0, 0.5),
            ),
        ),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§7.1): fault sweep on queen (K=16, watchdog 50 us, 512-idx commands)"
    );
    let _ = writeln!(
        out,
        "{:<14} {:>9} {:>8} {:>8} {:>8} {:>9} {:>9}",
        "Scenario", "slowdown", "lost", "dead", "retries", "failover", "degraded"
    );
    let results = SweepRunner::from_opts(&o).map(&scenarios, |(_, faults)| {
        let mut cfg = mini_cfg(k);
        cfg.batch_size = 512;
        cfg.faults = faults.clone();
        let report = e.run(&cfg);
        (
            report.comm_time_s(),
            report.functional_check_passed,
            report.faults.clone().unwrap_or_default(),
        )
    });
    let mut base = 0.0f64;
    for ((name, _), (t, passed, fr)) in scenarios.iter().zip(results) {
        assert!(passed, "recovery failed in scenario {name}");
        if base == 0.0 {
            base = t;
        }
        let _ = writeln!(
            out,
            "{:<14} {:>8.2}x {:>8} {:>8} {:>8} {:>9} {:>9}",
            name,
            t / base,
            fr.dropped_loss,
            fr.dropped_dead,
            fr.watchdog_retries,
            fr.route_failovers,
            fr.degraded_prs
        );
    }
    let _ = writeln!(
        out,
        "(every scenario passed the functional check: burst drops and the
 dead spine are healed by watchdog retries and ECMP next-choice failover)"
    );
    out
}

/// Extension experiment: Property Cache replacement-policy ablation —
/// why Table 5 specifies LRU.
pub fn ext_cache_policy(o: &BenchOpts) -> String {
    use netsparse_switch::ReplacementPolicy;
    let o = o.scaled(0.5);
    let k = 16;
    let policies = [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: Property Cache replacement policy (K=16, hit rate %)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for (name, _) in policies {
        let _ = write!(out, " {:>8}", name);
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    let cells = sweep_grid(&o, &exps, policies.len(), |e, pi| {
        let mut cfg = cfg_for(&o, k);
        // Shrink the cache so the policy actually has to evict.
        cfg.switch.cache.capacity_bytes = 256 << 10;
        cfg.switch.cache.policy = policies[pi].1;
        e.run(&cfg).cache_hit_rate()
    });
    for (e, row) in exps.iter().zip(&cells) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        for hit_rate in row {
            let _ = write!(out, " {:>7.1}%", hit_rate * 100.0);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "(differences appear only under capacity pressure; the working
 sets of the scaled workloads keep the policies close)"
    );
    out
}

/// Extension experiment (§9.4 future work, implemented): adaptive RIG
/// batch sizing. Fixed batches trade host overhead (small) against
/// end-of-stream unit imbalance (large); tail-aware carving gets the
/// best of both without per-matrix tuning.
pub fn ext_adaptive(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let fixed = [512usize, 2_048, 8_192];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§9.4): adaptive RIG batching (K=16; comm us, lower is better)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for b in fixed {
        let _ = write!(out, " {:>10}", format!("fixed {b}"));
    }
    let _ = writeln!(out, " {:>12}", "adaptive 8k");
    let exps = all_experiments(&o);
    // Columns: the fixed batch sizes, then the adaptive run last.
    let cells = sweep_grid(&o, &exps, fixed.len() + 1, |e, ci| {
        let mut cfg = cfg_for(&o, k);
        if ci < fixed.len() {
            cfg.batch_size = fixed[ci];
        } else {
            cfg.batch_size = 8_192;
            cfg.adaptive_batch = true;
        }
        e.run(&cfg).comm_time_s()
    });
    for (e, times) in exps.iter().zip(&cells) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        let mut best_fixed = f64::INFINITY;
        for &t in &times[..fixed.len()] {
            best_fixed = best_fixed.min(t);
            let _ = write!(out, " {:>10.1}", t * 1e6);
        }
        let t = times[fixed.len()];
        let marker = if t <= best_fixed * 1.05 { "*" } else { "" };
        let _ = writeln!(out, " {:>11.1}{}", t * 1e6, marker);
    }
    let _ = writeln!(
        out,
        "(* = within 5% of the best fixed batch, with no tuning; the paper
 notes the statically-selected batch size is often nonoptimal)"
    );
    out
}

/// Extension experiment: PR round-trip latency percentiles — the
/// microscopic view behind the goodput story. Concatenation *adds* a
/// bounded per-PR delay (the DelayCycles budget) but wins it back in
/// header bytes; the Property Cache removes the spine round trip for
/// hits.
pub fn ext_latency(o: &BenchOpts) -> String {
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: PR round-trip latency percentiles (K=16, microseconds)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>8} {:>14}",
        "Matrix", "p50", "p90", "p99", "no-concat p50"
    );
    let exps = all_experiments(o);
    // Columns: the full design, then the concatenation-free variant.
    let cells = sweep_grid(o, &exps, 2, |e, ci| {
        let mut cfg = cfg_for(o, k);
        if ci == 1 {
            cfg.mechanisms.nic_concat = false;
            cfg.mechanisms.switch_concat = false;
        }
        e.run(&cfg)
    });
    for (e, row) in exps.iter().zip(&cells) {
        let q = |r: &netsparse::SimReport, q: f64| {
            r.pr_latency_quantile(q)
                .map(|t| t.as_us_f64())
                .unwrap_or(0.0)
        };
        let (report, no_concat) = (&row[0], &row[1]);
        let _ = writeln!(
            out,
            "{:<8} {:>8.2} {:>8.2} {:>8.2} {:>14.2}",
            e.matrix.name(),
            q(report, 0.5),
            q(report, 0.9),
            q(report, 0.99),
            q(no_concat, 0.5),
        );
    }
    let _ = writeln!(
        out,
        "(the paper, §6.1.2: per-PR concatenation delay \"is tolerable\" —
 what matters is kernel completion, not individual PRs)"
    );
    out
}

/// Extension experiment: the three kernels of §2.1 end to end — the
/// gather is common, the compute roofline differs, and NetSparse's win
/// carries across all of them (the paper's §8.2 representativeness
/// claim, made concrete).
pub fn ext_kernels(o: &BenchOpts) -> String {
    use netsparse::experiments::SparseKernel;
    let o = o.scaled(0.5);
    let kernels = [
        ("SpMV", SparseKernel::SpMV),
        ("SpMM16", SparseKernel::SpMM { k: 16 }),
        ("SDDMM16", SparseKernel::Sddmm { k: 16 }),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: end-to-end speedup per kernel (SPADE, 128 nodes over 1)"
    );
    let _ = write!(out, "{:<8}", "Matrix");
    for (name, _) in kernels {
        let _ = write!(out, " {:>22}", format!("{name} SA/NS/ideal"));
    }
    let _ = writeln!(out);
    let exps = all_experiments(&o);
    let cells = sweep_grid(&o, &exps, kernels.len(), |e, ki| {
        let kernel = kernels[ki].1;
        let cfg = mini_cfg(kernel.k());
        e.end_to_end_kernel(&cfg, ComputeEngine::Spade, kernel)
    });
    for (e, row) in exps.iter().zip(&cells) {
        let _ = write!(out, "{:<8}", e.matrix.name());
        for r in row {
            let _ = write!(
                out,
                " {:>22}",
                format!(
                    "{:.1}/{:.1}/{:.1}",
                    r.speedup_sa, r.speedup_netsparse, r.speedup_ideal
                )
            );
        }
        let _ = writeln!(out);
    }
    out
}

/// Extension experiment: the Two-Face-style hybrid software baseline
/// (paper reference [11]) vs SUOpt, SAOpt and NetSparse.
pub fn ext_hybrid(o: &BenchOpts) -> String {
    use netsparse::baselines::Baselines;
    use netsparse_accel::HybridOptModel;
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: hybrid (Two-Face-style) software baseline (K=16,
 comm speedup over SUOpt)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>8} {:>8} {:>10} {:>12}",
        "Matrix", "SAOpt", "Hybrid", "NetSparse", "NS/Hybrid"
    );
    let exps = all_experiments(o);
    let rows = SweepRunner::from_opts(o).map(&exps, |e| {
        let cfg = mini_cfg(k);
        let (cmp, _) = e.compare(&cfg);
        let baselines = Baselines::for_line_rate(cfg.link.bandwidth_bps / 1e9);
        let hybrid = HybridOptModel::new(baselines.sa);
        let t_hybrid = hybrid.kernel_comm_time(&e.wl, k);
        (
            cmp.sa_over_su(),
            cmp.su_time / t_hybrid,
            cmp.netsparse_over_su(),
        )
    });
    for (e, &(sa, hybrid_over_su, ns)) in exps.iter().zip(&rows) {
        let _ = writeln!(
            out,
            "{:<8} {:>8.2} {:>8.2} {:>10.2} {:>12.2}",
            e.matrix.name(),
            sa,
            hybrid_over_su,
            ns,
            ns / hybrid_over_su
        );
    }
    let _ = writeln!(
        out,
        "(even an oracle-tuned hybrid of collectives + one-sided software
 cannot close the gap to in-network hardware)"
    );
    out
}

/// Extension experiment: the paper's §9.4 future-work suggestion —
/// does nnz-balanced 1-D partitioning reduce the communication-imbalance
/// tail of Figure 19?
pub fn ext_partition(o: &BenchOpts) -> String {
    use netsparse_sparse::{CommWorkload, Partition1D};
    let o = o.scaled(0.5);
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (§9.4): even vs nnz-balanced 1-D partitioning (K=16)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>19} {:>19}   (comm time | tail/mean imbalance)",
        "Matrix", "even rows", "nnz-balanced"
    );
    let exps = all_experiments(&o);
    let cells = SweepRunner::from_opts(&o).map(&exps, |e| {
        // Materialize the workload as a matrix and re-partition it. Note
        // the materialization merges duplicate coordinates, so absolute
        // times are not comparable to the stream-driven experiments —
        // only the two partitions of the *same* matrix to each other.
        let m = e.wl.to_coo().to_csr();
        let nodes = e.wl.nodes();
        let even = Partition1D::even(m.ncols(), nodes);
        let weights: Vec<u64> = (0..m.nrows()).map(|r| m.row_nnz(r) as u64).collect();
        let balanced = Partition1D::balanced(&weights, nodes);
        let cfg = mini_cfg(k);
        [&even, &balanced].map(|part| {
            let wl = CommWorkload::from_csr(&m, part);
            let report = netsparse::simulate(&cfg, &wl);
            let mean_finish: f64 = report
                .nodes
                .iter()
                .map(|n| n.finish.as_secs_f64())
                .sum::<f64>()
                / nodes as f64;
            (
                report.comm_time_s(),
                report.comm_time_s() / mean_finish.max(1e-12),
                report.functional_check_passed,
            )
        })
    });
    for (e, parts) in exps.iter().zip(&cells) {
        let mut row = format!("{:<8}", e.matrix.name());
        for &(t, imbalance, passed) in parts {
            assert!(passed);
            row.push_str(&format!(" {:>12.1}us", t * 1e6));
            row.push_str(&format!("|{:>5.2}", imbalance));
        }
        let _ = writeln!(out, "{row}");
    }
    let _ = writeln!(
        out,
        "(the paper attributes the residual imbalance to partitioning, not
 to the NetSparse hardware; nnz-balancing shifts compute balance but
 the communication tail is set by *traffic* skew)"
    );
    out
}

/// Extension: in-network reduction of SpMM scatter contributions.
///
/// Every issued read carries one partial-sum contribution toward the
/// row's owner. The software baseline ships contributions to the root
/// unmerged; the in-network transport folds rack-mates' contributions
/// in the source ToR's partial-sum table (a `Reduce` pipeline handler),
/// so the root's downlink sees one merged PR where the baseline saw
/// many. The sweep crosses the transport with the Property Cache
/// because the cache reshapes the *read* traffic sharing the same
/// links — contribution volume itself is invariant to it.
pub fn ext_reduce(o: &BenchOpts) -> String {
    let o = o.scaled(0.5);
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: in-network reduction (K={k}; Partial traffic on root downlinks)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>28} {:>37}",
        "", "--------- cache off --------", "------------- cache on -------------"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>9} {:>8} {:>6} {:>9} {:>9} {:>8} {:>9}",
        "Matrix", "sw KB", "innet KB", "saved", "hit%", "sw KB", "innet KB", "saved", "merges"
    );
    let exps = all_experiments(&o);
    // Columns: (cache, transport) crossed — off/sw, off/innet, on/sw,
    // on/innet.
    let cells = sweep_grid(&o, &exps, 4, |e, ci| {
        let mut cfg = cfg_for(&o, k);
        if ci < 2 {
            cfg.mechanisms.property_cache = false;
        }
        cfg.reduce = if ci % 2 == 0 {
            ReduceConfig::software_baseline()
        } else {
            ReduceConfig::in_network()
        };
        let r = e.run(&cfg);
        assert!(r.functional_check_passed);
        let rr = r.reduce.clone().expect("reduction enabled in every cell");
        assert!(rr.conserved(), "contribution conservation: {rr:?}");
        (rr.root_wire_bytes, rr.merges, r.cache_hit_rate())
    });
    let saved = |sw: u64, innet: u64| 100.0 * (1.0 - innet as f64 / sw.max(1) as f64);
    for (e, row) in exps.iter().zip(&cells) {
        let (off_sw, _, _) = row[0];
        let (off_in, _, _) = row[1];
        let (on_sw, _, _) = row[2];
        let (on_in, on_merges, on_hit) = row[3];
        let _ = writeln!(
            out,
            "{:<8} {:>9.1} {:>9.1} {:>7.1}% {:>5.1}% {:>9.1} {:>9.1} {:>7.1}% {:>9}",
            e.matrix.name(),
            off_sw as f64 / 1024.0,
            off_in as f64 / 1024.0,
            saved(off_sw, off_in),
            on_hit * 100.0,
            on_sw as f64 / 1024.0,
            on_in as f64 / 1024.0,
            saved(on_sw, on_in),
            on_merges
        );
    }
    let _ = writeln!(
        out,
        "(saved = Partial bytes the merge removes from root downlinks; every
 cell conserves contributions exactly. The cache moves read traffic
 only, so the reduction saving is near-orthogonal to hit rate.)"
    );
    out
}

/// Extension (observability): structured trace capture — per-matrix
/// record volume, the golden-trace digest, and the kernel's timeline
/// split into four quartile windows (see `docs/OBSERVABILITY.md`).
#[cfg(feature = "trace")]
pub fn ext_trace(o: &BenchOpts) -> String {
    use netsparse_desim::trace::TimelineMetrics;
    use netsparse_desim::TraceConfig;
    let o = o.scaled(0.25);
    let k = 16;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension (observability): trace timeline (K={k}, 4 quartile windows)"
    );
    let _ = writeln!(
        out,
        "{:<8} {:>9} {:>7} {:>18} {:>23} {:>23}",
        "Matrix", "records", "dropped", "digest", "coalesce% (q1..q4)", "cache-hit% (q1..q4)"
    );
    let exps = all_experiments(&o);
    // The tracer itself is single-threaded (`Rc`-based), but each traced
    // run owns its tracer, so whole points still fan out cleanly.
    let rows = SweepRunner::from_opts(&o).map(&exps, |e| {
        let report = e.run_traced(&mini_cfg(k), TraceConfig::default());
        let tr = report.trace.as_ref().expect("traced run carries a trace");
        let tl = TimelineMetrics::derive(&tr.buffer, 4);
        (
            tr.buffer.len(),
            tr.buffer.dropped(),
            tr.digest,
            tl.coalescing_ratio.clone(),
            tl.cache_hit_rate.clone(),
        )
    });
    let pct = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{:>5.1}", x * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for (e, (len, dropped, digest, coalesce, cache)) in exps.iter().zip(&rows) {
        let _ = writeln!(
            out,
            "{:<8} {:>9} {:>7} {:#018x} {:>23} {:>23}",
            e.matrix.name(),
            len,
            dropped,
            digest,
            pct(coalesce),
            pct(cache),
        );
    }
    let _ = writeln!(
        out,
        "(per-window rates expose warm-up and drain phases invisible in the
 run-level averages; the digest is the golden-trace fingerprint the
 regression suite pins)"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchOpts {
        BenchOpts {
            scale: 0.02,
            seed: 7,
            paper_profile: false,
            workers: 1,
        }
    }

    #[test]
    fn analytic_tables_render() {
        assert!(table3().contains("97.6"));
        assert!(fig10().contains("cores"));
        assert!(fig20().contains("RIG Units"));
        assert!(table9().contains("Pending PR Table"));
    }

    #[test]
    fn workload_tables_render_at_tiny_scale() {
        let o = tiny();
        assert!(table1(&o).contains("arabic"));
        assert!(table4(&o).contains("queen"));
        assert!(table2(&o).contains("Gbps"));
    }

    #[test]
    fn one_simulated_figure_renders_at_tiny_scale() {
        let o = tiny();
        let s = fig19(&o);
        assert!(s.contains("arabic"), "{s}");
    }

    #[test]
    fn parallel_sweep_renders_byte_identical_tables() {
        let serial = tiny();
        let parallel = serial.with_workers(4);
        assert_eq!(fig19(&serial), fig19(&parallel));
        assert_eq!(fig12(&serial), fig12(&parallel));
    }
}
