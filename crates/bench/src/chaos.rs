//! chaoscheck — seed-driven chaos testing of the fault-injection stack.
//!
//! A [`ChaosScenario`] is derived deterministically from a single `u64`
//! seed: topology, workload matrix/scale, mechanism configuration,
//! concatenator implementation, and a random (but reproducible) fault
//! schedule — burst/uniform loss, scheduled switch/link failures,
//! straggler nodes. Every scenario runs through the *fallible* simulator
//! entry point (`netsparse::try_simulate`) under a deterministic liveness
//! budget, and its [`SimReport`] is checked against the invariant-oracle
//! suite in [`check_report`]:
//!
//! - **conservation** — every issued PR is resolved or abandoned
//!   (`issued == (responses − stale) + abandoned_prs`), with exact
//!   balance and zero abandonment on fault-free runs;
//! - **delivery** — scenarios whose fault mix cannot lose data
//!   (no loss, no scheduled failures) must pass the functional check
//!   with nothing abandoned;
//! - **graceful-abandonment** — a run that fails functionally must have
//!   *recorded* abandoned commands under an active fault config: silent
//!   data loss is the one unforgivable outcome;
//! - **retry-accounting** — watchdog counters consistent with the
//!   config: no retries without an armed watchdog, no abandonment
//!   without the retry budget spent, degraded nodes imply escalation;
//! - **report-consistency** — aggregate counters agree with each other
//!   (`comm_time` is the node-finish max, drop totals match, cache hits
//!   bounded by lookups).
//!
//! A deliberately invalid slice of the seed space (~1/8) exercises the
//! rejection path: those configs must come back as typed `SimError`s,
//! not panics. When a scenario *violates* an oracle, [`shrink`]
//! minimizes it — dropping scheduled failures and degradations,
//! disabling loss, halving scale and K — while the violation still
//! reproduces, and [`write_repro`] emits a `chaos_repro.json` that
//! [`replay_repro`] turns back into the same violation with one command
//! (`chaos --replay chaos_repro.json`).

use netsparse::config::{FailureEvent, FaultConfig, FaultTarget, NodeDegradation, SimLimits};
use netsparse::metrics::FaultReport;
use netsparse::prelude::*;
use netsparse_desim::{LossModel, SplitMix64};
use netsparse_sparse::suite::SuiteConfig;

/// Where a scenario came from: a generator seed or a named fixture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioSource {
    /// Derived from [`ChaosScenario::generate`] with this seed.
    Seed(u64),
    /// A hand-built fixture (see [`ChaosScenario::broken_fixture`]).
    Fixture(String),
}

impl std::fmt::Display for ScenarioSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioSource::Seed(s) => write!(f, "seed:{s}"),
            ScenarioSource::Fixture(name) => write!(f, "fixture:{name}"),
        }
    }
}

/// One generated chaos scenario: everything needed to build the cluster
/// config and workload, plus the oracle expectations derived alongside.
#[derive(Debug, Clone)]
pub struct ChaosScenario {
    /// Seed or fixture identity (stable across shrinking).
    pub source: ScenarioSource,
    /// Cluster topology (small: ≤ 32 nodes, all three families).
    pub topology: Topology,
    /// Hosts per edge switch, for the workload's locality structure.
    pub rack_size: u32,
    /// Workload matrix signature.
    pub matrix: SuiteMatrix,
    /// Workload scale in thousandths (integer so repros round-trip
    /// through JSON exactly).
    pub scale_milli: u32,
    /// Workload generator seed.
    pub workload_seed: u64,
    /// Property size.
    pub k: u32,
    /// Nonzeros per RIG command.
    pub batch_size: usize,
    /// Mechanism on/off mask.
    pub mechanisms: Mechanisms,
    /// Use the §7.2 virtual concatenation queues in the NIC.
    pub virtual_cq: bool,
    /// Enable the adaptive batch controller.
    pub adaptive_batch: bool,
    /// The generated fault schedule.
    pub faults: FaultConfig,
    /// In-network reduction configuration. Disabled outside the
    /// reduce slice of the seed space (bit 32 clear), so the base seed
    /// range produces byte-identical scenarios with or without the
    /// extension compiled in.
    pub reduce: ReduceConfig,
    /// Whether the oracle suite must insist on full delivery (true only
    /// when the fault mix cannot lose data).
    pub expect_delivery: bool,
}

/// Outcome of one scenario run.
#[derive(Debug)]
pub enum ScenarioOutcome {
    /// The generated config was invalid and the simulator rejected it
    /// with a typed error before any event ran. Expected for the
    /// deliberately-poisoned slice of the seed space.
    Rejected(String),
    /// The liveness watchdog tripped: the run exceeded its event budget
    /// or froze at one instant.
    Stalled(String),
    /// The run finished but one or more oracles failed.
    Violated {
        /// The failing oracles, in check order.
        violations: Vec<Violation>,
    },
    /// The run finished and every oracle held.
    Passed {
        /// The run's report, for recovery-time accounting.
        report: Box<SimReport>,
    },
}

/// One failed invariant oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which oracle (stable identifier, used by the shrinker to match
    /// "the same violation").
    pub oracle: &'static str,
    /// Deterministic human-readable evidence.
    pub detail: String,
}

const GEN_SALT: u64 = 0xC4A0_5C7E_11AA_55EE;

/// Seeds with this bit set opt into the reduction slice of the seed
/// space: scatter contributions flow, and roughly half the slice merges
/// them in-network. Lives above the 32-bit range so every historical
/// batch (seeds 0..N) is untouched.
pub const REDUCE_SEED_BIT: u64 = 1 << 32;

/// Salt for the *independent* generator that derives reduction
/// parameters. Keeping it separate from [`GEN_SALT`]'s stream means the
/// reduce fields consume no draws from the base generator, so a seed's
/// topology/workload/fault schedule is identical whether or not the
/// reduce bit is set.
const REDUCE_SALT: u64 = 0x5EED_0FF5_B17E_CA5E;

impl ChaosScenario {
    /// Derives a complete scenario from `seed`. Deterministic: the same
    /// seed always yields the same scenario, byte for byte. Roughly 1/8
    /// of seeds are deliberately invalid (bad probabilities, unarmed
    /// watchdogs, out-of-range or nonexistent fault targets, degenerate
    /// clusters) to exercise the typed-rejection path.
    pub fn generate(seed: u64) -> ChaosScenario {
        // The base generator never sees the reduce bit: seed S and
        // S | REDUCE_SEED_BIT are twins that differ only in the
        // reduction config, so the reduce slice ablates the extension
        // over the exact scenario population the base slice covers.
        let mut rng = SplitMix64::new((seed & !REDUCE_SEED_BIT) ^ GEN_SALT);

        let (topology, rack_size) = match rng.next_range(3) {
            0 => {
                let rack_size = [2u32, 4][rng.next_range(2) as usize];
                (
                    Topology::LeafSpine {
                        racks: rng.range_u32_inclusive(2, 4),
                        rack_size,
                        spines: rng.range_u32_inclusive(2, 3),
                    },
                    rack_size,
                )
            }
            1 => {
                let hosts = rng.range_u32_inclusive(1, 2);
                (
                    Topology::HyperX {
                        dims: [
                            rng.range_u32_inclusive(2, 3),
                            rng.range_u32_inclusive(2, 3),
                            1,
                        ],
                        hosts_per_switch: hosts,
                    },
                    hosts,
                )
            }
            _ => {
                let hosts = rng.range_u32_inclusive(1, 2);
                (
                    Topology::Dragonfly {
                        groups: rng.range_u32_inclusive(2, 3),
                        switches_per_group: rng.range_u32_inclusive(2, 3),
                        hosts_per_switch: hosts,
                        global_links_per_pair: rng.range_u32_inclusive(1, 2),
                    },
                    hosts,
                )
            }
        };
        let nodes = topology.nodes();

        let matrix = SuiteMatrix::ALL[rng.next_range(SuiteMatrix::ALL.len() as u64) as usize];
        let scale_milli = rng.range_u32_inclusive(4, 30);
        let workload_seed = rng.next_u64();
        let mut k = [1u32, 4, 16, 64][rng.next_range(4) as usize];
        let batch_size = [256usize, 512, 1024, 2048][rng.next_range(4) as usize];
        let mechanisms = Mechanisms {
            filter: rng.next_bool(),
            coalesce: rng.next_bool(),
            nic_concat: rng.next_bool(),
            switch_concat: rng.next_bool(),
            property_cache: rng.next_bool(),
        };
        let virtual_cq = rng.chance(0.25);
        let adaptive_batch = rng.chance(0.125);

        // The fault schedule. Loss and scheduled failures may abandon
        // commands (the watchdog's escalation ladder is *supposed* to);
        // only fault mixes that cannot lose data keep the strict
        // delivery oracle.
        let loss = match rng.next_range(10) {
            0..=4 => LossModel::None,
            5..=7 => LossModel::Bernoulli {
                rate: rng.range_f64(0.001, 0.02),
            },
            _ => LossModel::GilbertElliott {
                p_enter_burst: rng.range_f64(0.001, 0.01),
                p_exit_burst: rng.range_f64(0.2, 0.5),
                loss_good: 0.0,
                loss_bad: rng.range_f64(0.1, 0.3),
            },
        };
        let n_failures = rng.next_range(3) as usize;
        let mut failures = Vec::new();
        for _ in 0..n_failures {
            let target = random_fault_target(&mut rng, &topology);
            let at_ns = rng.range_u64(500, 5_000);
            let repair_at_ns = if rng.chance(0.6) {
                Some(at_ns + rng.range_u64(20_000, 80_000))
            } else {
                None
            };
            failures.push(FailureEvent {
                at_ns,
                target,
                repair_at_ns,
            });
        }
        let mut degraded = Vec::new();
        for _ in 0..rng.next_range(3) {
            degraded.push(NodeDegradation {
                node: rng.next_range(nodes as u64) as u32,
                compute_slowdown: rng.range_f64(1.5, 4.0),
                nic_bandwidth_factor: rng.range_f64(0.3, 1.0),
            });
        }
        let lossless = matches!(loss, LossModel::None);
        // Arm the watchdog only when the fault mix needs it: an armed
        // watchdog on a clean run can spuriously retry commands that are
        // merely slow, which would poison the strict delivery oracle.
        let needs_watchdog = !lossless || !failures.is_empty();
        let mut faults = FaultConfig {
            loss,
            watchdog_ns: if needs_watchdog {
                rng.range_u64(60_000, 160_000)
            } else {
                0
            },
            max_retries: rng.range_u32_inclusive(2, 4),
            backoff_multiplier: rng.range_f64(1.2, 2.5),
            backoff_jitter: rng.range_f64(0.0, 0.3),
            seed: rng.next_u64(),
            failures,
            degraded,
        };
        let expect_delivery = lossless && faults.failures.is_empty();

        // The reduction slice: an independent generator so these draws
        // cannot perturb the base scenario above.
        let reduce = if seed & REDUCE_SEED_BIT != 0 {
            let mut rrng = SplitMix64::new(seed ^ REDUCE_SALT);
            let mut rc = if rrng.next_bool() {
                ReduceConfig::in_network()
            } else {
                ReduceConfig::software_baseline()
            };
            rc.table_entries = [64usize, 256, 1024, 4096][rrng.next_range(4) as usize];
            rc.flush_ns = rrng.range_u64(50, 400);
            rc
        } else {
            ReduceConfig::disabled()
        };

        // Poison ~1/8 of the seed space with configs that must be
        // *rejected* (typed SimError), never run and never crash.
        if seed % 8 == 3 {
            match rng.next_range(5) {
                0 => {
                    // Loss without a watchdog would hang the kernel.
                    faults.loss = LossModel::Bernoulli { rate: 0.01 };
                    faults.watchdog_ns = 0;
                }
                1 => {
                    faults.loss = LossModel::Bernoulli { rate: 1.5 };
                    faults.watchdog_ns = 50_000;
                }
                2 => {
                    faults.watchdog_ns = 50_000;
                    faults.failures.push(FailureEvent {
                        at_ns: 1_000,
                        target: FaultTarget::Switch(topology.switches() + 7),
                        repair_at_ns: None,
                    });
                }
                3 => {
                    faults.watchdog_ns = 50_000;
                    faults.failures.push(FailureEvent {
                        at_ns: 10_000,
                        target: FaultTarget::Switch(0),
                        repair_at_ns: Some(5_000),
                    });
                }
                _ => k = 0,
            }
        }

        ChaosScenario {
            source: ScenarioSource::Seed(seed),
            topology,
            rack_size,
            matrix,
            scale_milli,
            workload_seed,
            k,
            batch_size,
            mechanisms,
            virtual_cq,
            adaptive_batch,
            faults,
            reduce,
            expect_delivery,
        }
    }

    /// The deliberately-broken fixture for the shrinker demo: a
    /// permanent ToR death (which genuinely severs a rack) wrongly
    /// tagged `expect_delivery`, buried under noise faults — loss, a
    /// transient spine failure, two stragglers. The shrinker must strip
    /// the noise and reproduce the delivery violation with the ToR kill
    /// alone.
    pub fn broken_fixture() -> ChaosScenario {
        ChaosScenario {
            source: ScenarioSource::Fixture("broken-delivery".to_string()),
            topology: Topology::LeafSpine {
                racks: 2,
                rack_size: 4,
                spines: 2,
            },
            rack_size: 4,
            matrix: SuiteMatrix::Uk,
            scale_milli: 20,
            workload_seed: 7,
            k: 16,
            batch_size: 1024,
            mechanisms: Mechanisms::all(),
            virtual_cq: false,
            adaptive_batch: false,
            faults: FaultConfig {
                loss: LossModel::Bernoulli { rate: 0.01 },
                watchdog_ns: 60_000,
                max_retries: 2,
                backoff_multiplier: 2.0,
                backoff_jitter: 0.1,
                seed: 11,
                failures: vec![
                    FailureEvent {
                        at_ns: 1_000,
                        // ToR 1: every path to rack 1 dies with it.
                        target: FaultTarget::Switch(1),
                        repair_at_ns: None,
                    },
                    FailureEvent {
                        at_ns: 2_000,
                        // Spine 2: transient, survivable noise.
                        target: FaultTarget::Switch(2),
                        repair_at_ns: Some(30_000),
                    },
                ],
                degraded: vec![
                    NodeDegradation {
                        node: 0,
                        compute_slowdown: 2.0,
                        nic_bandwidth_factor: 0.5,
                    },
                    NodeDegradation {
                        node: 2,
                        compute_slowdown: 1.5,
                        nic_bandwidth_factor: 0.8,
                    },
                ],
            },
            reduce: ReduceConfig::disabled(),
            // The planted bug: a permanent ToR death cannot deliver.
            expect_delivery: true,
        }
    }

    /// The scenario's workload scale as a float.
    pub fn scale(&self) -> f64 {
        self.scale_milli as f64 / 1000.0
    }

    /// The deterministic event budget for this scenario: generous (a
    /// healthy run uses a small fraction) but finite, so a livelocked
    /// model surfaces as a structured stall instead of a hang.
    pub fn event_budget(&self) -> u64 {
        let wl = self.workload();
        let total_idxs: u64 = (0..wl.nodes()).map(|p| wl.stream(p).len() as u64).sum();
        2_000_000 + 100 * total_idxs + 200_000 * self.faults.failures.len() as u64
    }

    /// Builds the cluster configuration for this scenario, liveness
    /// limits armed.
    pub fn cluster_config(&self) -> ClusterConfig {
        let mut cfg = ClusterConfig::mini(self.topology, self.k);
        cfg.batch_size = self.batch_size;
        cfg.mechanisms = self.mechanisms;
        cfg.adaptive_batch = self.adaptive_batch;
        if self.virtual_cq {
            cfg.concat_impl =
                netsparse::config::ConcatImpl::Virtual(netsparse_snic::vconcat::VirtualCqConfig {
                    physical_queues: 8,
                    physical_bytes: 256,
                });
        }
        cfg.faults = self.faults.clone();
        cfg.reduce = self.reduce;
        cfg.limits = SimLimits {
            max_events: Some(self.event_budget()),
            max_stagnant_events: Some(250_000),
        };
        cfg
    }

    /// Generates the scenario's workload (deterministic in
    /// `workload_seed`).
    pub fn workload(&self) -> CommWorkload {
        SuiteConfig {
            matrix: self.matrix,
            nodes: self.topology.nodes(),
            rack_size: self.rack_size.max(1),
            scale: self.scale(),
            seed: self.workload_seed,
        }
        .generate()
    }

    /// Runs the scenario end to end: try-simulate under the liveness
    /// budget, then the oracle suite.
    pub fn run(&self) -> ScenarioOutcome {
        if self.k == 0 || self.batch_size == 0 || self.topology.nodes() < 2 {
            // Degenerate clusters would also trip the workload
            // generator's own assertions; classify them by the same
            // front-loaded validation the simulator applies.
            let cfg = ClusterConfig::mini(self.topology, self.k);
            if let Err(e) = cfg.validate() {
                return ScenarioOutcome::Rejected(format!("invalid cluster config: {e}"));
            }
            return ScenarioOutcome::Rejected("degenerate cluster".to_string());
        }
        let cfg = self.cluster_config();
        let wl = self.workload();
        match try_simulate(&cfg, &wl) {
            Err(SimError::Stalled(report)) => ScenarioOutcome::Stalled(report.to_string()),
            Err(e) => ScenarioOutcome::Rejected(e.to_string()),
            Ok(report) => {
                let violations = check_report(self, &report);
                if violations.is_empty() {
                    ScenarioOutcome::Passed {
                        report: Box::new(report),
                    }
                } else {
                    ScenarioOutcome::Violated { violations }
                }
            }
        }
    }
}

/// A deterministic, topology-valid fault target: a random switch, or an
/// existing switch-to-switch link.
fn random_fault_target(rng: &mut SplitMix64, topo: &Topology) -> FaultTarget {
    if rng.next_bool() {
        return FaultTarget::Switch(rng.next_range(topo.switches() as u64) as u32);
    }
    match *topo {
        Topology::LeafSpine { racks, spines, .. } => {
            let tor = rng.next_range(racks as u64) as u32;
            let spine = racks + rng.next_range(spines as u64) as u32;
            FaultTarget::SwitchLink {
                from: tor,
                to: spine,
            }
        }
        Topology::HyperX { dims, .. } => {
            // Two switches adjacent along the x dimension line.
            let s = rng.next_range((dims[0] * dims[1] * dims[2]) as u64) as u32;
            let x = s % dims[0];
            let partner = s - x + (x + 1) % dims[0];
            FaultTarget::SwitchLink {
                from: s,
                to: partner,
            }
        }
        Topology::Dragonfly {
            groups,
            switches_per_group,
            ..
        } => {
            // An intra-group mesh link (spg ≥ 2 by construction).
            let g = rng.next_range(groups as u64) as u32;
            let a = rng.next_range(switches_per_group as u64) as u32;
            let b = (a + 1) % switches_per_group;
            FaultTarget::SwitchLink {
                from: g * switches_per_group + a,
                to: g * switches_per_group + b,
            }
        }
    }
}

/// Runs the invariant-oracle suite over a finished run's report.
/// Returns one [`Violation`] per failed oracle (empty = all held).
pub fn check_report(sc: &ChaosScenario, r: &SimReport) -> Vec<Violation> {
    let mut v = Vec::new();
    let default_fr = FaultReport::default();
    let fr = r.faults.as_ref().unwrap_or(&default_fr);
    let issued: u64 = r.nodes.iter().map(|n| n.issued).sum();
    let responses: u64 = r.nodes.iter().map(|n| n.responses).sum();
    let retries: u64 = r.nodes.iter().map(|n| n.watchdog_retries).sum();
    let resolved = responses.saturating_sub(fr.stale_responses);
    let faults_on = sc.faults.is_active();

    // conservation: at termination every issued PR was resolved by a
    // (non-stale) response, abandoned by the watchdog, or orphaned (its
    // packet dropped, its command completed without it).
    if issued != resolved + fr.abandoned_prs + fr.orphaned_prs {
        v.push(Violation {
            oracle: "conservation",
            detail: format!(
                "issued {} != resolved {} + abandoned {} + orphaned {} (responses {}, stale {})",
                issued, resolved, fr.abandoned_prs, fr.orphaned_prs, responses, fr.stale_responses
            ),
        });
    }
    if fr.orphaned_prs > 0 && fr.total_dropped() == 0 {
        v.push(Violation {
            oracle: "conservation",
            detail: format!("{} PRs orphaned with zero dropped packets", fr.orphaned_prs),
        });
    }
    if !faults_on
        && (fr.abandoned_prs != 0
            || fr.stale_responses != 0
            || fr.orphaned_prs != 0
            || fr.total_dropped() != 0)
    {
        v.push(Violation {
            oracle: "conservation",
            detail: format!(
                "fault-free run recorded abandonment/loss: abandoned {}, stale {}, orphaned {}, \
                 dropped {}",
                fr.abandoned_prs,
                fr.stale_responses,
                fr.orphaned_prs,
                fr.total_dropped()
            ),
        });
    }

    // delivery: a fault mix that cannot lose data must deliver fully.
    if sc.expect_delivery && (!r.functional_check_passed || fr.abandoned_commands != 0) {
        v.push(Violation {
            oracle: "delivery",
            detail: format!(
                "scenario tagged expect_delivery failed: functional {}, abandoned commands {}",
                r.functional_check_passed, fr.abandoned_commands
            ),
        });
    }

    // graceful-abandonment: a functional failure is only acceptable as
    // *recorded* watchdog abandonment under an active fault config.
    if !r.functional_check_passed && (!faults_on || fr.abandoned_commands == 0) {
        v.push(Violation {
            oracle: "graceful-abandonment",
            detail: format!(
                "functional failure without recorded abandonment (faults active: {}, \
                 abandoned commands: {})",
                faults_on, fr.abandoned_commands
            ),
        });
    }

    // retry-accounting: watchdog counters consistent with the config.
    if sc.faults.watchdog_ns == 0 && (retries != 0 || fr.abandoned_prs != 0) {
        v.push(Violation {
            oracle: "retry-accounting",
            detail: format!(
                "unarmed watchdog recorded activity: retries {}, abandoned PRs {}",
                retries, fr.abandoned_prs
            ),
        });
    }
    if fr.watchdog_retries != retries {
        v.push(Violation {
            oracle: "retry-accounting",
            detail: format!(
                "FaultReport retries {} != node retry sum {}",
                fr.watchdog_retries, retries
            ),
        });
    }
    if fr.abandoned_commands > 0 {
        let floor = 2 * sc.faults.max_retries.max(1) as u64 + 1;
        if retries < floor {
            v.push(Violation {
                oracle: "retry-accounting",
                detail: format!(
                    "{} commands abandoned with only {} retries (final rung needs {})",
                    fr.abandoned_commands, retries, floor
                ),
            });
        }
    }
    if fr.degraded_nodes > 0 && retries < sc.faults.max_retries.max(1) as u64 {
        v.push(Violation {
            oracle: "retry-accounting",
            detail: format!(
                "{} nodes degraded with only {} retries (escalation needs {})",
                fr.degraded_nodes, retries, sc.faults.max_retries
            ),
        });
    }

    // failover-validity: dead-route drops require scheduled failures,
    // and failover reroutes require fault transitions.
    if fr.dropped_dead > 0 && sc.faults.failures.is_empty() {
        v.push(Violation {
            oracle: "failover-validity",
            detail: format!(
                "{} packets blackholed with no scheduled failures",
                fr.dropped_dead
            ),
        });
    }
    if fr.route_failovers > 0 && fr.fault_transitions == 0 {
        v.push(Violation {
            oracle: "failover-validity",
            detail: format!(
                "{} route failovers with zero fault transitions",
                fr.route_failovers
            ),
        });
    }

    // reduce-conservation: partial-sum contributions balance exactly —
    // every issued contribution is delivered at its root or accounted
    // for at a drop site, in count and in wrapping value sum — and the
    // extension reports iff it is configured.
    match (sc.reduce.enabled, r.reduce.as_ref()) {
        (true, None) => v.push(Violation {
            oracle: "reduce-conservation",
            detail: "reduction enabled but no reduce report".to_string(),
        }),
        (false, Some(_)) => v.push(Violation {
            oracle: "reduce-conservation",
            detail: "reduction disabled but a reduce report exists".to_string(),
        }),
        (true, Some(rr)) => {
            if !rr.conserved() {
                v.push(Violation {
                    oracle: "reduce-conservation",
                    detail: format!(
                        "contributions not conserved: issued {} != delivered {} + dropped {} \
                         (values {} vs {} + {})",
                        rr.contribs_issued,
                        rr.contribs_delivered,
                        rr.contribs_dropped,
                        rr.value_issued,
                        rr.value_delivered,
                        rr.value_dropped
                    ),
                });
            }
            if !faults_on && rr.contribs_dropped != 0 {
                v.push(Violation {
                    oracle: "reduce-conservation",
                    detail: format!(
                        "fault-free run dropped {} contributions",
                        rr.contribs_dropped
                    ),
                });
            }
            if !sc.reduce.in_network && rr.merges != 0 {
                v.push(Violation {
                    oracle: "reduce-conservation",
                    detail: format!("software baseline folded {} PRs in-network", rr.merges),
                });
            }
        }
        (false, None) => {}
    }

    // report-consistency: aggregates agree with each other.
    let max_finish = r.nodes.iter().map(|n| n.finish).max().unwrap_or_default();
    if r.comm_time != max_finish {
        v.push(Violation {
            oracle: "report-consistency",
            detail: format!(
                "comm_time {} != max node finish {}",
                r.comm_time, max_finish
            ),
        });
    }
    if r.dropped_packets != fr.total_dropped() {
        v.push(Violation {
            oracle: "report-consistency",
            detail: format!(
                "dropped_packets {} != FaultReport total {}",
                r.dropped_packets,
                fr.total_dropped()
            ),
        });
    }
    if r.cache_hits > r.cache_lookups {
        v.push(Violation {
            oracle: "report-consistency",
            detail: format!(
                "cache hits {} exceed lookups {}",
                r.cache_hits, r.cache_lookups
            ),
        });
    }
    v
}

// ---------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------

/// One scenario-simplification step the shrinker may take. Ops carry
/// stable string names (`drop-failure:2`, `disable-loss`, …) so a shrunk
/// schedule round-trips through `chaos_repro.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShrinkOp {
    /// Remove scheduled failure `i`.
    DropFailure(usize),
    /// Remove node degradation `i`.
    DropDegradation(usize),
    /// Turn packet loss off entirely.
    DisableLoss,
    /// Turn the reduction extension off entirely.
    DisableReduce,
    /// Halve the workload scale (floor 2‰).
    HalveScale,
    /// Halve the property size (floor 1).
    HalveK,
}

impl ShrinkOp {
    /// The op's stable repro name.
    pub fn name(&self) -> String {
        match self {
            ShrinkOp::DropFailure(i) => format!("drop-failure:{i}"),
            ShrinkOp::DropDegradation(i) => format!("drop-degradation:{i}"),
            ShrinkOp::DisableLoss => "disable-loss".to_string(),
            ShrinkOp::DisableReduce => "disable-reduce".to_string(),
            ShrinkOp::HalveScale => "halve-scale".to_string(),
            ShrinkOp::HalveK => "halve-k".to_string(),
        }
    }

    /// Parses a repro name back into an op.
    pub fn parse(name: &str) -> Option<ShrinkOp> {
        if let Some(i) = name.strip_prefix("drop-failure:") {
            return i.parse().ok().map(ShrinkOp::DropFailure);
        }
        if let Some(i) = name.strip_prefix("drop-degradation:") {
            return i.parse().ok().map(ShrinkOp::DropDegradation);
        }
        match name {
            "disable-loss" => Some(ShrinkOp::DisableLoss),
            "disable-reduce" => Some(ShrinkOp::DisableReduce),
            "halve-scale" => Some(ShrinkOp::HalveScale),
            "halve-k" => Some(ShrinkOp::HalveK),
            _ => None,
        }
    }

    /// Applies the op; returns false when it would be a no-op (nothing
    /// left to remove, floor reached).
    pub fn apply(&self, sc: &mut ChaosScenario) -> bool {
        match *self {
            ShrinkOp::DropFailure(i) => {
                if i >= sc.faults.failures.len() {
                    return false;
                }
                sc.faults.failures.remove(i);
                true
            }
            ShrinkOp::DropDegradation(i) => {
                if i >= sc.faults.degraded.len() {
                    return false;
                }
                sc.faults.degraded.remove(i);
                true
            }
            ShrinkOp::DisableLoss => {
                if matches!(sc.faults.loss, LossModel::None) {
                    return false;
                }
                sc.faults.loss = LossModel::None;
                true
            }
            ShrinkOp::DisableReduce => {
                if !sc.reduce.enabled {
                    return false;
                }
                sc.reduce = ReduceConfig::disabled();
                true
            }
            ShrinkOp::HalveScale => {
                if sc.scale_milli <= 2 {
                    return false;
                }
                sc.scale_milli = (sc.scale_milli / 2).max(2);
                true
            }
            ShrinkOp::HalveK => {
                if sc.k <= 1 {
                    return false;
                }
                sc.k /= 2;
                true
            }
        }
    }
}

/// Greedily minimizes a violating scenario: tries each candidate op, and
/// keeps it iff the shrunk scenario still violates `oracle`. Runs to a
/// fixpoint (no candidate is accepted) and returns the minimal scenario
/// plus the accepted ops in application order.
pub fn shrink(sc: &ChaosScenario, oracle: &str) -> (ChaosScenario, Vec<ShrinkOp>) {
    let reproduces = |cand: &ChaosScenario| -> bool {
        matches!(
            cand.run(),
            ScenarioOutcome::Violated { violations } if violations.iter().any(|v| v.oracle == oracle)
        )
    };
    let mut cur = sc.clone();
    let mut applied = Vec::new();
    // Each accepted op strictly shrinks the scenario, so the fixpoint is
    // reached in finitely many rounds; the cap is a safety net.
    for _ in 0..64 {
        let mut candidates: Vec<ShrinkOp> = Vec::new();
        for i in 0..cur.faults.failures.len() {
            candidates.push(ShrinkOp::DropFailure(i));
        }
        for i in 0..cur.faults.degraded.len() {
            candidates.push(ShrinkOp::DropDegradation(i));
        }
        candidates.push(ShrinkOp::DisableLoss);
        candidates.push(ShrinkOp::DisableReduce);
        candidates.push(ShrinkOp::HalveScale);
        candidates.push(ShrinkOp::HalveK);

        let mut progressed = false;
        for op in candidates {
            let mut cand = cur.clone();
            if !op.apply(&mut cand) {
                continue;
            }
            if reproduces(&cand) {
                cur = cand;
                applied.push(op);
                progressed = true;
                break; // restart: indices shifted
            }
        }
        if !progressed {
            break;
        }
    }
    (cur, applied)
}

// ---------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------

/// A parsed `chaos_repro.json`: the scenario source plus the shrink ops
/// to re-apply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// `seed:N` or `fixture:NAME`.
    pub source: ScenarioSource,
    /// The oracle the shrunk scenario violates.
    pub oracle: String,
    /// Shrink ops, in application order.
    pub ops: Vec<String>,
}

/// Serializes a shrunk violation as `chaos_repro.json` content: the
/// scenario source, the violated oracle, and the accepted shrink ops —
/// everything [`replay_repro`] needs for a one-command replay — plus a
/// human-readable summary of the shrunk config.
pub fn write_repro(sc: &ChaosScenario, oracle: &str, ops: &[ShrinkOp]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"tool\": \"chaoscheck\",\n");
    s.push_str("  \"schema_version\": 1,\n");
    s.push_str(&format!("  \"scenario\": \"{}\",\n", sc.source));
    s.push_str(&format!("  \"oracle\": \"{oracle}\",\n"));
    let names: Vec<String> = ops.iter().map(|o| format!("\"{}\"", o.name())).collect();
    s.push_str(&format!("  \"ops\": [{}],\n", names.join(", ")));
    s.push_str(&format!(
        "  \"shrunk\": {{\"topology\": \"{:?}\", \"matrix\": \"{}\", \"scale_milli\": {}, \
         \"k\": {}, \"failures\": {}, \"degraded\": {}, \"loss\": \"{}\"}}\n",
        sc.topology,
        sc.matrix.name(),
        sc.scale_milli,
        sc.k,
        sc.faults.failures.len(),
        sc.faults.degraded.len(),
        match sc.faults.loss {
            LossModel::None => "none",
            LossModel::Bernoulli { .. } => "bernoulli",
            LossModel::GilbertElliott { .. } => "gilbert-elliott",
        }
    ));
    s.push_str("}\n");
    s
}

/// Parses `chaos_repro.json` content written by [`write_repro`] (a flat,
/// line-oriented subset of JSON — the workspace deliberately has no JSON
/// dependency).
pub fn parse_repro(content: &str) -> Result<Repro, String> {
    let field = |name: &str| -> Option<String> {
        for line in content.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some(rest) = t.strip_prefix(&format!("\"{name}\": ")) {
                return Some(rest.trim_matches('"').to_string());
            }
        }
        None
    };
    let scenario = field("scenario").ok_or("missing \"scenario\" field")?;
    let oracle = field("oracle").ok_or("missing \"oracle\" field")?;
    let source = if let Some(seed) = scenario.strip_prefix("seed:") {
        ScenarioSource::Seed(seed.parse().map_err(|_| "bad seed".to_string())?)
    } else if let Some(name) = scenario.strip_prefix("fixture:") {
        ScenarioSource::Fixture(name.to_string())
    } else {
        return Err(format!("unknown scenario source `{scenario}`"));
    };
    let ops_line = field("ops").ok_or("missing \"ops\" field")?;
    let inner = ops_line
        .trim_start_matches('[')
        .trim_end_matches(']')
        .trim();
    let mut ops = Vec::new();
    if !inner.is_empty() {
        for part in inner.split(',') {
            ops.push(part.trim().trim_matches('"').to_string());
        }
    }
    Ok(Repro {
        source,
        oracle,
        ops,
    })
}

/// Reconstructs the shrunk scenario from a repro and runs it, returning
/// the outcome (which must be the recorded violation for a good repro).
pub fn replay_repro(repro: &Repro) -> Result<ScenarioOutcome, String> {
    let mut sc = match &repro.source {
        ScenarioSource::Seed(s) => ChaosScenario::generate(*s),
        ScenarioSource::Fixture(name) if name == "broken-delivery" => {
            ChaosScenario::broken_fixture()
        }
        ScenarioSource::Fixture(name) => return Err(format!("unknown fixture `{name}`")),
    };
    for name in &repro.ops {
        let op = ShrinkOp::parse(name).ok_or_else(|| format!("unknown shrink op `{name}`"))?;
        op.apply(&mut sc);
    }
    Ok(sc.run())
}

// ---------------------------------------------------------------------
// Batches
// ---------------------------------------------------------------------

/// Aggregated results of a chaoscheck batch over a contiguous seed
/// range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReport {
    /// First seed of the batch.
    pub seed0: u64,
    /// Number of seeds run.
    pub seeds: u64,
    /// Scenarios rejected with a typed error (the poisoned slice).
    pub rejected: u64,
    /// Scenarios that tripped the liveness watchdog.
    pub stalled: u64,
    /// Scenarios that passed every oracle.
    pub passed: u64,
    /// Passed scenarios that delivered fully.
    pub delivered: u64,
    /// Passed scenarios that recorded graceful abandonment.
    pub abandoned_gracefully: u64,
    /// Scenarios re-run to verify bit-identical determinism.
    pub determinism_checked: u64,
    /// Time-to-recovery ratios (faulted vs fault-stripped comm time, in
    /// permille) for passed fault-active scenarios.
    pub recovery_ratio_permille: Vec<u64>,
    /// Violations: (seed, oracle, detail).
    pub violations: Vec<(u64, String, String)>,
    /// Rejections: (seed, error).
    pub rejections: Vec<(u64, String)>,
}

impl BatchReport {
    /// Total scenarios that violated at least one oracle.
    pub fn violated(&self) -> u64 {
        let mut seeds: Vec<u64> = self.violations.iter().map(|(s, _, _)| *s).collect();
        seeds.dedup();
        seeds.len() as u64
    }

    /// Whether the batch is clean: no violations and no stalls.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.stalled == 0
    }

    /// Renders the deterministic `CHAOS_report.json` content: pure
    /// integers and config-derived strings, so the same seed range
    /// produces byte-identical output on every run and machine.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str("  \"tool\": \"chaoscheck\",\n");
        s.push_str("  \"schema_version\": 1,\n");
        s.push_str(&format!("  \"seed0\": {},\n", self.seed0));
        s.push_str(&format!("  \"seeds\": {},\n", self.seeds));
        s.push_str(&format!("  \"rejected\": {},\n", self.rejected));
        s.push_str(&format!("  \"stalled\": {},\n", self.stalled));
        s.push_str(&format!("  \"violated\": {},\n", self.violated()));
        s.push_str(&format!("  \"passed\": {},\n", self.passed));
        s.push_str(&format!("  \"delivered\": {},\n", self.delivered));
        s.push_str(&format!(
            "  \"abandoned_gracefully\": {},\n",
            self.abandoned_gracefully
        ));
        s.push_str(&format!(
            "  \"determinism_checked\": {},\n",
            self.determinism_checked
        ));
        let q = |sorted: &[u64], f: f64| -> u64 {
            if sorted.is_empty() {
                return 0;
            }
            let i = ((sorted.len() - 1) as f64 * f).round() as usize;
            sorted[i]
        };
        let mut rec = self.recovery_ratio_permille.clone();
        rec.sort_unstable();
        s.push_str(&format!(
            "  \"recovery_ratio_permille\": {{\"count\": {}, \"min\": {}, \"p50\": {}, \
             \"p90\": {}, \"max\": {}}},\n",
            rec.len(),
            rec.first().copied().unwrap_or(0),
            q(&rec, 0.5),
            q(&rec, 0.9),
            rec.last().copied().unwrap_or(0)
        ));
        let esc = |t: &str| -> String {
            t.chars()
                .flat_map(|c| match c {
                    '"' => vec!['\\', '"'],
                    '\\' => vec!['\\', '\\'],
                    '\n' => vec!['\\', 'n'],
                    c => vec![c],
                })
                .collect()
        };
        let viols: Vec<String> = self
            .violations
            .iter()
            .map(|(seed, oracle, detail)| {
                format!(
                    "    {{\"seed\": {seed}, \"oracle\": \"{}\", \"detail\": \"{}\"}}",
                    esc(oracle),
                    esc(detail)
                )
            })
            .collect();
        if viols.is_empty() {
            s.push_str("  \"violations\": [],\n");
        } else {
            s.push_str(&format!(
                "  \"violations\": [\n{}\n  ],\n",
                viols.join(",\n")
            ));
        }
        let rejs: Vec<String> = self
            .rejections
            .iter()
            .map(|(seed, err)| format!("    {{\"seed\": {seed}, \"error\": \"{}\"}}", esc(err)))
            .collect();
        if rejs.is_empty() {
            s.push_str("  \"rejections\": []\n");
        } else {
            s.push_str(&format!("  \"rejections\": [\n{}\n  ]\n", rejs.join(",\n")));
        }
        s.push_str("}\n");
        s
    }
}

/// Runs seeds `seed0 .. seed0 + seeds` through generation, simulation,
/// and the oracle suite. Every eighth seed is run twice and compared for
/// bit-identical determinism; passed fault-active scenarios additionally
/// run a fault-stripped twin to measure time-to-recovery overhead.
pub fn run_batch(seed0: u64, seeds: u64) -> BatchReport {
    let mut report = BatchReport {
        seed0,
        seeds,
        rejected: 0,
        stalled: 0,
        passed: 0,
        delivered: 0,
        abandoned_gracefully: 0,
        determinism_checked: 0,
        recovery_ratio_permille: Vec::new(),
        violations: Vec::new(),
        rejections: Vec::new(),
    };
    for seed in seed0..seed0 + seeds {
        let sc = ChaosScenario::generate(seed);
        match sc.run() {
            ScenarioOutcome::Rejected(err) => {
                report.rejected += 1;
                report.rejections.push((seed, err));
            }
            ScenarioOutcome::Stalled(detail) => {
                report.stalled += 1;
                report
                    .violations
                    .push((seed, "liveness".to_string(), detail));
            }
            ScenarioOutcome::Violated { violations } => {
                for v in violations {
                    report
                        .violations
                        .push((seed, v.oracle.to_string(), v.detail));
                }
            }
            ScenarioOutcome::Passed { report: run } => {
                report.passed += 1;
                let abandoned = run
                    .faults
                    .as_ref()
                    .is_some_and(|fr| fr.abandoned_commands > 0);
                if abandoned {
                    report.abandoned_gracefully += 1;
                } else if run.functional_check_passed {
                    report.delivered += 1;
                }
                if seed % 8 == 0 {
                    report.determinism_checked += 1;
                    if let ScenarioOutcome::Passed { report: again } = sc.run() {
                        if again.events != run.events
                            || again.comm_time != run.comm_time
                            || again.audit_digest != run.audit_digest
                        {
                            report.violations.push((
                                seed,
                                "determinism".to_string(),
                                format!(
                                    "re-run diverged: events {} vs {}, comm_time {} vs {}",
                                    run.events, again.events, run.comm_time, again.comm_time
                                ),
                            ));
                        }
                    } else {
                        report.violations.push((
                            seed,
                            "determinism".to_string(),
                            "re-run changed outcome class".to_string(),
                        ));
                    }
                }
                if sc.faults.is_active() && run.comm_time.as_ps() > 0 {
                    let mut clean = sc.clone();
                    clean.faults = FaultConfig::none();
                    if let ScenarioOutcome::Passed { report: base } = clean.run() {
                        if base.comm_time.as_ps() > 0 {
                            let ratio = (run.comm_time.as_ps() as u128 * 1000
                                / base.comm_time.as_ps() as u128)
                                as u64;
                            report.recovery_ratio_permille.push(ratio);
                        }
                    }
                }
            }
        }
    }
    report.recovery_ratio_permille.sort_unstable();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = ChaosScenario::generate(42);
        let b = ChaosScenario::generate(42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = ChaosScenario::generate(43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn poisoned_seeds_are_rejected_not_crashed() {
        // seed % 8 == 3 scenarios carry a deliberate config poison.
        let sc = ChaosScenario::generate(3);
        match sc.run() {
            ScenarioOutcome::Rejected(_) => {}
            other => panic!("poisoned seed must be rejected, got {other:?}"),
        }
    }

    #[test]
    fn shrink_ops_round_trip_their_names() {
        for op in [
            ShrinkOp::DropFailure(3),
            ShrinkOp::DropDegradation(0),
            ShrinkOp::DisableLoss,
            ShrinkOp::DisableReduce,
            ShrinkOp::HalveScale,
            ShrinkOp::HalveK,
        ] {
            assert_eq!(ShrinkOp::parse(&op.name()), Some(op));
        }
        assert_eq!(ShrinkOp::parse("no-such-op"), None);
    }

    #[test]
    fn repro_files_round_trip() {
        let sc = ChaosScenario::broken_fixture();
        let ops = vec![ShrinkOp::DisableLoss, ShrinkOp::DropFailure(1)];
        let json = write_repro(&sc, "delivery", &ops);
        let parsed = parse_repro(&json).unwrap();
        assert_eq!(
            parsed.source,
            ScenarioSource::Fixture("broken-delivery".to_string())
        );
        assert_eq!(parsed.oracle, "delivery");
        assert_eq!(parsed.ops, vec!["disable-loss", "drop-failure:1"]);
        // An empty op list parses back as empty.
        let json = write_repro(&sc, "delivery", &[]);
        assert!(parse_repro(&json).unwrap().ops.is_empty());
    }

    #[test]
    fn reduce_bit_yields_a_twin_scenario() {
        // Seed S and S | REDUCE_SEED_BIT must differ only in source and
        // reduce config: the reduce slice is an ablation over the exact
        // scenario population of the base slice.
        for s in [0u64, 1, 2, 42] {
            let base = ChaosScenario::generate(s);
            let twin = ChaosScenario::generate(s | REDUCE_SEED_BIT);
            assert!(!base.reduce.enabled, "base slice keeps reduction off");
            assert!(
                twin.reduce.enabled,
                "reduce slice always flows contributions"
            );
            let mut twin_cmp = twin.clone();
            twin_cmp.source = base.source.clone();
            twin_cmp.reduce = base.reduce;
            assert_eq!(format!("{base:?}"), format!("{twin_cmp:?}"));
        }
        // The slice mixes both transports.
        let transports: Vec<bool> = (0..16)
            .map(|s| {
                ChaosScenario::generate(s | REDUCE_SEED_BIT)
                    .reduce
                    .in_network
            })
            .collect();
        assert!(transports.iter().any(|&t| t) && transports.iter().any(|&t| !t));
    }

    #[test]
    fn fault_targets_exist_in_their_topologies() {
        // Every generated link target must name a real adjacency;
        // resolve_fault_schedule (via scenario.run) would reject it
        // otherwise, and non-poisoned seeds must not be rejected for
        // target validity.
        for seed in 0..40u64 {
            if seed % 8 == 3 {
                continue;
            }
            let sc = ChaosScenario::generate(seed);
            let cfg = sc.cluster_config();
            assert!(
                cfg.validate().is_ok(),
                "seed {seed} generated an invalid config: {:?}",
                cfg.validate()
            );
        }
    }
}
