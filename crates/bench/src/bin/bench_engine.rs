//! Engine-throughput benchmark: events/sec and wall-clock per run on the
//! canonical simulation point, written to `BENCH_engine.json` so the
//! per-point speed trajectory is visible across commits.
//!
//! Two backends are timed: the production calendar-queue scheduler
//! (`simulate`) and the reference binary-heap queue
//! (`try_simulate_reference`). Each backend gets `trials` timed windows
//! and reports its **best** window — per-point simulation time is what
//! the sweep harness pays, and the best window is the least
//! scheduler-noise-contaminated estimate of it. The two backends are also
//! checked against each other for report equality (the full equivalence
//! oracle lives in `tests/engine_equivalence.rs`).
//!
//! ```text
//! bench_engine [--quick] [--check-against <json>] [--out <json>]
//! ```
//!
//! `--check-against` reads a previously committed `BENCH_engine.json`,
//! re-measures, and exits non-zero if fresh calendar events/sec fall more
//! than 20% below the committed figure — the CI regression gate. In this
//! mode results go to `BENCH_engine.ci.json` (kept as an artifact) so the
//! committed baseline is never clobbered by a gate run.
use std::time::Instant; // simaudit:allow(no-wall-clock): wall-clock benchmark

use netsparse::{simulate, try_simulate_reference, ClusterConfig, SimReport};
use netsparse_netsim::Topology;
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::{CommWorkload, SuiteMatrix};

/// Pre-PR events/sec on this point, measured on the same runner with the
/// binary-heap engine and BTree hot state (commit 82e30d8). The committed
/// JSON reports the current speedup against this figure.
const BASELINE_EPS: f64 = 388_217.0;

/// The canonical point: the same (topology, workload, config) pinned by
/// `tests/trace_golden.rs` and the determinism suite.
fn canonical_point(seed: u64) -> (ClusterConfig, CommWorkload) {
    let topo = Topology::LeafSpine {
        racks: 2,
        rack_size: 4,
        spines: 2,
    };
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 8,
        rack_size: 4,
        scale: 0.1,
        seed,
    }
    .generate();
    (ClusterConfig::mini(topo, 16), wl)
}

/// Repeats `run` until `window_s` elapses and returns events/sec for the
/// window; `trials` windows, best one wins.
fn best_eps(trials: u32, window_s: f64, run: impl Fn() -> SimReport) -> (f64, u64) {
    let mut best = 0.0f64;
    let mut events_per_run = 0u64;
    for _ in 0..trials {
        let mut total = 0u64;
        let t = Instant::now(); // simaudit:allow(no-wall-clock): wall-clock benchmark
        while t.elapsed().as_secs_f64() < window_s {
            let r = run();
            events_per_run = r.events;
            total += r.events;
        }
        let eps = total as f64 / t.elapsed().as_secs_f64();
        best = best.max(eps);
    }
    (best, events_per_run)
}

/// Pulls `"key": <number>` out of a hand-rolled JSON report.
fn json_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn main() {
    let mut quick = false;
    let mut check_against: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--check-against" => {
                check_against = Some(args.next().expect("--check-against needs a file"));
            }
            "--out" => out = Some(args.next().expect("--out needs a file")),
            other => panic!("unknown flag {other}; usage: bench_engine [--quick] [--check-against json] [--out json]"),
        }
    }
    let (trials, window_s) = if quick { (3u32, 0.25) } else { (5u32, 0.6) };
    let out = out.unwrap_or_else(|| {
        if check_against.is_some() {
            "BENCH_engine.ci.json".to_string()
        } else {
            "BENCH_engine.json".to_string()
        }
    });

    let (cfg, wl) = canonical_point(7);
    // Warm up both paths and pin the cheap cross-backend sanity check:
    // identical reports, identical audit digests (when compiled in).
    let cal = simulate(&cfg, &wl);
    let heap = try_simulate_reference(&cfg, &wl).expect("reference run failed");
    assert_eq!(cal.events, heap.events, "backend event counts diverged");
    assert_eq!(cal.comm_time, heap.comm_time, "backend comm_time diverged");
    assert_eq!(
        cal.audit_digest, heap.audit_digest,
        "backend event digests diverged"
    );

    let (cal_eps, events_per_run) = best_eps(trials, window_s, || simulate(&cfg, &wl));
    let (heap_eps, _) = best_eps(trials, window_s, || {
        try_simulate_reference(&cfg, &wl).expect("reference run failed")
    });

    let wall_us_per_run = events_per_run as f64 / cal_eps * 1e6;
    let json = format!(
        "{{\n  \"bench\": \"engine_throughput\",\n  \"point\": \"leafspine 2x4 + 2 spines, uk @ scale 0.1, seed 7, K=16\",\n  \"events_per_run\": {events_per_run},\n  \"trials\": {trials},\n  \"trial_window_s\": {window_s},\n  \"events_per_sec_calendar\": {cal_eps:.0},\n  \"events_per_sec_heap\": {heap_eps:.0},\n  \"wall_us_per_run\": {wall_us_per_run:.1},\n  \"calendar_vs_heap\": {:.2},\n  \"baseline_events_per_sec\": {BASELINE_EPS:.0},\n  \"speedup_vs_baseline\": {:.2}\n}}\n",
        cal_eps / heap_eps,
        cal_eps / BASELINE_EPS,
    );
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("write {out}: {e}"));
    println!("{json}");

    if let Some(path) = check_against {
        let committed =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let committed_eps = json_number(&committed, "events_per_sec_calendar")
            .unwrap_or_else(|| panic!("{path} has no events_per_sec_calendar"));
        let floor = committed_eps * 0.8;
        eprintln!(
            "[regression gate: fresh {cal_eps:.0} events/s vs committed {committed_eps:.0}, \
             floor {floor:.0}]"
        );
        assert!(
            cal_eps >= floor,
            "engine throughput regressed >20%: {cal_eps:.0} events/s vs committed {committed_eps:.0}"
        );
    }
}
