//! Regenerates every table and figure of the paper's evaluation in one
//! run. Output is organized per experiment; pipe through `tee` to save.
//!
//! With `--parallel` (or `--workers <n>`) each table fans its
//! independent sweep points across threads via the bench crate's
//! `SweepRunner`; stdout is byte-identical to a serial run — only the
//! wall-clock changes. Sections still render in order.
use std::time::Instant; // simaudit:allow(no-wall-clock): CLI progress timing

fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    if o.workers > 1 {
        eprintln!("[sweeping across {} worker threads]", o.workers);
    }
    let t0 = Instant::now(); // simaudit:allow(no-wall-clock): reports real total reproduction time to the operator
    type Section<'a> = (&'a str, Box<dyn Fn() -> String>);
    let sections: Vec<Section> = vec![
        (
            "Table 1",
            Box::new(move || netsparse_bench::tables::table1(&o)),
        ),
        (
            "Table 2",
            Box::new(move || netsparse_bench::tables::table2(&o)),
        ),
        ("Table 3", Box::new(netsparse_bench::tables::table3)),
        (
            "Table 4",
            Box::new(move || netsparse_bench::tables::table4(&o)),
        ),
        ("Figure 10", Box::new(netsparse_bench::tables::fig10)),
        (
            "Figure 12",
            Box::new(move || netsparse_bench::tables::fig12(&o)),
        ),
        (
            "Table 7",
            Box::new(move || netsparse_bench::tables::table7(&o)),
        ),
        (
            "Figure 13",
            Box::new(move || netsparse_bench::tables::fig13(&o)),
        ),
        (
            "Figure 14",
            Box::new(move || netsparse_bench::tables::fig14(&o)),
        ),
        (
            "Table 8",
            Box::new(move || netsparse_bench::tables::table8(&o)),
        ),
        (
            "Figure 15",
            Box::new(move || netsparse_bench::tables::fig15(&o)),
        ),
        (
            "Figure 16",
            Box::new(move || netsparse_bench::tables::fig16(&o)),
        ),
        (
            "Figure 17",
            Box::new(move || netsparse_bench::tables::fig17(&o)),
        ),
        (
            "Figure 18",
            Box::new(move || netsparse_bench::tables::fig18(&o)),
        ),
        (
            "Figure 19",
            Box::new(move || netsparse_bench::tables::fig19(&o)),
        ),
        ("Figure 20", Box::new(netsparse_bench::tables::fig20)),
        ("Table 9", Box::new(netsparse_bench::tables::table9)),
        (
            "Figure 21",
            Box::new(move || netsparse_bench::tables::fig21(&o)),
        ),
        (
            "Figure 22",
            Box::new(move || netsparse_bench::tables::fig22(&o)),
        ),
        (
            "Extension: virtual CQs (§7.2)",
            Box::new(move || netsparse_bench::tables::ext_virtual_cq(&o)),
        ),
        (
            "Extension: fault recovery (§7.1)",
            Box::new(move || netsparse_bench::tables::ext_faults(&o)),
        ),
        (
            "Extension: fault sweep (§7.1 extended)",
            Box::new(move || netsparse_bench::tables::ext_fault_sweep(&o)),
        ),
        (
            "Extension: hybrid baseline",
            Box::new(move || netsparse_bench::tables::ext_hybrid(&o)),
        ),
        (
            "Extension: partitioning (§9.4)",
            Box::new(move || netsparse_bench::tables::ext_partition(&o)),
        ),
        (
            "Extension: in-network reduction",
            Box::new(move || netsparse_bench::tables::ext_reduce(&o)),
        ),
        (
            "Extension: kernels (§2.1)",
            Box::new(move || netsparse_bench::tables::ext_kernels(&o)),
        ),
    ];
    #[cfg(feature = "trace")]
    let sections = {
        let mut sections = sections;
        sections.push((
            "Extension: trace timeline (observability)",
            Box::new(move || netsparse_bench::tables::ext_trace(&o)),
        ));
        sections
    };
    for (name, f) in sections {
        let t = Instant::now(); // simaudit:allow(no-wall-clock): reports real per-section timing to the operator
        let body = f();
        println!("==================== {name} ====================");
        println!("{body}");
        eprintln!("[{name} done in {:.1?}]", t.elapsed());
    }
    eprintln!("[all experiments done in {:.1?}]", t0.elapsed());
}
