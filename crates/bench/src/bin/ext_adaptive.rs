//! Extension experiment: see `netsparse_bench::tables::ext_adaptive`.
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::ext_adaptive(&o));
}
