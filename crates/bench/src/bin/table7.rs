//! Regenerates the paper's table7 (see DESIGN.md's experiment index).
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::table7(&o));
}
