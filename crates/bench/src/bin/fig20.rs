//! Regenerates the paper's fig20 (see DESIGN.md's experiment index).
fn main() {
    let _ = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::fig20());
}
