//! Extension experiment: see `netsparse_bench::tables::ext_reduce`.
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::ext_reduce(&o));
}
