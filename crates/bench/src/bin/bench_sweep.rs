//! Serial-vs-parallel sweep benchmark: runs a representative slice of
//! the evaluation twice — once on one worker, once on every available
//! core — verifies the outputs are byte-identical, and writes
//! `BENCH_sweep.json` with both wall-clocks so the speedup is tracked
//! across commits.
//!
//! The absolute speedup depends on the runner's core count, so the JSON
//! records the worker count actually used alongside the timings instead
//! of asserting a ratio. On a one-core runner there is no parallel pass
//! to time at all: the run is labeled `sweep_serial_only` rather than
//! passing off a serial re-run as a 1.0x "parallel" result.
use std::time::Instant; // simaudit:allow(no-wall-clock): wall-clock benchmark

use netsparse_bench::{tables, BenchOpts};

/// The slice of the evaluation the benchmark times: the main speedup
/// grid, a batch-size sweep, and the fault sweep named in the roadmap.
fn render_all(o: &BenchOpts) -> String {
    let mut out = String::new();
    out.push_str(&tables::fig12(o));
    out.push_str(&tables::fig15(o));
    out.push_str(&tables::ext_fault_sweep(o));
    out
}

fn timed(o: &BenchOpts) -> (String, f64) {
    let t = Instant::now(); // simaudit:allow(no-wall-clock): reports real sweep duration to the operator
    let body = render_all(o);
    (body, t.elapsed().as_secs_f64())
}

fn main() {
    let o = BenchOpts::from_args();
    // Default this binary to a sweep-friendly scale; an explicit --scale
    // (or --quick) wins.
    let scale_given = std::env::args().any(|a| a == "--scale" || a == "--quick");
    let o = if scale_given { o } else { o.scaled(0.25) };
    let parallel_workers = if o.workers > 1 {
        o.workers
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    };

    if parallel_workers <= 1 {
        // One available core: a "parallel" pass would be the serial loop
        // wearing a costume. Time the serial sweep honestly and say so in
        // the JSON instead of committing a fake ~1.0x "speedup".
        eprintln!("[single core available: timing serial sweep only]");
        let (_, serial_s) = timed(&o.with_workers(1));
        let json = format!(
            "{{\n  \"bench\": \"sweep_serial_only\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": 1,\n  \"serial_s\": {:.3},\n  \"note\": \"one core available; no parallel pass timed\"\n}}\n",
            o.scale, o.seed, serial_s
        );
        std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
        println!("{json}");
        eprintln!("[serial {serial_s:.2}s on 1 worker]");
        return;
    }

    eprintln!("[serial pass: 1 worker]");
    let (serial_out, serial_s) = timed(&o.with_workers(1));
    eprintln!("[parallel pass: {parallel_workers} workers]");
    let (parallel_out, parallel_s) = timed(&o.with_workers(parallel_workers));

    assert_eq!(
        serial_out, parallel_out,
        "parallel sweep output must be byte-identical to serial"
    );
    let speedup = serial_s / parallel_s.max(1e-9);
    let json = format!(
        "{{\n  \"bench\": \"sweep_serial_vs_parallel\",\n  \"scale\": {},\n  \"seed\": {},\n  \"workers\": {},\n  \"serial_s\": {:.3},\n  \"parallel_s\": {:.3},\n  \"speedup\": {:.2},\n  \"output_identical\": true\n}}\n",
        o.scale, o.seed, parallel_workers, serial_s, parallel_s, speedup
    );
    std::fs::write("BENCH_sweep.json", &json).expect("write BENCH_sweep.json");
    println!("{json}");
    eprintln!(
        "[serial {serial_s:.2}s, parallel {parallel_s:.2}s on {parallel_workers} workers: \
         {speedup:.2}x; output byte-identical]"
    );
}
