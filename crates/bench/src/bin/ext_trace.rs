//! Extension experiment: see `netsparse_bench::tables::ext_trace`.
//!
//! Build with `--features trace` (the binary is gated on it).
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::ext_trace(&o));
}
