//! Regenerates the paper's table9 (see DESIGN.md's experiment index).
fn main() {
    let _ = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::table9());
}
