//! Regenerates the paper's fig16 (see DESIGN.md's experiment index).
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::fig16(&o));
}
