//! Extension experiment: see `netsparse_bench::tables::ext_cache_policy`.
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::ext_cache_policy(&o));
}
