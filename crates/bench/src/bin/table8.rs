//! Regenerates the paper's table8 (see DESIGN.md's experiment index).
fn main() {
    let o = netsparse_bench::BenchOpts::from_args();
    print!("{}", netsparse_bench::tables::table8(&o));
}
