//! chaoscheck driver: run a deterministic batch of seed-derived fault
//! scenarios through the simulator and the invariant-oracle suite.
//!
//! ```text
//! chaos [--seeds N] [--seed0 S] [--out PATH]   # batch mode (default)
//! chaos --demo-shrink [--out PATH]             # shrink the broken fixture
//! chaos --replay chaos_repro.json              # replay a shrunk violation
//! ```
//!
//! Batch mode writes `CHAOS_report.json` (byte-identical for the same
//! seed range on every run and machine) and exits nonzero when any
//! scenario violated an oracle or stalled. `--demo-shrink` runs the
//! deliberately-broken fixture, minimizes its failing fault schedule,
//! and writes a `chaos_repro.json` that `--replay` turns back into the
//! same violation.

use netsparse_bench::chaos::{
    parse_repro, replay_repro, run_batch, shrink, write_repro, ChaosScenario, ScenarioOutcome,
};

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--seed0 S] [--out PATH] | --demo-shrink [--out PATH] | \
         --replay PATH"
    );
    std::process::exit(2);
}

fn main() {
    let mut seeds: u64 = 200;
    let mut seed0: u64 = 1;
    let mut out: Option<String> = None;
    let mut demo_shrink = false;
    let mut replay: Option<String> = None;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--seeds" => match value("--seeds").parse() {
                Ok(n) => seeds = n,
                Err(_) => usage(),
            },
            "--seed0" => match value("--seed0").parse() {
                Ok(n) => seed0 = n,
                Err(_) => usage(),
            },
            "--out" => out = Some(value("--out")),
            "--demo-shrink" => demo_shrink = true,
            "--replay" => replay = Some(value("--replay")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("error: unknown option '{other}'");
                usage();
            }
        }
    }

    if let Some(path) = replay {
        let content = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        });
        let repro = parse_repro(&content).unwrap_or_else(|e| {
            eprintln!("error: bad repro file {path}: {e}");
            std::process::exit(2);
        });
        println!("replaying {} (oracle: {})", repro.source, repro.oracle);
        match replay_repro(&repro) {
            Ok(ScenarioOutcome::Violated { violations }) => {
                let reproduced = violations.iter().any(|v| v.oracle == repro.oracle);
                for v in &violations {
                    println!("  VIOLATED [{}] {}", v.oracle, v.detail);
                }
                if reproduced {
                    println!("repro confirmed: `{}` violation reproduced", repro.oracle);
                    std::process::exit(1);
                }
                eprintln!(
                    "error: violated, but not the recorded `{}` oracle",
                    repro.oracle
                );
                std::process::exit(1);
            }
            Ok(outcome) => {
                eprintln!("error: repro did NOT reproduce; outcome: {outcome:?}");
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    if demo_shrink {
        let path = out.unwrap_or_else(|| "chaos_repro.json".to_string());
        let fixture = ChaosScenario::broken_fixture();
        let oracle = match fixture.run() {
            ScenarioOutcome::Violated { violations } => {
                for v in &violations {
                    println!("fixture VIOLATED [{}] {}", v.oracle, v.detail);
                }
                violations[0].oracle
            }
            other => {
                eprintln!("error: broken fixture did not violate: {other:?}");
                std::process::exit(1);
            }
        };
        println!("shrinking against oracle `{oracle}`...");
        let (min, ops) = shrink(&fixture, oracle);
        for op in &ops {
            println!("  accepted {}", op.name());
        }
        println!(
            "shrunk: {} failures, {} degradations, loss {}, scale {}‰, k {}",
            min.faults.failures.len(),
            min.faults.degraded.len(),
            if matches!(min.faults.loss, netsparse_desim::LossModel::None) {
                "off"
            } else {
                "on"
            },
            min.scale_milli,
            min.k
        );
        let json = write_repro(&min, oracle, &ops);
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(2);
        }
        println!("wrote {path}; replay with: chaos --replay {path}");
        return;
    }

    let path = out.unwrap_or_else(|| "CHAOS_report.json".to_string());
    println!("chaoscheck: seeds {seed0}..{}", seed0 + seeds);
    let report = run_batch(seed0, seeds);
    println!(
        "ran {} scenarios: {} passed ({} delivered, {} abandoned gracefully), \
         {} rejected, {} stalled, {} violated, {} determinism-checked",
        report.seeds,
        report.passed,
        report.delivered,
        report.abandoned_gracefully,
        report.rejected,
        report.stalled,
        report.violated(),
        report.determinism_checked
    );
    for (seed, oracle, detail) in &report.violations {
        println!("  VIOLATED seed {seed} [{oracle}] {detail}");
    }
    let json = report.to_json();
    if let Err(e) = std::fs::write(&path, &json) {
        eprintln!("error: cannot write {path}: {e}");
        std::process::exit(2);
    }
    println!("wrote {path}");
    if !report.is_clean() {
        std::process::exit(1);
    }
}
