//! Prints the structural and communication profile of every benchmark
//! matrix — the synthetic analogue of the paper's Table 6 plus the
//! signature quantities the generators are calibrated to.
use netsparse_bench::tables::all_experiments;
use netsparse_bench::BenchOpts;
use netsparse_sparse::analysis::WorkloadProfile;

fn main() {
    let o = BenchOpts::from_args();
    println!(
        "{:<8} {:>10} {:>8} {:>7} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "Matrix", "nnz", "remote%", "reuse", "SUred", "SAred", "dests", "share%", "imbal"
    );
    for e in all_experiments(&o) {
        let p = WorkloadProfile::of(&e.wl, 16);
        println!(
            "{:<8} {:>10} {:>7.1}% {:>7.1} {:>9.0} {:>9.2} {:>8.2} {:>7.0}% {:>7.2}",
            e.matrix.name(),
            p.total_nnz,
            p.remote_fraction * 100.0,
            p.reuse,
            p.su_redundancy,
            p.sa_redundancy,
            p.window_dests,
            p.rack_sharing * 100.0,
            p.nnz_imbalance
        );
    }
}
