//! Minimal criterion-compatible micro-benchmark harness.
//!
//! The build environment is fully offline, so the real `criterion` crate is
//! unavailable; this module reimplements the slice of its API that the
//! benches in `benches/` use (`Criterion`, groups, `Throughput`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!`/`criterion_main!`
//! macros). Timing uses wall-clock deliberately — benches measure the *host*,
//! not simulated time, and live outside the simulation crates policed by the
//! `no-wall-clock` lint.
//!
//! Each benchmark runs a calibration pass to pick an iteration count that
//! fills a modest measurement window, then reports mean ns/iter and
//! throughput when configured. No statistics beyond the mean: this harness
//! exists so `cargo bench` keeps working offline, not to replace criterion's
//! analysis.

use std::time::{Duration, Instant}; // simaudit:allow(no-wall-clock): host-side bench harness measures real execution time

/// Re-export-compatible opaque-value barrier.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A parameterized benchmark identifier, e.g. `scale/64`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over the calibrated number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now(); // simaudit:allow(no-wall-clock): wall time is the quantity being benchmarked
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level harness; owns global configuration.
pub struct Criterion {
    sample_size: usize,
    measurement_window: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_window: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        // simaudit:allow(no-debug-print): console bench reporter prints group headers
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            _name: name,
            throughput: None,
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing throughput/sample configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    _name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the number of measurement samples.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a simple benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (provided for criterion compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        // Calibrate: find an iteration count filling ~1/4 of the window.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed * 4 >= self.criterion.measurement_window || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.sample_size)
            .max(1);
        let mut total = Duration::ZERO;
        let mut total_iters = 0u64;
        for _ in 0..samples {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            total += b.elapsed;
            total_iters += b.iters;
        }
        let ns_per_iter = total.as_nanos() as f64 / total_iters.max(1) as f64;
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => format!(" ({:.1} Melem/s)", n as f64 / ns_per_iter * 1e3),
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s)", n as f64 / ns_per_iter * 1e3 / 1.048_576)
            }
        });
        // simaudit:allow(no-debug-print): console bench reporter prints per-benchmark rows
        println!(
            "  {label:<40} {ns_per_iter:>12.1} ns/iter{}",
            rate.unwrap_or_default()
        );
    }
}

/// Collects benchmark functions into a named group runner, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
