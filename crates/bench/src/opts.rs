//! Command-line options shared by every bench binary.

/// Options for a bench run.
///
/// Every binary accepts:
///
/// - `--scale <f64>`: workload scale factor (default 1.0 ≈ 128 k
///   nonzeros/node; the paper's matrices are ~40x larger),
/// - `--seed <u64>`: generator seed (default 2025),
/// - `--quick`: quarter-scale run for fast sanity checks,
/// - `--paper`: use the verbatim Table 5 machine (400 Gbps, real
///   latencies, 32 MB caches) instead of the scaled `mini` profile.
///   Orderings still hold, but fixed costs claim a larger share of the
///   scaled-down kernels, so magnitudes compress (see DESIGN.md §3),
/// - `--workers <n>`: fan independent sweep points across `n` threads
///   (default 1, i.e. serial). Output is byte-identical at any worker
///   count — see `crate::sweep`,
/// - `--parallel`: shorthand for `--workers <available cores>`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOpts {
    /// Workload scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Run on the verbatim Table 5 cluster profile.
    pub paper_profile: bool,
    /// Worker threads for sweep execution (1 = serial).
    pub workers: usize,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            scale: 1.0,
            seed: 2025,
            paper_profile: false,
            workers: 1,
        }
    }
}

impl BenchOpts {
    /// Parses options from `std::env::args`, panicking with a usage
    /// message on malformed input.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a float");
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--quick" => opts.scale *= 0.25,
                "--paper" => opts.paper_profile = true,
                "--workers" => {
                    let v = args.next().expect("--workers needs a value");
                    opts.workers = v.parse().expect("--workers must be an integer");
                }
                "--parallel" => opts.workers = available_workers(),
                "--help" | "-h" => {
                    // simaudit:allow(no-debug-print): arg parser reports usage directly to the operator
                    eprintln!(
                        "options: [--scale f64] [--seed u64] [--quick] [--paper] \
                         [--workers n] [--parallel]"
                    );
                    std::process::exit(0);
                }
                // simaudit:allow(no-lib-panic): CLI usage error; the bench binaries own this failure path
                other => panic!("unknown option '{other}' (try --help)"),
            }
        }
        assert!(opts.scale > 0.0, "--scale must be positive");
        assert!(opts.workers >= 1, "--workers must be at least 1");
        opts
    }

    /// A derived option set running sweeps over `workers` threads.
    #[must_use]
    pub fn with_workers(&self, workers: usize) -> Self {
        BenchOpts {
            workers: workers.max(1),
            ..*self
        }
    }

    /// A derived option set with the scale multiplied by `f` (sweep
    /// experiments run smaller workloads by default).
    pub fn scaled(&self, f: f64) -> Self {
        BenchOpts {
            scale: self.scale * f,
            ..*self
        }
    }
}

/// The worker count `--parallel` selects: every available core.
pub(crate) fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_scaling() {
        let o = BenchOpts::default();
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.workers, 1);
        let half = o.scaled(0.5);
        assert_eq!(half.scale, 0.5);
        assert_eq!(half.seed, o.seed);
        // Scaling a sweep keeps its worker pool.
        assert_eq!(o.with_workers(8).scaled(0.5).workers, 8);
        assert_eq!(o.with_workers(0).workers, 1);
    }
}
