//! Command-line options shared by every bench binary.

/// Options for a bench run.
///
/// Every binary accepts:
///
/// - `--scale <f64>`: workload scale factor (default 1.0 ≈ 128 k
///   nonzeros/node; the paper's matrices are ~40x larger),
/// - `--seed <u64>`: generator seed (default 2025),
/// - `--quick`: quarter-scale run for fast sanity checks,
/// - `--paper`: use the verbatim Table 5 machine (400 Gbps, real
///   latencies, 32 MB caches) instead of the scaled `mini` profile.
///   Orderings still hold, but fixed costs claim a larger share of the
///   scaled-down kernels, so magnitudes compress (see DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchOpts {
    /// Workload scale factor.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Run on the verbatim Table 5 cluster profile.
    pub paper_profile: bool,
}

impl Default for BenchOpts {
    fn default() -> Self {
        BenchOpts {
            scale: 1.0,
            seed: 2025,
            paper_profile: false,
        }
    }
}

impl BenchOpts {
    /// Parses options from `std::env::args`, panicking with a usage
    /// message on malformed input.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--scale" => {
                    let v = args.next().expect("--scale needs a value");
                    opts.scale = v.parse().expect("--scale must be a float");
                }
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed must be an integer");
                }
                "--quick" => opts.scale *= 0.25,
                "--paper" => opts.paper_profile = true,
                "--help" | "-h" => {
                    eprintln!("options: [--scale f64] [--seed u64] [--quick] [--paper]");
                    std::process::exit(0);
                }
                other => panic!("unknown option '{other}' (try --help)"),
            }
        }
        assert!(opts.scale > 0.0, "--scale must be positive");
        opts
    }

    /// A derived option set with the scale multiplied by `f` (sweep
    /// experiments run smaller workloads by default).
    pub fn scaled(&self, f: f64) -> Self {
        BenchOpts {
            scale: self.scale * f,
            ..*self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_scaling() {
        let o = BenchOpts::default();
        assert_eq!(o.scale, 1.0);
        let half = o.scaled(0.5);
        assert_eq!(half.scale, 0.5);
        assert_eq!(half.seed, o.seed);
    }
}
