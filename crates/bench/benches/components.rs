//! Criterion micro-benchmarks of the substrate components: the hot inner
//! structures every simulated PR touches (event queue, Idx Filter,
//! Pending PR Table, Concatenator, Property Cache) plus workload
//! generation and the reference kernels.

use netsparse_bench::microbench::{black_box, Criterion, Throughput};
use netsparse_bench::{criterion_group, criterion_main};

use netsparse_desim::{EventQueue, SimTime, SplitMix64};
use netsparse_snic::{ConcatConfig, Concatenator, HeaderSpec, IdxFilter, PendingTable, Pr, PrKind};
use netsparse_sparse::kernels::{spmm, synthetic_properties};
use netsparse_sparse::suite::SuiteConfig;
use netsparse_sparse::SuiteMatrix;
use netsparse_switch::{PropertyCache, PropertyCacheConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("push_pop_10k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = SplitMix64::new(7);
            for i in 0..10_000u64 {
                q.push(SimTime::from_ps(rng.next_range(1_000_000)), i);
            }
            let mut last = SimTime::ZERO;
            while let Some((t, e)) = q.pop() {
                debug_assert!(t >= last);
                last = t;
                black_box(e);
            }
        })
    });
    g.finish();
}

fn bench_idx_filter(c: &mut Criterion) {
    let mut g = c.benchmark_group("idx_filter");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("dense_insert_contains_100k", |b| {
        b.iter(|| {
            let mut f = IdxFilter::new(1 << 20);
            let mut rng = SplitMix64::new(3);
            for _ in 0..100_000 {
                let idx = rng.next_range(1 << 20) as u32;
                if !f.contains(idx) {
                    f.insert(idx);
                }
            }
            black_box(f.len())
        })
    });
    g.bench_function("sparse_insert_contains_100k", |b| {
        b.iter(|| {
            let mut f = IdxFilter::new(100_000_000);
            let mut rng = SplitMix64::new(3);
            for _ in 0..100_000 {
                let idx = rng.next_range(100_000_000) as u32;
                if !f.contains(idx) {
                    f.insert(idx);
                }
            }
            black_box(f.len())
        })
    });
    g.finish();
}

fn bench_pending_table(c: &mut Criterion) {
    let mut g = c.benchmark_group("pending_table");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("insert_remove_cycle_100k", |b| {
        b.iter(|| {
            let mut t = PendingTable::new(256);
            let mut rng = SplitMix64::new(11);
            let mut live: Vec<u32> = Vec::new();
            for _ in 0..100_000 {
                if t.is_full() || (!live.is_empty() && rng.chance(0.5)) {
                    let i = rng.next_range(live.len() as u64) as usize;
                    let idx = live.swap_remove(i);
                    t.remove(idx);
                } else {
                    let idx = rng.next_u64() as u32;
                    if !t.contains(idx) && t.insert(idx) {
                        live.push(idx);
                    }
                }
            }
            black_box(t.len())
        })
    });
    g.finish();
}

fn bench_concatenator(c: &mut Criterion) {
    let cfg = ConcatConfig {
        headers: HeaderSpec::paper(),
        mtu: 1_500,
        delay: SimTime::from_ns(227),
        enabled: true,
    };
    let mut g = c.benchmark_group("concatenator");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("push_flush_100k", |b| {
        b.iter(|| {
            let mut con = Concatenator::new(cfg);
            let mut rng = SplitMix64::new(5);
            let mut emitted = 0u64;
            for i in 0..100_000u32 {
                let t = SimTime::from_ps(u64::from(i) * 455);
                let dest = rng.next_range(127) as u32;
                let pr = Pr {
                    src_node: 0,
                    src_tid: 0,
                    idx: i,
                    req_id: i,
                };
                if con.push(t, dest, PrKind::Read, pr, 0).is_some() {
                    emitted += 1;
                }
                if i % 64 == 0 {
                    con.flush_expired_with(t, |_| emitted += 1);
                }
            }
            emitted += con.flush_all().len() as u64;
            black_box(emitted)
        })
    });
    g.finish();
}

fn bench_property_cache(c: &mut Criterion) {
    let cfg = PropertyCacheConfig {
        capacity_bytes: 4 << 20,
        ..PropertyCacheConfig::paper()
    };
    let mut g = c.benchmark_group("property_cache");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("lookup_insert_100k", |b| {
        b.iter(|| {
            let mut cache = PropertyCache::new(cfg, 64);
            let mut rng = SplitMix64::new(9);
            let mut hits = 0u64;
            for _ in 0..100_000 {
                let idx = rng.next_range(200_000) as u32;
                if cache.lookup(idx) {
                    hits += 1;
                } else {
                    cache.insert(idx);
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

fn bench_workload_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload_generation");
    g.sample_size(10);
    g.bench_function("arabic_32nodes_small", |b| {
        b.iter(|| {
            let wl = SuiteConfig {
                matrix: SuiteMatrix::Arabic,
                nodes: 32,
                rack_size: 8,
                scale: 0.05,
                seed: 1,
            }
            .generate();
            black_box(wl.total_nnz())
        })
    });
    g.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let m = netsparse_sparse::gen::power_law(Default::default(), 3).to_csr();
    let props = synthetic_properties(m.ncols(), 16);
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(m.nnz() as u64));
    g.bench_function("spmm_k16", |b| b.iter(|| black_box(spmm(&m, &props, 16))));
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_idx_filter,
    bench_pending_table,
    bench_concatenator,
    bench_property_cache,
    bench_workload_generation,
    bench_kernels
);
criterion_main!(benches);
