//! Criterion benchmarks of whole-cluster simulations: how fast the
//! simulator itself runs on each benchmark matrix, and how the mechanism
//! set changes simulation cost (the ablation harness's own overhead).

use netsparse_bench::microbench::{black_box, BenchmarkId, Criterion};
use netsparse_bench::{criterion_group, criterion_main};

use netsparse::prelude::*;

fn small_cluster() -> Topology {
    Topology::LeafSpine {
        racks: 4,
        rack_size: 8,
        spines: 4,
    }
}

fn bench_simulate_per_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate_32nodes");
    g.sample_size(10);
    for m in SuiteMatrix::ALL {
        let wl = SuiteConfig {
            matrix: m,
            nodes: 32,
            rack_size: 8,
            scale: 0.05,
            seed: 2,
        }
        .generate();
        let cfg = ClusterConfig::mini(small_cluster(), 16);
        g.bench_with_input(BenchmarkId::from_parameter(m.name()), &wl, |b, wl| {
            b.iter(|| black_box(simulate(&cfg, wl)).comm_time)
        });
    }
    g.finish();
}

fn bench_simulate_mechanism_cost(c: &mut Criterion) {
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Arabic,
        nodes: 32,
        rack_size: 8,
        scale: 0.05,
        seed: 2,
    }
    .generate();
    let mut g = c.benchmark_group("simulate_mechanisms");
    g.sample_size(10);
    for (name, mechanisms) in Mechanisms::ablation_stages() {
        let mut cfg = ClusterConfig::mini(small_cluster(), 16);
        cfg.mechanisms = mechanisms;
        g.bench_with_input(BenchmarkId::from_parameter(name), &wl, |b, wl| {
            b.iter(|| black_box(simulate(&cfg, wl)).events)
        });
    }
    g.finish();
}

fn bench_topologies(c: &mut Criterion) {
    let wl = SuiteConfig {
        matrix: SuiteMatrix::Uk,
        nodes: 128,
        rack_size: 16,
        scale: 0.01,
        seed: 2,
    }
    .generate();
    let mut g = c.benchmark_group("simulate_topologies_128");
    g.sample_size(10);
    for (name, topo) in netsparse::experiments::figure22_topologies() {
        let cfg = ClusterConfig::mini(topo, 16);
        g.bench_with_input(BenchmarkId::from_parameter(name), &wl, |b, wl| {
            b.iter(|| black_box(simulate(&cfg, wl)).comm_time)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_simulate_per_matrix,
    bench_simulate_mechanism_cost,
    bench_topologies
);
criterion_main!(benches);
