//! Process scaling factors (Stillmaker–Baas style, the paper's reference 83).
//!
//! The paper synthesizes at 45 nm and scales results to 10 nm using the
//! scaling equations of Stillmaker & Baas (Integration, 2017). This module
//! provides the area / power / delay factors between the nodes used in the
//! paper, fitted to the published per-node tables.

use serde::{Deserialize, Serialize};

/// Scaling factors from one process node to another.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProcessScaling {
    /// Source feature size in nanometres.
    pub from_nm: f64,
    /// Target feature size in nanometres.
    pub to_nm: f64,
    /// Multiply source area by this to get target area.
    pub area: f64,
    /// Multiply source dynamic power (at equal frequency) by this.
    pub dynamic_power: f64,
    /// Multiply source static power by this.
    pub static_power: f64,
    /// Multiply source gate delay by this.
    pub delay: f64,
}

impl ProcessScaling {
    /// The 45 nm → 10 nm scaling the paper uses.
    ///
    /// Area scales slightly worse than the ideal `(10/45)²` ≈ 0.049
    /// because SRAM and wiring stop scaling; the Stillmaker–Baas fits give
    /// roughly 0.064 for area, 0.17 for dynamic power and 0.48 for delay
    /// between these nodes.
    pub fn n45_to_n10() -> Self {
        ProcessScaling {
            from_nm: 45.0,
            to_nm: 10.0,
            area: 0.064,
            dynamic_power: 0.17,
            static_power: 0.30,
            delay: 0.48,
        }
    }

    /// A frequency reached at `from_nm` that the same design can sustain
    /// at `to_nm` (inverse delay scaling).
    pub fn scaled_frequency_ghz(&self, freq_ghz_at_from: f64) -> f64 {
        freq_ghz_at_from / self.delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_frequency_claim_holds() {
        // §8.3: designs meet 1.5 GHz at 45 nm, so 2.2 GHz at 7–10 nm "is
        // very reasonable". Our delay factor must support that.
        let s = ProcessScaling::n45_to_n10();
        assert!(s.scaled_frequency_ghz(1.5) >= 2.2);
    }

    #[test]
    fn area_scales_down_hard() {
        let s = ProcessScaling::n45_to_n10();
        assert!(s.area < 0.1 && s.area > 0.03);
    }
}
