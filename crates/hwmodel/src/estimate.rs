//! Area/power estimates for the SNIC and switch extensions.
//!
//! Storage sizes come from Table 5; the technology parameters are the
//! calibrated 10 nm densities described on [`TechParams`]. Reported
//! quantities mirror Figure 20 (per-component area, static and peak dynamic
//! power of the SNIC extensions), Table 9 (RIG-unit area split) and §9.5's
//! switch numbers.

use serde::{Deserialize, Serialize};

/// Calibrated 10 nm technology parameters.
///
/// - `sram_mbit_per_mm2`: effective density of small/medium SRAM arrays
///   including peripherals (≈26 Mbit/mm² at 10 nm),
/// - `cache_mbit_per_mm2`: density of the large set-associative Property
///   Cache arrays (tag + data + multi-segment muxing lowers density),
/// - `cam_area_factor`: area of a CAM bit relative to an SRAM bit (≈8×,
///   CACTI-class),
/// - `logic_overhead`: synthesized control logic as a fraction of the
///   storage area it manages,
/// - power densities: W/mm² for leakage and for switching at full
///   activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// SRAM density, Mbit/mm².
    pub sram_mbit_per_mm2: f64,
    /// Large-cache density, Mbit/mm².
    pub cache_mbit_per_mm2: f64,
    /// CAM bit area relative to SRAM bit area.
    pub cam_area_factor: f64,
    /// Control-logic area fraction added to storage area.
    pub logic_overhead: f64,
    /// Leakage power density, W/mm².
    pub static_w_per_mm2: f64,
    /// Peak dynamic power density at activity 1.0, W/mm².
    pub dynamic_w_per_mm2: f64,
}

impl TechParams {
    /// The calibrated 10 nm parameters used throughout §9.5.
    pub fn n10() -> Self {
        TechParams {
            sram_mbit_per_mm2: 26.0,
            cache_mbit_per_mm2: 12.0,
            cam_area_factor: 8.0,
            logic_overhead: 0.15,
            static_w_per_mm2: 0.33,
            dynamic_w_per_mm2: 2.6,
        }
    }

    fn sram_mm2(&self, bytes: f64) -> f64 {
        bytes * 8.0 / (self.sram_mbit_per_mm2 * 1e6)
    }

    fn cam_mm2(&self, bytes: f64) -> f64 {
        self.sram_mm2(bytes) * self.cam_area_factor
    }

    fn cache_mm2(&self, bytes: f64) -> f64 {
        bytes * 8.0 / (self.cache_mbit_per_mm2 * 1e6)
    }
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams::n10()
    }
}

/// One component's estimate (a bar group of Figure 20).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentEstimate {
    /// Component name.
    pub name: String,
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Leakage power in watts.
    pub static_w: f64,
    /// Peak dynamic power in watts (maximum activity).
    pub dynamic_w: f64,
}

impl ComponentEstimate {
    fn new(name: &str, t: &TechParams, area_mm2: f64, activity: f64) -> Self {
        ComponentEstimate {
            name: name.to_string(),
            area_mm2,
            static_w: area_mm2 * t.static_w_per_mm2,
            dynamic_w: area_mm2 * t.dynamic_w_per_mm2 * activity,
        }
    }

    /// Total (static + peak dynamic) power.
    pub fn peak_w(&self) -> f64 {
        self.static_w + self.dynamic_w
    }
}

/// Storage inside one RIG unit (Table 5): sizes in bytes and whether each
/// structure is a CAM.
const RIG_UNIT_STRUCTURES: [(&str, f64, bool); 4] = [
    ("Idx Buffer", 4096.0, false),
    ("Pending PR Table", 256.0 * 8.0, true), // 256 entries x ~8 B each
    ("Property Buffer", 4096.0, false),
    ("LSQ", 64.0 * 8.0, true), // 64 entries x ~8 B
];

fn rig_unit_area(t: &TechParams) -> (f64, Vec<(&'static str, f64)>) {
    let mut parts: Vec<(&'static str, f64)> = RIG_UNIT_STRUCTURES
        .iter()
        .map(|&(name, bytes, cam)| {
            let a = if cam {
                t.cam_mm2(bytes)
            } else {
                t.sram_mm2(bytes)
            };
            (name, a)
        })
        .collect();
    let storage: f64 = parts.iter().map(|(_, a)| a).sum();
    let rest = storage * t.logic_overhead;
    parts.push(("Rest", rest));
    (storage + rest, parts)
}

/// Table 9: the fraction of a RIG unit's area in each structure.
///
/// # Example
///
/// ```
/// use netsparse_hwmodel::{rig_unit_breakdown, TechParams};
/// let parts = rig_unit_breakdown(&TechParams::n10());
/// let total: f64 = parts.iter().map(|(_, f)| f).sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn rig_unit_breakdown(t: &TechParams) -> Vec<(&'static str, f64)> {
    let (total, parts) = rig_unit_area(t);
    parts.into_iter().map(|(n, a)| (n, a / total)).collect()
}

/// Figure 20: per-component area and power of the SNIC extensions
/// (32 RIG units, 16 L1s of 32 KB, 16 L2s of 128 KB, and the
/// con/de-concatenator blocks with 512 KB of CQ SRAM).
pub fn snic_extension_report(t: &TechParams) -> Vec<ComponentEstimate> {
    let (unit_area, _) = rig_unit_area(t);
    vec![
        // RIG units run flat out (1 idx/cycle): highest activity.
        ComponentEstimate::new("RIG Units", t, 32.0 * unit_area, 1.0),
        ComponentEstimate::new("L1 caches", t, t.sram_mm2(16.0 * 32.0 * 1024.0) * 1.1, 0.5),
        ComponentEstimate::new("L2 caches", t, t.sram_mm2(16.0 * 128.0 * 1024.0) * 1.1, 0.2),
        ComponentEstimate::new(
            "Con/De-concat",
            t,
            t.sram_mm2(512.0 * 1024.0) * (1.0 + t.logic_overhead),
            0.4,
        ),
    ]
}

/// §9.5 switch overheads: Property Caches (32 MB), switch concatenators
/// (512 KB per pipe × 8 pipes), and a point estimate for the second
/// crossbar.
pub fn switch_extension_report(t: &TechParams) -> Vec<ComponentEstimate> {
    vec![
        ComponentEstimate::new(
            "Property Caches",
            t,
            t.cache_mm2(32.0 * 1024.0 * 1024.0),
            0.10,
        ),
        ComponentEstimate::new(
            "Concatenators",
            t,
            t.sram_mm2(8.0 * 512.0 * 1024.0) * (1.0 + t.logic_overhead),
            0.25,
        ),
        // Stand-alone 32x32 crossbar (paper cites <5 mm²); the full
        // uncertainty range (1-15% of a ~700 mm² switch) is discussed in
        // §9.5 and reported by `crossbar_area_range_mm2`.
        ComponentEstimate::new("Second crossbar", t, 5.0, 0.3),
    ]
}

/// The paper's quoted uncertainty interval for the extra crossbar and
/// inter-pipe routing: 1–15 % of a 700 mm² switch ASIC.
pub fn crossbar_area_range_mm2() -> (f64, f64) {
    (0.01 * 700.0, 0.15 * 700.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table9_fractions_match_paper() {
        // Paper: IdxBuf 12%, Pending PR 53%, PropBuf 12%, LSQ 10%, Rest 13%.
        let parts = rig_unit_breakdown(&TechParams::n10());
        let get = |name: &str| {
            parts
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, f)| *f * 100.0)
                .expect("structure present")
        };
        assert!((get("Idx Buffer") - 12.0).abs() < 3.0);
        assert!((get("Pending PR Table") - 53.0).abs() < 6.0);
        assert!((get("Property Buffer") - 12.0).abs() < 3.0);
        assert!((get("LSQ") - 10.0).abs() < 3.0);
        assert!((get("Rest") - 13.0).abs() < 3.0);
    }

    #[test]
    fn pending_pr_table_dominates_unit_area() {
        let parts = rig_unit_breakdown(&TechParams::n10());
        let max = parts
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty");
        assert_eq!(max.0, "Pending PR Table");
    }

    #[test]
    fn snic_totals_match_figure20() {
        // Paper: combined ~1.43 mm², ~2.1 W peak, idle (static) ~0.5 W.
        let report = snic_extension_report(&TechParams::n10());
        let area: f64 = report.iter().map(|c| c.area_mm2).sum();
        let peak: f64 = report.iter().map(|c| c.peak_w()).sum();
        let stat: f64 = report.iter().map(|c| c.static_w).sum();
        assert!((1.0..2.2).contains(&area), "area {area}");
        assert!((1.4..3.0).contains(&peak), "peak {peak}");
        assert!((0.3..0.8).contains(&stat), "static {stat}");
    }

    #[test]
    fn l2_dominates_area_rig_dominates_dynamic() {
        // Figure 20's qualitative findings.
        let report = snic_extension_report(&TechParams::n10());
        let by = |name: &str| report.iter().find(|c| c.name == name).unwrap();
        let max_area = report
            .iter()
            .max_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2));
        assert_eq!(max_area.unwrap().name, "L2 caches");
        let max_dyn = report
            .iter()
            .max_by(|a, b| a.dynamic_w.total_cmp(&b.dynamic_w));
        assert_eq!(max_dyn.unwrap().name, "RIG Units");
        assert!(by("L2 caches").static_w > by("L1 caches").static_w);
    }

    #[test]
    fn switch_totals_match_section95() {
        // Paper: caches ~21.3 mm², concatenators ~1.5 mm², power ~10 W.
        let report = switch_extension_report(&TechParams::n10());
        let by = |name: &str| report.iter().find(|c| c.name == name).unwrap();
        let cache = by("Property Caches").area_mm2;
        let conc = by("Concatenators").area_mm2;
        assert!((18.0..25.0).contains(&cache), "cache {cache}");
        assert!((1.0..2.5).contains(&conc), "concat {conc}");
        let power: f64 = report
            .iter()
            .filter(|c| c.name != "Second crossbar")
            .map(|c| c.peak_w())
            .sum();
        assert!((6.0..16.0).contains(&power), "power {power}");
    }

    #[test]
    fn crossbar_range_matches_paper_interval() {
        let (lo, hi) = crossbar_area_range_mm2();
        assert_eq!(lo, 7.0);
        assert_eq!(hi, 105.0);
    }
}
