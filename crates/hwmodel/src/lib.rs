//! Analytic area & power model for the NetSparse hardware extensions
//! (paper §8.3, §9.5, Figure 20, Table 9).
//!
//! The paper implements the RIG pipelines and Concatenators in RTL,
//! synthesizes at 45 nm (FreePDK45 + Design Compiler), models SRAMs/CAMs
//! with CACTI, and scales to 10 nm with the Stillmaker–Baas equations. We
//! do not have a synthesis flow; instead this crate provides a transparent
//! analytic estimator with three primitives — SRAM, CAM and synthesized
//! logic — whose per-bit densities and energies at 10 nm are calibrated so
//! the totals land on the paper's reported numbers (SNIC extensions:
//! ≈1.4 mm², ≈2.1 W peak; switch caches ≈21 mm²; Table 9's RIG-unit area
//! split). The *structure* of the model (which storage exists, how large)
//! follows Table 5 exactly, so parameter sweeps respond the way real
//! estimates would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimate;
pub mod scaling;

pub use estimate::{
    rig_unit_breakdown, snic_extension_report, switch_extension_report, ComponentEstimate,
    TechParams,
};
pub use scaling::ProcessScaling;
