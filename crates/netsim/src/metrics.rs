//! Topology metrics: the structural numbers behind the §9.6 discussion.
//!
//! The paper attributes Figure 22's HyperX/Dragonfly differences to their
//! "higher diameter" at "similar bisection bandwidth" to Leaf-Spine. This
//! module computes those quantities from a constructed [`Network`] so the
//! claim can be checked rather than assumed.

use crate::topology::{Element, Network};

/// Structural summary of a network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopologyMetrics {
    /// Most switch-to-switch hops on any NIC-to-NIC route.
    pub diameter_hops: usize,
    /// Mean hops (links traversed) over all NIC pairs.
    pub avg_hops: f64,
    /// Mean switches traversed over all NIC pairs.
    pub avg_switches: f64,
    /// Directed links crossing the node-id midpoint cut, as a proxy for
    /// bisection width (exact for the symmetric topologies used here).
    pub midpoint_cut_links: u32,
}

impl TopologyMetrics {
    /// Computes the metrics of `net` by walking every precomputed route.
    pub fn of(net: &Network) -> Self {
        let n = net.nodes();
        let mut max_hops = 0usize;
        let mut total_hops = 0u64;
        let mut total_switches = 0u64;
        let mut pairs = 0u64;
        for src in 0..n {
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                let p = net.path(src, dst);
                max_hops = max_hops.max(p.hops.len());
                total_hops += p.hops.len() as u64;
                total_switches += p.switches().count() as u64;
                pairs += 1;
            }
        }
        // Links whose endpoints' *attached node sets* straddle the
        // midpoint cut: count switch-switch links used by cross-half
        // routes (deduplicated).
        let half = n / 2;
        let mut cut_links = std::collections::BTreeSet::new();
        for src in 0..half {
            for dst in half..n {
                for hop in &net.path(src, dst).hops {
                    let (from, _) = net.link_ends(hop.link);
                    if matches!(from, Element::Switch(_)) && matches!(hop.to, Element::Switch(_)) {
                        cut_links.insert(hop.link);
                    }
                }
            }
        }
        TopologyMetrics {
            diameter_hops: max_hops,
            avg_hops: total_hops as f64 / pairs as f64,
            avg_switches: total_switches as f64 / pairs as f64,
            midpoint_cut_links: cut_links.len() as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn leaf_spine_metrics() {
        let m = TopologyMetrics::of(&Network::new(Topology::leaf_spine_128()));
        // NIC->ToR->spine->ToR->NIC = 4 hops max; intra-rack pairs pull
        // the average below that.
        assert_eq!(m.diameter_hops, 4);
        assert!(m.avg_hops > 3.0 && m.avg_hops < 4.0, "{}", m.avg_hops);
        assert!(m.midpoint_cut_links > 0);
    }

    #[test]
    fn hyperx_has_the_larger_diameter() {
        // The paper: HyperX/Dragonfly have "a higher diameter" than
        // Leaf-Spine at similar bisection bandwidth.
        let ls = TopologyMetrics::of(&Network::new(Topology::leaf_spine_128()));
        let hx = TopologyMetrics::of(&Network::new(Topology::hyperx_128()));
        let df = TopologyMetrics::of(&Network::new(Topology::dragonfly_128()));
        assert!(hx.diameter_hops > ls.diameter_hops);
        assert!(df.diameter_hops >= ls.diameter_hops);
    }

    #[test]
    fn averages_are_consistent_with_diameter() {
        for topo in [
            Topology::leaf_spine_128(),
            Topology::hyperx_128(),
            Topology::dragonfly_128(),
        ] {
            let m = TopologyMetrics::of(&Network::new(topo));
            assert!(m.avg_hops <= m.diameter_hops as f64);
            assert!(m.avg_switches < m.avg_hops);
        }
    }
}
