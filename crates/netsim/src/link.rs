//! Link timing: serialization, propagation and backlog tracking.

use netsparse_desim::{RateMeter, SimTime};
use serde::{Deserialize, Serialize};

#[cfg(feature = "trace")]
use netsparse_desim::trace::{TraceEvent, Tracer, TrackId};

/// Static link parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkParams {
    /// Line rate in bits per second (paper: 400 Gbps per link).
    pub bandwidth_bps: f64,
    /// One-way propagation latency (paper: 450 ns per network link).
    pub latency: SimTimeNs,
}

/// Serializable nanosecond wrapper for [`SimTime`] inside configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimTimeNs(pub u64);

impl From<SimTimeNs> for SimTime {
    fn from(v: SimTimeNs) -> SimTime {
        SimTime::from_ns(v.0)
    }
}

impl LinkParams {
    /// Creates parameters from a Gbps line rate and nanosecond latency.
    pub fn new(bandwidth_gbps: f64, latency_ns: u64) -> Self {
        assert!(
            bandwidth_gbps > 0.0 && bandwidth_gbps.is_finite(),
            "bandwidth must be positive"
        );
        LinkParams {
            bandwidth_bps: bandwidth_gbps * 1e9,
            latency: SimTimeNs(latency_ns),
        }
    }

    /// Time to serialize `bytes` onto the wire.
    pub fn serialization(&self, bytes: u64) -> SimTime {
        SimTime::serialization(bytes, self.bandwidth_bps)
    }
}

/// Runtime state of one directed link: an output-queued,
/// store-and-forward wire.
///
/// A packet handed to [`Link::transmit`] at time `now` begins serializing
/// when the wire frees up, occupies it for `bytes * 8 / bandwidth`, and
/// arrives one propagation latency after its last bit leaves. Backlog
/// (`depart - now`) is the output-queueing delay; the simulator tracks its
/// maximum as a buffer-occupancy statistic.
///
/// # Example
///
/// ```
/// use netsparse_netsim::{Link, LinkParams};
/// use netsparse_desim::SimTime;
///
/// let mut link = Link::new(LinkParams::new(400.0, 450));
/// let t0 = SimTime::ZERO;
/// let a1 = link.transmit(t0, 1_500); // 1500B at 400G = 30ns ser
/// let a2 = link.transmit(t0, 1_500); // queues behind the first
/// assert_eq!(a1, SimTime::from_ns(480));
/// assert_eq!(a2, SimTime::from_ns(510));
/// ```
#[derive(Debug, Clone)]
pub struct Link {
    params: LinkParams,
    busy_until: SimTime,
    max_backlog: SimTime,
    meter: RateMeter,
    packets: u64,
    #[cfg(feature = "trace")]
    tracer: Option<(Tracer, TrackId)>,
}

impl Link {
    /// Creates an idle link.
    pub fn new(params: LinkParams) -> Self {
        Link {
            params,
            busy_until: SimTime::ZERO,
            max_backlog: SimTime::ZERO,
            meter: RateMeter::new(),
            packets: 0,
            #[cfg(feature = "trace")]
            tracer: None,
        }
    }

    /// Attaches a tracer; every transmit is recorded as a `link_tx` on
    /// `track` (this link's wire lane), carrying the packet's bytes and
    /// the queueing delay it saw.
    #[cfg(feature = "trace")]
    pub fn set_tracer(&mut self, tracer: Tracer, track: TrackId) {
        self.tracer = Some((tracer, track));
    }

    /// The link's static parameters.
    pub fn params(&self) -> &LinkParams {
        &self.params
    }

    /// Enqueues a packet of `bytes` at `now`; returns its arrival time at
    /// the far end.
    pub fn transmit(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let depart = self.busy_until.max(now);
        let backlog = depart.saturating_sub(now);
        self.max_backlog = self.max_backlog.max(backlog);
        self.busy_until = depart + self.params.serialization(bytes);
        self.meter.record(self.busy_until, bytes);
        self.packets += 1;
        #[cfg(feature = "trace")]
        if let Some((tracer, track)) = &self.tracer {
            tracer.record(
                *track,
                TraceEvent::LinkTx {
                    bytes: bytes as u32,
                    backlog_ps: backlog.as_ps(),
                },
            );
        }
        self.busy_until + self.params.latency.into()
    }

    /// When the wire next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Worst queueing delay seen by any packet on this link.
    pub fn max_backlog(&self) -> SimTime {
        self.max_backlog
    }

    /// Total bytes carried.
    pub fn bytes(&self) -> u64 {
        self.meter.bytes()
    }

    /// Total packets carried.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Utilization of the line rate over `[0, elapsed]`.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        self.meter.utilization(elapsed, self.params.bandwidth_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time_matches_line_rate() {
        let p = LinkParams::new(400.0, 0);
        // 1500 bytes at 400 Gbps = 30 ns.
        assert_eq!(p.serialization(1_500), SimTime::from_ns(30));
    }

    #[test]
    fn back_to_back_packets_queue() {
        let mut l = Link::new(LinkParams::new(100.0, 100));
        // 1250 bytes at 100 Gbps = 100 ns serialization.
        let a1 = l.transmit(SimTime::ZERO, 1_250);
        let a2 = l.transmit(SimTime::ZERO, 1_250);
        assert_eq!(a1, SimTime::from_ns(200));
        assert_eq!(a2, SimTime::from_ns(300));
        assert_eq!(l.max_backlog(), SimTime::from_ns(100));
        assert_eq!(l.bytes(), 2_500);
        assert_eq!(l.packets(), 2);
    }

    #[test]
    fn idle_gaps_do_not_queue() {
        let mut l = Link::new(LinkParams::new(100.0, 0));
        l.transmit(SimTime::ZERO, 1_250);
        let a = l.transmit(SimTime::from_us(1), 1_250);
        assert_eq!(a, SimTime::from_ns(1_100));
        assert_eq!(l.max_backlog(), SimTime::ZERO);
    }

    #[test]
    fn utilization_accounts_for_carried_bytes() {
        let mut l = Link::new(LinkParams::new(100.0, 0));
        l.transmit(SimTime::ZERO, 12_500); // 1 us of wire time
        let u = l.utilization(SimTime::from_us(2));
        assert!((u - 0.5).abs() < 1e-9, "{u}");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        LinkParams::new(0.0, 1);
    }
}
