//! Network substrate for the NetSparse reproduction.
//!
//! The paper simulates a 128-node cluster (Table 5, Figure 11) with a
//! Leaf-Spine topology — and, in §9.6, HyperX and Dragonfly alternatives —
//! using SST/Merlin. This crate rebuilds that substrate: typed network
//! elements, the three topologies with deterministic routing, and
//! bandwidth/latency link models whose store-and-forward timing reproduces
//! the paper's zero-load RTTs (2.4 µs intra-rack, 5.4 µs inter-rack with
//! 450 ns links and 300 ns switch traversal).
//!
//! The crate is payload-agnostic: packets are just byte counts to a
//! [`link::Link`]; the NetSparse packet format and switch/NIC processing
//! live in the `netsparse-snic` and `netsparse-switch` crates, orchestrated
//! by the `netsparse` core crate.
//!
//! # Example
//!
//! ```
//! use netsparse_netsim::{Network, Topology};
//!
//! let net = Network::new(Topology::leaf_spine_128());
//! assert_eq!(net.nodes(), 128);
//! // Nodes 0 and 1 share a rack: their path is NIC -> ToR -> NIC.
//! assert_eq!(net.path(0, 1).hops.len(), 2);
//! // Nodes 0 and 127 are in different racks: two extra spine hops.
//! assert_eq!(net.path(0, 127).hops.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod link;
pub mod metrics;
pub mod topology;

pub use link::{Link, LinkParams};
pub use metrics::TopologyMetrics;
pub use topology::{Element, FailureSet, LinkId, Network, Path, RouteError, SwitchId, Topology};
