//! Cluster topologies and deterministic routing.
//!
//! Three topologies from the paper are implemented:
//!
//! - **Leaf-Spine** (Table 5 / Figure 11): racks of hosts under ToR
//!   switches, fully connected to a spine layer. The default is 8 racks ×
//!   16 hosts with 16 spines.
//! - **HyperX** (§9.6): switches on a 3-D integer lattice, fully connected
//!   along each dimension line, with dimension-ordered routing. The paper's
//!   instance is 4×4×2 with 4 hosts per switch.
//! - **Dragonfly** (§9.6): groups of fully meshed switches with global
//!   links between groups and minimal routing. The paper's instance is 4
//!   groups of 8 switches, 4 hosts per switch.
//!
//! Routing is deterministic (the paper assumes deterministic routing so the
//! Property Cache's read/response paths match); every `(src, dst)` pair has
//! exactly one path, precomputed at construction.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

/// Identifies a switch within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SwitchId(pub u32);

/// Identifies a directed link within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// A network element: a node's NIC or a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Element {
    /// The SmartNIC of cluster node `n`.
    Nic(u32),
    /// Switch `s`.
    Switch(SwitchId),
}

/// One hop of a path: traverse `link`, arriving at `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// The directed link traversed.
    pub link: LinkId,
    /// The element reached.
    pub to: Element,
}

/// A precomputed route between two NICs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Path {
    /// Ordered hops from the source NIC to the destination NIC.
    pub hops: Vec<Hop>,
}

impl Path {
    /// The switches traversed, in order.
    pub fn switches(&self) -> impl Iterator<Item = SwitchId> + '_ {
        self.hops.iter().filter_map(|h| match h.to {
            Element::Switch(s) => Some(s),
            Element::Nic(_) => None,
        })
    }
}

/// A cluster topology description.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Hosts in racks under ToR switches; every ToR connects to every
    /// spine. Inter-rack traffic takes `ToR -> spine -> ToR`.
    LeafSpine {
        /// Number of racks (= ToR switches).
        racks: u32,
        /// Hosts per rack.
        rack_size: u32,
        /// Number of spine switches.
        spines: u32,
    },
    /// Switches on a `dims[0] x dims[1] x dims[2]` lattice, fully connected
    /// along each dimension; dimension-ordered (x, y, z) routing.
    HyperX {
        /// Lattice extents.
        dims: [u32; 3],
        /// Hosts attached to each switch.
        hosts_per_switch: u32,
    },
    /// Groups of fully meshed switches with `global_links_per_pair` links
    /// between every pair of groups; minimal routing.
    Dragonfly {
        /// Number of groups.
        groups: u32,
        /// Switches per group (fully meshed within a group).
        switches_per_group: u32,
        /// Hosts attached to each switch.
        hosts_per_switch: u32,
        /// Global links between each pair of groups.
        global_links_per_pair: u32,
    },
}

impl Topology {
    /// The paper's default cluster: 8 racks × 16 nodes, 16 spines.
    pub fn leaf_spine_128() -> Topology {
        Topology::LeafSpine {
            racks: 8,
            rack_size: 16,
            spines: 16,
        }
    }

    /// The paper's HyperX alternative: 4×4×2 switches, 4 hosts each.
    pub fn hyperx_128() -> Topology {
        Topology::HyperX {
            dims: [4, 4, 2],
            hosts_per_switch: 4,
        }
    }

    /// The paper's Dragonfly alternative: 4 groups × 8 switches, 4 hosts
    /// each, 4 global links per group pair.
    pub fn dragonfly_128() -> Topology {
        Topology::Dragonfly {
            groups: 4,
            switches_per_group: 8,
            hosts_per_switch: 4,
            global_links_per_pair: 4,
        }
    }

    /// Total cluster nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        match *self {
            Topology::LeafSpine {
                racks, rack_size, ..
            } => racks * rack_size,
            Topology::HyperX {
                dims,
                hosts_per_switch,
            } => dims[0] * dims[1] * dims[2] * hosts_per_switch,
            Topology::Dragonfly {
                groups,
                switches_per_group,
                hosts_per_switch,
                ..
            } => groups * switches_per_group * hosts_per_switch,
        }
    }

    /// Total switches.
    #[must_use]
    pub fn switches(&self) -> u32 {
        match *self {
            Topology::LeafSpine { racks, spines, .. } => racks + spines,
            Topology::HyperX { dims, .. } => dims[0] * dims[1] * dims[2],
            Topology::Dragonfly {
                groups,
                switches_per_group,
                ..
            } => groups * switches_per_group,
        }
    }

    /// The edge switch (ToR equivalent) each node attaches to.
    #[must_use]
    pub fn edge_switch_of(&self, node: u32) -> SwitchId {
        match *self {
            Topology::LeafSpine { rack_size, .. } => SwitchId(node / rack_size),
            Topology::HyperX {
                hosts_per_switch, ..
            }
            | Topology::Dragonfly {
                hosts_per_switch, ..
            } => SwitchId(node / hosts_per_switch),
        }
    }

    /// Whether switch `s` has hosts attached (NetSparse extensions are
    /// deployed only in such switches).
    #[must_use]
    pub fn is_edge_switch(&self, s: SwitchId) -> bool {
        match *self {
            Topology::LeafSpine { racks, .. } => s.0 < racks,
            Topology::HyperX { .. } | Topology::Dragonfly { .. } => true,
        }
    }

    /// How many distinct deterministic route choices each `(src, dst)`
    /// pair has — the fan the failover logic walks (ECMP-style
    /// next-choice). Choice 0 is the primary route of [`Network::path`].
    pub fn route_choices(&self) -> u32 {
        match *self {
            // One choice per spine.
            Topology::LeafSpine { spines, .. } => spines.max(1),
            // One choice per dimension-correction order.
            Topology::HyperX { .. } => DIM_ORDERS.len() as u32,
            // One choice per global link between the group pair.
            Topology::Dragonfly {
                global_links_per_pair,
                ..
            } => global_links_per_pair.max(1),
        }
    }
}

/// The six dimension-correction orders HyperX failover rotates through.
const DIM_ORDERS: [[usize; 3]; 6] = [
    [0, 1, 2],
    [0, 2, 1],
    [1, 0, 2],
    [1, 2, 0],
    [2, 0, 1],
    [2, 1, 0],
];

/// The set of currently failed network elements.
///
/// A dead switch implicitly kills every link attached to it; the set only
/// records the switch. Links can also die individually (a cut fiber with
/// both switches alive).
///
/// # Example
///
/// ```
/// use netsparse_netsim::{topology::FailureSet, Network, SwitchId, Topology};
///
/// let net = Network::new(Topology::leaf_spine_128());
/// let mut down = FailureSet::new();
/// down.fail_switch(SwitchId(8)); // first spine
/// // Traffic re-routes around the dead spine deterministically.
/// let p = net.failover_path(0, 16, &down).expect("other spines live");
/// assert!(p.switches().all(|s| s != SwitchId(8)));
/// down.repair_switch(SwitchId(8));
/// assert!(down.is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSet {
    dead_links: BTreeSet<LinkId>,
    dead_switches: BTreeSet<SwitchId>,
}

impl FailureSet {
    /// An empty (fully healthy) set.
    pub fn new() -> Self {
        FailureSet::default()
    }

    /// Marks a directed link dead.
    pub fn fail_link(&mut self, l: LinkId) {
        self.dead_links.insert(l);
    }

    /// Repairs a directed link.
    pub fn repair_link(&mut self, l: LinkId) {
        self.dead_links.remove(&l);
    }

    /// Marks a switch dead (all its links become unusable).
    pub fn fail_switch(&mut self, s: SwitchId) {
        self.dead_switches.insert(s);
    }

    /// Repairs a switch.
    pub fn repair_switch(&mut self, s: SwitchId) {
        self.dead_switches.remove(&s);
    }

    /// Whether everything is healthy.
    pub fn is_empty(&self) -> bool {
        self.dead_links.is_empty() && self.dead_switches.is_empty()
    }

    /// Whether link `l` itself is marked dead (switch deaths not
    /// considered; see [`Network::path_is_usable`]).
    pub fn link_dead(&self, l: LinkId) -> bool {
        self.dead_links.contains(&l)
    }

    /// Whether switch `s` is dead.
    pub fn switch_dead(&self, s: SwitchId) -> bool {
        self.dead_switches.contains(&s)
    }
}

/// A typed routing failure from the fallible [`Network`] constructors and
/// path lookups (`try_new`, `try_path`, `try_path_with_choice`).
///
/// The panicking wrappers ([`Network::new`], [`Network::path`]) abort with
/// this error's `Display` text; callers that must survive arbitrary
/// generated topologies (the chaos harness, `try_simulate`) use the `try_`
/// variants and route the error upward instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// The topology has fewer than 2 nodes — nothing to route between.
    DegenerateTopology {
        /// Node count of the offending topology.
        nodes: u32,
    },
    /// A path endpoint does not exist in the topology.
    NodeOutOfRange {
        /// The requested node.
        node: u32,
        /// Number of nodes the topology actually has.
        nodes: u32,
    },
    /// A route from a node to itself was requested; self-traffic never
    /// enters the network.
    SelfRoute {
        /// The node routed to itself.
        node: u32,
    },
    /// A route references a link the topology does not have — a
    /// malformed or internally inconsistent topology description.
    MissingLink {
        /// Route source node.
        src: u32,
        /// Route destination node.
        dst: u32,
        /// ECMP route choice being materialized.
        choice: u32,
        /// The hop's upstream element.
        from: Element,
        /// The hop's downstream element.
        to: Element,
    },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RouteError::DegenerateTopology { nodes } => {
                write!(f, "topology must have at least 2 nodes, got {nodes}")
            }
            RouteError::NodeOutOfRange { node, nodes } => {
                write!(f, "node {node} out of range: topology has {nodes} nodes")
            }
            RouteError::SelfRoute { node } => {
                write!(f, "no path from a node to itself (node {node})")
            }
            RouteError::MissingLink {
                src,
                dst,
                choice,
                from,
                to,
            } => write!(
                f,
                "no link {from:?} -> {to:?} on route {src}->{dst} (choice {choice})"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

/// A constructed network: topology + link registry + all-pairs paths.
///
/// See the crate-level example for usage.
#[derive(Debug, Clone)]
pub struct Network {
    topo: Topology,
    nodes: u32,
    n_links: u32,
    link_index: BTreeMap<(Element, Element), LinkId>,
    link_ends: Vec<(Element, Element)>,
    paths: Vec<Path>, // row-major [src * nodes + dst]
}

impl Network {
    /// Builds the network and precomputes every route.
    ///
    /// # Panics
    ///
    /// Panics if the topology is degenerate (zero of any extent).
    pub fn new(topo: Topology) -> Self {
        // simaudit:allow(no-lib-panic): documented panicking wrapper over try_new for static topologies
        Self::try_new(topo).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the network and precomputes every route, returning a typed
    /// [`RouteError`] instead of panicking when the topology is degenerate
    /// or internally unroutable. Generated (chaos) topologies go through
    /// here so malformed descriptions are *rejected*, not aborted on.
    pub fn try_new(topo: Topology) -> Result<Self, RouteError> {
        let nodes = topo.nodes();
        if nodes < 2 {
            return Err(RouteError::DegenerateTopology { nodes });
        }
        let mut net = Network {
            topo,
            nodes,
            n_links: 0,
            link_index: BTreeMap::new(),
            link_ends: Vec::new(),
            paths: Vec::new(),
        };
        net.build_links();
        net.build_paths()?;
        Ok(net)
    }

    /// The topology this network instantiates.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    /// Number of switches.
    #[must_use]
    pub fn switches(&self) -> u32 {
        self.topo.switches()
    }

    /// Number of directed links.
    pub fn links(&self) -> u32 {
        self.n_links
    }

    /// Endpoints of a link.
    pub fn link_ends(&self, l: LinkId) -> (Element, Element) {
        self.link_ends[l.0 as usize]
    }

    /// The edge switch of a node.
    #[must_use]
    pub fn edge_switch_of(&self, node: u32) -> SwitchId {
        self.topo.edge_switch_of(node)
    }

    /// The route from `src` to `dst`.
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` (no network traversal) or either is out of
    /// range.
    pub fn path(&self, src: u32, dst: u32) -> &Path {
        // simaudit:allow(no-lib-panic): documented panicking wrapper over try_path for the hot path
        self.try_path(src, dst).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The route from `src` to `dst`, or a typed [`RouteError`] when the
    /// endpoints are invalid (out of range, or `src == dst`).
    pub fn try_path(&self, src: u32, dst: u32) -> Result<&Path, RouteError> {
        self.check_endpoints(src, dst)?;
        Ok(&self.paths[(src * self.nodes + dst) as usize])
    }

    fn check_endpoints(&self, src: u32, dst: u32) -> Result<(), RouteError> {
        for node in [src, dst] {
            if node >= self.nodes {
                return Err(RouteError::NodeOutOfRange {
                    node,
                    nodes: self.nodes,
                });
            }
        }
        if src == dst {
            return Err(RouteError::SelfRoute { node: src });
        }
        Ok(())
    }

    /// Looks up the directed link between two adjacent elements, if the
    /// topology has one.
    pub fn find_link(&self, from: Element, to: Element) -> Option<LinkId> {
        self.link_index.get(&(from, to)).copied()
    }

    /// The `choice`-th deterministic route from `src` to `dst` (ECMP-style:
    /// choice 0 is the primary route returned by [`Network::path`], higher
    /// choices rotate through the topology's alternatives — see
    /// [`Topology::route_choices`]). Returns `None` if the endpoints are
    /// invalid or the requested route would traverse a link the topology
    /// does not have — the latter cannot happen for
    /// `choice < route_choices()` on a well-formed network.
    pub fn path_with_choice(&self, src: u32, dst: u32, choice: u32) -> Option<Path> {
        self.try_path_with_choice(src, dst, choice).ok()
    }

    /// The `choice`-th deterministic route, with the failure reason
    /// preserved as a typed [`RouteError`] (invalid endpoints or a hop
    /// over a link the topology lacks).
    pub fn try_path_with_choice(
        &self,
        src: u32,
        dst: u32,
        choice: u32,
    ) -> Result<Path, RouteError> {
        self.check_endpoints(src, dst)?;
        let elems = self.route_elems(src, dst, choice);
        let mut hops = Vec::with_capacity(elems.len() - 1);
        for w in 0..elems.len() - 1 {
            let link = self
                .find_link(elems[w], elems[w + 1])
                .ok_or(RouteError::MissingLink {
                    src,
                    dst,
                    choice,
                    from: elems[w],
                    to: elems[w + 1],
                })?;
            hops.push(Hop {
                link,
                to: elems[w + 1],
            });
        }
        Ok(Path { hops })
    }

    /// Whether every hop of `path` survives `failures`: no dead link, and
    /// no dead switch at either end of any hop.
    pub fn path_is_usable(&self, path: &Path, failures: &FailureSet) -> bool {
        path.hops.iter().all(|h| {
            if failures.link_dead(h.link) {
                return false;
            }
            let (from, to) = self.link_ends(h.link);
            let alive = |e: Element| match e {
                Element::Switch(s) => !failures.switch_dead(s),
                Element::Nic(_) => true,
            };
            alive(from) && alive(to)
        })
    }

    /// The first route choice from `src` to `dst` that survives `failures`
    /// — deterministic next-choice failover. With an empty failure set this
    /// is exactly [`Network::path`]. Returns `None` when every choice is
    /// severed (e.g. the destination's edge switch is dead), in which case
    /// the caller must escalate rather than route.
    pub fn failover_path(&self, src: u32, dst: u32, failures: &FailureSet) -> Option<Path> {
        for choice in 0..self.topo.route_choices() {
            if let Some(p) = self.path_with_choice(src, dst, choice) {
                if self.path_is_usable(&p, failures) {
                    return Some(p);
                }
            }
        }
        None
    }

    /// The element sequence (NIC, switches, NIC) of the `choice`-th route.
    /// Choice 0 reproduces the primary deterministic route exactly.
    fn route_elems(&self, src: u32, dst: u32, choice: u32) -> Vec<Element> {
        let mut elems: Vec<Element> = vec![Element::Nic(src)];
        let s_src = self.topo.edge_switch_of(src);
        let s_dst = self.topo.edge_switch_of(dst);
        elems.push(Element::Switch(s_src));
        if s_src != s_dst {
            match self.topo {
                Topology::LeafSpine { racks, spines, .. } => {
                    // Deterministic destination-based spine selection,
                    // rotated by the failover choice.
                    let spine = racks + (dst % spines + choice) % spines;
                    elems.push(Element::Switch(SwitchId(spine)));
                    elems.push(Element::Switch(s_dst));
                }
                Topology::HyperX { dims, .. } => {
                    let coord = |s: SwitchId| -> [u32; 3] {
                        [
                            s.0 % dims[0],
                            (s.0 / dims[0]) % dims[1],
                            s.0 / (dims[0] * dims[1]),
                        ]
                    };
                    let idx = |c: [u32; 3]| SwitchId(c[0] + dims[0] * (c[1] + dims[1] * c[2]));
                    let mut cur = coord(s_src);
                    let target = coord(s_dst);
                    // Dimension-ordered; the failover choice permutes the
                    // correction order (choice 0 = x, y, z as before).
                    let order = DIM_ORDERS[choice as usize % DIM_ORDERS.len()];
                    for d in order {
                        if cur[d] != target[d] {
                            cur[d] = target[d];
                            elems.push(Element::Switch(idx(cur)));
                        }
                    }
                }
                Topology::Dragonfly {
                    switches_per_group,
                    global_links_per_pair,
                    ..
                } => {
                    let spg = switches_per_group;
                    let (g_src, _) = (s_src.0 / spg, s_src.0 % spg);
                    let (g_dst, _) = (s_dst.0 / spg, s_dst.0 % spg);
                    if g_src == g_dst {
                        elems.push(Element::Switch(s_dst));
                    } else {
                        // Deterministic global-link choice by destination,
                        // rotated by the failover choice.
                        let k = (dst % global_links_per_pair + choice) % global_links_per_pair;
                        let gw_a = gateway(g_src, g_dst, k, spg, global_links_per_pair);
                        let gw_b = gateway(g_dst, g_src, k, spg, global_links_per_pair);
                        let gw_a = SwitchId(g_src * spg + gw_a);
                        let gw_b = SwitchId(g_dst * spg + gw_b);
                        if gw_a != s_src {
                            elems.push(Element::Switch(gw_a));
                        }
                        elems.push(Element::Switch(gw_b));
                        if gw_b != s_dst {
                            elems.push(Element::Switch(s_dst));
                        }
                    }
                }
            }
        }
        elems.push(Element::Nic(dst));
        elems
    }

    fn link(&mut self, from: Element, to: Element) -> LinkId {
        *self.link_index.entry((from, to)).or_insert_with(|| {
            let id = LinkId(self.n_links);
            self.n_links += 1;
            self.link_ends.push((from, to));
            id
        })
    }

    fn build_links(&mut self) {
        // NIC <-> edge switch links for every node.
        for n in 0..self.nodes {
            let sw = Element::Switch(self.topo.edge_switch_of(n));
            self.link(Element::Nic(n), sw);
            self.link(sw, Element::Nic(n));
        }
        match self.topo {
            Topology::LeafSpine { racks, spines, .. } => {
                for r in 0..racks {
                    for s in 0..spines {
                        let tor = Element::Switch(SwitchId(r));
                        let spine = Element::Switch(SwitchId(racks + s));
                        self.link(tor, spine);
                        self.link(spine, tor);
                    }
                }
            }
            Topology::HyperX { dims, .. } => {
                let idx = |x: u32, y: u32, z: u32| SwitchId(x + dims[0] * (y + dims[1] * z));
                for z in 0..dims[2] {
                    for y in 0..dims[1] {
                        for x in 0..dims[0] {
                            let a = Element::Switch(idx(x, y, z));
                            for x2 in 0..dims[0] {
                                if x2 != x {
                                    self.link(a, Element::Switch(idx(x2, y, z)));
                                }
                            }
                            for y2 in 0..dims[1] {
                                if y2 != y {
                                    self.link(a, Element::Switch(idx(x, y2, z)));
                                }
                            }
                            for z2 in 0..dims[2] {
                                if z2 != z {
                                    self.link(a, Element::Switch(idx(x, y, z2)));
                                }
                            }
                        }
                    }
                }
            }
            Topology::Dragonfly {
                groups,
                switches_per_group,
                global_links_per_pair,
                ..
            } => {
                let spg = switches_per_group;
                let sid = |g: u32, s: u32| SwitchId(g * spg + s);
                // Intra-group full mesh.
                for g in 0..groups {
                    for a in 0..spg {
                        for b in 0..spg {
                            if a != b {
                                self.link(Element::Switch(sid(g, a)), Element::Switch(sid(g, b)));
                            }
                        }
                    }
                }
                // Global links.
                for g in 0..groups {
                    for h in 0..groups {
                        if g == h {
                            continue;
                        }
                        for k in 0..global_links_per_pair {
                            let a = sid(g, gateway(g, h, k, spg, global_links_per_pair));
                            let b = sid(h, gateway(h, g, k, spg, global_links_per_pair));
                            self.link(Element::Switch(a), Element::Switch(b));
                        }
                    }
                }
            }
        }
    }

    fn build_paths(&mut self) -> Result<(), RouteError> {
        let nodes = self.nodes;
        let mut paths = Vec::with_capacity((nodes * nodes) as usize);
        for src in 0..nodes {
            for dst in 0..nodes {
                if src == dst {
                    paths.push(Path::default());
                    continue;
                }
                // All links should already exist from `build_links`; a
                // hole is an unroutable topology description, surfaced
                // as a typed error at construction time.
                paths.push(self.try_path_with_choice(src, dst, 0)?);
            }
        }
        self.paths = paths;
        Ok(())
    }
}

/// Which switch of group `g` holds global link `k` toward group `h`.
fn gateway(g: u32, h: u32, k: u32, spg: u32, lpp: u32) -> u32 {
    (h * lpp + k + g) % spg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_topos() -> Vec<Topology> {
        vec![
            Topology::leaf_spine_128(),
            Topology::hyperx_128(),
            Topology::dragonfly_128(),
        ]
    }

    #[test]
    fn paper_topologies_have_128_nodes() {
        for t in all_topos() {
            assert_eq!(t.nodes(), 128, "{t:?}");
        }
    }

    #[test]
    fn every_pair_has_a_valid_path() {
        for t in all_topos() {
            let net = Network::new(t);
            for src in 0..net.nodes() {
                for dst in 0..net.nodes() {
                    if src == dst {
                        continue;
                    }
                    let p = net.path(src, dst);
                    // Starts by leaving src's NIC, ends at dst's NIC.
                    let (from, _) = net.link_ends(p.hops[0].link);
                    assert_eq!(from, Element::Nic(src), "{t:?} {src}->{dst}");
                    assert_eq!(
                        p.hops.last().unwrap().to,
                        Element::Nic(dst),
                        "{t:?} {src}->{dst}"
                    );
                    // Hops are contiguous.
                    let mut cur = Element::Nic(src);
                    for h in &p.hops {
                        let (a, b) = net.link_ends(h.link);
                        assert_eq!(a, cur);
                        assert_eq!(b, h.to);
                        cur = b;
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_spine_hop_counts_match_paper_rtts() {
        let net = Network::new(Topology::leaf_spine_128());
        // Intra-rack: NIC -> ToR -> NIC (1 switch).
        assert_eq!(net.path(0, 15).switches().count(), 1);
        // Inter-rack: NIC -> ToR -> spine -> ToR -> NIC (3 switches).
        assert_eq!(net.path(0, 16).switches().count(), 3);
    }

    #[test]
    fn leaf_spine_first_and_last_switch_are_edge() {
        let net = Network::new(Topology::leaf_spine_128());
        let p = net.path(3, 77);
        let sws: Vec<_> = p.switches().collect();
        assert!(net.topology().is_edge_switch(sws[0]));
        assert!(net.topology().is_edge_switch(*sws.last().unwrap()));
        assert!(!net.topology().is_edge_switch(sws[1])); // spine
    }

    #[test]
    fn hyperx_is_dimension_ordered() {
        let net = Network::new(Topology::hyperx_128());
        // Farthest corner-to-corner: 3 dimension corrections max.
        let p = net.path(0, 127);
        assert!(p.switches().count() <= 4, "{}", p.switches().count());
    }

    #[test]
    fn hyperx_has_higher_diameter_than_leaf_spine() {
        let ls = Network::new(Topology::leaf_spine_128());
        let hx = Network::new(Topology::hyperx_128());
        let max_hops = |net: &Network| {
            let mut m = 0;
            for s in 0..net.nodes() {
                for d in 0..net.nodes() {
                    if s != d {
                        m = m.max(net.path(s, d).hops.len());
                    }
                }
            }
            m
        };
        assert!(max_hops(&hx) > max_hops(&ls));
    }

    #[test]
    fn dragonfly_minimal_routing_bounds() {
        let net = Network::new(Topology::dragonfly_128());
        for src in 0..net.nodes() {
            for dst in 0..net.nodes() {
                if src != dst {
                    // At most: src sw, gw_a, gw_b, dst sw = 4 switches.
                    assert!(net.path(src, dst).switches().count() <= 4);
                }
            }
        }
    }

    #[test]
    fn edge_switch_grouping() {
        let t = Topology::leaf_spine_128();
        assert_eq!(t.edge_switch_of(0), t.edge_switch_of(15));
        assert_ne!(t.edge_switch_of(0), t.edge_switch_of(16));
        let h = Topology::hyperx_128();
        assert_eq!(h.edge_switch_of(0), h.edge_switch_of(3));
        assert_ne!(h.edge_switch_of(0), h.edge_switch_of(4));
    }

    #[test]
    fn routes_are_deterministic() {
        let a = Network::new(Topology::dragonfly_128());
        let b = Network::new(Topology::dragonfly_128());
        assert_eq!(a.path(5, 99), b.path(5, 99));
    }

    #[test]
    #[should_panic(expected = "no path from a node to itself")]
    fn self_path_panics() {
        let net = Network::new(Topology::leaf_spine_128());
        net.path(3, 3);
    }

    #[test]
    fn choice_zero_matches_primary_route() {
        for t in all_topos() {
            let net = Network::new(t);
            for (src, dst) in [(0, 17), (5, 99), (127, 1), (3, 4)] {
                assert_eq!(
                    net.path_with_choice(src, dst, 0).unwrap(),
                    *net.path(src, dst),
                    "{t:?} {src}->{dst}"
                );
            }
        }
    }

    #[test]
    fn every_choice_yields_a_contiguous_route() {
        for t in all_topos() {
            let net = Network::new(t);
            for src in [0, 40] {
                for dst in [17, 127] {
                    if src == dst {
                        continue;
                    }
                    for c in 0..t.route_choices() {
                        let p = net
                            .path_with_choice(src, dst, c)
                            .unwrap_or_else(|| panic!("{t:?} {src}->{dst} choice {c}"));
                        let mut cur = Element::Nic(src);
                        for h in &p.hops {
                            let (a, b) = net.link_ends(h.link);
                            assert_eq!(a, cur);
                            assert_eq!(b, h.to);
                            cur = b;
                        }
                        assert_eq!(cur, Element::Nic(dst));
                    }
                }
            }
        }
    }

    #[test]
    fn failover_avoids_dead_spine_deterministically() {
        let net = Network::new(Topology::leaf_spine_128());
        // Primary route 0 -> 16 goes through spine 8 + 16 % 16 = 8.
        let primary = net.path(0, 16);
        let spine = primary.switches().nth(1).unwrap();
        assert!(!net.topology().is_edge_switch(spine));

        let mut down = FailureSet::new();
        down.fail_switch(spine);
        let p = net.failover_path(0, 16, &down).unwrap();
        assert!(p.switches().all(|s| s != spine));
        // Same hop count: leaf-spine alternatives are equal length.
        assert_eq!(p.hops.len(), primary.hops.len());
        // Deterministic: repeated queries agree.
        assert_eq!(p, net.failover_path(0, 16, &down).unwrap());
        // Repair restores the primary route.
        down.repair_switch(spine);
        assert_eq!(net.failover_path(0, 16, &down).unwrap(), *primary);
    }

    #[test]
    fn failover_avoids_dead_link() {
        for t in all_topos() {
            let net = Network::new(t);
            let primary = net.path(0, 127).clone();
            let mut down = FailureSet::new();
            // Kill the first switch-to-switch hop of the primary route.
            let cut = primary.hops[1].link;
            down.fail_link(cut);
            let p = net
                .failover_path(0, 127, &down)
                .unwrap_or_else(|| panic!("{t:?}"));
            assert!(p.hops.iter().all(|h| h.link != cut), "{t:?}");
            assert!(net.path_is_usable(&p, &down), "{t:?}");
        }
    }

    #[test]
    fn dead_edge_switch_severs_destination() {
        let net = Network::new(Topology::leaf_spine_128());
        let mut down = FailureSet::new();
        down.fail_switch(net.edge_switch_of(16));
        assert!(net.failover_path(0, 16, &down).is_none());
        // Other racks remain reachable.
        assert!(net.failover_path(0, 32, &down).is_some());
    }

    #[test]
    fn all_spines_dead_severs_inter_rack_only() {
        let net = Network::new(Topology::leaf_spine_128());
        let mut down = FailureSet::new();
        for s in 8..24 {
            down.fail_switch(SwitchId(s));
        }
        assert!(net.failover_path(0, 16, &down).is_none());
        // Intra-rack traffic never touches a spine.
        assert!(net.failover_path(0, 1, &down).is_some());
    }
}
