//! Matrix Market (`.mtx`) reading and writing.
//!
//! The paper's benchmarks come from the SuiteSparse collection, which is
//! distributed in Matrix Market format. The synthetic suite in
//! [`crate::suite`] is the default data source in this repository, but this
//! module lets anyone with the real matrices on disk run the same pipeline
//! on them (`coordinate real/integer/pattern general|symmetric` headers are
//! supported — the subset SuiteSparse uses).

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::coo::CooMatrix;

/// Error parsing a Matrix Market stream.
#[derive(Debug)]
pub struct ParseMatrixError {
    line: usize,
    message: String,
}

impl ParseMatrixError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseMatrixError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix market parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseMatrixError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Field {
    Real,
    Integer,
    Pattern,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Symmetry {
    General,
    Symmetric,
}

/// Reads a Matrix Market `coordinate` matrix into COO form.
///
/// Symmetric matrices are expanded (both `(i, j)` and `(j, i)` emitted for
/// off-diagonal entries); `pattern` matrices get value 1.0.
///
/// # Errors
///
/// Returns [`ParseMatrixError`] on malformed headers, non-coordinate
/// formats, unsupported field/symmetry kinds, out-of-range indices, or
/// entry-count mismatches.
///
/// # Example
///
/// ```
/// use netsparse_sparse::io::read_matrix_market;
/// let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 3.5\n2 1 -1\n";
/// let m = read_matrix_market(text.as_bytes())?;
/// assert_eq!(m.nnz(), 2);
/// # Ok::<(), netsparse_sparse::io::ParseMatrixError>(())
/// ```
pub fn read_matrix_market<R: BufRead>(reader: R) -> Result<CooMatrix, ParseMatrixError> {
    let mut lines = reader.lines().enumerate();

    // Header line.
    let (lineno, header) = match lines.next() {
        Some((n, Ok(l))) => (n + 1, l),
        Some((n, Err(e))) => return Err(ParseMatrixError::new(n + 1, e.to_string())),
        None => return Err(ParseMatrixError::new(0, "empty input")),
    };
    let tokens: Vec<&str> = header.split_whitespace().collect();
    if tokens.len() < 5 || !tokens[0].eq_ignore_ascii_case("%%MatrixMarket") {
        return Err(ParseMatrixError::new(
            lineno,
            "missing %%MatrixMarket header",
        ));
    }
    if !tokens[2].eq_ignore_ascii_case("coordinate") {
        return Err(ParseMatrixError::new(
            lineno,
            format!("unsupported format '{}' (only coordinate)", tokens[2]),
        ));
    }
    let field = match tokens[3].to_ascii_lowercase().as_str() {
        "real" => Field::Real,
        "integer" => Field::Integer,
        "pattern" => Field::Pattern,
        other => {
            return Err(ParseMatrixError::new(
                lineno,
                format!("unsupported field '{other}'"),
            ))
        }
    };
    let symmetry = match tokens[4].to_ascii_lowercase().as_str() {
        "general" => Symmetry::General,
        "symmetric" => Symmetry::Symmetric,
        other => {
            return Err(ParseMatrixError::new(
                lineno,
                format!("unsupported symmetry '{other}'"),
            ))
        }
    };

    // Size line (skipping comments).
    let (lineno, size_line) = loop {
        match lines.next() {
            Some((n, Ok(l))) => {
                if l.trim().is_empty() || l.starts_with('%') {
                    continue;
                }
                break (n + 1, l);
            }
            Some((n, Err(e))) => return Err(ParseMatrixError::new(n + 1, e.to_string())),
            None => return Err(ParseMatrixError::new(0, "missing size line")),
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(ParseMatrixError::new(
            lineno,
            "size line must have 3 fields",
        ));
    }
    let parse_dim = |s: &str| -> Result<u64, ParseMatrixError> {
        s.parse::<u64>()
            .map_err(|e| ParseMatrixError::new(lineno, format!("bad size field '{s}': {e}")))
    };
    let nrows = parse_dim(dims[0])?;
    let ncols = parse_dim(dims[1])?;
    let nnz = parse_dim(dims[2])? as usize;
    if nrows > u32::MAX as u64 || ncols > u32::MAX as u64 {
        return Err(ParseMatrixError::new(
            lineno,
            "matrix dimensions exceed u32",
        ));
    }

    let mut m = CooMatrix::with_capacity(nrows as u32, ncols as u32, nnz);
    let mut seen = 0usize;
    for (n, line) in lines {
        let line = line.map_err(|e| ParseMatrixError::new(n + 1, e.to_string()))?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let (i, j) = match (it.next(), it.next()) {
            (Some(a), Some(b)) => (a, b),
            _ => return Err(ParseMatrixError::new(n + 1, "entry needs row and col")),
        };
        let i: u64 = i
            .parse()
            .map_err(|e| ParseMatrixError::new(n + 1, format!("bad row '{i}': {e}")))?;
        let j: u64 = j
            .parse()
            .map_err(|e| ParseMatrixError::new(n + 1, format!("bad col '{j}': {e}")))?;
        if i == 0 || j == 0 || i > nrows || j > ncols {
            return Err(ParseMatrixError::new(
                n + 1,
                format!("entry ({i}, {j}) outside {nrows}x{ncols} (1-based)"),
            ));
        }
        let v = match field {
            Field::Pattern => 1.0f32,
            Field::Real | Field::Integer => match it.next() {
                Some(s) => s
                    .parse::<f32>()
                    .map_err(|e| ParseMatrixError::new(n + 1, format!("bad value '{s}': {e}")))?,
                None => return Err(ParseMatrixError::new(n + 1, "entry missing value")),
            },
        };
        let (r, c) = ((i - 1) as u32, (j - 1) as u32);
        m.push(r, c, v);
        if symmetry == Symmetry::Symmetric && r != c {
            m.push(c, r, v);
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(ParseMatrixError::new(
            0,
            format!("expected {nnz} entries, found {seen}"),
        ));
    }
    Ok(m)
}

/// Writes a COO matrix as `coordinate real general` Matrix Market text.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn write_matrix_market<W: Write>(m: &CooMatrix, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "%%MatrixMarket matrix coordinate real general")?;
    writeln!(writer, "{} {} {}", m.nrows(), m.ncols(), m.nnz())?;
    for (i, j, v) in m.iter() {
        writeln!(writer, "{} {} {}", i + 1, j + 1, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_general_real() {
        let mut m = CooMatrix::new(3, 2);
        m.extend([(0, 1, 2.5), (2, 0, -1.0)]);
        let mut buf = Vec::new();
        write_matrix_market(&m, &mut buf).unwrap();
        let back = read_matrix_market(&buf[..]).unwrap();
        let a: Vec<_> = m.iter().collect();
        let b: Vec<_> = back.iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn pattern_matrices_get_unit_values() {
        let text = "%%MatrixMarket matrix coordinate pattern general\n2 2 1\n2 2\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(m.iter().next(), Some((1, 1, 1.0)));
    }

    #[test]
    fn symmetric_matrices_are_expanded() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n3 3 2\n2 1 5\n3 3 1\n";
        let m = read_matrix_market(text.as_bytes()).unwrap();
        let entries: Vec<_> = m.iter().collect();
        assert!(entries.contains(&(1, 0, 5.0)));
        assert!(entries.contains(&(0, 1, 5.0)));
        assert_eq!(entries.len(), 3); // diagonal not duplicated
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "%%MatrixMarket matrix coordinate real general\n% a comment\n\n2 2 1\n1 1 1.0\n";
        assert_eq!(read_matrix_market(text.as_bytes()).unwrap().nnz(), 1);
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n5 5 1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn wrong_count_is_an_error() {
        let text = "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n";
        assert!(read_matrix_market(text.as_bytes()).is_err());
    }

    #[test]
    fn rejects_array_format() {
        let text = "%%MatrixMarket matrix array real general\n2 2\n1.0\n";
        let err = read_matrix_market(text.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("coordinate"));
    }
}
