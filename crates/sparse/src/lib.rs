//! Sparse-matrix substrate for the NetSparse reproduction.
//!
//! The paper (NetSparse, MICRO 2025) evaluates distributed SpMM / SpMV /
//! SDDMM over five large SuiteSparse matrices partitioned 1-D across a
//! 128-node cluster. This crate provides everything on the *data* side of
//! that evaluation:
//!
//! - [`coo`]/[`csr`] — coordinate and compressed-sparse-row storage with
//!   validated invariants,
//! - [`io`] — Matrix Market reading/writing so real SuiteSparse matrices can
//!   be dropped in when available,
//! - [`partition`] — 1-D block partitioning and ownership mapping,
//! - [`kernels`] — reference (single-node, dense-property) SpMM, SpMV and
//!   SDDMM used for functional validation,
//! - [`gen`] — structural synthetic generators (banded, geometric/road,
//!   power-law community graphs),
//! - [`suite`] — calibrated stand-ins for the paper's five benchmark
//!   matrices (arabic, europe, queen, stokes, uk), reproducing each matrix's
//!   *communication signature* at configurable scale,
//! - [`comm`] — extraction of per-node communication workloads and the
//!   analytic statistics behind the paper's Tables 1, 3 and 4,
//! - [`analysis`] — structural characterization (degree distributions,
//!   bandwidth, imbalance) of matrices and workloads.
//!
//! # Example: from matrix to communication pattern
//!
//! ```
//! use netsparse_sparse::gen::banded;
//! use netsparse_sparse::partition::Partition1D;
//! use netsparse_sparse::comm::CommWorkload;
//!
//! let m = banded(1_024, 8, 48, 7).to_csr();
//! let part = Partition1D::even(m.ncols() as u32, 8);
//! let wl = CommWorkload::from_csr(&m, &part);
//! // Every column index a node scans is either local or owned remotely.
//! let stats = wl.pattern_stats();
//! assert!(stats.total_remote_refs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod comm;
pub mod coo;
pub mod csr;
pub mod gen;
pub mod io;
pub mod kernels;
pub mod partition;
pub mod suite;

pub use comm::CommWorkload;
pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use partition::Partition1D;
pub use suite::SuiteMatrix;
