//! 1-D partitioning of matrices and property arrays across cluster nodes.
//!
//! The paper partitions the sparse matrix, the input property array and the
//! output property array 1-D across nodes (§2.1): node `p` owns a contiguous
//! block of rows (and the same block of input-property indices). Writes are
//! then always local and the only communication is reads of remote input
//! properties.

use serde::{Deserialize, Serialize};

/// A 1-D block partition of `[0, n)` into contiguous per-node ranges.
///
/// # Example
///
/// ```
/// use netsparse_sparse::Partition1D;
/// let p = Partition1D::even(10, 3);
/// assert_eq!(p.owner(0), 0);
/// assert_eq!(p.owner(9), 2);
/// assert_eq!(p.range(0), 0..4);   // ceil-ish split: 4,3,3
/// assert_eq!(p.range(2), 7..10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition1D {
    n: u32,
    bounds: Vec<u32>, // len = parts + 1, bounds[0] = 0, bounds[parts] = n
}

impl Partition1D {
    /// Splits `[0, n)` into `parts` nearly equal contiguous ranges (the
    /// first `n % parts` ranges get one extra element).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn even(n: u32, parts: u32) -> Self {
        assert!(parts > 0, "partition must have at least one part");
        let base = n / parts;
        let extra = n % parts;
        let mut bounds = Vec::with_capacity(parts as usize + 1);
        let mut acc = 0u32;
        bounds.push(0);
        for p in 0..parts {
            acc += base + u32::from(p < extra);
            bounds.push(acc);
        }
        Partition1D { n, bounds }
    }

    /// Builds a partition from explicit boundaries.
    ///
    /// `bounds` must start at 0, end at `n`, and be nondecreasing.
    ///
    /// # Panics
    ///
    /// Panics if the boundary invariants are violated.
    pub fn from_bounds(n: u32, bounds: Vec<u32>) -> Self {
        assert!(bounds.len() >= 2, "need at least one part");
        assert_eq!(bounds[0], 0, "bounds must start at 0");
        assert_eq!(*bounds.last().expect("nonempty"), n, "bounds must end at n");
        for w in bounds.windows(2) {
            assert!(w[0] <= w[1], "bounds must be nondecreasing");
        }
        Partition1D { n, bounds }
    }

    /// Splits `[0, n)` so each part holds (approximately) equal *weight*,
    /// where `weight[i]` is the cost of element `i` — used for nnz-balanced
    /// row partitioning.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != n` or `parts == 0`.
    pub fn balanced(weights: &[u64], parts: u32) -> Self {
        assert!(parts > 0, "partition must have at least one part");
        let n = weights.len() as u32;
        let total: u64 = weights.iter().sum();
        let mut bounds = Vec::with_capacity(parts as usize + 1);
        bounds.push(0u32);
        let mut acc = 0u64;
        let mut next_target = 1u64;
        for (i, &w) in weights.iter().enumerate() {
            acc += w;
            // Close parts whose cumulative share has been reached.
            while bounds.len() <= parts as usize
                && acc * parts as u64 >= next_target * total
                && total > 0
            {
                if bounds.len() < parts as usize {
                    bounds.push(i as u32 + 1);
                }
                next_target += 1;
            }
        }
        while bounds.len() < parts as usize {
            bounds.push(n);
        }
        bounds.push(n);
        Partition1D { n, bounds }
    }

    /// Total number of elements partitioned.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the partitioned range is empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of parts (nodes).
    pub fn parts(&self) -> u32 {
        (self.bounds.len() - 1) as u32
    }

    /// The node owning element `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= n`.
    #[inline]
    pub fn owner(&self, idx: u32) -> u32 {
        assert!(idx < self.n, "index {idx} out of partitioned range");
        // One binary search over bounds: the part whose range contains idx
        // is the one before the first bound strictly greater than it
        // (empty parts share a bound and are skipped uniformly).
        let i = self.bounds.partition_point(|&b| b <= idx);
        (i - 1) as u32
    }

    /// The half-open element range owned by `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of bounds.
    #[inline]
    pub fn range(&self, part: u32) -> std::ops::Range<u32> {
        self.bounds[part as usize]..self.bounds[part as usize + 1]
    }

    /// Number of elements owned by `part`.
    pub fn part_len(&self, part: u32) -> u32 {
        let r = self.range(part);
        r.end - r.start
    }

    /// Whether `idx` is owned by `part` (i.e. a *local* access from `part`).
    #[inline]
    pub fn is_local(&self, part: u32, idx: u32) -> bool {
        let r = self.range(part);
        r.contains(&idx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_partition_covers_everything_once() {
        let p = Partition1D::even(100, 7);
        assert_eq!(p.parts(), 7);
        let total: u32 = (0..7).map(|i| p.part_len(i)).sum();
        assert_eq!(total, 100);
        for idx in 0..100 {
            let o = p.owner(idx);
            assert!(p.range(o).contains(&idx));
        }
    }

    #[test]
    fn even_partition_sizes_differ_by_at_most_one() {
        let p = Partition1D::even(100, 7);
        let sizes: Vec<u32> = (0..7).map(|i| p.part_len(i)).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn owner_boundaries() {
        let p = Partition1D::even(8, 4);
        assert_eq!(p.owner(0), 0);
        assert_eq!(p.owner(1), 0);
        assert_eq!(p.owner(2), 1);
        assert_eq!(p.owner(7), 3);
    }

    #[test]
    fn is_local_matches_owner() {
        let p = Partition1D::even(64, 8);
        for idx in 0..64 {
            let o = p.owner(idx);
            for part in 0..8 {
                assert_eq!(p.is_local(part, idx), part == o);
            }
        }
    }

    #[test]
    fn balanced_partition_equalizes_weight() {
        // Heavy head: first 10 elements carry weight 100 each, rest weight 1.
        let mut w = vec![100u64; 10];
        w.extend(std::iter::repeat_n(1u64, 90));
        let p = Partition1D::balanced(&w, 4);
        assert_eq!(p.parts(), 4);
        let weight_of = |part: u32| -> u64 { p.range(part).map(|i| w[i as usize]).sum() };
        let total: u64 = w.iter().sum();
        for part in 0..4 {
            let share = weight_of(part) as f64 / total as f64;
            assert!(share < 0.5, "part {part} holds {share} of the weight");
        }
        // All elements covered.
        let covered: u32 = (0..4).map(|i| p.part_len(i)).sum();
        assert_eq!(covered, 100);
    }

    #[test]
    fn from_bounds_roundtrip() {
        let p = Partition1D::from_bounds(10, vec![0, 2, 2, 10]);
        assert_eq!(p.part_len(1), 0);
        assert_eq!(p.owner(2), 2);
        assert_eq!(p.owner(1), 0);
    }

    #[test]
    #[should_panic(expected = "out of partitioned range")]
    fn owner_out_of_range_panics() {
        Partition1D::even(4, 2).owner(4);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        Partition1D::even(4, 0);
    }
}
