//! Communication workloads and sparsity-pattern statistics.
//!
//! A [`CommWorkload`] is the communication-side view of a distributed sparse
//! kernel (§2.1–2.3 of the paper): for every node, the ordered stream of
//! column indices (*idxs*) its nonzero scan touches. Each remote idx is a
//! potential Property Request; the stream order determines filtering,
//! coalescing, concatenation and caching behaviour.
//!
//! [`PatternStats`] computes the paper's motivational statistics: the
//! useful-to-redundant transfer ratios of the SU and SA approaches
//! (Table 1), temporal remote-destination locality (Table 4), and
//! intra-rack sharing potential (§3).

use std::collections::{HashMap, HashSet};

use crate::csr::CsrMatrix;
use crate::partition::Partition1D;

/// Per-node communication view of a distributed sparse kernel.
///
/// # Example
///
/// ```
/// use netsparse_sparse::{gen, CommWorkload, Partition1D};
/// let m = gen::banded(512, 4, 32, 1).to_csr();
/// let part = Partition1D::even(512, 4);
/// let wl = CommWorkload::from_csr(&m, &part);
/// assert_eq!(wl.nodes(), 4);
/// let stats = wl.pattern_stats();
/// assert!(stats.total_unique_remote() <= stats.total_remote_refs());
/// ```
#[derive(Debug, Clone)]
pub struct CommWorkload {
    partition: Partition1D,
    rows_per_node: Vec<u32>,
    streams: Vec<Vec<u32>>,
}

impl CommWorkload {
    /// Builds a workload from per-node idx streams.
    ///
    /// `partition` describes column (input property) ownership;
    /// `rows_per_node` the output rows each node owns (used by compute
    /// models); `streams[p]` the ordered column idxs node `p` scans.
    ///
    /// # Panics
    ///
    /// Panics if `streams`/`rows_per_node` lengths do not match the
    /// partition's part count, or any idx is out of range.
    pub fn from_streams(
        partition: Partition1D,
        rows_per_node: Vec<u32>,
        streams: Vec<Vec<u32>>,
    ) -> Self {
        let nodes = partition.parts() as usize;
        assert_eq!(streams.len(), nodes, "one stream per node required");
        assert_eq!(rows_per_node.len(), nodes, "one row count per node");
        let n = partition.len();
        for (p, s) in streams.iter().enumerate() {
            for &idx in s {
                assert!(idx < n, "node {p} references column {idx} >= {n}");
            }
        }
        CommWorkload {
            partition,
            rows_per_node,
            streams,
        }
    }

    /// Extracts the workload of a real matrix under a 1-D partition: node
    /// `p` owns the rows in `partition.range(p)` and scans their nonzeros
    /// in row-major order.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not span the matrix's rows, or the
    /// matrix is not square-partitionable (`ncols` must equal the partition
    /// length so column ownership is defined).
    pub fn from_csr(m: &CsrMatrix, partition: &Partition1D) -> Self {
        assert_eq!(
            partition.len(),
            m.ncols(),
            "partition must span the column space"
        );
        assert_eq!(
            m.nrows(),
            m.ncols(),
            "1-D partitioning here assumes a square matrix"
        );
        let nodes = partition.parts();
        let mut streams = Vec::with_capacity(nodes as usize);
        let mut rows_per_node = Vec::with_capacity(nodes as usize);
        for p in 0..nodes {
            let range = partition.range(p);
            rows_per_node.push(range.end - range.start);
            let mut s = Vec::new();
            for r in range {
                s.extend(m.row(r).map(|(c, _)| c));
            }
            streams.push(s);
        }
        CommWorkload::from_streams(partition.clone(), rows_per_node, streams)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.partition.parts()
    }

    /// Number of columns (input properties) in the global array.
    pub fn n_cols(&self) -> u32 {
        self.partition.len()
    }

    /// The column-ownership partition.
    pub fn partition(&self) -> &Partition1D {
        &self.partition
    }

    /// Output rows owned by `node`.
    pub fn rows_of(&self, node: u32) -> u32 {
        self.rows_per_node[node as usize]
    }

    /// The ordered idx stream scanned by `node`.
    pub fn stream(&self, node: u32) -> &[u32] {
        &self.streams[node as usize]
    }

    /// Total nonzeros across all nodes.
    pub fn total_nnz(&self) -> u64 {
        self.streams.iter().map(|s| s.len() as u64).sum()
    }

    /// Owner node of a column idx.
    #[inline]
    pub fn owner(&self, idx: u32) -> u32 {
        self.partition.owner(idx)
    }

    /// Materializes the workload as a concrete sparse matrix, assigning the
    /// nonzeros of each node's stream to that node's row range in order
    /// (row-major within the node). Values are deterministic synthetic
    /// data. Duplicate coordinates are preserved (a later `to_csr` merges
    /// them).
    pub fn to_coo(&self) -> crate::coo::CooMatrix {
        let n = self.n_cols();
        let mut m = crate::coo::CooMatrix::with_capacity(n, n, self.total_nnz() as usize);
        for p in 0..self.nodes() {
            let range = self.partition.range(p);
            let rows = (range.end - range.start).max(1) as u64;
            let len = self.stream(p).len().max(1) as u64;
            for (k, &idx) in self.stream(p).iter().enumerate() {
                let row = range.start + ((k as u64 * rows) / len) as u32;
                let row = row.min(range.end.saturating_sub(1)).max(range.start);
                m.push(row, idx, crate::kernels::synthetic_property(idx ^ row, 0));
            }
        }
        m
    }

    /// Computes SU/SA transfer statistics (paper Table 1 and §3).
    pub fn pattern_stats(&self) -> PatternStats {
        let nodes = self.nodes();
        let n_cols = self.n_cols();
        let mut per_node = Vec::with_capacity(nodes as usize);
        for p in 0..nodes {
            let mut unique: HashSet<u32> = HashSet::new();
            let mut remote_refs = 0u64;
            for &idx in self.stream(p) {
                if !self.partition.is_local(p, idx) {
                    remote_refs += 1;
                    unique.insert(idx);
                }
            }
            per_node.push(NodePattern {
                nnz: self.stream(p).len() as u64,
                remote_refs,
                unique_remote: unique.len() as u64,
                su_received: (n_cols - self.partition.part_len(p)) as u64,
            });
        }
        PatternStats {
            nodes,
            n_cols,
            per_node,
        }
    }

    /// Average number of unique destination nodes within non-overlapping
    /// windows of `window` consecutive remote PRs (paper Table 4, window
    /// 64). Returns 0 if no node issues a full window of remote PRs.
    pub fn dest_locality(&self, window: usize) -> f64 {
        assert!(window > 0, "window must be nonzero");
        let mut total_unique = 0u64;
        let mut windows = 0u64;
        let mut dests: Vec<u32> = Vec::with_capacity(window);
        for p in 0..self.nodes() {
            dests.clear();
            for &idx in self.stream(p) {
                if !self.partition.is_local(p, idx) {
                    dests.push(self.owner(idx));
                    if dests.len() == window {
                        let mut uniq = dests.clone();
                        uniq.sort_unstable();
                        uniq.dedup();
                        total_unique += uniq.len() as u64;
                        windows += 1;
                        dests.clear();
                    }
                }
            }
        }
        if windows == 0 {
            0.0
        } else {
            total_unique as f64 / windows as f64
        }
    }

    /// Fraction of unique `(node, remote idx)` property needs that are
    /// shared by at least two nodes of the same rack, computed over
    /// *inter-rack* properties only (§3: "85% of the PRs are for properties
    /// useful to more than one node in the same group").
    pub fn rack_sharing(&self, rack_size: u32) -> f64 {
        assert!(rack_size > 0, "rack size must be nonzero");
        // (rack, idx) -> number of distinct nodes in that rack needing idx.
        let mut group_counts: HashMap<(u32, u32), u32> = HashMap::new();
        for p in 0..self.nodes() {
            let rack = p / rack_size;
            let mut seen: HashSet<u32> = HashSet::new();
            for &idx in self.stream(p) {
                let owner = self.owner(idx);
                if owner != p && owner / rack_size != rack && seen.insert(idx) {
                    *group_counts.entry((rack, idx)).or_insert(0) += 1;
                }
            }
        }
        let total: u64 = group_counts.values().map(|&c| c as u64).sum();
        if total == 0 {
            return 0.0;
        }
        let shared: u64 = group_counts
            .values()
            .filter(|&&c| c >= 2)
            .map(|&c| c as u64)
            .sum();
        shared as f64 / total as f64
    }
}

/// Per-node transfer counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodePattern {
    /// Nonzeros scanned by the node.
    pub nnz: u64,
    /// References to remotely owned columns (= SA transfers, unfiltered).
    pub remote_refs: u64,
    /// Distinct remotely owned columns referenced (= useful transfers).
    pub unique_remote: u64,
    /// Properties received under the SU (dense all-to-all) schedule.
    pub su_received: u64,
}

/// Aggregate SU/SA transfer statistics for a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternStats {
    /// Number of nodes.
    pub nodes: u32,
    /// Number of columns in the input property array.
    pub n_cols: u32,
    /// Per-node breakdown.
    pub per_node: Vec<NodePattern>,
}

impl PatternStats {
    /// Total nonzeros.
    pub fn total_nnz(&self) -> u64 {
        self.per_node.iter().map(|n| n.nnz).sum()
    }

    /// Total SA transfers (one per remote nonzero reference).
    pub fn total_remote_refs(&self) -> u64 {
        self.per_node.iter().map(|n| n.remote_refs).sum()
    }

    /// Total useful transfers (unique per node).
    pub fn total_unique_remote(&self) -> u64 {
        self.per_node.iter().map(|n| n.unique_remote).sum()
    }

    /// Total property transfers under the SU schedule.
    pub fn total_su_transfers(&self) -> u64 {
        self.per_node.iter().map(|n| n.su_received).sum()
    }

    /// Redundant SU transfers per useful transfer (Table 1, row "SU").
    pub fn su_redundancy(&self) -> f64 {
        let useful = self.total_unique_remote();
        if useful == 0 {
            return 0.0;
        }
        (self.total_su_transfers() - useful) as f64 / useful as f64
    }

    /// Redundant SA transfers per useful transfer (Table 1, row "SA").
    pub fn sa_redundancy(&self) -> f64 {
        let useful = self.total_unique_remote();
        if useful == 0 {
            return 0.0;
        }
        (self.total_remote_refs() - useful) as f64 / useful as f64
    }

    /// Fraction of nonzero references that touch remote columns.
    pub fn remote_fraction(&self) -> f64 {
        let nnz = self.total_nnz();
        if nnz == 0 {
            0.0
        } else {
            self.total_remote_refs() as f64 / nnz as f64
        }
    }

    /// Average reuse of each unique remote column per node
    /// (`remote_refs / unique_remote`).
    pub fn reuse(&self) -> f64 {
        let u = self.total_unique_remote();
        if u == 0 {
            0.0
        } else {
            self.total_remote_refs() as f64 / u as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Build the paper's Figure 1 example: 8x8 matrix, 4 nodes, nonzeros
    /// a..g with the depicted coordinates.
    fn figure1() -> CommWorkload {
        // (row, col): a=(0,4), b=(1,1), c=(2,6), d=(4,3), e=(5,3),
        // f=(6,0), g=(7,7)
        let mut m = CooMatrix::new(8, 8);
        for (r, c) in [(0, 4), (1, 1), (2, 6), (4, 3), (5, 3), (6, 0), (7, 7)] {
            m.push(r, c, 1.0);
        }
        let part = Partition1D::even(8, 4);
        CommWorkload::from_csr(&m.to_csr(), &part)
    }

    #[test]
    fn figure1_remote_transfers_match_paper() {
        let wl = figure1();
        let stats = wl.pattern_stats();
        // Paper: b and g are local; a, c, d, e, f are remote refs; d and e
        // share idx 3, so useful (unique per node) transfers are 4.
        assert_eq!(stats.total_remote_refs(), 5);
        assert_eq!(stats.total_unique_remote(), 4);
        // SU: every node receives all 6 remote properties regardless.
        assert_eq!(stats.total_su_transfers(), 4 * 6);
        assert!((stats.sa_redundancy() - 0.25).abs() < 1e-12);
        assert!((stats.su_redundancy() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn from_streams_validates_bounds() {
        let part = Partition1D::even(4, 2);
        let result = std::panic::catch_unwind(|| {
            CommWorkload::from_streams(part, vec![2, 2], vec![vec![0], vec![9]])
        });
        assert!(result.is_err());
    }

    #[test]
    fn dest_locality_of_single_destination_stream() {
        let part = Partition1D::even(64, 4);
        // Node 0 references only node 1's columns.
        let stream0: Vec<u32> = (0..128).map(|i| 16 + (i % 16)).collect();
        let wl =
            CommWorkload::from_streams(part, vec![16; 4], vec![stream0, vec![], vec![], vec![]]);
        assert!((wl.dest_locality(64) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dest_locality_counts_distinct_owners() {
        let part = Partition1D::even(64, 4);
        // Node 0 alternates between node 1, 2 and 3 columns.
        let stream0: Vec<u32> = (0..192)
            .map(|i| match i % 3 {
                0 => 16,
                1 => 32,
                _ => 48,
            })
            .collect();
        let wl =
            CommWorkload::from_streams(part, vec![16; 4], vec![stream0, vec![], vec![], vec![]]);
        assert!((wl.dest_locality(64) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn rack_sharing_detects_shared_needs() {
        let part = Partition1D::even(64, 4);
        // Rack size 2: nodes {0,1} and {2,3}. Nodes 0 and 1 both need
        // column 32 (owned by node 2, other rack) -> shared. Node 0 also
        // needs column 48 alone -> unshared.
        let wl = CommWorkload::from_streams(
            part,
            vec![16; 4],
            vec![vec![32, 48], vec![32], vec![], vec![]],
        );
        let s = wl.rack_sharing(2);
        // pairs: (rack0, 32) x2 nodes -> 2 shared pairs; (rack0, 48) -> 1.
        assert!((s - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rack_sharing_ignores_intra_rack_properties() {
        let part = Partition1D::even(64, 4);
        // Rack size 2: node 0 referencing node 1's columns is intra-rack.
        let wl = CommWorkload::from_streams(
            part,
            vec![16; 4],
            vec![vec![16, 17], vec![], vec![], vec![]],
        );
        assert_eq!(wl.rack_sharing(2), 0.0);
    }

    #[test]
    fn reuse_and_remote_fraction() {
        let wl = figure1();
        let s = wl.pattern_stats();
        assert!((s.remote_fraction() - 5.0 / 7.0).abs() < 1e-12);
        assert!((s.reuse() - 1.25).abs() < 1e-12);
    }
}
