//! Reference implementations of the paper's sparse kernels.
//!
//! These are the *functional* (single-address-space) versions of SpMV, SpMM
//! and SDDMM (§2.1). They define the ground truth that the distributed
//! simulation's gathered property arrays are validated against, and they
//! drive the compute-side roofline models in `netsparse-accel`.
//!
//! Dense operands use row-major layout: a property array with `n` properties
//! of `K` elements is a `Vec<f32>` of length `n * K`, with property `i` at
//! `[i*K .. (i+1)*K]` — matching the paper's tall-skinny dense matrices.

use crate::csr::CsrMatrix;

/// Sparse matrix–vector multiply: `y = A * x`.
///
/// Equivalent to [`spmm`] with `K = 1`.
///
/// # Panics
///
/// Panics if `x.len() != a.ncols()`.
///
/// # Example
///
/// ```
/// use netsparse_sparse::{CooMatrix, kernels::spmv};
/// let mut m = CooMatrix::new(2, 2);
/// m.push(0, 0, 2.0);
/// m.push(1, 0, 3.0);
/// let y = spmv(&m.to_csr(), &[10.0, 0.0]);
/// assert_eq!(y, vec![20.0, 30.0]);
/// ```
pub fn spmv(a: &CsrMatrix, x: &[f32]) -> Vec<f32> {
    assert_eq!(
        x.len(),
        a.ncols() as usize,
        "input vector length must equal ncols"
    );
    let mut y = vec![0.0f32; a.nrows() as usize];
    for (i, out) in y.iter_mut().enumerate() {
        let mut acc = 0.0f32;
        for (c, v) in a.row(i as u32) {
            acc += v * x[c as usize];
        }
        *out = acc;
    }
    y
}

/// Sparse matrix × tall-skinny dense matrix: `C = A * B`.
///
/// `b` holds `a.ncols()` input properties of `k` elements each (row-major);
/// the result holds `a.nrows()` output properties of `k` elements.
///
/// # Panics
///
/// Panics if `b.len() != a.ncols() * k` or `k == 0`.
pub fn spmm(a: &CsrMatrix, b: &[f32], k: usize) -> Vec<f32> {
    assert!(k > 0, "property size k must be nonzero");
    assert_eq!(
        b.len(),
        a.ncols() as usize * k,
        "dense operand must be ncols x k"
    );
    let mut c = vec![0.0f32; a.nrows() as usize * k];
    for i in 0..a.nrows() {
        let out = &mut c[i as usize * k..(i as usize + 1) * k];
        for (col, v) in a.row(i) {
            let prop = &b[col as usize * k..(col as usize + 1) * k];
            for (o, p) in out.iter_mut().zip(prop) {
                *o += v * p;
            }
        }
    }
    c
}

/// Sampled dense–dense matrix multiply: for each nonzero `(i, j)` of the
/// sampling matrix `s`, computes `dot(a_row[i], b_row[j]) * s[i][j]` and
/// returns the results in the nonzero scan order of `s`.
///
/// `a` holds `s.nrows()` properties of `k` elements; `b` holds `s.ncols()`
/// properties of `k` elements (both row-major).
///
/// # Panics
///
/// Panics if operand shapes do not match `s` and `k`, or `k == 0`.
pub fn sddmm(s: &CsrMatrix, a: &[f32], b: &[f32], k: usize) -> Vec<f32> {
    assert!(k > 0, "property size k must be nonzero");
    assert_eq!(a.len(), s.nrows() as usize * k, "A must be nrows x k");
    assert_eq!(b.len(), s.ncols() as usize * k, "B must be ncols x k");
    let mut out = Vec::with_capacity(s.nnz());
    for (i, j, v) in s.iter() {
        let ai = &a[i as usize * k..(i as usize + 1) * k];
        let bj = &b[j as usize * k..(j as usize + 1) * k];
        let dot: f32 = ai.iter().zip(bj).map(|(x, y)| x * y).sum();
        out.push(dot * v);
    }
    out
}

/// Deterministic synthetic property value: element `e` of property `idx`.
///
/// The distributed simulation and the reference kernels both source their
/// input properties from this function, so gathered buffers can be checked
/// element-by-element without shipping real data around.
#[inline]
pub fn synthetic_property(idx: u32, e: usize) -> f32 {
    // A cheap integer hash keeps values varied but exactly reproducible.
    let h = (idx as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(e as u64);
    let h = (h ^ (h >> 31)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    // Map to [-1, 1) to keep kernel accumulations well-conditioned.
    ((h >> 40) as f32 / (1u64 << 23) as f32) - 1.0
}

/// Fills a row-major property array of `n` properties × `k` elements with
/// [`synthetic_property`] values.
pub fn synthetic_properties(n: u32, k: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; n as usize * k];
    for idx in 0..n {
        for e in 0..k {
            out[idx as usize * k + e] = synthetic_property(idx, e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn small() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        let mut m = CooMatrix::new(2, 3);
        m.extend([(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        m.to_csr()
    }

    #[test]
    fn spmv_matches_dense_math() {
        let y = spmv(&small(), &[1.0, 2.0, 3.0]);
        assert_eq!(y, vec![7.0, 6.0]);
    }

    #[test]
    fn spmm_with_k1_equals_spmv() {
        let m = small();
        let x = [0.5, -1.0, 2.0];
        let y1 = spmv(&m, &x);
        let y2 = spmm(&m, &x, 1);
        assert_eq!(y1, y2);
    }

    #[test]
    fn spmm_k2() {
        let m = small();
        // properties: col0 = [1,10], col1 = [2,20], col2 = [3,30]
        let b = [1.0, 10.0, 2.0, 20.0, 3.0, 30.0];
        let c = spmm(&m, &b, 2);
        // row0 = 1*[1,10] + 2*[3,30] = [7, 70]; row1 = 3*[2,20] = [6,60]
        assert_eq!(c, vec![7.0, 70.0, 6.0, 60.0]);
    }

    #[test]
    fn sddmm_computes_sampled_dots() {
        let m = small();
        let a = [1.0, 0.0, 0.0, 1.0]; // 2 x 2
        let b = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3 x 2
        let out = sddmm(&m, &a, &b, 2);
        // nnz order: (0,0), (0,2), (1,1)
        // (0,0): dot([1,0],[1,2]) * 1 = 1
        // (0,2): dot([1,0],[5,6]) * 2 = 10
        // (1,1): dot([0,1],[3,4]) * 3 = 12
        assert_eq!(out, vec![1.0, 10.0, 12.0]);
    }

    #[test]
    fn synthetic_properties_are_deterministic_and_bounded() {
        let a = synthetic_properties(100, 4);
        let b = synthetic_properties(100, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|v| (-1.0..1.0).contains(v)));
        // Not all identical.
        assert!(a.iter().any(|&v| v != a[0]));
    }

    #[test]
    #[should_panic(expected = "ncols")]
    fn spmv_shape_mismatch_panics() {
        spmv(&small(), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn spmm_zero_k_panics() {
        spmm(&small(), &[], 0);
    }
}
