//! Compressed-sparse-row matrices: the compute/scan format.

use std::fmt;

/// A sparse matrix in CSR form.
///
/// The nonzeros of row `i` live at positions `row_ptr[i]..row_ptr[i+1]` of
/// the parallel `col_idx`/`vals` arrays, with column indices sorted within
/// each row. This is the format the paper's kernels scan: for each nonzero,
/// its column index (the paper's *idx*) names the input property to gather.
///
/// # Example
///
/// ```
/// use netsparse_sparse::{CooMatrix, CsrMatrix};
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 2, 1.5);
/// coo.push(1, 0, -2.0);
/// let m: CsrMatrix = coo.to_csr();
/// let row0: Vec<_> = m.row(0).collect();
/// assert_eq!(row0, vec![(2, 1.5)]);
/// assert_eq!(m.nnz(), 2);
/// ```
#[derive(Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: u32,
    ncols: u32,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f32>,
}

impl fmt::Debug for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CsrMatrix")
            .field("nrows", &self.nrows)
            .field("ncols", &self.ncols)
            .field("nnz", &self.nnz())
            .finish()
    }
}

impl CsrMatrix {
    /// Assembles a CSR matrix from raw parts, validating all invariants.
    ///
    /// # Panics
    ///
    /// Panics if `row_ptr` has the wrong length, is not monotone, does not
    /// end at `col_idx.len()`, if `col_idx` and `vals` differ in length, if
    /// any column index is out of bounds, or if columns within a row are not
    /// strictly increasing.
    pub fn from_parts(
        nrows: u32,
        ncols: u32,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        vals: Vec<f32>,
    ) -> Self {
        assert_eq!(
            row_ptr.len(),
            nrows as usize + 1,
            "row_ptr length must be nrows + 1"
        );
        assert_eq!(
            col_idx.len(),
            vals.len(),
            "col_idx and vals must be parallel arrays"
        );
        assert_eq!(
            *row_ptr.last().expect("non-empty row_ptr"),
            col_idx.len(),
            "row_ptr must end at nnz"
        );
        for w in row_ptr.windows(2) {
            assert!(w[0] <= w[1], "row_ptr must be nondecreasing");
        }
        for i in 0..nrows as usize {
            let row = &col_idx[row_ptr[i]..row_ptr[i + 1]];
            for pair in row.windows(2) {
                assert!(
                    pair[0] < pair[1],
                    "columns within row {i} must be strictly increasing"
                );
            }
            if let Some(&last) = row.last() {
                assert!(last < ncols, "column index {last} out of bounds in row {i}");
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// The row-pointer array (`nrows + 1` entries).
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// All column indices, row-major.
    pub fn col_idx(&self) -> &[u32] {
        &self.col_idx
    }

    /// All values, parallel to [`CsrMatrix::col_idx`].
    pub fn values(&self) -> &[f32] {
        &self.vals
    }

    /// Number of nonzeros in row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_nnz(&self, i: u32) -> usize {
        self.row_ptr[i as usize + 1] - self.row_ptr[i as usize]
    }

    /// Iterates over `(col, value)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: u32) -> impl Iterator<Item = (u32, f32)> + '_ {
        let span = self.row_ptr[i as usize]..self.row_ptr[i as usize + 1];
        self.col_idx[span.clone()]
            .iter()
            .zip(&self.vals[span])
            .map(|(&c, &v)| (c, v))
    }

    /// Iterates over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        (0..self.nrows).flat_map(move |r| self.row(r).map(move |(c, v)| (r, c, v)))
    }

    /// Returns the transpose (a CSR matrix of the transposed shape).
    pub fn transpose(&self) -> CsrMatrix {
        let mut row_ptr = vec![0usize; self.ncols as usize + 1];
        for &c in &self.col_idx {
            row_ptr[c as usize + 1] += 1;
        }
        for i in 0..self.ncols as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut vals = vec![0f32; self.nnz()];
        for (r, c, v) in self.iter() {
            let slot = cursor[c as usize];
            cursor[c as usize] += 1;
            col_idx[slot] = r;
            vals[slot] = v;
        }
        CsrMatrix::from_parts(self.ncols, self.nrows, row_ptr, col_idx, vals)
    }

    /// Average nonzeros per row.
    pub fn avg_row_nnz(&self) -> f64 {
        if self.nrows == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.nrows as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn sample() -> CsrMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.extend([(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0), (2, 2, 4.0)]);
        coo.to_csr()
    }

    #[test]
    fn accessors() {
        let m = sample();
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nnz(), 4);
        assert_eq!(m.row_nnz(0), 2);
        assert_eq!(m.row_nnz(1), 1);
        assert!((m.avg_row_nnz() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn iter_is_row_major_sorted() {
        let m = sample();
        let t: Vec<_> = m.iter().collect();
        assert_eq!(t, vec![(0, 1, 1.0), (0, 3, 2.0), (1, 0, 3.0), (2, 2, 4.0)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        let tt = m.transpose().transpose();
        assert_eq!(m, tt);
    }

    #[test]
    fn transpose_moves_entries() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.nrows(), 4);
        assert_eq!(t.ncols(), 3);
        let row1: Vec<_> = t.row(1).collect();
        assert_eq!(row1, vec![(0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "row_ptr must end at nnz")]
    fn from_parts_validates_row_ptr_end() {
        CsrMatrix::from_parts(1, 2, vec![0, 2], vec![0], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_validates_sorted_columns() {
        CsrMatrix::from_parts(1, 3, vec![0, 2], vec![2, 1], vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn from_parts_validates_column_bounds() {
        CsrMatrix::from_parts(1, 2, vec![0, 1], vec![5], vec![1.0]);
    }

    #[test]
    fn debug_is_compact() {
        let s = format!("{:?}", sample());
        assert!(s.contains("nnz"));
    }
}
