//! Structural characterization of sparse matrices and workloads.
//!
//! The paper motivates each benchmark by its domain structure (web crawls
//! have hubs, road networks are near-planar, FEM matrices are banded).
//! This module quantifies that structure — degree distributions, diagonal
//! bandwidth, and imbalance coefficients — both to sanity-check the
//! synthetic generators against their targets and to characterize any
//! user-supplied matrix before a run.

use crate::comm::CommWorkload;
use crate::csr::CsrMatrix;

/// Structural summary of a sparse matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixProfile {
    /// Rows.
    pub nrows: u32,
    /// Columns.
    pub ncols: u32,
    /// Stored nonzeros.
    pub nnz: usize,
    /// Mean nonzeros per row.
    pub avg_row_nnz: f64,
    /// Largest row.
    pub max_row_nnz: usize,
    /// Largest column (in-degree hub).
    pub max_col_nnz: usize,
    /// Gini coefficient of the row-nnz distribution (0 = uniform,
    /// → 1 = a few rows hold everything).
    pub row_gini: f64,
    /// Mean |row - col| over nonzeros, normalized by the matrix size:
    /// ~0 for banded matrices, ~1/3 for uniformly random ones.
    pub normalized_bandwidth: f64,
}

impl MatrixProfile {
    /// Profiles a CSR matrix in one pass.
    pub fn of(m: &CsrMatrix) -> Self {
        let mut col_counts = vec![0usize; m.ncols() as usize];
        let mut row_counts = Vec::with_capacity(m.nrows() as usize);
        let mut dist_sum = 0f64;
        for r in 0..m.nrows() {
            row_counts.push(m.row_nnz(r));
            for (c, _) in m.row(r) {
                col_counts[c as usize] += 1;
                dist_sum += (r as f64 - c as f64).abs();
            }
        }
        let n = m.nrows().max(m.ncols()).max(1) as f64;
        MatrixProfile {
            nrows: m.nrows(),
            ncols: m.ncols(),
            nnz: m.nnz(),
            avg_row_nnz: m.avg_row_nnz(),
            max_row_nnz: row_counts.iter().copied().max().unwrap_or(0),
            max_col_nnz: col_counts.iter().copied().max().unwrap_or(0),
            row_gini: gini(&row_counts),
            normalized_bandwidth: if m.nnz() == 0 {
                0.0
            } else {
                dist_sum / m.nnz() as f64 / n
            },
        }
    }

    /// Whether the matrix has hub columns (a column at least `factor`
    /// times the mean column population).
    pub fn has_hubs(&self, factor: f64) -> bool {
        let mean_col = self.nnz as f64 / self.ncols.max(1) as f64;
        self.max_col_nnz as f64 > mean_col * factor
    }
}

/// Communication-side summary of a workload (the signature quantities the
/// suite generators are calibrated against).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Nodes.
    pub nodes: u32,
    /// Total nonzero references.
    pub total_nnz: u64,
    /// Fraction of references to remote columns.
    pub remote_fraction: f64,
    /// Mean references per distinct remote column per node.
    pub reuse: f64,
    /// Redundant SU transfers per useful one (Table 1 row 1).
    pub su_redundancy: f64,
    /// Redundant SA transfers per useful one (Table 1 row 2).
    pub sa_redundancy: f64,
    /// Unique destinations per 64 consecutive PRs (Table 4).
    pub window_dests: f64,
    /// Fraction of inter-rack needs shared by ≥2 rack-mates (§3).
    pub rack_sharing: f64,
    /// Max/mean per-node nonzero count (compute imbalance).
    pub nnz_imbalance: f64,
}

impl WorkloadProfile {
    /// Profiles a workload with rack size `rack_size`.
    pub fn of(wl: &CommWorkload, rack_size: u32) -> Self {
        let stats = wl.pattern_stats();
        let per_node_nnz: Vec<u64> = stats.per_node.iter().map(|n| n.nnz).collect();
        let mean = per_node_nnz.iter().sum::<u64>() as f64 / per_node_nnz.len().max(1) as f64;
        let max = per_node_nnz.iter().copied().max().unwrap_or(0) as f64;
        WorkloadProfile {
            nodes: wl.nodes(),
            total_nnz: wl.total_nnz(),
            remote_fraction: stats.remote_fraction(),
            reuse: stats.reuse(),
            su_redundancy: stats.su_redundancy(),
            sa_redundancy: stats.sa_redundancy(),
            window_dests: wl.dest_locality(64),
            rack_sharing: wl.rack_sharing(rack_size),
            nnz_imbalance: if mean > 0.0 { max / mean } else { 0.0 },
        }
    }
}

/// Gini coefficient of a nonnegative sample (0 for empty/uniform input).
pub fn gini(values: &[usize]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    sorted.sort_unstable_by(f64::total_cmp);
    let n = sorted.len() as f64;
    let total: f64 = sorted.iter().sum();
    if total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| (i as f64 + 1.0) * v)
        .sum();
    (2.0 * weighted / (n * total)) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{banded, power_law, PowerLawParams};
    use crate::suite::{SuiteConfig, SuiteMatrix};

    #[test]
    fn gini_of_uniform_is_zero_and_of_spike_is_high() {
        assert!(gini(&[5, 5, 5, 5]).abs() < 1e-12);
        let spike = gini(&[0, 0, 0, 100]);
        assert!(spike > 0.7, "{spike}");
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0, 0]), 0.0);
    }

    #[test]
    fn banded_matrix_has_tiny_normalized_bandwidth() {
        let m = banded(1_024, 8, 16, 1).to_csr();
        let p = MatrixProfile::of(&m);
        assert!(p.normalized_bandwidth < 0.02, "{}", p.normalized_bandwidth);
        assert!(!p.has_hubs(10.0));
    }

    #[test]
    fn power_law_matrix_has_hubs() {
        let m = power_law(
            PowerLawParams {
                n: 2_048,
                nnz_per_row: 16,
                alpha: 0.9,
                locality: 0.2,
                local_window: 16,
            },
            2,
        )
        .to_csr();
        let p = MatrixProfile::of(&m);
        assert!(p.has_hubs(10.0));
        assert!(p.normalized_bandwidth > 0.05);
    }

    #[test]
    fn workload_profile_matches_pattern_stats() {
        let wl = SuiteConfig {
            matrix: SuiteMatrix::Queen,
            nodes: 16,
            rack_size: 4,
            scale: 0.02,
            seed: 3,
        }
        .generate();
        let p = WorkloadProfile::of(&wl, 4);
        assert_eq!(p.nodes, 16);
        assert!(p.reuse > 5.0, "queen reuses heavily: {}", p.reuse);
        assert!(p.window_dests < 2.0);
        assert!(p.nnz_imbalance >= 1.0);
    }

    #[test]
    fn profile_handles_empty_matrix() {
        let m = crate::coo::CooMatrix::new(4, 4).to_csr();
        let p = MatrixProfile::of(&m);
        assert_eq!(p.nnz, 0);
        assert_eq!(p.normalized_bandwidth, 0.0);
        assert_eq!(p.max_row_nnz, 0);
    }
}
