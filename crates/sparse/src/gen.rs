//! Structural synthetic matrix generators.
//!
//! These produce matrices with the classic structures of the paper's
//! benchmark domains: banded FEM-style matrices (queen), near-planar road
//! networks (europe), and power-law web/social graphs (arabic, uk). The
//! calibrated benchmark stand-ins in [`crate::suite`] control communication
//! signatures directly; the generators here are the reusable library pieces
//! (used by examples, kernel tests and anyone adopting the crate).

use netsparse_desim::SplitMix64;

use crate::coo::CooMatrix;

/// Generates a banded square matrix: each of the `n` rows gets
/// `nnz_per_row` nonzeros uniformly within `[i - halfwidth, i + halfwidth]`
/// (clamped to the matrix), deduplicated.
///
/// This mimics FEM matrices like the paper's `queen_4147`: accesses
/// concentrate around the diagonal, so with 1-D partitioning remote reads
/// target only neighbouring nodes.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn banded(n: u32, nnz_per_row: u32, halfwidth: u32, seed: u64) -> CooMatrix {
    assert!(n > 0, "matrix must be non-empty");
    let mut rng = SplitMix64::new(seed);
    let mut m = CooMatrix::with_capacity(n, n, (n * nnz_per_row) as usize);
    for i in 0..n {
        let lo = i.saturating_sub(halfwidth);
        let hi = (i + halfwidth).min(n - 1);
        for _ in 0..nnz_per_row {
            let j = rng.range_u32_inclusive(lo, hi);
            m.push(i, j, rng.range_f64(-1.0, 1.0) as f32);
        }
    }
    m.sum_duplicates();
    m
}

/// Generates a road-network-like matrix: vertices on a `side x side` grid,
/// each connected to a few lattice neighbours plus rare shortcuts.
///
/// The resulting adjacency matrix is extremely sparse (average degree
/// ~`2 + shortcut_prob`), near-planar and has almost no column reuse —
/// the signature of the paper's `europe_osm`.
///
/// # Panics
///
/// Panics if `side == 0`.
pub fn road_network(side: u32, shortcut_prob: f64, seed: u64) -> CooMatrix {
    assert!(side > 0, "grid must be non-empty");
    let n = side * side;
    let mut rng = SplitMix64::new(seed);
    let mut m = CooMatrix::with_capacity(n, n, (n as usize) * 3);
    let at = |x: u32, y: u32| y * side + x;
    for y in 0..side {
        for x in 0..side {
            let v = at(x, y);
            if x + 1 < side {
                m.push(v, at(x + 1, y), 1.0);
            }
            if y + 1 < side {
                m.push(v, at(x, y + 1), 1.0);
            }
            if rng.chance(shortcut_prob) {
                let w = rng.range_u32(0, n);
                if w != v {
                    m.push(v, w, 1.0);
                }
            }
        }
    }
    m.sum_duplicates();
    m
}

/// Parameters for [`power_law`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawParams {
    /// Number of rows/columns.
    pub n: u32,
    /// Average nonzeros per row.
    pub nnz_per_row: u32,
    /// Zipf exponent for column popularity (larger = more skewed hubs).
    pub alpha: f64,
    /// Probability that a nonzero lands near the diagonal instead of on a
    /// globally popular column — models the URL-locality of web crawls.
    pub locality: f64,
    /// Half-width of the "near diagonal" window used for local nonzeros.
    pub local_window: u32,
}

impl Default for PowerLawParams {
    fn default() -> Self {
        PowerLawParams {
            n: 4_096,
            nnz_per_row: 16,
            alpha: 0.9,
            locality: 0.7,
            local_window: 64,
        }
    }
}

/// Generates a power-law (web-crawl-like) matrix: each nonzero either lands
/// within a local diagonal window (probability `locality`) or on a column
/// drawn from a Zipf distribution over the whole matrix.
///
/// The combination of hub columns (heavy reuse → filtering/caching
/// opportunities) and diagonal locality (destination locality → good
/// concatenation) mirrors the paper's `arabic-2005` and `uk-2002`.
///
/// # Panics
///
/// Panics if `params.n == 0` or `params.alpha >= 1.0` is not in `[0, 1)`.
pub fn power_law(params: PowerLawParams, seed: u64) -> CooMatrix {
    let PowerLawParams {
        n,
        nnz_per_row,
        alpha,
        locality,
        local_window,
    } = params;
    assert!(n > 0, "matrix must be non-empty");
    assert!(
        (0.0..1.0).contains(&alpha),
        "zipf exponent must be in [0, 1) for inverse-CDF sampling"
    );
    let mut rng = SplitMix64::new(seed);
    let mut m = CooMatrix::with_capacity(n, n, (n * nnz_per_row) as usize);
    let inv_exp = 1.0 / (1.0 - alpha);
    // Popularity rank -> column id permutation (cheap multiplicative hash)
    // so hubs are scattered through the column space like real crawls.
    let scatter =
        |rank: u32| -> u32 { ((rank as u64).wrapping_mul(2_654_435_761) % n as u64) as u32 };
    for i in 0..n {
        for _ in 0..nnz_per_row {
            let j = if rng.chance(locality) {
                let lo = i.saturating_sub(local_window);
                let hi = (i + local_window).min(n - 1);
                rng.range_u32_inclusive(lo, hi)
            } else {
                // Inverse-CDF Zipf sample over ranks [0, n).
                let u: f64 = rng.next_f64();
                let rank = ((n as f64) * u.powf(inv_exp)).min(n as f64 - 1.0) as u32;
                scatter(rank)
            };
            m.push(i, j, rng.range_f64(-1.0, 1.0) as f32);
        }
    }
    m.sum_duplicates();
    m
}

/// Generates a uniformly random sparse matrix (no structure): mostly useful
/// as a worst case for locality-dependent mechanisms.
///
/// # Panics
///
/// Panics if `nrows == 0` or `ncols == 0`.
pub fn uniform(nrows: u32, ncols: u32, nnz: usize, seed: u64) -> CooMatrix {
    assert!(nrows > 0 && ncols > 0, "matrix must be non-empty");
    let mut rng = SplitMix64::new(seed);
    let mut m = CooMatrix::with_capacity(nrows, ncols, nnz);
    for _ in 0..nnz {
        m.push(
            rng.range_u32(0, nrows),
            rng.range_u32(0, ncols),
            rng.range_f64(-1.0, 1.0) as f32,
        );
    }
    m.sum_duplicates();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition1D;

    #[test]
    fn banded_stays_in_band() {
        let m = banded(256, 6, 10, 1);
        for (i, j, _) in m.iter() {
            assert!(
                (i as i64 - j as i64).unsigned_abs() <= 10,
                "({i},{j}) outside band"
            );
        }
    }

    #[test]
    fn banded_remote_refs_hit_only_neighbours() {
        let m = banded(1_024, 8, 20, 2).to_csr();
        let part = Partition1D::even(1_024, 8);
        for (i, j, _) in m.iter() {
            let src = part.owner(i);
            let dst = part.owner(j);
            assert!(
                (src as i64 - dst as i64).abs() <= 1,
                "banded remote ref crossed more than one node"
            );
        }
    }

    #[test]
    fn road_network_degree_is_tiny() {
        let m = road_network(64, 0.05, 3);
        let avg = m.nnz() as f64 / (64.0 * 64.0);
        assert!(avg < 3.0, "road network too dense: {avg}");
    }

    #[test]
    fn power_law_has_hub_columns() {
        let m = power_law(
            PowerLawParams {
                n: 2_048,
                nnz_per_row: 16,
                alpha: 0.9,
                locality: 0.3,
                local_window: 32,
            },
            4,
        );
        let mut col_counts = vec![0u32; 2_048];
        for (_, j, _) in m.iter() {
            col_counts[j as usize] += 1;
        }
        let max = *col_counts.iter().max().unwrap();
        let mean = m.nnz() as f64 / 2_048.0;
        assert!(
            max as f64 > mean * 10.0,
            "expected hubs: max {max}, mean {mean}"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(banded(128, 4, 8, 9), banded(128, 4, 8, 9));
        assert_eq!(road_network(16, 0.1, 9), road_network(16, 0.1, 9));
        assert_eq!(
            power_law(PowerLawParams::default(), 9),
            power_law(PowerLawParams::default(), 9)
        );
        assert_eq!(uniform(32, 32, 100, 9), uniform(32, 32, 100, 9));
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform(10, 20, 500, 5);
        for (i, j, _) in m.iter() {
            assert!(i < 10 && j < 20);
        }
    }
}
