//! Coordinate-format (triplet) sparse matrices.

use crate::csr::CsrMatrix;

/// A sparse matrix stored as `(row, col, value)` triplets.
///
/// COO is the construction format: generators and Matrix Market parsing
/// produce it, and [`CooMatrix::to_csr`] converts to the compute format.
///
/// # Example
///
/// ```
/// use netsparse_sparse::CooMatrix;
/// let mut m = CooMatrix::new(3, 4);
/// m.push(0, 1, 2.0);
/// m.push(2, 3, -1.0);
/// assert_eq!(m.nnz(), 2);
/// let csr = m.to_csr();
/// assert_eq!(csr.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: u32,
    ncols: u32,
    rows: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
}

impl CooMatrix {
    /// Creates an empty matrix of the given shape.
    pub fn new(nrows: u32, ncols: u32) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::new(),
            cols: Vec::new(),
            vals: Vec::new(),
        }
    }

    /// Creates an empty matrix with room for `cap` nonzeros.
    pub fn with_capacity(nrows: u32, ncols: u32, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            vals: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> u32 {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> u32 {
        self.ncols
    }

    /// Number of stored entries (possibly with duplicates before
    /// [`CooMatrix::sum_duplicates`]).
    pub fn nnz(&self) -> usize {
        self.rows.len()
    }

    /// Appends a triplet.
    ///
    /// # Panics
    ///
    /// Panics if `row`/`col` are out of bounds.
    #[inline]
    pub fn push(&mut self, row: u32, col: u32, val: f32) {
        assert!(
            row < self.nrows && col < self.ncols,
            "entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.nrows,
            self.ncols
        );
        self.rows.push(row);
        self.cols.push(col);
        self.vals.push(val);
    }

    /// Iterates over `(row, col, value)` triplets in storage order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, f32)> + '_ {
        self.rows
            .iter()
            .zip(&self.cols)
            .zip(&self.vals)
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Sorts entries by `(row, col)` and sums duplicate coordinates.
    pub fn sum_duplicates(&mut self) {
        let mut order: Vec<u32> = (0..self.nnz() as u32).collect();
        order.sort_unstable_by_key(|&i| (self.rows[i as usize], self.cols[i as usize]));
        let mut rows = Vec::with_capacity(self.nnz());
        let mut cols = Vec::with_capacity(self.nnz());
        let mut vals = Vec::with_capacity(self.nnz());
        for &i in &order {
            let (r, c, v) = (
                self.rows[i as usize],
                self.cols[i as usize],
                self.vals[i as usize],
            );
            if rows.last() == Some(&r) && cols.last() == Some(&c) {
                *vals.last_mut().expect("parallel arrays") += v;
            } else {
                rows.push(r);
                cols.push(c);
                vals.push(v);
            }
        }
        self.rows = rows;
        self.cols = cols;
        self.vals = vals;
    }

    /// Converts to CSR, sorting entries and summing duplicates.
    pub fn to_csr(&self) -> CsrMatrix {
        let mut sorted = self.clone();
        sorted.sum_duplicates();
        let mut row_ptr = vec![0usize; self.nrows as usize + 1];
        for &r in &sorted.rows {
            row_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows as usize {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix::from_parts(self.nrows, self.ncols, row_ptr, sorted.cols, sorted.vals)
    }
}

impl Extend<(u32, u32, f32)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (u32, u32, f32)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_iterate() {
        let mut m = CooMatrix::new(2, 2);
        m.push(0, 0, 1.0);
        m.push(1, 1, 2.0);
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 0, 1.0), (1, 1, 2.0)]);
    }

    #[test]
    fn sum_duplicates_merges_and_sorts() {
        let mut m = CooMatrix::new(2, 3);
        m.push(1, 2, 1.0);
        m.push(0, 1, 5.0);
        m.push(1, 2, 3.0);
        m.sum_duplicates();
        let triplets: Vec<_> = m.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 5.0), (1, 2, 4.0)]);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut m = CooMatrix::new(4, 4);
        m.extend([(0, 0, 1.0), (3, 3, 2.0)]);
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        CooMatrix::new(2, 2).push(2, 0, 1.0);
    }

    #[test]
    fn to_csr_counts_match() {
        let mut m = CooMatrix::new(3, 3);
        m.extend([(2, 0, 1.0), (0, 2, 1.0), (2, 2, 1.0), (2, 0, 1.0)]);
        let csr = m.to_csr();
        assert_eq!(csr.nnz(), 3); // duplicate (2,0) merged
        assert_eq!(csr.row(2).count(), 2);
    }
}
