//! Calibrated stand-ins for the paper's five benchmark matrices.
//!
//! The paper evaluates on arabic-2005, europe_osm, queen_4147, stokes and
//! uk-2002 from SuiteSparse (Table 6) — matrices with 10⁸–10⁹ nonzeros that
//! are impractical to simulate (or ship) here. All of NetSparse's results,
//! however, are driven by each matrix's *communication signature*, not its
//! absolute size:
//!
//! - the fraction of nonzeros referencing remote columns,
//! - the per-node **reuse** of each remote column (→ filtering/coalescing),
//! - the **SU redundancy** (how few of all columns a node actually needs),
//! - **temporal destination locality** (Table 4 → concatenation),
//! - **rack-level sharing** of needed columns (→ Property Cache), and
//! - per-node skew of remote traffic (→ Figure 19 imbalance).
//!
//! This module generates, at a configurable scale, per-node idx streams
//! whose measured signatures land on the paper's reported values (Table 1,
//! Table 4). The generator is a stochastic process, documented field by
//! field on [`Signature`]:
//!
//! 1. each nonzero is remote with probability `remote_frac` (node-skewed),
//! 2. the destination node follows a Markov process with stay probability
//!    derived from the Table 4 window statistic, over a matrix-specific
//!    destination shape (banded / geometric / power-law / strided),
//! 3. within a destination, columns come from a *drifting working set*: a
//!    slot counter advances once every `reuse` draws, so each distinct
//!    column is referenced ~`reuse` times in a temporally clustered burst
//!    (what makes both coalescing and caching behave like the real
//!    matrices), and
//! 4. slots map to concrete columns through either a rack-shared or a
//!    node-private hash, with `share_p` controlling how much of a rack's
//!    demand overlaps (→ Property Cache hit potential).

use netsparse_desim::SplitMix64;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

use crate::comm::CommWorkload;
use crate::partition::Partition1D;

/// One of the paper's five benchmark matrices (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SuiteMatrix {
    /// `arabic-2005` — web crawl; 23 M rows, 640 M nnz. Dense-ish, strong
    /// URL locality, heavy column reuse.
    Arabic,
    /// `europe_osm` — road network; 51 M rows, 108 M nnz. Extremely sparse,
    /// almost no column reuse.
    Europe,
    /// `queen_4147` — 3D structural FEM; 4 M rows, 317 M nnz. Banded:
    /// every remote reference targets a neighbouring node.
    Queen,
    /// `stokes` — coupled flow problem; 11 M rows, 350 M nnz. Block
    /// structure with strided couplings.
    Stokes,
    /// `uk-2002` — web crawl; 19 M rows, 298 M nnz. Power-law with weaker
    /// locality than arabic.
    Uk,
}

impl SuiteMatrix {
    /// All five matrices, in the paper's column order.
    pub const ALL: [SuiteMatrix; 5] = [
        SuiteMatrix::Arabic,
        SuiteMatrix::Europe,
        SuiteMatrix::Queen,
        SuiteMatrix::Stokes,
        SuiteMatrix::Uk,
    ];

    /// Short lowercase name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SuiteMatrix::Arabic => "arabic",
            SuiteMatrix::Europe => "europe",
            SuiteMatrix::Queen => "queen",
            SuiteMatrix::Stokes => "stokes",
            SuiteMatrix::Uk => "uk",
        }
    }

    /// The calibrated communication signature for this matrix.
    ///
    /// `remote_frac`, `reuse` and `su_redundancy` are derived from the
    /// paper's Tables 1 and 6 (see module docs for the arithmetic);
    /// `window_dests` is Table 4 directly; `share_p` and `skew` are tuned
    /// so rack sharing and Figure 19 imbalance land near reported values.
    pub fn signature(self) -> Signature {
        match self {
            SuiteMatrix::Arabic => Signature {
                matrix: self,
                paper_rows_m: 23.0,
                paper_nnz_m: 640.0,
                base_nnz_per_node: 131_072,
                remote_frac: 0.066,
                reuse: 28.0,
                su_redundancy: 1947.0,
                window_dests: 2.51,
                dest_shape: DestShape::GeomDecay { rho: 0.45 },
                share_p: 0.65,
                skew: 0.55,
                nnz_skew: 0.30,
                far_revisit: 0.55,
                hub_frac: 0.15,
                n_hubs: 4,
            },
            SuiteMatrix::Europe => Signature {
                matrix: self,
                paper_rows_m: 51.0,
                paper_nnz_m: 108.0,
                base_nnz_per_node: 98_304,
                remote_frac: 0.105,
                reuse: 1.02,
                su_redundancy: 582.0,
                window_dests: 7.43,
                dest_shape: DestShape::GeomDecay { rho: 0.75 },
                share_p: 0.10,
                skew: 0.40,
                nnz_skew: 0.22,
                far_revisit: 0.05,
                hub_frac: 0.0,
                n_hubs: 0,
            },
            SuiteMatrix::Queen => Signature {
                matrix: self,
                paper_rows_m: 4.0,
                paper_nnz_m: 317.0,
                base_nnz_per_node: 131_072,
                remote_frac: 0.573,
                reuse: 26.0,
                su_redundancy: 74.0,
                window_dests: 1.0,
                dest_shape: DestShape::GeomDecay { rho: 0.45 },
                share_p: 0.95,
                skew: 0.05,
                nnz_skew: 0.05,
                far_revisit: 0.10,
                hub_frac: 0.0,
                n_hubs: 0,
            },
            SuiteMatrix::Stokes => Signature {
                matrix: self,
                paper_rows_m: 11.0,
                paper_nnz_m: 350.0,
                base_nnz_per_node: 131_072,
                remote_frac: 0.557,
                reuse: 4.6,
                su_redundancy: 32.0,
                window_dests: 1.85,
                dest_shape: DestShape::Strided {
                    stride: 16,
                    far_frac: 0.35,
                    near_width: 3,
                },
                share_p: 0.15,
                skew: 0.45,
                nnz_skew: 0.25,
                far_revisit: 0.15,
                hub_frac: 0.0,
                n_hubs: 0,
            },
            SuiteMatrix::Uk => Signature {
                matrix: self,
                paper_rows_m: 19.0,
                paper_nnz_m: 298.0,
                base_nnz_per_node: 131_072,
                remote_frac: 0.045,
                reuse: 5.5,
                su_redundancy: 966.0,
                window_dests: 5.61,
                dest_shape: DestShape::PowerLaw { alpha: 1.4 },
                share_p: 0.60,
                skew: 0.60,
                nnz_skew: 0.35,
                far_revisit: 0.45,
                hub_frac: 0.20,
                n_hubs: 6,
            },
        }
    }

    /// Generates the workload with a default 128-node configuration.
    pub fn workload(self, scale: f64, seed: u64) -> CommWorkload {
        SuiteConfig {
            matrix: self,
            scale,
            seed,
            ..SuiteConfig::default_for(self)
        }
        .generate()
    }
}

impl fmt::Display for SuiteMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing an unknown matrix name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSuiteMatrixError(String);

impl fmt::Display for ParseSuiteMatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown matrix '{}' (expected arabic|europe|queen|stokes|uk)",
            self.0
        )
    }
}

impl std::error::Error for ParseSuiteMatrixError {}

impl FromStr for SuiteMatrix {
    type Err = ParseSuiteMatrixError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SuiteMatrix::ALL
            .iter()
            .copied()
            .find(|m| m.name() == s.to_ascii_lowercase())
            .ok_or_else(|| ParseSuiteMatrixError(s.to_string()))
    }
}

/// The distribution of remote destination nodes, relative to the requester.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DestShape {
    /// Only nodes within `width` of the requester (banded matrices).
    Neighbor {
        /// Maximum node distance.
        width: u32,
    },
    /// Node distance `d ≥ 1` with probability ∝ `rho^d` (diagonal-heavy
    /// matrices with exponentially decaying fringe).
    GeomDecay {
        /// Decay ratio per node of distance, in `(0, 1)`.
        rho: f64,
    },
    /// Node distance `d ≥ 1` with probability ∝ `d^-alpha` (web graphs
    /// whose links reach across the whole id space).
    PowerLaw {
        /// Tail exponent, > 1.
        alpha: f64,
    },
    /// Mostly nearby nodes (distance 1..=`near_width`), with a `far_frac`
    /// fraction at a fixed `stride` (block-coupled physical problems).
    Strided {
        /// Far-coupling distance in nodes.
        stride: u32,
        /// Fraction of remote references using the far coupling.
        far_frac: f64,
        /// Maximum distance of the near couplings.
        near_width: u32,
    },
}

/// The communication signature a suite matrix is generated from.
///
/// All rates are in "paper space": they are preserved exactly as the scale
/// changes (pools shrink proportionally with the nonzero count).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// Which matrix this signature describes.
    pub matrix: SuiteMatrix,
    /// Rows of the real matrix, in millions (Table 6; provenance only).
    pub paper_rows_m: f64,
    /// Nonzeros of the real matrix, in millions (Table 6; provenance only).
    pub paper_nnz_m: f64,
    /// Nonzeros per node at `scale = 1.0`.
    pub base_nnz_per_node: usize,
    /// Fraction of nonzeros that reference a remotely owned column.
    pub remote_frac: f64,
    /// Average references per distinct remote column per node
    /// (1 + Table 1 SA redundancy).
    pub reuse: f64,
    /// Redundant SU transfers per useful transfer (Table 1 SU row).
    pub su_redundancy: f64,
    /// Average unique destinations per 64 consecutive PRs (Table 4).
    pub window_dests: f64,
    /// Destination-node distribution shape.
    pub dest_shape: DestShape,
    /// Probability a column slot is drawn from the rack-shared pool.
    pub share_p: f64,
    /// Log-normal sigma of per-node remote-traffic skew.
    pub skew: f64,
    /// Log-normal sigma of per-node nonzero-count skew (drives compute
    /// imbalance: the paper's ideal strong-scaling tops out near 72x on
    /// 128 nodes because row blocks carry unequal nonzeros).
    pub nnz_skew: f64,
    /// Fraction of repeat draws that revisit a *long-past* column instead
    /// of the current working-set burst. Real matrices reuse columns at
    /// two timescales: adjacent rows (caught in-flight by coalescing) and
    /// far-apart rows (caught by the Idx Filter once the first response
    /// has landed). Table 8's Filter-vs-Coalesce split follows from this
    /// mix.
    pub far_revisit: f64,
    /// Fraction of destination draws that target one of `n_hubs` global
    /// hub nodes instead of the local shape. Web crawls concentrate
    /// popular columns (hubs) on a few owner nodes; their uplinks become
    /// hot, which is what the in-switch Property Cache relieves (§6.2,
    /// Figure 18).
    pub hub_frac: f64,
    /// Number of global hub nodes (0 disables hubs).
    pub n_hubs: u32,
}

/// Full generation configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Which matrix to generate.
    pub matrix: SuiteMatrix,
    /// Number of cluster nodes (paper: 128).
    pub nodes: u32,
    /// Nodes per rack (paper: 16) — defines the rack-shared pools.
    pub rack_size: u32,
    /// Scale factor on nonzeros per node (1.0 ≈ 128 k nnz/node).
    pub scale: f64,
    /// RNG seed; the generator is fully deterministic given the config.
    pub seed: u64,
}

impl SuiteConfig {
    /// The default 128-node, rack-of-16 configuration for `matrix`.
    pub fn default_for(matrix: SuiteMatrix) -> Self {
        SuiteConfig {
            matrix,
            nodes: 128,
            rack_size: 16,
            scale: 1.0,
            seed: 0x5EED_2025,
        }
    }

    /// Generates the workload for this configuration.
    ///
    /// # Panics
    ///
    /// Panics if `nodes < 2`, `rack_size == 0`, or `scale <= 0`.
    pub fn generate(&self) -> CommWorkload {
        generate(self)
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash of a (key, dest, slot) triple into 64 bits; used to map working-set
/// slots onto concrete columns so repeats of the same slot — within a node
/// or across a rack — land on the same column.
fn slot_hash(key: u64, dest: u32, slot: u64) -> u64 {
    splitmix(key ^ splitmix((dest as u64) << 32 ^ slot))
}

fn sample_dest(shape: DestShape, p: u32, nodes: u32, rng: &mut SplitMix64) -> u32 {
    debug_assert!(nodes >= 2);
    for _ in 0..64 {
        let (dist, up): (u32, bool) = match shape {
            DestShape::Neighbor { width } => {
                (rng.range_u32_inclusive(1, width.max(1)), rng.next_bool())
            }
            DestShape::GeomDecay { rho } => {
                let u: f64 = rng.next_f64_open();
                let d = 1 + (u.ln() / rho.ln()).floor() as u32;
                (d.min(nodes - 1), rng.next_bool())
            }
            DestShape::PowerLaw { alpha } => {
                // Inverse-CDF over d in [1, nodes): P(d) ∝ d^-alpha.
                let u: f64 = rng.next_f64();
                let one_m = 1.0 - alpha;
                let nmax = (nodes - 1) as f64;
                let d = if (one_m).abs() < 1e-9 {
                    nmax.powf(u)
                } else {
                    (1.0 + u * (nmax.powf(one_m) - 1.0)).powf(1.0 / one_m)
                };
                ((d.floor() as u32).clamp(1, nodes - 1), rng.next_bool())
            }
            DestShape::Strided {
                stride,
                far_frac,
                near_width,
            } => {
                if rng.chance(far_frac) {
                    (stride.max(1), rng.next_bool())
                } else {
                    (
                        rng.range_u32_inclusive(1, near_width.max(1)),
                        rng.next_bool(),
                    )
                }
            }
        };
        let cand = if up {
            p.checked_add(dist).filter(|&d| d < nodes)
        } else {
            p.checked_sub(dist)
        };
        if let Some(d) = cand {
            return d;
        }
        // Out of range (node near an edge): try the other direction once.
        let cand = if up {
            p.checked_sub(dist)
        } else {
            Some(p + dist)
        };
        if let Some(d) = cand.filter(|&d| d < nodes) {
            return d;
        }
    }
    // Degenerate fallback: adjacent node.
    if p + 1 < nodes {
        p + 1
    } else {
        p - 1
    }
}

/// Generates a calibrated workload (see module docs for the model).
///
/// # Panics
///
/// Panics if `cfg.nodes < 2`, `cfg.rack_size == 0`, or `cfg.scale <= 0`.
pub fn generate(cfg: &SuiteConfig) -> CommWorkload {
    assert!(cfg.nodes >= 2, "need at least 2 nodes");
    assert!(cfg.rack_size > 0, "rack size must be nonzero");
    assert!(
        cfg.scale > 0.0 && cfg.scale.is_finite(),
        "scale must be positive"
    );
    let sig = cfg.matrix.signature();
    let nodes = cfg.nodes;
    let nnz_per_node = ((sig.base_nnz_per_node as f64 * cfg.scale) as usize).max(256);

    let mut rng = SplitMix64::new(cfg.seed ^ splitmix(cfg.matrix as u64 + 1));

    // Per-node skews: lognormal, normalized to mean 1. `skew` scales each
    // node's remote-reference rate; `nnz_skew` scales its nonzero count
    // (compute imbalance).
    let lognormal = |rng: &mut SplitMix64, sigma: f64| -> Vec<f64> {
        let mean_correction = (sigma * sigma / 2.0).exp();
        (0..nodes)
            .map(|_| {
                // Box-Muller.
                let u1: f64 = rng.next_f64_open();
                let u2: f64 = rng.next_f64();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                ((sigma * z).exp() / mean_correction).clamp(0.05, 8.0)
            })
            .collect()
    };
    let skew_f = lognormal(&mut rng, sig.skew);
    let nnz_f = lognormal(&mut rng, sig.nnz_skew);

    // Column-space size from the SU redundancy target: per node, the SU
    // schedule delivers (n - n/nodes) properties of which U are useful, so
    // n = U * (R + 1) * nodes / (nodes - 1).
    let u_avg = (nnz_per_node as f64 * sig.remote_frac / sig.reuse).max(1.0);
    let n_cols = ((u_avg * (sig.su_redundancy + 1.0) * nodes as f64 / (nodes - 1) as f64).ceil()
        as u64)
        .max(nodes as u64 * 64)
        .min(u32::MAX as u64 / 2) as u32;
    let partition = Partition1D::even(n_cols, nodes);

    // Markov stay-probability from the Table 4 window statistic: in a
    // window of W PRs there are ~1 + (W-1)(1-q) destination switches.
    let w = 64.0;
    // In a window of W PRs there are ~1 + (W-1)(1-q) destination switches,
    // but only a fraction of switches land on a dest *new to the window*
    // (the shapes re-draw near dests often); 0.75 is that fraction,
    // measured over the four shapes. Clamped strictly below 1: even a
    // perfectly single-destination window statistic (queen) must
    // eventually visit its other neighbours, or the whole run would
    // collapse onto one destination pool.
    let stay_q = (1.0 - (sig.window_dests - 1.0) / ((w - 1.0) * 0.75)).clamp(0.0, 0.999);

    let mut streams: Vec<Vec<u32>> = Vec::with_capacity(nodes as usize);
    let mut rows_per_node = Vec::with_capacity(nodes as usize);

    for p in 0..nodes {
        rows_per_node.push(partition.part_len(p));
        let rf = (sig.remote_frac * skew_f[p as usize]).min(0.95);
        let nnz_p = ((nnz_per_node as f64 * nnz_f[p as usize]) as usize).max(64);
        let own = partition.range(p);
        let rack = (p / cfg.rack_size) as u64;
        let mut stream = Vec::with_capacity(nnz_p);
        // Working-set draw counters, one per destination node.
        let mut draws: Vec<u64> = vec![0; nodes as usize];
        let mut current_dest: Option<u32> = None;
        // Width of the live working-set window, in slots. Kept tiny: the
        // window only exists to cluster repeats of a slot in time (so some
        // repeats land while the first PR is still in flight and get
        // *coalesced* rather than *filtered*). For near-reuse-free
        // matrices (europe) even a width of 2 would manufacture repeats,
        // so the window collapses to 1 slot there.
        let jitter_w: u64 = if sig.reuse < 2.0 { 1 } else { 2 };

        for _ in 0..nnz_p {
            if rng.chance(rf) {
                // Remote reference: maybe switch destination.
                let dest = match current_dest {
                    Some(d) if rng.chance(stay_q) => d,
                    _ => {
                        if sig.n_hubs > 0 && rng.chance(sig.hub_frac) {
                            // Hub homes are fixed per matrix (seed-drawn).
                            let h = rng.range_u32(0, sig.n_hubs) as u64;
                            let hub = (slot_hash(0x4B5, sig.n_hubs, h) % nodes as u64) as u32;
                            if hub != p {
                                hub
                            } else {
                                sample_dest(sig.dest_shape, p, nodes, &mut rng)
                            }
                        } else {
                            sample_dest(sig.dest_shape, p, nodes, &mut rng)
                        }
                    }
                };
                current_dest = Some(dest);
                // Drifting working set: slot base advances every `reuse`
                // draws; jitter keeps a small active window live.
                let t = draws[dest as usize];
                draws[dest as usize] += 1;
                let base = (t as f64 / sig.reuse) as u64;
                // A repeat draw either stays in the current burst window
                // (temporally clustered -> coalescing territory) or
                // revisits an older column (Idx Filter territory).
                let in_burst = (t as f64 % sig.reuse) >= 1.0;
                let slot = if in_burst && base > 0 && rng.chance(sig.far_revisit) {
                    rng.range_u64(0, base)
                } else {
                    base + rng.range_u64(0, jitter_w)
                };
                // Shared-vs-private decision must be node-independent so a
                // shared slot means the same column to everyone in the rack.
                let shared =
                    ((slot_hash(0xC0FFEE, dest, slot) % 10_000) as f64) < sig.share_p * 10_000.0;
                let key = if shared {
                    0x5AC0_0000 + rack
                } else {
                    0x0DE0_0000 + p as u64
                };
                let dr = partition.range(dest);
                let width = (dr.end - dr.start).max(1) as u64;
                // Affine *bijection* from slots onto the destination's
                // column range (a hash would birthday-collide once the
                // working set approaches the range width, silently
                // inflating reuse). The random phase separates the shared
                // and private sequences.
                let phase = slot_hash(key, dest, 0) % width;
                let col = dr.start + ((slot + phase) % width) as u32;
                stream.push(col);
            } else {
                // Local reference.
                let col = rng.range_u32(own.start, own.end.max(own.start + 1));
                stream.push(col.min(n_cols - 1));
            }
        }
        streams.push(stream);
    }

    CommWorkload::from_streams(partition, rows_per_node, streams)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(m: SuiteMatrix) -> CommWorkload {
        SuiteConfig {
            matrix: m,
            nodes: 32,
            rack_size: 8,
            scale: 0.05,
            seed: 7,
        }
        .generate()
    }

    /// A scale large enough for reuse/redundancy statistics to converge;
    /// the signature rates are per-draw, so small workloads undershoot
    /// reuse (each destination's working set has barely started drifting).
    fn medium(m: SuiteMatrix) -> CommWorkload {
        SuiteConfig {
            matrix: m,
            nodes: 64,
            rack_size: 16,
            scale: 0.3,
            seed: 7,
        }
        .generate()
    }

    #[test]
    fn generator_is_deterministic() {
        let a = tiny(SuiteMatrix::Arabic);
        let b = tiny(SuiteMatrix::Arabic);
        assert_eq!(a.stream(3), b.stream(3));
        assert_eq!(a.n_cols(), b.n_cols());
    }

    #[test]
    fn remote_fraction_lands_near_target() {
        for m in SuiteMatrix::ALL {
            let wl = tiny(m);
            let stats = wl.pattern_stats();
            let target = m.signature().remote_frac;
            let measured = stats.remote_fraction();
            // Lognormal skew and clamping allow some drift.
            assert!(
                (measured - target).abs() / target < 0.5,
                "{m}: remote_frac measured {measured}, target {target}"
            );
        }
    }

    #[test]
    fn reuse_lands_near_target() {
        for m in SuiteMatrix::ALL {
            let wl = medium(m);
            let stats = wl.pattern_stats();
            let target = m.signature().reuse;
            let measured = stats.reuse();
            assert!(
                measured / target < 2.5 && target / measured < 2.5,
                "{m}: reuse measured {measured}, target {target}"
            );
        }
    }

    #[test]
    fn queen_has_single_destination_windows() {
        let wl = tiny(SuiteMatrix::Queen);
        let l = wl.dest_locality(64);
        assert!(l < 1.6, "queen window dests {l}");
    }

    #[test]
    fn europe_has_spread_destinations() {
        let wl = tiny(SuiteMatrix::Europe);
        let l = wl.dest_locality(64);
        assert!(l > 3.0, "europe window dests {l}");
    }

    #[test]
    fn su_redundancy_ordering_matches_paper() {
        // Paper Table 1: arabic > uk > europe > queen > stokes.
        let r: Vec<f64> = SuiteMatrix::ALL
            .iter()
            .map(|&m| medium(m).pattern_stats().su_redundancy())
            .collect();
        let (arabic, europe, queen, stokes, uk) = (r[0], r[1], r[2], r[3], r[4]);
        assert!(
            arabic > uk && uk > europe && europe > queen && queen > stokes,
            "SU redundancy ordering violated: {r:?}"
        );
    }

    #[test]
    fn rack_sharing_higher_for_shared_matrices() {
        let arabic = tiny(SuiteMatrix::Arabic).rack_sharing(8);
        let europe = tiny(SuiteMatrix::Europe).rack_sharing(8);
        assert!(
            arabic > europe,
            "arabic sharing {arabic} should exceed europe {europe}"
        );
    }

    #[test]
    fn matrix_names_roundtrip() {
        for m in SuiteMatrix::ALL {
            assert_eq!(m.name().parse::<SuiteMatrix>().unwrap(), m);
        }
        assert!("foo".parse::<SuiteMatrix>().is_err());
    }

    #[test]
    fn all_streams_in_bounds() {
        let wl = tiny(SuiteMatrix::Stokes);
        for p in 0..wl.nodes() {
            for &idx in wl.stream(p) {
                assert!(idx < wl.n_cols());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 2 nodes")]
    fn single_node_rejected() {
        SuiteConfig {
            matrix: SuiteMatrix::Arabic,
            nodes: 1,
            rack_size: 1,
            scale: 0.1,
            seed: 0,
        }
        .generate();
    }
}
