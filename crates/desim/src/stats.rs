//! Measurement utilities shared by every model in the workspace.
//!
//! All the paper's reported metrics reduce to four primitives:
//!
//! - [`Counter`] — monotonically increasing event/byte counts (traffic,
//!   filtered PRs, cache hits…),
//! - [`Histogram`] — distributions (PRs per packet, queue depths…),
//! - [`RateMeter`] — bytes over a time window → bandwidth/goodput,
//! - [`TimeSeries`] — sampled values over simulated time (Figure 19's
//!   active-node curve).

use crate::time::SimTime;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// use netsparse_desim::Counter;
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }

    /// This counter as a fraction of `total` (0 when `total` is 0).
    pub fn fraction_of(&self, total: u64) -> f64 {
        if total == 0 {
            0.0
        } else {
            self.0 as f64 / total as f64
        }
    }
}

/// A streaming histogram that records count, sum, min, max, and mean without
/// storing samples.
///
/// # Example
///
/// ```
/// use netsparse_desim::Histogram;
/// let mut h = Histogram::new();
/// for v in [2, 4, 6] { h.record(v); }
/// assert_eq!(h.count(), 3);
/// assert_eq!(h.mean(), 4.0);
/// assert_eq!(h.min(), Some(2));
/// assert_eq!(h.max(), Some(6));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: Option<u64>,
    max: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.count += 1;
        self.sum += value;
        self.min = Some(self.min.map_or(value, |m| m.min(value)));
        self.max = Some(self.max.map_or(value, |m| m.max(value)));
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest sample, if any were recorded.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any were recorded.
    pub fn max(&self) -> Option<u64> {
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Tracks bytes transferred over simulated time and converts to rates.
///
/// Used for line utilization and goodput: record *wire* bytes in one meter
/// and *payload* bytes in another, then divide by elapsed time or by the
/// line rate.
///
/// # Example
///
/// ```
/// use netsparse_desim::{RateMeter, SimTime};
/// let mut m = RateMeter::new();
/// m.record(SimTime::from_us(1), 5_000); // 5 KB by t=1us
/// let gbps = m.rate_gbps(SimTime::from_us(1));
/// assert!((gbps - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateMeter {
    bytes: u64,
    last: SimTime,
}

impl RateMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `bytes` transferred, stamped at `now`.
    #[inline]
    pub fn record(&mut self, now: SimTime, bytes: u64) {
        self.bytes += bytes;
        self.last = self.last.max(now);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Timestamp of the latest recorded transfer.
    pub fn last_activity(&self) -> SimTime {
        self.last
    }

    /// Average rate in bits/s over `[0, elapsed]` (0 for zero elapsed).
    pub fn rate_bps(&self, elapsed: SimTime) -> f64 {
        let secs = elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 * 8.0 / secs
        }
    }

    /// Average rate in Gbit/s over `[0, elapsed]`.
    pub fn rate_gbps(&self, elapsed: SimTime) -> f64 {
        self.rate_bps(elapsed) / 1e9
    }

    /// This meter's average rate as a fraction of `line_rate_bps`.
    pub fn utilization(&self, elapsed: SimTime, line_rate_bps: f64) -> f64 {
        if line_rate_bps <= 0.0 {
            0.0
        } else {
            self.rate_bps(elapsed) / line_rate_bps
        }
    }
}

/// A bounded-memory sample reservoir for percentile estimates.
///
/// Keeps up to `capacity` samples via Vitter's Algorithm R; quantiles are
/// computed over the retained sample. Used for per-PR latency
/// distributions, where storing every sample would dwarf the simulation
/// state.
///
/// # Example
///
/// ```
/// use netsparse_desim::stats::Reservoir;
/// let mut r = Reservoir::new(100, 7);
/// for v in 0..1000u64 { r.record(v); }
/// let p50 = r.quantile(0.5).unwrap();
/// assert!((300..700).contains(&p50));
/// ```
#[derive(Debug, Clone)]
pub struct Reservoir {
    capacity: usize,
    samples: Vec<u64>,
    seen: u64,
    rng: crate::rng::SplitMix64,
}

impl Reservoir {
    /// Creates a reservoir retaining up to `capacity` samples.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, seed: u64) -> Self {
        assert!(capacity > 0, "reservoir needs capacity");
        Reservoir {
            capacity,
            samples: Vec::with_capacity(capacity),
            seen: 0,
            rng: crate::rng::SplitMix64::new(seed),
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.seen += 1;
        if self.samples.len() < self.capacity {
            self.samples.push(value);
        } else {
            let j = self.rng.next_range(self.seen);
            if (j as usize) < self.capacity {
                self.samples[j as usize] = value;
            }
        }
    }

    /// Total samples offered (not retained).
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) over the retained sample, or `None`
    /// if empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
        Some(sorted[rank])
    }
}

/// A sampled series of `(time, value)` points over simulated time.
///
/// Figure 19 of the paper plots the number of still-active nodes against
/// normalized execution time; models append samples and the bench harness
/// resamples onto a normalized grid.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a sample. Samples must arrive in nondecreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous sample's timestamp.
    pub fn record(&mut self, now: SimTime, value: f64) {
        if let Some(&(t, _)) = self.points.last() {
            assert!(now >= t, "TimeSeries samples must be time-ordered");
        }
        self.points.push((now, value));
    }

    /// The raw samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Step-resamples the series at `n` evenly spaced points across
    /// `[0, end]`, holding the last seen value between samples. Returns an
    /// empty vector if the series is empty or `n == 0`.
    pub fn resample(&self, end: SimTime, n: usize) -> Vec<f64> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(n);
        let mut idx = 0usize;
        let mut current = self.points[0].1;
        for i in 0..n {
            // Pure integer division in u128 — no float rounding involved,
            // the cast only narrows. simaudit:allow(no-raw-time-math)
            let t = SimTime::from_ps(((end.as_ps() as u128 * i as u128) / n.max(1) as u128) as u64);
            while idx < self.points.len() && self.points[idx].0 <= t {
                current = self.points[idx].1;
                idx += 1;
            }
            out.push(current);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let mut c = Counter::new();
        assert_eq!(c.get(), 0);
        c.add(10);
        c.incr();
        assert_eq!(c.get(), 11);
        assert!((c.fraction_of(22) - 0.5).abs() < 1e-12);
        assert_eq!(c.fraction_of(0), 0.0);
    }

    #[test]
    fn histogram_tracks_summary_stats() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        for v in [5, 1, 9, 5] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 20);
        assert_eq!(h.mean(), 5.0);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(9));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(2);
        let mut b = Histogram::new();
        b.record(10);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), Some(2));
        assert_eq!(a.max(), Some(10));
        let mut empty = Histogram::new();
        empty.merge(&a);
        assert_eq!(empty.count(), 2);
    }

    #[test]
    fn rate_meter_computes_gbps_and_utilization() {
        let mut m = RateMeter::new();
        m.record(SimTime::from_us(2), 100_000); // 100 KB in 2 us = 400 Gbps
        assert!((m.rate_gbps(SimTime::from_us(2)) - 400.0).abs() < 1e-9);
        let util = m.utilization(SimTime::from_us(2), 400e9);
        assert!((util - 1.0).abs() < 1e-12);
        assert_eq!(m.rate_bps(SimTime::ZERO), 0.0);
    }

    #[test]
    fn timeseries_resamples_with_step_hold() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::ZERO, 128.0);
        ts.record(SimTime::from_ns(50), 64.0);
        ts.record(SimTime::from_ns(90), 1.0);
        let r = ts.resample(SimTime::from_ns(100), 10);
        assert_eq!(r.len(), 10);
        assert_eq!(r[0], 128.0);
        assert_eq!(r[4], 128.0); // t=40ns, still 128
        assert_eq!(r[5], 64.0); // t=50ns
        assert_eq!(r[9], 1.0); // t=90ns
    }

    #[test]
    fn reservoir_is_exact_under_capacity() {
        let mut r = Reservoir::new(10, 1);
        for v in [5u64, 1, 9] {
            r.record(v);
        }
        assert_eq!(r.quantile(0.0), Some(1));
        assert_eq!(r.quantile(1.0), Some(9));
        assert_eq!(r.quantile(0.5), Some(5));
        assert_eq!(r.seen(), 3);
    }

    #[test]
    fn reservoir_tracks_distribution_over_capacity() {
        let mut r = Reservoir::new(500, 2);
        for v in 0..100_000u64 {
            r.record(v);
        }
        let p50 = r.quantile(0.5).unwrap() as f64;
        assert!((30_000.0..70_000.0).contains(&p50), "{p50}");
        let p99 = r.quantile(0.99).unwrap() as f64;
        assert!(p99 > 90_000.0, "{p99}");
    }

    #[test]
    fn reservoir_empty_quantile_is_none() {
        assert_eq!(Reservoir::new(4, 0).quantile(0.5), None);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn timeseries_rejects_unordered_samples() {
        let mut ts = TimeSeries::new();
        ts.record(SimTime::from_ns(10), 1.0);
        ts.record(SimTime::from_ns(5), 2.0);
    }
}
