//! `simtrace`: structured tracing and timeline metrics for simulations.
//!
//! Where the [`Auditor`](crate::Auditor) answers "did the run keep its
//! invariants?" with a digest, a [`Tracer`] answers "what did the run *do*
//! over time?" with a stream of typed [`TraceRecord`]s: command lifecycle,
//! RIG pipeline decisions, concatenator flushes (with their reason),
//! Property-Cache hits/misses/evictions, link transmissions with queue
//! depth, and fault/retry events. Records are stamped with the engine's
//! current event time and buffered in a bounded ring with drop accounting,
//! so tracing a multi-minute run cannot exhaust memory.
//!
//! Tracing is compiled in only under the `trace` cargo feature and costs
//! nothing otherwise: like the `audit` feature, this module always
//! compiles (so signatures stay nameable), but every field and call site
//! in the simulation crates is gated on `#[cfg(feature = "trace")]` — the
//! default build's hot paths contain no trace code at all.
//!
//! Three consumers read the buffer back (see `docs/OBSERVABILITY.md`):
//!
//! - [`TraceBuffer::to_chrome_json`] emits Chrome trace-event JSON that
//!   Perfetto / `chrome://tracing` load directly (sim time in µs);
//! - [`TraceBuffer::to_csv`] emits one row per record for ad-hoc analysis;
//! - [`TimelineMetrics::derive`] folds the stream into windowed time
//!   series (cache hit rate, coalescing ratio, flush sizes) and high-water
//!   marks, and [`ReplayCounters::replay`] reconstructs the aggregate
//!   counters — the double-entry bookkeeping check against `SimReport`.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::time::SimTime;

/// FNV-1a offset basis / prime (64-bit), matching the auditor's digest.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// First pid of the switch track range ([`TrackId::switch`]).
pub const SWITCH_PID_BASE: u32 = 0x0001_0000;
/// First pid of the link track range ([`TrackId::link`]).
pub const LINK_PID_BASE: u32 = 0x0002_0000;
/// The pid of cluster-scope events (fault transitions, route rebuilds).
pub const CLUSTER_PID: u32 = 0x0003_0000;

/// Lane (`tid`) conventions within a track; see [`TrackId`].
pub mod lane {
    /// Host command lifecycle (issue/complete) on a node track.
    pub const HOST: u32 = 0;
    /// Concatenation point of a node or switch track.
    pub const CONCAT: u32 = 1;
    /// Property-Cache bank array of a switch track.
    pub const CACHE: u32 = 2;
    /// Wire activity of a link track.
    pub const WIRE: u32 = 3;
    /// Fault events (drops, transitions) of any track.
    pub const FAULT: u32 = 4;
    /// RIG client unit `u` of a node track uses lane `RIG_BASE + u`.
    pub const RIG_BASE: u32 = 8;
}

/// Addresses one emitting component as a Chrome trace-event
/// (process, thread) pair: the *pid* is the cluster element (node,
/// switch, link, or the cluster itself) and the *tid* is a [`lane`]
/// within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TrackId {
    /// Process id: the cluster element (see the `*_PID*` constants).
    pub pid: u32,
    /// Thread id: a [`lane`] within the element.
    pub tid: u32,
}

impl TrackId {
    /// The track of `lane` on node `node`.
    pub const fn node(node: u32, lane: u32) -> Self {
        TrackId {
            pid: node,
            tid: lane,
        }
    }

    /// The track of `lane` on switch `sw`.
    pub const fn switch(sw: u32, lane: u32) -> Self {
        TrackId {
            pid: SWITCH_PID_BASE + sw,
            tid: lane,
        }
    }

    /// The wire track of link `link`.
    pub const fn link(link: u32) -> Self {
        TrackId {
            pid: LINK_PID_BASE + link,
            tid: lane::WIRE,
        }
    }

    /// The cluster-scope track (fault transitions, route rebuilds).
    pub const fn cluster() -> Self {
        TrackId {
            pid: CLUSTER_PID,
            tid: lane::FAULT,
        }
    }

    /// Human-readable name of the element this track belongs to.
    pub fn process_name(&self) -> String {
        match self.pid {
            p if p < SWITCH_PID_BASE => format!("node {p}"),
            p if p < LINK_PID_BASE => format!("switch {}", p - SWITCH_PID_BASE),
            p if p < CLUSTER_PID => format!("link {}", p - LINK_PID_BASE),
            _ => "cluster".to_string(),
        }
    }

    /// Human-readable name of the lane within the element.
    pub fn thread_name(&self) -> String {
        match self.tid {
            lane::HOST => "host".to_string(),
            lane::CONCAT => "concat".to_string(),
            lane::CACHE => "cache".to_string(),
            lane::WIRE => "wire".to_string(),
            lane::FAULT => "fault".to_string(),
            t if t >= lane::RIG_BASE => format!("rig {}", t - lane::RIG_BASE),
            t => format!("lane {t}"),
        }
    }
}

/// Why a concatenation queue emitted a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushReason {
    /// The next PR would not fit within the MTU.
    Full,
    /// The queue's first PR exhausted its delay budget.
    Expired,
    /// End-of-run (or caller-requested) drain.
    Drained,
    /// The PR bypassed queuing entirely (concatenation disabled, or a PR
    /// too large for the virtual-CQ pool).
    Bypass,
    /// A virtual CQ was evicted early under physical-pool pressure.
    Pressure,
}

impl FlushReason {
    /// Stable small integer for digests and CSV columns.
    pub const fn code(self) -> u64 {
        match self {
            FlushReason::Full => 0,
            FlushReason::Expired => 1,
            FlushReason::Drained => 2,
            FlushReason::Bypass => 3,
            FlushReason::Pressure => 4,
        }
    }
}

/// Why a packet was lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The stochastic loss process dropped it.
    Loss,
    /// A dead switch or severed route blackholed it.
    Dead,
}

/// One typed trace event; the payload of a [`TraceRecord`].
///
/// Every variant exposes exactly two `u64` argument columns
/// ([`TraceEvent::arg_values`]) so the CSV schema stays fixed; the
/// Chrome exporter names them per variant ([`TraceEvent::arg_names`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The host issued a RIG command of `idxs` idxs to client unit `unit`.
    CmdIssued {
        /// Client unit the command was assigned to.
        unit: u16,
        /// Idx count carved into the command.
        idxs: u32,
    },
    /// A RIG command on `unit` completed (all responses arrived).
    CmdCompleted {
        /// Client unit that finished.
        unit: u16,
    },
    /// The RIG pipeline issued a read PR for `idx`.
    PrIssued {
        /// Property index requested.
        idx: u32,
    },
    /// The response for an outstanding PR arrived and resolved it.
    PrResolved {
        /// Property index delivered.
        idx: u32,
    },
    /// A response arrived for a PR the watchdog had already abandoned.
    StaleResponse {
        /// Property index delivered late.
        idx: u32,
    },
    /// The Idx Filter dropped `idx` (property already fetched).
    FilterHit {
        /// Property index filtered.
        idx: u32,
    },
    /// Coalescing dropped `idx` (a PR for it is already outstanding).
    Coalesced {
        /// Property index coalesced.
        idx: u32,
    },
    /// A client unit stalled on a full Pending PR Table.
    Stalled {
        /// Outstanding PRs at the stall.
        outstanding: u32,
    },
    /// A concatenation queue emitted a packet.
    ConcatFlush {
        /// What triggered the emission.
        reason: FlushReason,
        /// PRs in the packet.
        prs: u32,
        /// Wire bytes of the packet.
        wire_bytes: u32,
    },
    /// A Property-Cache probe hit.
    CacheHit {
        /// Property index probed.
        idx: u32,
    },
    /// A Property-Cache probe missed.
    CacheMiss {
        /// Property index probed.
        idx: u32,
    },
    /// A property was deposited into the Property Cache.
    CacheInsert {
        /// Property index inserted.
        idx: u32,
    },
    /// A valid line was evicted to make room.
    CacheEvict {
        /// Property index evicted.
        idx: u32,
    },
    /// A packet was handed to a link's output queue.
    LinkTx {
        /// Wire bytes of the packet.
        bytes: u32,
        /// Output-queueing delay the packet saw (the link's backlog), in
        /// picoseconds — the queue-depth signal of the timeline metrics.
        backlog_ps: u64,
    },
    /// A packet was lost.
    PacketDropped {
        /// Loss process or dead element.
        reason: DropReason,
        /// PRs the packet carried.
        prs: u32,
    },
    /// The §7.1 watchdog restarted a command.
    WatchdogRetry {
        /// Retry ordinal of the current command (1 = first restart).
        retry: u32,
        /// Outstanding PRs abandoned by the restart.
        abandoned: u32,
    },
    /// A scheduled failure/repair took effect and routes reconverged.
    FaultApplied {
        /// Next-hop entries rewritten by the failover recomputation.
        failovers: u32,
    },
}

impl TraceEvent {
    /// Stable event name (Chrome `name` field / CSV `event` column).
    pub const fn name(&self) -> &'static str {
        match self {
            TraceEvent::CmdIssued { .. } => "cmd_issued",
            TraceEvent::CmdCompleted { .. } => "cmd_completed",
            TraceEvent::PrIssued { .. } => "pr_issued",
            TraceEvent::PrResolved { .. } => "pr_resolved",
            TraceEvent::StaleResponse { .. } => "stale_response",
            TraceEvent::FilterHit { .. } => "filter_hit",
            TraceEvent::Coalesced { .. } => "coalesced",
            TraceEvent::Stalled { .. } => "stalled",
            TraceEvent::ConcatFlush { .. } => "concat_flush",
            TraceEvent::CacheHit { .. } => "cache_hit",
            TraceEvent::CacheMiss { .. } => "cache_miss",
            TraceEvent::CacheInsert { .. } => "cache_insert",
            TraceEvent::CacheEvict { .. } => "cache_evict",
            TraceEvent::LinkTx { .. } => "link_tx",
            TraceEvent::PacketDropped { .. } => "packet_dropped",
            TraceEvent::WatchdogRetry { .. } => "watchdog_retry",
            TraceEvent::FaultApplied { .. } => "fault_applied",
        }
    }

    /// Names of the two argument columns (Chrome `args` keys).
    pub const fn arg_names(&self) -> [&'static str; 2] {
        match self {
            TraceEvent::CmdIssued { .. } => ["unit", "idxs"],
            TraceEvent::CmdCompleted { .. } => ["unit", "_"],
            TraceEvent::PrIssued { .. }
            | TraceEvent::PrResolved { .. }
            | TraceEvent::StaleResponse { .. }
            | TraceEvent::FilterHit { .. }
            | TraceEvent::Coalesced { .. }
            | TraceEvent::CacheHit { .. }
            | TraceEvent::CacheMiss { .. }
            | TraceEvent::CacheInsert { .. }
            | TraceEvent::CacheEvict { .. } => ["idx", "_"],
            TraceEvent::Stalled { .. } => ["outstanding", "_"],
            TraceEvent::ConcatFlush { .. } => ["prs", "wire_bytes"],
            TraceEvent::LinkTx { .. } => ["bytes", "backlog_ps"],
            TraceEvent::PacketDropped { .. } => ["reason", "prs"],
            TraceEvent::WatchdogRetry { .. } => ["retry", "abandoned"],
            TraceEvent::FaultApplied { .. } => ["failovers", "_"],
        }
    }

    /// Values of the two argument columns (CSV `a`,`b`).
    pub const fn arg_values(&self) -> [u64; 2] {
        match *self {
            TraceEvent::CmdIssued { unit, idxs } => [unit as u64, idxs as u64],
            TraceEvent::CmdCompleted { unit } => [unit as u64, 0],
            TraceEvent::PrIssued { idx }
            | TraceEvent::PrResolved { idx }
            | TraceEvent::StaleResponse { idx }
            | TraceEvent::FilterHit { idx }
            | TraceEvent::Coalesced { idx }
            | TraceEvent::CacheHit { idx }
            | TraceEvent::CacheMiss { idx }
            | TraceEvent::CacheInsert { idx }
            | TraceEvent::CacheEvict { idx } => [idx as u64, 0],
            TraceEvent::Stalled { outstanding } => [outstanding as u64, 0],
            TraceEvent::ConcatFlush {
                reason,
                prs,
                wire_bytes,
            } => [(reason.code() << 32) | prs as u64, wire_bytes as u64],
            TraceEvent::LinkTx { bytes, backlog_ps } => [bytes as u64, backlog_ps],
            TraceEvent::PacketDropped { reason, prs } => [
                match reason {
                    DropReason::Loss => 0,
                    DropReason::Dead => 1,
                },
                prs as u64,
            ],
            TraceEvent::WatchdogRetry { retry, abandoned } => [retry as u64, abandoned as u64],
            TraceEvent::FaultApplied { failovers } => [failovers as u64, 0],
        }
    }
}

/// One timestamped trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Engine event time the record was emitted at.
    pub time: SimTime,
    /// The emitting component's track.
    pub track: TrackId,
    /// The typed event.
    pub event: TraceEvent,
}

/// Tracer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Maximum records buffered; further records are counted as dropped.
    pub capacity: usize,
}

impl Default for TraceConfig {
    /// One million records (~40 MB) — ample for the test-scale clusters.
    fn default() -> Self {
        TraceConfig { capacity: 1 << 20 }
    }
}

/// The bounded record buffer with drop accounting.
///
/// The buffer keeps the *earliest* `capacity` records and counts the rest
/// as dropped: the prefix of a trace stays exactly reproducible whatever
/// the capacity, which is what the golden-trace test pins down.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    capacity: usize,
    records: Vec<TraceRecord>,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates an empty buffer holding at most `capacity` records.
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            capacity,
            records: Vec::new(),
            dropped: 0,
        }
    }

    /// Appends `rec`, or counts it as dropped when the buffer is full.
    #[inline]
    pub fn record(&mut self, rec: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(rec);
        } else {
            self.dropped += 1;
        }
    }

    /// The buffered records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records currently buffered.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records offered overall (buffered + dropped).
    pub fn offered(&self) -> u64 {
        self.records.len() as u64 + self.dropped
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// FNV-1a digest over every buffered record (time, track, event name
    /// and arguments). Two same-seed runs must produce identical digests —
    /// the full-trace strengthening of the engine's event digest.
    pub fn digest(&self) -> u64 {
        fn fold(d: u64, v: u64) -> u64 {
            v.to_le_bytes()
                .iter()
                .fold(d, |d, &b| (d ^ b as u64).wrapping_mul(FNV_PRIME))
        }
        let mut d = FNV_OFFSET;
        for r in &self.records {
            d = fold(d, r.time.as_ps());
            d = fold(d, r.track.pid as u64);
            d = fold(d, r.track.tid as u64);
            for b in r.event.name().bytes() {
                d = (d ^ b as u64).wrapping_mul(FNV_PRIME);
            }
            let [a, bv] = r.event.arg_values();
            d = fold(d, a);
            d = fold(d, bv);
        }
        d
    }

    /// The first `n` CSV rows (no header) — the golden test's
    /// human-readable prefix.
    pub fn human_prefix(&self, n: usize) -> String {
        let mut out = String::new();
        for r in self.records.iter().take(n) {
            Self::csv_row(&mut out, r);
        }
        out
    }

    fn csv_row(out: &mut String, r: &TraceRecord) {
        let [a, b] = r.event.arg_values();
        let _ = writeln!(
            out,
            "{},{},{},{},{a},{b}",
            r.time.as_ps(),
            r.track.pid,
            r.track.tid,
            r.event.name()
        );
    }

    /// Exports the buffer as CSV: a header line, then exactly one row per
    /// buffered record (`offered() - dropped()` rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_ps,pid,tid,event,a,b\n");
        for r in &self.records {
            Self::csv_row(&mut out, r);
        }
        out
    }

    /// Exports the buffer as Chrome trace-event JSON (the object form with
    /// a `traceEvents` array), loadable by Perfetto and `chrome://tracing`.
    ///
    /// Each record becomes an instant event (`"ph":"i"`) on its
    /// (pid, tid) track; metadata events name every process and thread.
    /// Timestamps are sim time converted to microseconds with picosecond
    /// precision (integer formatting — no float rounding).
    pub fn to_chrome_json(&self) -> String {
        let mut tracks: Vec<TrackId> = self.records.iter().map(|r| r.track).collect();
        tracks.sort_unstable();
        tracks.dedup();
        let mut pids: Vec<u32> = tracks.iter().map(|t| t.pid).collect();
        pids.dedup();

        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let mut push = |out: &mut String, ev: String| {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&ev);
        };
        for pid in &pids {
            let name = TrackId { pid: *pid, tid: 0 }.process_name();
            push(
                &mut out,
                format!(
                    "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\
                     \"args\":{{\"name\":\"{name}\"}}}}"
                ),
            );
        }
        for t in &tracks {
            let name = t.thread_name();
            push(
                &mut out,
                format!(
                    "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{},\"tid\":{},\
                     \"args\":{{\"name\":\"{name}\"}}}}",
                    t.pid, t.tid
                ),
            );
        }
        for r in &self.records {
            let ps = r.time.as_ps();
            let (us, frac) = (ps / 1_000_000, ps % 1_000_000);
            let [an, bn] = r.event.arg_names();
            let [av, bv] = r.event.arg_values();
            push(
                &mut out,
                format!(
                    "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{us}.{frac:06},\
                     \"pid\":{},\"tid\":{},\"args\":{{\"{an}\":{av},\"{bn}\":{bv}}}}}",
                    r.event.name(),
                    r.track.pid,
                    r.track.tid
                ),
            );
        }
        out.push_str("]}");
        out
    }
}

#[derive(Debug)]
struct TracerState {
    now: SimTime,
    buf: TraceBuffer,
}

/// A shared handle to the trace buffer, cloned into every instrumented
/// component (single-threaded simulation, so `Rc<RefCell<..>>`).
///
/// The event loop calls [`Tracer::set_now`] once per delivered event;
/// components then call [`Tracer::record`] without needing a clock of
/// their own — every record is stamped with the engine's current event
/// time, so the stream is monotone non-decreasing by construction.
///
/// # Example
///
/// ```
/// use netsparse_desim::trace::{lane, TraceConfig, TraceEvent, Tracer, TrackId};
/// use netsparse_desim::SimTime;
///
/// let tracer = Tracer::new(TraceConfig { capacity: 16 });
/// tracer.set_now(SimTime::from_ns(5));
/// tracer.record(TrackId::node(0, lane::HOST), TraceEvent::CmdIssued { unit: 0, idxs: 64 });
/// let buf = tracer.take();
/// assert_eq!(buf.len(), 1);
/// assert_eq!(buf.records()[0].time, SimTime::from_ns(5));
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    state: Rc<RefCell<TracerState>>,
}

impl Tracer {
    /// Creates a tracer with an empty buffer.
    pub fn new(cfg: TraceConfig) -> Self {
        Tracer {
            state: Rc::new(RefCell::new(TracerState {
                now: SimTime::ZERO,
                buf: TraceBuffer::new(cfg.capacity),
            })),
        }
    }

    /// Advances the stamp clock to the engine's current event time.
    #[inline]
    pub fn set_now(&self, now: SimTime) {
        self.state.borrow_mut().now = now;
    }

    /// The current stamp clock.
    pub fn now(&self) -> SimTime {
        self.state.borrow().now
    }

    /// Records `event` on `track`, stamped with the current event time.
    #[inline]
    pub fn record(&self, track: TrackId, event: TraceEvent) {
        let mut st = self.state.borrow_mut();
        let time = st.now;
        st.buf.record(TraceRecord { time, track, event });
    }

    /// Records buffered so far (buffered + dropped = offered).
    pub fn offered(&self) -> u64 {
        self.state.borrow().buf.offered()
    }

    /// Takes the buffer out of the tracer, leaving an empty one of the
    /// same capacity behind (other clones keep recording into the empty
    /// buffer; call at end of run).
    pub fn take(&self) -> TraceBuffer {
        let mut st = self.state.borrow_mut();
        let cap = st.buf.capacity;
        std::mem::replace(&mut st.buf, TraceBuffer::new(cap))
    }
}

/// Aggregate counters reconstructed by replaying a trace; the
/// double-entry bookkeeping side of the trace-vs-metrics consistency test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounters {
    /// `cmd_issued` records.
    pub cmds_issued: u64,
    /// `cmd_completed` records.
    pub cmds_completed: u64,
    /// `pr_issued` records.
    pub prs_issued: u64,
    /// `pr_resolved` records.
    pub prs_resolved: u64,
    /// `stale_response` records.
    pub stale_responses: u64,
    /// `filter_hit` records.
    pub filter_hits: u64,
    /// `coalesced` records.
    pub coalesced: u64,
    /// `stalled` records.
    pub stalls: u64,
    /// `concat_flush` records.
    pub flushes: u64,
    /// PRs carried by all `concat_flush` records.
    pub flushed_prs: u64,
    /// `cache_hit` + `cache_miss` records.
    pub cache_lookups: u64,
    /// `cache_hit` records.
    pub cache_hits: u64,
    /// `cache_miss` records.
    pub cache_misses: u64,
    /// `cache_insert` records.
    pub cache_insertions: u64,
    /// `cache_evict` records.
    pub cache_evictions: u64,
    /// `link_tx` records.
    pub link_packets: u64,
    /// Bytes carried by all `link_tx` records.
    pub link_bytes: u64,
    /// `packet_dropped` records with the loss reason.
    pub dropped_loss: u64,
    /// `packet_dropped` records with the dead reason.
    pub dropped_dead: u64,
    /// `watchdog_retry` records.
    pub watchdog_retries: u64,
    /// PRs abandoned across all `watchdog_retry` records.
    pub abandoned_prs: u64,
    /// `fault_applied` records.
    pub fault_transitions: u64,
}

impl ReplayCounters {
    /// Replays `records`, tallying every event kind.
    pub fn replay(records: &[TraceRecord]) -> Self {
        let mut c = ReplayCounters::default();
        for r in records {
            match r.event {
                TraceEvent::CmdIssued { .. } => c.cmds_issued += 1,
                TraceEvent::CmdCompleted { .. } => c.cmds_completed += 1,
                TraceEvent::PrIssued { .. } => c.prs_issued += 1,
                TraceEvent::PrResolved { .. } => c.prs_resolved += 1,
                TraceEvent::StaleResponse { .. } => c.stale_responses += 1,
                TraceEvent::FilterHit { .. } => c.filter_hits += 1,
                TraceEvent::Coalesced { .. } => c.coalesced += 1,
                TraceEvent::Stalled { .. } => c.stalls += 1,
                TraceEvent::ConcatFlush { prs, .. } => {
                    c.flushes += 1;
                    c.flushed_prs += prs as u64;
                }
                TraceEvent::CacheHit { .. } => {
                    c.cache_lookups += 1;
                    c.cache_hits += 1;
                }
                TraceEvent::CacheMiss { .. } => {
                    c.cache_lookups += 1;
                    c.cache_misses += 1;
                }
                TraceEvent::CacheInsert { .. } => c.cache_insertions += 1,
                TraceEvent::CacheEvict { .. } => c.cache_evictions += 1,
                TraceEvent::LinkTx { bytes, .. } => {
                    c.link_packets += 1;
                    c.link_bytes += bytes as u64;
                }
                TraceEvent::PacketDropped { reason, .. } => match reason {
                    DropReason::Loss => c.dropped_loss += 1,
                    DropReason::Dead => c.dropped_dead += 1,
                },
                TraceEvent::WatchdogRetry { abandoned, .. } => {
                    c.watchdog_retries += 1;
                    c.abandoned_prs += abandoned as u64;
                }
                TraceEvent::FaultApplied { .. } => c.fault_transitions += 1,
            }
        }
        c
    }
}

/// Windowed time series and high-water marks derived from a trace — the
/// internal curves the paper's evaluation points at (queue occupancy,
/// cache hit rate over the epoch, coalescing efficiency).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineMetrics {
    /// Number of equal-width time windows the run was split into.
    pub windows: usize,
    /// Window width in picoseconds.
    pub window_ps: u64,
    /// Per-window Property-Cache hit rate (`NaN`-free: windows without
    /// lookups report 0).
    pub cache_hit_rate: Vec<f64>,
    /// Per-window fraction of remote references eliminated by filtering +
    /// coalescing (`(filter_hit + coalesced) / (… + pr_issued)`).
    pub coalescing_ratio: Vec<f64>,
    /// Per-window mean PRs per concatenator flush (0 when no flushes).
    pub flush_prs_mean: Vec<f64>,
    /// Worst link output-queue delay observed, in picoseconds.
    pub link_backlog_high_water_ps: u64,
    /// Largest PR count in any single concatenator flush.
    pub max_flush_prs: u64,
    /// Records the metrics were derived from.
    pub records: u64,
    /// Records dropped by the bounded buffer (not represented here).
    pub dropped: u64,
}

impl TimelineMetrics {
    /// Splits `buf`'s time span into `windows` equal windows and derives
    /// the per-window series and high-water marks.
    pub fn derive(buf: &TraceBuffer, windows: usize) -> Self {
        let windows = windows.max(1);
        let end_ps = buf
            .records()
            .iter()
            .map(|r| r.time.as_ps())
            .max()
            .unwrap_or(0);
        let window_ps = (end_ps / windows as u64).max(1);
        let win_of = |t: SimTime| -> usize { ((t.as_ps() / window_ps) as usize).min(windows - 1) };
        let mut hits = vec![0u64; windows];
        let mut lookups = vec![0u64; windows];
        let mut eliminated = vec![0u64; windows];
        let mut remote = vec![0u64; windows];
        let mut flushes = vec![0u64; windows];
        let mut flush_prs = vec![0u64; windows];
        let mut backlog_hw = 0u64;
        let mut max_flush = 0u64;
        for r in buf.records() {
            let w = win_of(r.time);
            match r.event {
                TraceEvent::CacheHit { .. } => {
                    hits[w] += 1;
                    lookups[w] += 1;
                }
                TraceEvent::CacheMiss { .. } => lookups[w] += 1,
                TraceEvent::FilterHit { .. } | TraceEvent::Coalesced { .. } => {
                    eliminated[w] += 1;
                    remote[w] += 1;
                }
                TraceEvent::PrIssued { .. } => remote[w] += 1,
                TraceEvent::ConcatFlush { prs, .. } => {
                    flushes[w] += 1;
                    flush_prs[w] += prs as u64;
                    max_flush = max_flush.max(prs as u64);
                }
                TraceEvent::LinkTx { backlog_ps, .. } => {
                    backlog_hw = backlog_hw.max(backlog_ps);
                }
                _ => {}
            }
        }
        let ratio = |num: &[u64], den: &[u64]| -> Vec<f64> {
            num.iter()
                .zip(den)
                .map(|(&n, &d)| if d == 0 { 0.0 } else { n as f64 / d as f64 })
                .collect()
        };
        TimelineMetrics {
            windows,
            window_ps,
            cache_hit_rate: ratio(&hits, &lookups),
            coalescing_ratio: ratio(&eliminated, &remote),
            flush_prs_mean: ratio(&flush_prs, &flushes),
            link_backlog_high_water_ps: backlog_hw,
            max_flush_prs: max_flush,
            records: buf.len() as u64,
            dropped: buf.dropped(),
        }
    }
}

/// Everything the simulation folds back into its report when tracing is
/// enabled: the raw buffer, the derived timeline, and the trace digest.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceReport {
    /// The buffered records (bounded; see [`TraceBuffer::dropped`]).
    pub buffer: TraceBuffer,
    /// Windowed time series and high-water marks.
    pub timeline: TimelineMetrics,
    /// Full-trace FNV-1a digest ([`TraceBuffer::digest`]).
    pub digest: u64,
}

impl TraceReport {
    /// Builds the report from a finished tracer, deriving `windows`
    /// timeline windows.
    pub fn from_tracer(tracer: &Tracer, windows: usize) -> Self {
        let buffer = tracer.take();
        let timeline = TimelineMetrics::derive(&buffer, windows);
        let digest = buffer.digest();
        TraceReport {
            buffer,
            timeline,
            digest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, track: TrackId, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_ns(t_ns),
            track,
            event,
        }
    }

    #[test]
    fn bounded_buffer_accounts_drops() {
        let mut b = TraceBuffer::new(2);
        for i in 0..5 {
            b.record(rec(
                i,
                TrackId::node(0, lane::HOST),
                TraceEvent::CmdCompleted { unit: 0 },
            ));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.dropped(), 3);
        assert_eq!(b.offered(), 5);
        // CSV rows = header + buffered records only.
        assert_eq!(b.to_csv().lines().count(), 3);
    }

    #[test]
    fn digest_is_deterministic_and_content_sensitive() {
        let mut a = TraceBuffer::new(16);
        let mut b = TraceBuffer::new(16);
        for i in 0..4 {
            let r = rec(
                i,
                TrackId::switch(1, lane::CACHE),
                TraceEvent::CacheHit { idx: i as u32 },
            );
            a.record(r);
            b.record(r);
        }
        assert_eq!(a.digest(), b.digest());
        b.record(rec(
            9,
            TrackId::link(0),
            TraceEvent::LinkTx {
                bytes: 80,
                backlog_ps: 0,
            },
        ));
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn tracer_stamps_engine_time() {
        let tr = Tracer::new(TraceConfig { capacity: 8 });
        tr.set_now(SimTime::from_ns(3));
        tr.record(
            TrackId::node(1, lane::RIG_BASE),
            TraceEvent::PrIssued { idx: 7 },
        );
        let clone = tr.clone();
        clone.set_now(SimTime::from_ns(4));
        clone.record(
            TrackId::node(1, lane::RIG_BASE),
            TraceEvent::PrResolved { idx: 7 },
        );
        let buf = tr.take();
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.records()[1].time, SimTime::from_ns(4));
        // After take(), clones record into a fresh empty buffer.
        assert_eq!(clone.offered(), 0);
    }

    #[test]
    fn chrome_json_has_metadata_and_instants() {
        let mut b = TraceBuffer::new(8);
        b.record(rec(
            1,
            TrackId::node(0, lane::HOST),
            TraceEvent::CmdIssued { unit: 2, idxs: 64 },
        ));
        b.record(rec(
            2,
            TrackId::link(3),
            TraceEvent::LinkTx {
                bytes: 80,
                backlog_ps: 500,
            },
        ));
        let json = b.to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"node 0\""));
        assert!(json.contains("\"link 3\""));
        // 1 ns = 0.001 µs, printed with integer precision.
        assert!(json.contains("\"ts\":0.001000"), "{json}");
    }

    #[test]
    fn replay_tallies_every_kind() {
        let t = TrackId::node(0, lane::RIG_BASE);
        let mut b = TraceBuffer::new(32);
        b.record(rec(0, t, TraceEvent::PrIssued { idx: 1 }));
        b.record(rec(1, t, TraceEvent::FilterHit { idx: 1 }));
        b.record(rec(1, t, TraceEvent::Coalesced { idx: 2 }));
        b.record(rec(2, t, TraceEvent::PrResolved { idx: 1 }));
        b.record(rec(
            2,
            TrackId::switch(0, lane::CACHE),
            TraceEvent::CacheMiss { idx: 1 },
        ));
        b.record(rec(
            3,
            TrackId::switch(0, lane::CACHE),
            TraceEvent::CacheHit { idx: 1 },
        ));
        b.record(rec(
            3,
            TrackId::node(0, lane::CONCAT),
            TraceEvent::ConcatFlush {
                reason: FlushReason::Expired,
                prs: 5,
                wire_bytes: 152,
            },
        ));
        let c = ReplayCounters::replay(b.records());
        assert_eq!(c.prs_issued, 1);
        assert_eq!(c.prs_resolved, 1);
        assert_eq!(c.filter_hits, 1);
        assert_eq!(c.coalesced, 1);
        assert_eq!(c.cache_lookups, 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!((c.flushes, c.flushed_prs), (1, 5));
    }

    #[test]
    fn timeline_windows_partition_the_run() {
        let mut b = TraceBuffer::new(64);
        // Lookups in the first half hit, second half miss.
        for i in 0..10u64 {
            let ev = if i < 5 {
                TraceEvent::CacheHit { idx: i as u32 }
            } else {
                TraceEvent::CacheMiss { idx: i as u32 }
            };
            b.record(rec(i * 100, TrackId::switch(0, lane::CACHE), ev));
        }
        b.record(rec(
            450,
            TrackId::link(0),
            TraceEvent::LinkTx {
                bytes: 1,
                backlog_ps: 777,
            },
        ));
        let m = TimelineMetrics::derive(&b, 2);
        assert_eq!(m.windows, 2);
        assert!(m.cache_hit_rate[0] > 0.9, "{:?}", m.cache_hit_rate);
        assert!(m.cache_hit_rate[1] < 0.2, "{:?}", m.cache_hit_rate);
        assert_eq!(m.link_backlog_high_water_ps, 777);
    }

    #[test]
    fn track_names_are_human_readable() {
        assert_eq!(TrackId::node(3, lane::HOST).process_name(), "node 3");
        assert_eq!(TrackId::switch(2, lane::CACHE).process_name(), "switch 2");
        assert_eq!(TrackId::link(9).process_name(), "link 9");
        assert_eq!(TrackId::cluster().process_name(), "cluster");
        assert_eq!(TrackId::node(0, lane::RIG_BASE + 2).thread_name(), "rig 2");
        assert_eq!(TrackId::node(0, lane::CONCAT).thread_name(), "concat");
    }

    #[test]
    fn human_prefix_matches_csv_rows() {
        let mut b = TraceBuffer::new(8);
        b.record(rec(
            1,
            TrackId::node(0, lane::HOST),
            TraceEvent::CmdCompleted { unit: 1 },
        ));
        b.record(rec(
            2,
            TrackId::node(0, lane::HOST),
            TraceEvent::CmdCompleted { unit: 2 },
        ));
        let prefix = b.human_prefix(1);
        assert_eq!(prefix, "1000,0,0,cmd_completed,1,0\n");
        assert!(b.to_csv().contains(&prefix));
    }
}
