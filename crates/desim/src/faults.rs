//! Packet-loss processes for fault injection.
//!
//! The paper's §7.1 treats loss as rare independent hardware failure; real
//! deployments also see *correlated* loss bursts (a flapping optic, a
//! congested failure domain, an FEC storm). This module provides both
//! shapes behind one interface:
//!
//! - [`LossModel::Bernoulli`] — the classic independent per-packet drop,
//! - [`LossModel::GilbertElliott`] — the standard two-state burst-loss
//!   Markov chain: a *good* state with low (usually zero) loss and a *bad*
//!   state with high loss, with geometric sojourn times in each.
//!
//! A [`LossProcess`] owns the model, a seeded [`SplitMix64`] stream and the
//! burst bookkeeping (current run of consecutive drops, plus a histogram of
//! completed burst lengths for the fault report). Like everything in the
//! stack it is bit-deterministic in its seed.

use crate::rng::SplitMix64;
use crate::stats::Histogram;

/// A packet-loss model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss ever.
    None,
    /// Independent per-packet loss with probability `rate`.
    Bernoulli {
        /// Drop probability per packet.
        rate: f64,
    },
    /// The Gilbert–Elliott two-state chain. Each packet first advances the
    /// state (good→bad with `p_enter_burst`, bad→good with
    /// `p_exit_burst`), then drops with the state's loss probability.
    GilbertElliott {
        /// Probability of entering the bad state per packet.
        p_enter_burst: f64,
        /// Probability of leaving the bad state per packet (mean burst
        /// length of bad-state packets is `1 / p_exit_burst`).
        p_exit_burst: f64,
        /// Drop probability while in the good state (usually 0).
        loss_good: f64,
        /// Drop probability while in the bad state (usually near 1).
        loss_bad: f64,
    },
}

impl LossModel {
    /// Whether this model can ever drop a packet.
    pub fn is_lossy(&self) -> bool {
        match *self {
            LossModel::None => false,
            LossModel::Bernoulli { rate } => rate > 0.0,
            LossModel::GilbertElliott {
                loss_good,
                loss_bad,
                ..
            } => loss_good > 0.0 || loss_bad > 0.0,
        }
    }

    /// The stationary (long-run) packet-loss rate of the model.
    pub fn expected_loss_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott {
                p_enter_burst,
                p_exit_burst,
                loss_good,
                loss_bad,
            } => {
                let denom = p_enter_burst + p_exit_burst;
                if denom == 0.0 {
                    return loss_good;
                }
                let pi_bad = p_enter_burst / denom;
                (1.0 - pi_bad) * loss_good + pi_bad * loss_bad
            }
        }
    }

    /// The mean sojourn in the bad state, in packets (the model's burst
    /// scale). `1.0` for [`LossModel::Bernoulli`] (no memory).
    pub fn mean_burst_packets(&self) -> f64 {
        match *self {
            LossModel::None | LossModel::Bernoulli { .. } => 1.0,
            LossModel::GilbertElliott { p_exit_burst, .. } => {
                if p_exit_burst > 0.0 {
                    1.0 / p_exit_burst
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

/// A running loss process: model + RNG stream + burst accounting.
///
/// # Example
///
/// ```
/// use netsparse_desim::{LossModel, LossProcess};
///
/// let model = LossModel::GilbertElliott {
///     p_enter_burst: 0.01,
///     p_exit_burst: 0.25,
///     loss_good: 0.0,
///     loss_bad: 0.9,
/// };
/// let mut a = LossProcess::new(model, 7);
/// let mut b = LossProcess::new(model, 7);
/// let drops = (0..1000).filter(|_| a.drop_packet()).count();
/// assert_eq!(drops, (0..1000).filter(|_| b.drop_packet()).count());
/// assert!(drops > 0);
/// ```
#[derive(Debug, Clone)]
pub struct LossProcess {
    model: LossModel,
    rng: SplitMix64,
    in_bad_state: bool,
    current_burst: u64,
    bursts: Histogram,
    drops: u64,
    offered: u64,
}

impl LossProcess {
    /// Creates a process for `model` seeded with `seed`.
    pub fn new(model: LossModel, seed: u64) -> Self {
        LossProcess {
            model,
            rng: SplitMix64::new(seed),
            in_bad_state: false,
            current_burst: 0,
            bursts: Histogram::new(),
            drops: 0,
            offered: 0,
        }
    }

    /// The model in use.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Decides the fate of one packet: `true` means drop. Advances the
    /// model state and the burst accounting.
    pub fn drop_packet(&mut self) -> bool {
        self.offered += 1;
        let p_drop = match self.model {
            LossModel::None => {
                self.close_burst();
                return false;
            }
            LossModel::Bernoulli { rate } => rate,
            LossModel::GilbertElliott {
                p_enter_burst,
                p_exit_burst,
                loss_good,
                loss_bad,
            } => {
                if self.in_bad_state {
                    if self.rng.chance(p_exit_burst) {
                        self.in_bad_state = false;
                    }
                } else if self.rng.chance(p_enter_burst) {
                    self.in_bad_state = true;
                }
                if self.in_bad_state {
                    loss_bad
                } else {
                    loss_good
                }
            }
        };
        let dropped = p_drop > 0.0 && self.rng.chance(p_drop);
        if dropped {
            self.drops += 1;
            self.current_burst += 1;
        } else {
            self.close_burst();
        }
        dropped
    }

    fn close_burst(&mut self) {
        if self.current_burst > 0 {
            self.bursts.record(self.current_burst);
            self.current_burst = 0;
        }
    }

    /// Packets offered to the process so far.
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// Packets dropped so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// The distribution of completed drop-burst lengths (runs of
    /// consecutive drops). Call [`LossProcess::finish`] first so a burst
    /// in progress at end of run is included.
    pub fn burst_lengths(&self) -> &Histogram {
        &self.bursts
    }

    /// Closes any burst in progress (end of run).
    pub fn finish(&mut self) {
        self.close_burst();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_drops() {
        let mut p = LossProcess::new(LossModel::None, 1);
        assert!((0..10_000).all(|_| !p.drop_packet()));
        assert_eq!(p.drops(), 0);
        assert!(!LossModel::None.is_lossy());
    }

    #[test]
    fn bernoulli_hits_its_rate() {
        let model = LossModel::Bernoulli { rate: 0.03 };
        let mut p = LossProcess::new(model, 42);
        let n = 200_000;
        for _ in 0..n {
            p.drop_packet();
        }
        let rate = p.drops() as f64 / n as f64;
        assert!((rate - 0.03).abs() < 0.005, "rate {rate}");
        assert!((model.expected_loss_rate() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn gilbert_elliott_hits_rate_and_burst_length() {
        let model = LossModel::GilbertElliott {
            p_enter_burst: 0.005,
            p_exit_burst: 0.2,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let mut p = LossProcess::new(model, 9);
        let n = 400_000;
        for _ in 0..n {
            p.drop_packet();
        }
        p.finish();
        let rate = p.drops() as f64 / n as f64;
        let expect = model.expected_loss_rate();
        assert!(
            (rate - expect).abs() < expect * 0.15,
            "rate {rate} vs expected {expect}"
        );
        // With loss_bad = 1, drop bursts are exactly bad-state sojourns:
        // mean 1 / p_exit = 5 packets.
        let mean_burst = p.burst_lengths().mean();
        assert!(
            (mean_burst - 5.0).abs() < 0.75,
            "mean burst {mean_burst} vs 5"
        );
    }

    #[test]
    fn gilbert_elliott_bursts_are_longer_than_bernoulli() {
        // Same long-run rate, very different correlation structure.
        let ge = LossModel::GilbertElliott {
            p_enter_burst: 0.002,
            p_exit_burst: 0.1,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        let bern = LossModel::Bernoulli {
            rate: ge.expected_loss_rate(),
        };
        let run = |m: LossModel| {
            let mut p = LossProcess::new(m, 77);
            for _ in 0..300_000 {
                p.drop_packet();
            }
            p.finish();
            p.burst_lengths().mean()
        };
        assert!(run(ge) > 2.0 * run(bern));
    }

    #[test]
    fn same_seed_is_bit_identical_and_seeds_diverge() {
        let model = LossModel::GilbertElliott {
            p_enter_burst: 0.01,
            p_exit_burst: 0.3,
            loss_good: 0.001,
            loss_bad: 0.8,
        };
        let trace = |seed: u64| -> Vec<bool> {
            let mut p = LossProcess::new(model, seed);
            (0..5_000).map(|_| p.drop_packet()).collect()
        };
        assert_eq!(trace(5), trace(5));
        assert_ne!(trace(5), trace(6));
    }

    #[test]
    fn mean_burst_helper() {
        let ge = LossModel::GilbertElliott {
            p_enter_burst: 0.01,
            p_exit_burst: 0.25,
            loss_good: 0.0,
            loss_bad: 1.0,
        };
        assert!((ge.mean_burst_packets() - 4.0).abs() < 1e-12);
        assert_eq!(LossModel::Bernoulli { rate: 0.5 }.mean_burst_packets(), 1.0);
    }
}
