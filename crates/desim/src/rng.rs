//! A tiny deterministic PRNG — the *only* source of randomness in the
//! simulation stack.
//!
//! Every random decision in the workspace, from workload generation in
//! `netsparse-sparse` down to fault injection and sampled statistics, draws
//! from this SplitMix64 so that simulations are bit-reproducible functions
//! of their seeds across machines and Rust versions. Foreign RNGs (`rand`,
//! `thread_rng`, hashing-based tie-breaks) are banned by `cargo xtask lint`
//! rule `no-foreign-rng`; see `docs/STATIC_ANALYSIS.md`.

/// SplitMix64: a fast, high-quality 64-bit PRNG with a single `u64` of
/// state. It is the generator Java's `SplittableRandom` and many simulators
/// use for seeding.
///
/// # Example
///
/// ```
/// use netsparse_desim::SplitMix64;
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let x = a.next_range(10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)` using Lemire's multiply-shift
    /// reduction (slightly biased for astronomically large bounds, which is
    /// fine for simulation decisions).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_range(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_range: bound must be nonzero");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo < hi, "range_u32: empty range {lo}..{hi}");
        lo + self.next_range((hi - lo) as u64) as u32
    }

    /// Returns a uniform `u32` in `[lo, hi]` (inclusive upper bound).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn range_u32_inclusive(&mut self, lo: u32, hi: u32) -> u32 {
        assert!(lo <= hi, "range_u32_inclusive: empty range {lo}..={hi}");
        lo + self.next_range((hi - lo) as u64 + 1) as u32
    }

    /// Returns a uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64: empty range {lo}..{hi}");
        lo + self.next_range(hi - lo)
    }

    /// Returns a uniform random `bool`.
    #[inline]
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]` — safe to feed to `ln()`.
    #[inline]
    pub fn next_f64_open(&mut self) -> f64 {
        ((self.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo >= hi`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "range_f64: invalid range {lo}..{hi}"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SplitMix64::new(123);
        let mut b = SplitMix64::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_range(13) < 13);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(99);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn chance_matches_probability() {
        let mut r = SplitMix64::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "bound must be nonzero")]
    fn zero_bound_panics() {
        SplitMix64::new(0).next_range(0);
    }
}
