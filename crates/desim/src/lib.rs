//! Discrete-event simulation engine for the NetSparse reproduction.
//!
//! This crate is the bottom-most substrate of the workspace: a small,
//! deterministic, allocation-conscious discrete-event kernel in the spirit of
//! the SST core the paper uses, plus the measurement utilities (counters,
//! histograms, time series) every other crate reports statistics with.
//!
//! The engine is deliberately generic: the event payload type is chosen by
//! the embedding simulator (see the `netsparse` core crate), and components
//! in the other crates are written as *passive state machines* that are
//! driven by the event loop rather than owning threads or channels. That
//! makes every hardware model unit-testable without an event loop, and makes
//! whole-cluster simulations single-threaded and perfectly reproducible.
//!
//! # Example
//!
//! ```
//! use netsparse_desim::{Engine, SimTime};
//!
//! // A one-shot "ping-pong" model: each Ping schedules a Pong 5 ns later.
//! #[derive(Debug, PartialEq, Eq)]
//! enum Ev { Ping(u32), Pong(u32) }
//!
//! let mut engine: Engine<Ev> = Engine::new();
//! engine.schedule(SimTime::from_ns(1), Ev::Ping(7));
//! let mut log = Vec::new();
//! engine.run(|now, ev, sched| {
//!     match ev {
//!         Ev::Ping(x) => sched.schedule(now + SimTime::from_ns(5), Ev::Pong(x)),
//!         Ev::Pong(x) => log.push((now, x)),
//!     }
//! });
//! assert_eq!(log, vec![(SimTime::from_ns(6), 7)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod engine;
pub mod faults;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use audit::Auditor;
pub use engine::{Engine, EventQueue, Liveness, Scheduler, StallCause, StallReport};
pub use faults::{LossModel, LossProcess};
pub use rng::SplitMix64;
pub use stats::{Counter, Histogram, RateMeter, Reservoir, TimeSeries};
pub use time::{Clock, SimTime};
pub use trace::{TraceConfig, TraceReport, Tracer};
