//! Simulated time.
//!
//! Time is tracked in integer **picoseconds** inside a [`SimTime`] newtype.
//! Picosecond resolution lets us represent single cycles of the fastest
//! clocks in the system (the 2.2 GHz SNIC clock is ~454.5 ps per cycle)
//! without rounding error accumulating over a simulation, while a `u64`
//! still covers more than 200 days of simulated time.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a span of it), in picoseconds.
///
/// `SimTime` is used both as an absolute timestamp and as a duration; the
/// arithmetic impls (`Add`, `Sub`, scalar `Mul`/`Div`) make either usage
/// read naturally, mirroring how SST and gem5 treat ticks.
///
/// # Example
///
/// ```
/// use netsparse_desim::SimTime;
/// let t = SimTime::from_ns(450) + SimTime::from_us(2);
/// assert_eq!(t.as_ps(), 2_450_000);
/// assert!((t.as_secs_f64() - 2.45e-6).abs() < 1e-18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero timestamp (simulation start).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable timestamp; used as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a timestamp from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Creates a timestamp from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }

    /// Creates a timestamp from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }

    /// Creates a timestamp from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }

    /// Creates a timestamp from (possibly fractional) seconds, rounding to
    /// the nearest picosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large for the `u64`
    /// picosecond range.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs >= 0.0 && secs.is_finite(),
            "SimTime::from_secs_f64: invalid seconds value {secs}"
        );
        let ps = secs * 1e12;
        assert!(ps <= u64::MAX as f64, "SimTime::from_secs_f64: overflow");
        SimTime(ps.round() as u64)
    }

    /// Creates a timestamp from fractional picoseconds, rounding to the
    /// nearest whole picosecond.
    ///
    /// This is the one sanctioned float→time conversion for model code:
    /// `cargo xtask lint` (rule `no-raw-time-math`) bans ad-hoc
    /// `... as u64` casts into `SimTime` outside this module so rounding
    /// behaviour stays uniform across the stack.
    ///
    /// # Panics
    ///
    /// Panics if `ps` is negative, NaN, or too large for the `u64` range.
    #[inline]
    pub fn from_ps_f64(ps: f64) -> Self {
        assert!(
            ps >= 0.0 && ps.is_finite(),
            "SimTime::from_ps_f64: invalid picosecond value {ps}"
        );
        assert!(ps <= u64::MAX as f64, "SimTime::from_ps_f64: overflow");
        SimTime(ps.round() as u64)
    }

    /// The serialization delay of `bytes` over a link of `bandwidth_bps`
    /// bits per second.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is not strictly positive and finite.
    #[inline]
    pub fn serialization(bytes: u64, bandwidth_bps: f64) -> Self {
        assert!(
            bandwidth_bps > 0.0 && bandwidth_bps.is_finite(),
            "SimTime::serialization: invalid bandwidth {bandwidth_bps}"
        );
        SimTime::from_secs_f64(bytes as f64 * 8.0 / bandwidth_bps)
    }

    /// Raw picoseconds.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Time as fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: returns zero rather than wrapping when
    /// `other` is later than `self`.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub fn checked_add(self, other: SimTime) -> Option<SimTime> {
        self.0.checked_add(other.0).map(SimTime)
    }

    /// The later of two timestamps.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two timestamps.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.6}s", ps as f64 / 1e12)
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

/// A fixed-frequency clock used to convert between cycle counts and
/// [`SimTime`].
///
/// Hardware models in the SNIC and switch crates express their costs in
/// cycles of their local clock (the paper's SNIC runs at 2.2 GHz, switch
/// pipes at 2 GHz); the event loop converts with a `Clock`.
///
/// # Example
///
/// ```
/// use netsparse_desim::{Clock, SimTime};
/// let snic = Clock::from_ghz(2.2);
/// let t = snic.cycles(2_200_000);
/// assert_eq!(t, SimTime::from_ms(1));
/// assert_eq!(snic.cycles_in(SimTime::from_ms(1)), 2_200_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Clock {
    period_ps: f64,
    freq_hz: f64,
}

impl Clock {
    /// Creates a clock with the given frequency in hertz.
    ///
    /// # Panics
    ///
    /// Panics if `freq_hz` is not strictly positive and finite.
    pub fn from_hz(freq_hz: f64) -> Self {
        assert!(
            freq_hz > 0.0 && freq_hz.is_finite(),
            "Clock::from_hz: invalid frequency {freq_hz}"
        );
        Clock {
            period_ps: 1e12 / freq_hz,
            freq_hz,
        }
    }

    /// Creates a clock with the given frequency in gigahertz.
    pub fn from_ghz(freq_ghz: f64) -> Self {
        Clock::from_hz(freq_ghz * 1e9)
    }

    /// The clock frequency in hertz.
    #[inline]
    pub fn freq_hz(&self) -> f64 {
        self.freq_hz
    }

    /// The period of one cycle.
    #[inline]
    pub fn period(&self) -> SimTime {
        SimTime::from_ps(self.period_ps.round() as u64)
    }

    /// The duration of `n` cycles, rounded to the nearest picosecond.
    #[inline]
    pub fn cycles(&self, n: u64) -> SimTime {
        SimTime::from_ps((self.period_ps * n as f64).round() as u64)
    }

    /// How many whole cycles fit in `span`.
    #[inline]
    pub fn cycles_in(&self, span: SimTime) -> u64 {
        (span.as_ps() as f64 / self.period_ps).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimTime::from_us(3).as_ps(), 3_000_000);
        assert_eq!(SimTime::from_ms(3).as_ps(), 3_000_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5e-9), SimTime::from_ps(1_500));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::from_ps(12).to_string(), "12ps");
        assert_eq!(SimTime::from_ns(450).to_string(), "450.000ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.000us");
        assert_eq!(SimTime::from_ms(7).to_string(), "7.000ms");
    }

    #[test]
    fn arithmetic_behaves() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn sum_of_spans() {
        let total: SimTime = (1..=4).map(SimTime::from_ns).sum();
        assert_eq!(total, SimTime::from_ns(10));
    }

    #[test]
    fn clock_cycle_math() {
        let c = Clock::from_ghz(2.0);
        assert_eq!(c.period(), SimTime::from_ps(500));
        assert_eq!(c.cycles(125), SimTime::from_ps(62_500));
        assert_eq!(c.cycles_in(SimTime::from_ns(1)), 2);
    }

    #[test]
    fn snic_clock_is_subcycle_accurate() {
        // 2.2 GHz does not divide evenly into ps; accumulate over a large
        // cycle count and check the relative error stays tiny.
        let c = Clock::from_ghz(2.2);
        let t = c.cycles(22_000_000); // 10 ms worth
        let err = (t.as_secs_f64() - 0.01).abs() / 0.01;
        assert!(err < 1e-9, "relative error {err}");
    }

    #[test]
    #[should_panic(expected = "invalid frequency")]
    fn clock_rejects_zero_frequency() {
        let _ = Clock::from_hz(0.0);
    }

    #[test]
    #[should_panic(expected = "invalid seconds")]
    fn from_secs_rejects_negative() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
