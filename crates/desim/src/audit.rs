//! Runtime invariant auditor for the simulation stack.
//!
//! An [`Auditor`] watches a run and fails fast (with a precise message) the
//! moment an invariant breaks, instead of letting corruption surface as a
//! subtly wrong table three crates away. Two instances typically exist per
//! simulation:
//!
//! - the [`Engine`](crate::Engine) embeds one that checks **event-time
//!   monotonicity** and folds every `(time, seq)` pair into a running
//!   **digest** — two runs with the same seed must produce bit-identical
//!   digests, which is the strongest cheap determinism check available;
//! - the embedding simulator (e.g. `netsparse::sim`) owns one for
//!   **conservation ledgers** (every issued PR must be resolved exactly
//!   once in fault-free runs) and **bounds checks** (property-cache hit
//!   accounting, occupancy).
//!
//! Auditing is compiled in under `debug_assertions` or the `audit` cargo
//! feature and compiled out otherwise — release builds without the feature
//! pay nothing. The module itself always compiles so signatures stay
//! nameable; only the call sites are gated (see `Engine::with_audit`).

use crate::time::SimTime;

/// FNV-1a offset basis / prime (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A named conservation ledger. Every opened entry must eventually be
/// *resolved* (completed normally) or *abandoned* (explicitly given up —
/// e.g. a watchdog discarding the outstanding PRs of a timed-out command),
/// so at the end of a run `issued == resolved + abandoned + outstanding`
/// holds even under fault injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ledger {
    /// Ledger name (e.g. `"pr"`).
    pub name: &'static str,
    /// Entries opened.
    pub issued: u64,
    /// Entries closed normally.
    pub resolved: u64,
    /// Entries explicitly given up (fault recovery).
    pub abandoned: u64,
}

/// Watches one simulation run for invariant violations; see the module
/// docs for the invariant catalogue.
///
/// # Example
///
/// ```
/// use netsparse_desim::{audit::Auditor, SimTime};
/// let mut a = Auditor::new();
/// a.record_event(SimTime::from_ns(1));
/// a.record_event(SimTime::from_ns(2));
/// a.issue("pr");
/// a.resolve("pr");
/// a.check_balanced("pr"); // would panic if issued != resolved
/// assert_ne!(a.digest(), Auditor::new().digest());
/// ```
#[derive(Debug, Clone)]
pub struct Auditor {
    last_time: SimTime,
    events: u64,
    digest: u64,
    // Tiny linear-scan map: audits track a handful of ledgers, and a Vec
    // keeps insertion order deterministic without any hashing.
    ledgers: Vec<Ledger>,
}

impl Default for Auditor {
    fn default() -> Self {
        Self::new()
    }
}

impl Auditor {
    /// Creates an auditor with an empty event stream and no ledgers.
    pub fn new() -> Self {
        Auditor {
            last_time: SimTime::ZERO,
            events: 0,
            digest: FNV_OFFSET,
            ledgers: Vec::new(),
        }
    }

    /// Records one delivered event: checks time monotonicity and folds the
    /// `(time, index)` pair into the run digest.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the previously recorded event.
    #[inline]
    pub fn record_event(&mut self, time: SimTime) {
        assert!(
            time >= self.last_time,
            "audit: event time went backwards: {} after {}",
            time,
            self.last_time
        );
        self.last_time = time;
        self.fold(time.as_ps());
        self.fold(self.events);
        self.events += 1;
    }

    /// Folds an arbitrary value into the digest (FNV-1a over the bytes).
    /// Simulators may mix in final metrics so the digest also covers
    /// model-level outputs, not just event timing.
    #[inline]
    pub fn fold(&mut self, value: u64) {
        let mut d = self.digest;
        for b in value.to_le_bytes() {
            d = (d ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.digest = d;
    }

    /// The running event-stream digest. Equal seeds must yield equal
    /// digests; anything else is a determinism bug.
    #[inline]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Events recorded so far.
    #[inline]
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Timestamp of the most recently recorded event.
    #[inline]
    pub fn last_time(&self) -> SimTime {
        self.last_time
    }

    fn ledger_mut(&mut self, name: &'static str) -> &mut Ledger {
        if let Some(i) = self.ledgers.iter().position(|l| l.name == name) {
            &mut self.ledgers[i]
        } else {
            self.ledgers.push(Ledger {
                name,
                issued: 0,
                resolved: 0,
                abandoned: 0,
            });
            let last = self.ledgers.len() - 1;
            &mut self.ledgers[last]
        }
    }

    /// Opens one entry on `name`'s ledger.
    #[inline]
    pub fn issue(&mut self, name: &'static str) {
        self.ledger_mut(name).issued += 1;
    }

    /// Closes one entry on `name`'s ledger.
    ///
    /// # Panics
    ///
    /// Panics if the ledger would go negative — resolving something that
    /// was never issued is always an accounting bug.
    #[inline]
    pub fn resolve(&mut self, name: &'static str) {
        let l = self.ledger_mut(name);
        l.resolved += 1;
        assert!(
            l.resolved + l.abandoned <= l.issued,
            "audit: ledger `{}` over-resolved: {} resolved + {} abandoned vs {} issued",
            l.name,
            l.resolved,
            l.abandoned,
            l.issued
        );
    }

    /// Abandons one entry on `name`'s ledger (fault recovery explicitly
    /// giving up on an issued entry).
    ///
    /// # Panics
    ///
    /// Panics if the ledger would go negative.
    #[inline]
    pub fn abandon(&mut self, name: &'static str) {
        self.abandon_n(name, 1);
    }

    /// Abandons `n` entries at once (e.g. a watchdog discarding every
    /// outstanding PR of a command).
    ///
    /// # Panics
    ///
    /// Panics if the ledger would go negative.
    #[inline]
    pub fn abandon_n(&mut self, name: &'static str, n: u64) {
        let l = self.ledger_mut(name);
        l.abandoned += n;
        assert!(
            l.resolved + l.abandoned <= l.issued,
            "audit: ledger `{}` over-abandoned: {} resolved + {} abandoned vs {} issued",
            l.name,
            l.resolved,
            l.abandoned,
            l.issued
        );
    }

    /// Reads a ledger back (testing / reporting).
    pub fn ledger(&self, name: &str) -> Option<Ledger> {
        self.ledgers.iter().find(|l| l.name == name).copied()
    }

    /// Asserts that `name`'s ledger balances (`issued == resolved`). Call
    /// at end of run, and only when the run semantics guarantee balance
    /// (e.g. fault injection disabled).
    ///
    /// # Panics
    ///
    /// Panics on imbalance, or if the ledger was never touched (a wiring
    /// bug: the check would otherwise pass vacuously forever).
    pub fn check_balanced(&self, name: &str) {
        let l = self
            .ledgers
            .iter()
            .find(|l| l.name == name)
            // simaudit:allow(no-lib-panic): a vacuously-passing audit is a wiring bug; abort loudly
            .unwrap_or_else(|| panic!("audit: ledger `{name}` was never touched"));
        assert!(
            l.issued == l.resolved && l.abandoned == 0,
            "audit: ledger `{}` imbalanced: {} issued vs {} resolved ({} abandoned)",
            l.name,
            l.issued,
            l.resolved,
            l.abandoned
        );
    }

    /// Asserts loss-aware conservation on `name`'s ledger:
    /// `issued == resolved + abandoned + outstanding`. This is the check to
    /// run at end of a *faulted* run, where [`Auditor::check_balanced`]
    /// does not apply: every issue must still be accounted for, either by a
    /// normal resolution, an explicit abandonment (watchdog recovery), or
    /// by still being in flight.
    ///
    /// # Panics
    ///
    /// Panics on imbalance, or if the ledger was never touched.
    pub fn check_conserved(&self, name: &str, outstanding: u64) {
        let l = self
            .ledgers
            .iter()
            .find(|l| l.name == name)
            // simaudit:allow(no-lib-panic): a vacuously-passing audit is a wiring bug; abort loudly
            .unwrap_or_else(|| panic!("audit: ledger `{name}` was never touched"));
        assert!(
            l.issued == l.resolved + l.abandoned + outstanding,
            "audit: ledger `{}` not conserved: {} issued vs {} resolved + {} abandoned \
             + {} outstanding",
            l.name,
            l.issued,
            l.resolved,
            l.abandoned,
            outstanding
        );
    }

    /// Asserts an arbitrary named invariant, producing an `audit:`-prefixed
    /// message so violations are greppable across the stack.
    ///
    /// # Panics
    ///
    /// Panics if `holds` is false.
    #[inline]
    pub fn check(&self, holds: bool, what: &str) {
        assert!(holds, "audit: invariant violated: {what}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_is_deterministic_and_order_sensitive() {
        let mut a = Auditor::new();
        let mut b = Auditor::new();
        for i in 0..100 {
            a.record_event(SimTime::from_ns(i));
            b.record_event(SimTime::from_ns(i));
        }
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.events(), 100);

        // A different stream (same multiset of times, different spacing)
        // must change the digest.
        let mut c = Auditor::new();
        for i in 0..100 {
            c.record_event(SimTime::from_ns(i / 2 * 2));
        }
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    #[should_panic(expected = "event time went backwards")]
    fn non_monotonic_time_panics() {
        let mut a = Auditor::new();
        a.record_event(SimTime::from_ns(10));
        a.record_event(SimTime::from_ns(9));
    }

    #[test]
    fn ledgers_balance() {
        let mut a = Auditor::new();
        for _ in 0..5 {
            a.issue("pr");
        }
        for _ in 0..5 {
            a.resolve("pr");
        }
        a.check_balanced("pr");
        assert_eq!(a.ledger("pr").unwrap().issued, 5);
    }

    #[test]
    #[should_panic(expected = "imbalanced")]
    fn unbalanced_ledger_panics() {
        let mut a = Auditor::new();
        a.issue("pr");
        a.check_balanced("pr");
    }

    #[test]
    #[should_panic(expected = "over-resolved")]
    fn over_resolving_panics() {
        let mut a = Auditor::new();
        a.resolve("pr");
    }

    #[test]
    fn conservation_holds_with_abandonment() {
        let mut a = Auditor::new();
        for _ in 0..10 {
            a.issue("pr");
        }
        for _ in 0..6 {
            a.resolve("pr");
        }
        a.abandon_n("pr", 3);
        a.check_conserved("pr", 1); // one still outstanding
        let l = a.ledger("pr").unwrap();
        assert_eq!((l.issued, l.resolved, l.abandoned), (10, 6, 3));
    }

    #[test]
    #[should_panic(expected = "not conserved")]
    fn lost_entry_breaks_conservation() {
        let mut a = Auditor::new();
        a.issue("pr");
        a.issue("pr");
        a.resolve("pr");
        // The second entry vanished: neither resolved, abandoned, nor
        // claimed outstanding.
        a.check_conserved("pr", 0);
    }

    #[test]
    #[should_panic(expected = "over-abandoned")]
    fn over_abandoning_panics() {
        let mut a = Auditor::new();
        a.issue("pr");
        a.abandon_n("pr", 2);
    }

    #[test]
    #[should_panic(expected = "imbalanced")]
    fn balanced_check_rejects_abandonment() {
        let mut a = Auditor::new();
        a.issue("pr");
        a.abandon("pr");
        a.check_balanced("pr");
    }

    #[test]
    #[should_panic(expected = "never touched")]
    fn checking_untouched_ledger_panics() {
        Auditor::new().check_balanced("ghost");
    }

    #[test]
    #[should_panic(expected = "invariant violated: cache hits exceed lookups")]
    fn named_invariant_panics_with_context() {
        Auditor::new().check(false, "cache hits exceed lookups");
    }
}
