//! The event queue and the simulation driver.
//!
//! [`EventQueue`] is a deterministic priority queue of `(time, event)` pairs:
//! ties in time are broken by insertion order, so a simulation is a pure
//! function of its inputs. The default backend is a calendar queue — a ring
//! of power-of-two-width day buckets giving O(1) amortized push/pop on the
//! roughly uniform event streams a packet simulation produces — with the
//! original [`BinaryHeap`] kept as a reference backend
//! ([`EventQueue::reference_heap`]) that the equivalence suite pins the
//! calendar against. [`Engine`] wraps the queue with a run loop and
//! bookkeeping (event counts, horizon limits) and hands each handler a
//! [`Scheduler`] view through which new events are pushed.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::time::SimTime;

/// Liveness limits for [`Engine::run_guarded`].
///
/// Both limits are optional; the default (`Liveness::none()`) imposes
/// nothing, and `run_guarded` with it behaves exactly like
/// [`Engine::run`]. The limits detect the two ways a discrete-event
/// model can fail to terminate: unbounded event cascades (caught by
/// `max_events`) and zero-delay loops where events keep firing at a
/// frozen instant (caught by `max_stagnant_events`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Liveness {
    /// Abort once this many events have been processed while work is
    /// still pending. A run that *finishes* on its budget's last event
    /// is not a stall.
    pub max_events: Option<u64>,
    /// Abort once this many consecutive events run without simulated
    /// time advancing (a zero-delay livelock).
    pub max_stagnant_events: Option<u64>,
}

impl Liveness {
    /// No limits: `run_guarded` degenerates to `run`.
    pub fn none() -> Self {
        Liveness::default()
    }

    /// Whether any limit is armed.
    pub fn is_armed(&self) -> bool {
        self.max_events.is_some() || self.max_stagnant_events.is_some()
    }
}

/// Why [`Engine::run_guarded`] aborted a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The event budget was exhausted with events still pending.
    EventBudget,
    /// Simulated time stopped advancing: too many consecutive events
    /// ran at the same instant.
    TimeFrozen,
}

/// A structured no-progress report from [`Engine::run_guarded`] — the
/// alternative to a simulation that hangs forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// What tripped the watchdog.
    pub cause: StallCause,
    /// Simulated time at the abort.
    pub now: SimTime,
    /// Events processed before the abort.
    pub processed: u64,
    /// Events still pending in the queue (work the model never got to).
    pub pending: usize,
    /// Consecutive events processed at the frozen instant (0 unless the
    /// cause is [`StallCause::TimeFrozen`]).
    pub stagnant_events: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            StallCause::EventBudget => write!(
                f,
                "event budget exhausted at t={} after {} events ({} still pending)",
                self.now, self.processed, self.pending
            ),
            StallCause::TimeFrozen => write!(
                f,
                "time frozen at t={}: {} consecutive events without progress \
                 ({} processed, {} pending)",
                self.now, self.stagnant_events, self.processed, self.pending
            ),
        }
    }
}

impl std::error::Error for StallReport {}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Fewest day buckets the calendar ring ever holds.
const MIN_BUCKETS: usize = 16;
/// Most day buckets the calendar ring ever grows to.
const MAX_BUCKETS: usize = 1 << 20;
/// Widest day a rebuild may pick: 2^40 ps ≈ 1.1 ms per bucket.
const MAX_SHIFT: u32 = 40;
/// Day width before the first rebuild calibrates one: 2^13 ps ≈ 8 ns.
const INITIAL_SHIFT: u32 = 13;

/// The calendar-queue backend: a ring of power-of-two-width "day" buckets.
///
/// An entry's day is `time.as_ps() >> shift`; days map onto the ring
/// modulo the (power-of-two) bucket count, so far-future days alias onto
/// the same buckets and are skipped by the day check on pop. Each bucket
/// stays sorted ascending by `(time, seq)`: the common push (latest entry
/// in its bucket) is an append, and the bucket head is always the
/// bucket's earliest entry, so pop is a head check per visited day.
/// Rebuilds (triggered by size hysteresis, never by time) re-pick the
/// width so pending events spread at O(1) per populated day; every
/// decision is a pure function of queue content, keeping pop order — and
/// therefore the audit digest — bit-identical across machines.
struct Calendar<E> {
    /// Ring of day buckets (power-of-two count), each sorted ascending
    /// by `(time, seq)`. Deques so the head pop is O(1) rather than a
    /// front-of-`Vec` memmove — the pop path runs once per event.
    buckets: Vec<VecDeque<Entry<E>>>,
    /// Bucket width as a power of two: an entry's day is `ps >> shift`.
    shift: u32,
    /// The earliest day that may still hold entries: every pending entry
    /// has `day >= cur_day` (pushes behind the cursor rewind it).
    cur_day: u64,
    /// Total pending entries across all buckets.
    len: usize,
}

impl<E> Calendar<E> {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(MIN_BUCKETS);
        buckets.resize_with(MIN_BUCKETS, VecDeque::default);
        Calendar {
            buckets,
            shift: INITIAL_SHIFT,
            cur_day: 0,
            len: 0,
        }
    }

    #[inline]
    fn day(&self, t: SimTime) -> u64 {
        t.as_ps() >> self.shift
    }

    #[inline]
    fn push(&mut self, time: SimTime, seq: u64, event: E) {
        let day = self.day(time);
        if day < self.cur_day {
            // Push behind the drain cursor (legal on a standalone queue):
            // rewind so the scan revisits that day.
            self.cur_day = day;
        }
        let mask = self.buckets.len() - 1;
        let b = &mut self.buckets[(day as usize) & mask];
        if b.back().is_none_or(|e| (e.time, e.seq) < (time, seq)) {
            b.push_back(Entry { time, seq, event });
        } else {
            let pos = b.partition_point(|e| (e.time, e.seq) < (time, seq));
            b.insert(pos, Entry { time, seq, event });
        }
        self.len += 1;
        if self.len > 2 * self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.rebuild(self.buckets.len() * 2);
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        if self.buckets.len() == MIN_BUCKETS {
            // Sparse regime: at the floor ring size a direct scan of the
            // bucket heads (16 loads, no data-dependent branching) beats
            // day-walking across mostly-empty days and never needs the
            // full-revolution fallback. Equal times share a day and hence
            // a bucket, so comparing heads by time alone picks the unique
            // global `(time, seq)` minimum — pop order is identical to
            // the day-walk's.
            let slot = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| b.front().map(|e| (e.time, i)))
                .min()
                .map(|(_, i)| i)?;
            let e = self.buckets[slot].pop_front()?;
            self.cur_day = e.time.as_ps() >> self.shift;
            self.len -= 1;
            return Some((e.time, e.event));
        }
        let mask = self.buckets.len() - 1;
        let mut hops = 0usize;
        loop {
            let b = &mut self.buckets[(self.cur_day as usize) & mask];
            if b.front()
                .is_some_and(|first| first.time.as_ps() >> self.shift == self.cur_day)
            {
                let e = b.pop_front()?;
                self.len -= 1;
                if self.len * 8 < self.buckets.len() && self.buckets.len() > MIN_BUCKETS {
                    self.rebuild((self.buckets.len() / 2).max(MIN_BUCKETS));
                }
                return Some((e.time, e.event));
            }
            self.cur_day += 1;
            hops += 1;
            if hops > mask {
                // A full revolution found nothing: every remaining entry
                // lies beyond the ring horizon. Jump straight to the
                // earliest populated day instead of walking the gap.
                self.cur_day = self.min_day()?;
                hops = 0;
            }
        }
    }

    /// The `(time, seq)`-earliest pending entry's time, by scanning the
    /// bucket heads (each head is its bucket's minimum).
    fn peek_time(&self) -> Option<SimTime> {
        self.buckets
            .iter()
            .filter_map(|b| b.front())
            .map(|e| (e.time, e.seq))
            .min()
            .map(|(t, _)| t)
    }

    /// The day of the earliest pending entry; `None` on an empty queue.
    fn min_day(&self) -> Option<u64> {
        self.peek_time().map(|t| self.day(t))
    }

    /// Redistributes every entry over `nbuckets` buckets, re-picking the
    /// day width from the pending span so occupancy stays O(1) per day.
    /// Runs on size-hysteresis boundaries only, so its cost is amortized
    /// O(1) per push/pop; all inputs are queue content, never wall time.
    fn rebuild(&mut self, nbuckets: usize) {
        debug_assert!(nbuckets.is_power_of_two());
        let mut all = Vec::with_capacity(self.len);
        for b in &mut self.buckets {
            all.extend(b.drain(..));
        }
        all.sort_unstable_by_key(|a| (a.time, a.seq));
        if let (Some(first), Some(last)) = (all.first(), all.last()) {
            // Aim for ~2 days per pending event: sparse enough that a
            // day bucket holds O(1) entries, dense enough that pop's
            // day-advance rarely crosses long empty stretches.
            let span = last.time.as_ps() - first.time.as_ps();
            let width = (span / (2 * all.len() as u64)).max(1);
            self.shift = width.ilog2().min(MAX_SHIFT);
            self.cur_day = self.day(first.time);
        }
        if nbuckets > self.buckets.len() {
            self.buckets.resize_with(nbuckets, VecDeque::default);
        } else {
            self.buckets.truncate(nbuckets);
        }
        let mask = nbuckets - 1;
        for e in all {
            let slot = (self.day(e.time) as usize) & mask;
            self.buckets[slot].push_back(e);
        }
    }
}

/// The queue's storage strategy (see [`EventQueue::reference_heap`]).
enum Backend<E> {
    /// The default bucketed scheduler.
    Calendar(Calendar<E>),
    /// The original binary-heap implementation, kept as the behavioral
    /// reference the calendar is pinned against.
    Heap(BinaryHeap<Entry<E>>),
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events that share a timestamp are delivered in the order they were
/// scheduled (FIFO), which makes simulations reproducible run-to-run and
/// across machines.
///
/// The default backend is a calendar queue (O(1) amortized push/pop);
/// [`EventQueue::reference_heap`] builds the original binary-heap variant,
/// which delivers the exact same `(time, seq)` stream and exists so
/// equivalence tests and benchmarks can compare the two.
///
/// # Example
///
/// ```
/// use netsparse_desim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "b");
/// q.push(SimTime::from_ns(1), "a");
/// q.push(SimTime::from_ns(5), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    backend: Backend<E>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue on the default calendar backend.
    pub fn new() -> Self {
        EventQueue {
            backend: Backend::Calendar(Calendar::new()),
            seq: 0,
        }
    }

    /// Creates an empty queue on the binary-heap reference backend.
    ///
    /// Pop order is identical to [`EventQueue::new`]; the heap exists as
    /// the independent implementation the calendar queue is checked
    /// against (see `tests/engine_equivalence.rs`) and as the baseline
    /// `bench_engine` measures speedups over.
    pub fn reference_heap() -> Self {
        EventQueue {
            backend: Backend::Heap(BinaryHeap::default()),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        match &mut self.backend {
            Backend::Calendar(c) => c.push(time, seq, event),
            Backend::Heap(h) => h.push(Entry { time, seq, event }),
        }
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        match &mut self.backend {
            Backend::Calendar(c) => c.pop(),
            Backend::Heap(h) => h.pop().map(|e| (e.time, e.event)),
        }
    }

    /// The timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Calendar(c) => c.peek_time(),
            Backend::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len,
            Backend::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The scheduling interface handed to event handlers.
///
/// A `Scheduler` only exposes *pushing* events; popping is owned by the
/// [`Engine`] run loop. Handlers may schedule at the current time or later.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// Creates a standalone scheduler view over `queue`, frozen at `now`.
    ///
    /// The [`Engine`] run loop constructs schedulers internally; this
    /// constructor exists for component test benches that drive a single
    /// handler against a bare queue without an engine.
    #[must_use]
    pub fn at(queue: &'a mut EventQueue<E>, now: SimTime) -> Self {
        Scheduler { queue, now }
    }
}

impl<E> Scheduler<'_, E> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — causality violations are always
    /// bugs in a model, and failing loudly here localizes them.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempted to schedule event in the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event);
    }

    /// Schedules `event` after a relative delay from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (delivered after all events
    /// already queued for this instant, preserving FIFO order).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Schedules a whole batch of `(time, event)` pairs in iteration
    /// order: one call, consecutive sequence numbers, and exactly the
    /// delivery order N individual [`Scheduler::schedule`] calls would
    /// produce. Batch emitters (link flushes in the fabric) use this so
    /// a drained pool buffer turns into one scheduled batch.
    ///
    /// # Panics
    ///
    /// Panics if any item's time is in the past, like `schedule`.
    #[inline]
    pub fn schedule_batch(&mut self, batch: impl IntoIterator<Item = (SimTime, E)>) {
        for (time, event) in batch {
            self.schedule(time, event);
        }
    }
}

/// The simulation driver: an [`EventQueue`] plus a run loop.
///
/// `Engine` is generic over the event payload so different simulators (the
/// full NetSparse cluster, component test benches, microbenchmarks) can
/// reuse the same kernel. See the crate-level example for usage.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    max_events: Option<u64>,
    horizon: SimTime,
    #[cfg(any(debug_assertions, feature = "audit"))]
    auditor: crate::audit::Auditor,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with no event or horizon limits.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_events: None,
            horizon: SimTime::MAX,
            #[cfg(any(debug_assertions, feature = "audit"))]
            auditor: crate::audit::Auditor::new(),
        }
    }

    /// Limits the total number of events processed by [`Engine::run`];
    /// useful as a runaway guard in tests.
    #[must_use]
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Stops the run loop once simulated time passes `horizon` (events at
    /// exactly `horizon` still run).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Swaps the default calendar queue for the binary-heap reference
    /// backend ([`EventQueue::reference_heap`]). Event order and digests
    /// are identical either way; the equivalence suite and `bench_engine`
    /// use this to run both implementations against each other.
    ///
    /// # Panics
    ///
    /// Panics if events were already scheduled (the swap would drop them).
    #[must_use]
    pub fn with_reference_queue(mut self) -> Self {
        assert!(
            self.queue.is_empty(),
            "with_reference_queue must be called before scheduling events"
        );
        self.queue = EventQueue::reference_heap();
        self
    }

    /// Schedules an event from outside the run loop (initial stimulus).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempted to schedule event in the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event);
    }

    /// The current simulation time (the timestamp of the last event run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The event-stream digest accumulated by the runtime auditor, or
    /// `None` when auditing is compiled out (release builds without the
    /// `audit` feature). Two same-seed runs must return equal digests.
    pub fn audit_digest(&self) -> Option<u64> {
        #[cfg(any(debug_assertions, feature = "audit"))]
        {
            Some(self.auditor.digest())
        }
        #[cfg(not(any(debug_assertions, feature = "audit")))]
        {
            None
        }
    }

    /// Runs `f` against the engine's [`Auditor`](crate::audit::Auditor)
    /// when auditing is compiled in; a guaranteed no-op otherwise. Use this
    /// to fold model-level outputs into the run digest without sprinkling
    /// `cfg` at every call site.
    #[inline]
    pub fn with_audit(&mut self, f: impl FnOnce(&mut crate::audit::Auditor)) {
        #[cfg(any(debug_assertions, feature = "audit"))]
        f(&mut self.auditor);
        #[cfg(not(any(debug_assertions, feature = "audit")))]
        {
            let _ = f;
        }
    }

    /// Runs until the queue drains (or a limit is hit), delivering each
    /// event to `handler` along with the current time and a [`Scheduler`].
    ///
    /// Returns the final simulation time.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        while let Some((time, event)) = self.queue.pop() {
            if time > self.horizon {
                // Past the horizon: drop the event and stop.
                break;
            }
            debug_assert!(time >= self.now, "event queue violated time order");
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    break;
                }
            }
        }
        self.now
    }

    /// Runs like [`Engine::run`], but under the liveness limits in
    /// `guard`: instead of hanging on a runaway or zero-delay model,
    /// the loop aborts with a structured [`StallReport`].
    ///
    /// With `Liveness::none()` this is behaviorally identical to
    /// `run` (same event order, same audit digest, never errs).
    /// Draining the queue exactly on the event budget's last event is
    /// normal termination, not a stall; the engine's own
    /// [`Engine::with_max_events`] guard still applies and still
    /// truncates silently.
    pub fn run_guarded<F>(
        &mut self,
        guard: Liveness,
        mut handler: F,
    ) -> Result<SimTime, StallReport>
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        let mut stagnant: u64 = 0;
        while let Some((time, event)) = self.queue.pop() {
            if time > self.horizon {
                break;
            }
            debug_assert!(time >= self.now, "event queue violated time order");
            if time > self.now {
                stagnant = 0;
            }
            stagnant += 1;
            if let Some(max) = guard.max_stagnant_events {
                if stagnant > max {
                    return Err(StallReport {
                        cause: StallCause::TimeFrozen,
                        now: time,
                        processed: self.processed,
                        // The popped event was never delivered; count it
                        // back into the pending work.
                        pending: self.queue.len() + 1,
                        stagnant_events: stagnant,
                    });
                }
            }
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            if let Some(max) = guard.max_events {
                if self.processed >= max && !self.queue.is_empty() {
                    return Err(StallReport {
                        cause: StallCause::EventBudget,
                        now: self.now,
                        processed: self.processed,
                        pending: self.queue.len(),
                        stagnant_events: 0,
                    });
                }
            }
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    break;
                }
            }
        }
        Ok(self.now)
    }

    /// Runs a single event if one is pending; returns whether it did.
    pub fn step<F>(&mut self, mut handler: F) -> bool
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        if let Some((time, event)) = self.queue.pop() {
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(2), 20);
        q.push(SimTime::from_ns(1), 10);
        q.push(SimTime::from_ns(2), 21);
        q.push(SimTime::from_ns(1), 11);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![10, 11, 20, 21]);
    }

    #[test]
    fn engine_runs_cascading_events() {
        #[derive(Debug)]
        enum Ev {
            Tick(u32),
        }
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        let end = engine.run(|now, Ev::Tick(n), sched| {
            count += 1;
            if n < 9 {
                sched.schedule(now + SimTime::from_ns(10), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(end, SimTime::from_ns(90));
        assert_eq!(engine.processed(), 10);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine: Engine<u32> = Engine::new().with_horizon(SimTime::from_ns(25));
        for i in 0..10 {
            engine.schedule(SimTime::from_ns(i * 10), i as u32);
        }
        let mut seen = Vec::new();
        engine.run(|_, e, _| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn max_events_guard() {
        let mut engine: Engine<()> = Engine::new().with_max_events(3);
        engine.schedule(SimTime::ZERO, ());
        engine.run(|now, (), sched| sched.schedule(now + SimTime::from_ns(1), ()));
        assert_eq!(engine.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(10), 1);
        engine.run(|_, _, sched| {
            sched.schedule(SimTime::from_ns(5), 2);
        });
    }

    #[test]
    fn schedule_now_preserves_fifo_at_same_instant() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(1), 0);
        let mut seen = Vec::new();
        engine.run(|_, e, sched| {
            seen.push(e);
            if e == 0 {
                sched.schedule_now(1);
                sched.schedule_now(2);
            }
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn standalone_scheduler_pushes_into_a_bare_queue() {
        let mut q: EventQueue<u8> = EventQueue::new();
        {
            let mut sched = Scheduler::at(&mut q, SimTime::from_ns(5));
            assert_eq!(sched.now(), SimTime::from_ns(5));
            sched.schedule_now(1);
            sched.schedule(SimTime::from_ns(9), 2);
        }
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9), 2)));
    }

    #[test]
    fn run_guarded_without_limits_matches_run() {
        let drive = |guarded: bool| {
            let mut engine: Engine<u32> = Engine::new();
            engine.schedule(SimTime::ZERO, 0);
            let mut seen = Vec::new();
            let handler = |now: SimTime, e: u32, sched: &mut Scheduler<'_, u32>| {
                seen.push(e);
                if e < 5 {
                    sched.schedule(now + SimTime::from_ns(3), e + 1);
                }
            };
            let end = if guarded {
                engine.run_guarded(Liveness::none(), handler).unwrap()
            } else {
                engine.run(handler)
            };
            (end, engine.processed(), engine.audit_digest(), seen)
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn event_budget_stall_is_reported_not_hung() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimTime::ZERO, ());
        let guard = Liveness {
            max_events: Some(100),
            max_stagnant_events: None,
        };
        // Self-rescheduling event: would run forever under `run`.
        let err = engine
            .run_guarded(guard, |now, (), sched| {
                sched.schedule(now + SimTime::from_ns(1), ());
            })
            .unwrap_err();
        assert_eq!(err.cause, StallCause::EventBudget);
        assert_eq!(err.processed, 100);
        assert_eq!(err.pending, 1);
        assert!(err.to_string().contains("event budget"), "{err}");
    }

    #[test]
    fn finishing_exactly_on_budget_is_not_a_stall() {
        let mut engine: Engine<u8> = Engine::new();
        for i in 0..4 {
            engine.schedule(SimTime::from_ns(i), 0);
        }
        let guard = Liveness {
            max_events: Some(4),
            max_stagnant_events: None,
        };
        let end = engine.run_guarded(guard, |_, _, _| ()).unwrap();
        assert_eq!(end, SimTime::from_ns(3));
        assert_eq!(engine.processed(), 4);
    }

    #[test]
    fn zero_delay_livelock_reports_time_frozen() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(7), 0);
        let guard = Liveness {
            max_events: None,
            max_stagnant_events: Some(50),
        };
        // schedule_now loop: time never advances.
        let err = engine
            .run_guarded(guard, |_, _, sched| sched.schedule_now(0))
            .unwrap_err();
        assert_eq!(err.cause, StallCause::TimeFrozen);
        assert_eq!(err.now, SimTime::from_ns(7));
        assert_eq!(err.stagnant_events, 51);
        assert!(err.pending >= 1);
        assert!(err.to_string().contains("time frozen"), "{err}");
    }

    #[test]
    fn stagnant_counter_resets_when_time_advances() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::ZERO, 0);
        let guard = Liveness {
            max_events: None,
            max_stagnant_events: Some(3),
        };
        // Three events per instant, then the clock moves: never stalls.
        let end = engine
            .run_guarded(guard, |now, e, sched| {
                if e < 2 {
                    sched.schedule_now(e + 1);
                } else if now < SimTime::from_ns(5) {
                    sched.schedule(now + SimTime::from_ns(1), 0);
                }
            })
            .unwrap();
        assert_eq!(end, SimTime::from_ns(5));
    }

    #[test]
    fn calendar_matches_heap_reference_on_random_churn() {
        // Interleaved pushes and pops with clustered, duplicated and
        // far-apart timestamps: both backends must produce the exact
        // same (time, payload) stream.
        use crate::rng::SplitMix64;
        for seed in [3u64, 17, 92] {
            let mut cal: EventQueue<u64> = EventQueue::new();
            let mut heap: EventQueue<u64> = EventQueue::reference_heap();
            let mut rng = SplitMix64::new(seed);
            let mut base = 0u64;
            for i in 0..5_000u64 {
                // Mostly near-future pushes, occasional same-instant
                // bursts and millisecond-scale outliers.
                let dt = match rng.next_range(10) {
                    0 => 0,
                    1..=7 => rng.next_range(2_000),
                    _ => rng.next_range(2_000_000),
                };
                let t = SimTime::from_ps(base + dt);
                cal.push(t, i);
                heap.push(t, i);
                if rng.chance(0.6) {
                    let a = cal.pop();
                    let b = heap.pop();
                    assert_eq!(a, b, "backends diverged (seed {seed})");
                    if let Some((t, _)) = a {
                        // Keep pushes causal, like a Scheduler would.
                        base = base.max(t.as_ps());
                    }
                }
            }
            assert_eq!(cal.len(), heap.len());
            while let Some(a) = cal.pop() {
                assert_eq!(Some(a), heap.pop(), "drain diverged (seed {seed})");
            }
            assert_eq!(heap.pop(), None);
        }
    }

    #[test]
    fn calendar_jumps_far_future_gaps() {
        let mut q: EventQueue<u32> = EventQueue::new();
        // A tight cluster, then a gap many ring revolutions wide.
        for i in 0..40 {
            q.push(SimTime::from_ns(i as u64), i);
        }
        q.push(SimTime::from_ms(250), 1_000);
        q.push(SimTime::from_ms(250), 1_001);
        for i in 0..40 {
            assert_eq!(q.pop(), Some((SimTime::from_ns(i as u64), i)));
        }
        assert_eq!(q.pop(), Some((SimTime::from_ms(250), 1_000)));
        assert_eq!(q.pop(), Some((SimTime::from_ms(250), 1_001)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn calendar_survives_growth_and_shrink_cycles() {
        // 10k pushes force several grows; the full drain forces shrinks.
        use crate::rng::SplitMix64;
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut rng = SplitMix64::new(7);
        for i in 0..10_000u64 {
            q.push(SimTime::from_ps(rng.next_range(1 << 30)), i);
        }
        assert_eq!(q.len(), 10_000);
        let mut last = (SimTime::ZERO, 0u64);
        let mut popped = 0;
        while let Some((t, e)) = q.pop() {
            assert!((t, e) >= last, "pop order regressed at {t} #{e}");
            last = (t, e);
            popped += 1;
        }
        assert_eq!(popped, 10_000);
    }

    #[test]
    fn standalone_queue_accepts_pushes_behind_the_cursor() {
        // A bare queue (no Scheduler causality guard) may push earlier
        // than the last pop; the calendar must rewind and serve it.
        let mut q: EventQueue<u8> = EventQueue::new();
        q.push(SimTime::from_us(10), 1);
        assert_eq!(q.pop(), Some((SimTime::from_us(10), 1)));
        q.push(SimTime::from_ns(3), 2);
        q.push(SimTime::from_us(20), 3);
        assert_eq!(q.pop(), Some((SimTime::from_ns(3), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_us(20), 3)));
    }

    #[test]
    fn peek_time_reports_the_earliest_entry() {
        for mut q in [EventQueue::new(), EventQueue::reference_heap()] {
            assert_eq!(q.peek_time(), None);
            q.push(SimTime::from_ns(9), 1u8);
            q.push(SimTime::from_ns(4), 2);
            q.push(SimTime::from_ms(80), 3);
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(4)));
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_ns(9)));
        }
    }

    #[test]
    fn schedule_batch_matches_individual_schedules() {
        let run = |batched: bool| {
            let mut q: EventQueue<u8> = EventQueue::new();
            {
                let mut sched = Scheduler::at(&mut q, SimTime::from_ns(1));
                let items = [
                    (SimTime::from_ns(5), 1),
                    (SimTime::from_ns(2), 2),
                    (SimTime::from_ns(5), 3),
                ];
                if batched {
                    sched.schedule_batch(items);
                } else {
                    for (t, e) in items {
                        sched.schedule(t, e);
                    }
                }
            }
            let mut order = Vec::new();
            while let Some(x) = q.pop() {
                order.push(x);
            }
            order
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn step_processes_one_event() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(1), 7);
        let mut got = None;
        assert!(engine.step(|_, e, _| got = Some(e)));
        assert_eq!(got, Some(7));
        assert!(!engine.step(|_, _, _| ()));
    }
}
