//! The event queue and the simulation driver.
//!
//! [`EventQueue`] is a deterministic priority queue of `(time, event)` pairs:
//! ties in time are broken by insertion order, so a simulation is a pure
//! function of its inputs. [`Engine`] wraps the queue with a run loop and
//! bookkeeping (event counts, horizon limits) and hands each handler a
//! [`Scheduler`] view through which new events are pushed.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use crate::time::SimTime;

/// Liveness limits for [`Engine::run_guarded`].
///
/// Both limits are optional; the default (`Liveness::none()`) imposes
/// nothing, and `run_guarded` with it behaves exactly like
/// [`Engine::run`]. The limits detect the two ways a discrete-event
/// model can fail to terminate: unbounded event cascades (caught by
/// `max_events`) and zero-delay loops where events keep firing at a
/// frozen instant (caught by `max_stagnant_events`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Liveness {
    /// Abort once this many events have been processed while work is
    /// still pending. A run that *finishes* on its budget's last event
    /// is not a stall.
    pub max_events: Option<u64>,
    /// Abort once this many consecutive events run without simulated
    /// time advancing (a zero-delay livelock).
    pub max_stagnant_events: Option<u64>,
}

impl Liveness {
    /// No limits: `run_guarded` degenerates to `run`.
    pub fn none() -> Self {
        Liveness::default()
    }

    /// Whether any limit is armed.
    pub fn is_armed(&self) -> bool {
        self.max_events.is_some() || self.max_stagnant_events.is_some()
    }
}

/// Why [`Engine::run_guarded`] aborted a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// The event budget was exhausted with events still pending.
    EventBudget,
    /// Simulated time stopped advancing: too many consecutive events
    /// ran at the same instant.
    TimeFrozen,
}

/// A structured no-progress report from [`Engine::run_guarded`] — the
/// alternative to a simulation that hangs forever.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallReport {
    /// What tripped the watchdog.
    pub cause: StallCause,
    /// Simulated time at the abort.
    pub now: SimTime,
    /// Events processed before the abort.
    pub processed: u64,
    /// Events still pending in the queue (work the model never got to).
    pub pending: usize,
    /// Consecutive events processed at the frozen instant (0 unless the
    /// cause is [`StallCause::TimeFrozen`]).
    pub stagnant_events: u64,
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.cause {
            StallCause::EventBudget => write!(
                f,
                "event budget exhausted at t={} after {} events ({} still pending)",
                self.now, self.processed, self.pending
            ),
            StallCause::TimeFrozen => write!(
                f,
                "time frozen at t={}: {} consecutive events without progress \
                 ({} processed, {} pending)",
                self.now, self.stagnant_events, self.processed, self.pending
            ),
        }
    }
}

impl std::error::Error for StallReport {}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic min-priority queue of timestamped events.
///
/// Events that share a timestamp are delivered in the order they were
/// scheduled (FIFO), which makes simulations reproducible run-to-run and
/// across machines.
///
/// # Example
///
/// ```
/// use netsparse_desim::{EventQueue, SimTime};
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_ns(5), "b");
/// q.push(SimTime::from_ns(1), "a");
/// q.push(SimTime::from_ns(5), "c");
/// assert_eq!(q.pop(), Some((SimTime::from_ns(1), "a")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "b")));
/// assert_eq!(q.pop(), Some((SimTime::from_ns(5), "c")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// The timestamp of the earliest pending event.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// The scheduling interface handed to event handlers.
///
/// A `Scheduler` only exposes *pushing* events; popping is owned by the
/// [`Engine`] run loop. Handlers may schedule at the current time or later.
pub struct Scheduler<'a, E> {
    queue: &'a mut EventQueue<E>,
    now: SimTime,
}

impl<'a, E> Scheduler<'a, E> {
    /// Creates a standalone scheduler view over `queue`, frozen at `now`.
    ///
    /// The [`Engine`] run loop constructs schedulers internally; this
    /// constructor exists for component test benches that drive a single
    /// handler against a bare queue without an engine.
    #[must_use]
    pub fn at(queue: &'a mut EventQueue<E>, now: SimTime) -> Self {
        Scheduler { queue, now }
    }
}

impl<E> Scheduler<'_, E> {
    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past — causality violations are always
    /// bugs in a model, and failing loudly here localizes them.
    #[inline]
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempted to schedule event in the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event);
    }

    /// Schedules `event` after a relative delay from now.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at the current instant (delivered after all events
    /// already queued for this instant, preserving FIFO order).
    #[inline]
    pub fn schedule_now(&mut self, event: E) {
        self.queue.push(self.now, event);
    }
}

/// The simulation driver: an [`EventQueue`] plus a run loop.
///
/// `Engine` is generic over the event payload so different simulators (the
/// full NetSparse cluster, component test benches, microbenchmarks) can
/// reuse the same kernel. See the crate-level example for usage.
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
    max_events: Option<u64>,
    horizon: SimTime,
    #[cfg(any(debug_assertions, feature = "audit"))]
    auditor: crate::audit::Auditor,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine at time zero with no event or horizon limits.
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
            max_events: None,
            horizon: SimTime::MAX,
            #[cfg(any(debug_assertions, feature = "audit"))]
            auditor: crate::audit::Auditor::new(),
        }
    }

    /// Limits the total number of events processed by [`Engine::run`];
    /// useful as a runaway guard in tests.
    #[must_use]
    pub fn with_max_events(mut self, max: u64) -> Self {
        self.max_events = Some(max);
        self
    }

    /// Stops the run loop once simulated time passes `horizon` (events at
    /// exactly `horizon` still run).
    #[must_use]
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Schedules an event from outside the run loop (initial stimulus).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        assert!(
            time >= self.now,
            "attempted to schedule event in the past: now={}, requested={}",
            self.now,
            time
        );
        self.queue.push(time, event);
    }

    /// The current simulation time (the timestamp of the last event run).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// The event-stream digest accumulated by the runtime auditor, or
    /// `None` when auditing is compiled out (release builds without the
    /// `audit` feature). Two same-seed runs must return equal digests.
    pub fn audit_digest(&self) -> Option<u64> {
        #[cfg(any(debug_assertions, feature = "audit"))]
        {
            Some(self.auditor.digest())
        }
        #[cfg(not(any(debug_assertions, feature = "audit")))]
        {
            None
        }
    }

    /// Runs `f` against the engine's [`Auditor`](crate::audit::Auditor)
    /// when auditing is compiled in; a guaranteed no-op otherwise. Use this
    /// to fold model-level outputs into the run digest without sprinkling
    /// `cfg` at every call site.
    #[inline]
    pub fn with_audit(&mut self, f: impl FnOnce(&mut crate::audit::Auditor)) {
        #[cfg(any(debug_assertions, feature = "audit"))]
        f(&mut self.auditor);
        #[cfg(not(any(debug_assertions, feature = "audit")))]
        {
            let _ = f;
        }
    }

    /// Runs until the queue drains (or a limit is hit), delivering each
    /// event to `handler` along with the current time and a [`Scheduler`].
    ///
    /// Returns the final simulation time.
    pub fn run<F>(&mut self, mut handler: F) -> SimTime
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        while let Some((time, event)) = self.queue.pop() {
            if time > self.horizon {
                // Past the horizon: drop the event and stop.
                break;
            }
            debug_assert!(time >= self.now, "event queue violated time order");
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    break;
                }
            }
        }
        self.now
    }

    /// Runs like [`Engine::run`], but under the liveness limits in
    /// `guard`: instead of hanging on a runaway or zero-delay model,
    /// the loop aborts with a structured [`StallReport`].
    ///
    /// With `Liveness::none()` this is behaviorally identical to
    /// `run` (same event order, same audit digest, never errs).
    /// Draining the queue exactly on the event budget's last event is
    /// normal termination, not a stall; the engine's own
    /// [`Engine::with_max_events`] guard still applies and still
    /// truncates silently.
    pub fn run_guarded<F>(
        &mut self,
        guard: Liveness,
        mut handler: F,
    ) -> Result<SimTime, StallReport>
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        let mut stagnant: u64 = 0;
        while let Some((time, event)) = self.queue.pop() {
            if time > self.horizon {
                break;
            }
            debug_assert!(time >= self.now, "event queue violated time order");
            if time > self.now {
                stagnant = 0;
            }
            stagnant += 1;
            if let Some(max) = guard.max_stagnant_events {
                if stagnant > max {
                    return Err(StallReport {
                        cause: StallCause::TimeFrozen,
                        now: time,
                        processed: self.processed,
                        // The popped event was never delivered; count it
                        // back into the pending work.
                        pending: self.queue.len() + 1,
                        stagnant_events: stagnant,
                    });
                }
            }
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            if let Some(max) = guard.max_events {
                if self.processed >= max && !self.queue.is_empty() {
                    return Err(StallReport {
                        cause: StallCause::EventBudget,
                        now: self.now,
                        processed: self.processed,
                        pending: self.queue.len(),
                        stagnant_events: 0,
                    });
                }
            }
            if let Some(max) = self.max_events {
                if self.processed >= max {
                    break;
                }
            }
        }
        Ok(self.now)
    }

    /// Runs a single event if one is pending; returns whether it did.
    pub fn step<F>(&mut self, mut handler: F) -> bool
    where
        F: FnMut(SimTime, E, &mut Scheduler<'_, E>),
    {
        if let Some((time, event)) = self.queue.pop() {
            self.now = time;
            self.processed += 1;
            #[cfg(any(debug_assertions, feature = "audit"))]
            self.auditor.record_event(time);
            let mut sched = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(time, event, &mut sched);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_orders_by_time_then_fifo() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_ns(2), 20);
        q.push(SimTime::from_ns(1), 10);
        q.push(SimTime::from_ns(2), 21);
        q.push(SimTime::from_ns(1), 11);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec![10, 11, 20, 21]);
    }

    #[test]
    fn engine_runs_cascading_events() {
        #[derive(Debug)]
        enum Ev {
            Tick(u32),
        }
        let mut engine: Engine<Ev> = Engine::new();
        engine.schedule(SimTime::ZERO, Ev::Tick(0));
        let mut count = 0u32;
        let end = engine.run(|now, Ev::Tick(n), sched| {
            count += 1;
            if n < 9 {
                sched.schedule(now + SimTime::from_ns(10), Ev::Tick(n + 1));
            }
        });
        assert_eq!(count, 10);
        assert_eq!(end, SimTime::from_ns(90));
        assert_eq!(engine.processed(), 10);
        assert_eq!(engine.pending(), 0);
    }

    #[test]
    fn horizon_stops_the_run() {
        let mut engine: Engine<u32> = Engine::new().with_horizon(SimTime::from_ns(25));
        for i in 0..10 {
            engine.schedule(SimTime::from_ns(i * 10), i as u32);
        }
        let mut seen = Vec::new();
        engine.run(|_, e, _| seen.push(e));
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn max_events_guard() {
        let mut engine: Engine<()> = Engine::new().with_max_events(3);
        engine.schedule(SimTime::ZERO, ());
        engine.run(|now, (), sched| sched.schedule(now + SimTime::from_ns(1), ()));
        assert_eq!(engine.processed(), 3);
    }

    #[test]
    #[should_panic(expected = "schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(10), 1);
        engine.run(|_, _, sched| {
            sched.schedule(SimTime::from_ns(5), 2);
        });
    }

    #[test]
    fn schedule_now_preserves_fifo_at_same_instant() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(1), 0);
        let mut seen = Vec::new();
        engine.run(|_, e, sched| {
            seen.push(e);
            if e == 0 {
                sched.schedule_now(1);
                sched.schedule_now(2);
            }
        });
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn standalone_scheduler_pushes_into_a_bare_queue() {
        let mut q: EventQueue<u8> = EventQueue::new();
        {
            let mut sched = Scheduler::at(&mut q, SimTime::from_ns(5));
            assert_eq!(sched.now(), SimTime::from_ns(5));
            sched.schedule_now(1);
            sched.schedule(SimTime::from_ns(9), 2);
        }
        assert_eq!(q.pop(), Some((SimTime::from_ns(5), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_ns(9), 2)));
    }

    #[test]
    fn run_guarded_without_limits_matches_run() {
        let drive = |guarded: bool| {
            let mut engine: Engine<u32> = Engine::new();
            engine.schedule(SimTime::ZERO, 0);
            let mut seen = Vec::new();
            let handler = |now: SimTime, e: u32, sched: &mut Scheduler<'_, u32>| {
                seen.push(e);
                if e < 5 {
                    sched.schedule(now + SimTime::from_ns(3), e + 1);
                }
            };
            let end = if guarded {
                engine.run_guarded(Liveness::none(), handler).unwrap()
            } else {
                engine.run(handler)
            };
            (end, engine.processed(), engine.audit_digest(), seen)
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn event_budget_stall_is_reported_not_hung() {
        let mut engine: Engine<()> = Engine::new();
        engine.schedule(SimTime::ZERO, ());
        let guard = Liveness {
            max_events: Some(100),
            max_stagnant_events: None,
        };
        // Self-rescheduling event: would run forever under `run`.
        let err = engine
            .run_guarded(guard, |now, (), sched| {
                sched.schedule(now + SimTime::from_ns(1), ());
            })
            .unwrap_err();
        assert_eq!(err.cause, StallCause::EventBudget);
        assert_eq!(err.processed, 100);
        assert_eq!(err.pending, 1);
        assert!(err.to_string().contains("event budget"), "{err}");
    }

    #[test]
    fn finishing_exactly_on_budget_is_not_a_stall() {
        let mut engine: Engine<u8> = Engine::new();
        for i in 0..4 {
            engine.schedule(SimTime::from_ns(i), 0);
        }
        let guard = Liveness {
            max_events: Some(4),
            max_stagnant_events: None,
        };
        let end = engine.run_guarded(guard, |_, _, _| ()).unwrap();
        assert_eq!(end, SimTime::from_ns(3));
        assert_eq!(engine.processed(), 4);
    }

    #[test]
    fn zero_delay_livelock_reports_time_frozen() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(7), 0);
        let guard = Liveness {
            max_events: None,
            max_stagnant_events: Some(50),
        };
        // schedule_now loop: time never advances.
        let err = engine
            .run_guarded(guard, |_, _, sched| sched.schedule_now(0))
            .unwrap_err();
        assert_eq!(err.cause, StallCause::TimeFrozen);
        assert_eq!(err.now, SimTime::from_ns(7));
        assert_eq!(err.stagnant_events, 51);
        assert!(err.pending >= 1);
        assert!(err.to_string().contains("time frozen"), "{err}");
    }

    #[test]
    fn stagnant_counter_resets_when_time_advances() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::ZERO, 0);
        let guard = Liveness {
            max_events: None,
            max_stagnant_events: Some(3),
        };
        // Three events per instant, then the clock moves: never stalls.
        let end = engine
            .run_guarded(guard, |now, e, sched| {
                if e < 2 {
                    sched.schedule_now(e + 1);
                } else if now < SimTime::from_ns(5) {
                    sched.schedule(now + SimTime::from_ns(1), 0);
                }
            })
            .unwrap();
        assert_eq!(end, SimTime::from_ns(5));
    }

    #[test]
    fn step_processes_one_event() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule(SimTime::from_ns(1), 7);
        let mut got = None;
        assert!(engine.step(|_, e, _| got = Some(e)));
        assert_eq!(got, Some(7));
        assert!(!engine.step(|_, _, _| ()));
    }
}
