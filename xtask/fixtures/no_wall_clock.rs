//! Fixture: `no-wall-clock` must flag host-time reads in sim crates.

pub fn bad_signature() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn allowed() -> u64 {
    let t = std::time::Instant::now(); // simaudit:allow(no-wall-clock): fixture demo
    t.elapsed().as_nanos() as u64
}
