//! Fixture: `no-hot-alloc` must flag per-event allocations in event paths.

pub fn handle(xs: &[u32]) -> u32 {
    let v = xs.to_vec();
    let w = v.clone();
    let b = Box::new(xs.len() as u32);
    let mut acc = Vec::new();
    let s = String::new();
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
    acc.push(*b);
    (v.len() + w.len() + s.len() + doubled.len() + acc.len()) as u32
}

pub fn with_capacity(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    v.reserve(n);
    v
}

pub fn allowed(xs: &[u32]) -> Vec<u32> {
    // simaudit:allow(no-hot-alloc): retained payload outlives the handler event
    xs.to_vec()
}
