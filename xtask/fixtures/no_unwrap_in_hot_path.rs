//! Fixture: `no-unwrap-in-hot-path` must flag panicking accessors.

pub fn bad(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}

pub fn allowed(xs: &[u32]) -> u32 {
    *xs.first().expect("fixture") // simaudit:allow(no-unwrap-in-hot-path): fixture demonstrates a justified suppression
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!("3".parse::<u32>().unwrap(), 3);
    }
}
