//! Wiring fixture: a miniature dispatch loop.

pub struct World;

impl World {
    pub fn dispatch(&mut self, ev: Event) {
        match ev.port() {
            Port::Node(n) => self.node(n, ev),
            Port::Rack(r) => self.rack(r, ev),
            Port::Fabric => self.fabric(ev),
        }
    }

    fn node(&mut self, _n: u32, _ev: Event) {}
    fn rack(&mut self, _r: u32, _ev: Event) {}
    fn fabric(&mut self, ev: Event) {
        if let Event::FabricTick = ev {}
    }
}
