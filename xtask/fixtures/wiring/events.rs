//! Wiring fixture: a miniature Event/Port routing table.

pub enum Event {
    HostIssue { node: u32 },
    NicExpire { node: u32 },
    PacketAtSwitch { switch: u32 },
    ReduceExpire { switch: u32 },
    FabricTick,
}

pub enum Port {
    Node(u32),
    Rack(u32),
    Fabric,
}

impl Event {
    pub fn port(&self) -> Port {
        match *self {
            Event::HostIssue { node } | Event::NicExpire { node } => Port::Node(node),
            Event::PacketAtSwitch { switch } => Port::Rack(switch),
            Event::ReduceExpire { switch } => Port::Rack(switch),
            Event::FabricTick => Port::Fabric,
        }
    }
}
