//! Wiring fixture: a miniature component handler.

pub fn handle(ev: &Event) {
    match ev {
        Event::HostIssue { .. } => {}
        Event::NicExpire { .. } => {}
        Event::PacketAtSwitch { .. } => {}
        Event::ReduceExpire { .. } => {}
        _ => {}
    }
}
