//! Fixture: `no-debug-print` must flag console output in library code.

pub fn report(x: u32) {
    println!("x = {x}");
    eprintln!("warn: {x}");
    dbg!(x);
}

pub fn progress() {
    // simaudit:allow(no-debug-print): CLI progress reporting is this helper's job
    println!("tick");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_are_fine_in_tests() {
        println!("test output is fine");
    }
}
