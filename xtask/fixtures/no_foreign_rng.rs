//! Fixture: `no-foreign-rng` must flag randomness outside desim::rng.

use rand::{Rng, SeedableRng};

pub fn bad(seed: u64) -> u32 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    rng.gen_range(0..10)
}

pub fn allowed(rng: &mut netsparse_desim::SplitMix64) -> u32 {
    rng.range_u32(0, 10)
}
