//! Fixture: `no-raw-time-math` must flag ad-hoc float-to-time conversions.

use netsparse_desim::SimTime;

pub fn bad_link(bytes: u64, bw: f64) -> SimTime { SimTime::from_secs_f64(bytes as f64 * 8.0 / bw) }

pub fn bad_round(ps: f64) -> SimTime {
    let scaled = ps * 2.0;
    SimTime::from_ps(scaled.round() as u64)
}

pub fn allowed(ps: f64) -> SimTime {
    SimTime::from_ps_f64(ps)
}
