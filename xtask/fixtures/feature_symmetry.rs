//! Fixture: `feature-symmetry` requires a `#[cfg(not(...))]` stub for a
//! gated item referenced from unconditional code.

#[cfg(feature = "trace")]
fn record_flush(prs: u32) -> u32 {
    prs + 1
}

#[cfg(not(feature = "trace"))]
fn record_flush(_prs: u32) -> u32 { 0 }

pub fn emit(prs: u32) -> u32 {
    record_flush(prs)
}
