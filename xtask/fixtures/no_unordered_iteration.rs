//! Fixture: `no-unordered-iteration` must flag hash containers in event paths.

use std::collections::HashMap;
pub fn bad(m: &HashMap<u32, u32>) -> u32 {
    m.values().sum()
}

// simaudit:allow(no-unordered-iteration): lookup-only map, never iterated
pub fn allowed(m: &HashMap<u32, u32>) -> Option<&u32> {
    m.get(&3)
}
