//! Fixture: `no-lib-panic` must flag aborting macros in library code.

pub fn explode(x: u32) {
    panic!("boom: {x}");
}

pub fn unfinished() {
    todo!();
}

pub fn not_done() {
    unimplemented!();
}

pub fn impossible(x: u32) -> u32 {
    match x {
        0 => 0,
        _ => unreachable!("flagged without a marker"),
    }
}

pub fn justified() -> u32 {
    // simaudit:allow(no-lib-panic): documented panicking wrapper over a fallible api
    panic!("caller asked for the panicking flavor")
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        panic!("test panics are the failure path");
    }
}
