//! Diagnostic types and output formatting for simcheck.
//!
//! Two formats: human-readable text (`file:line: rule: message`, the
//! historical simaudit format) and `--format json`, a machine-readable
//! document CI archives as `lint_report.json`. The JSON writer is
//! hand-rolled (the offline build has no serde_json); the schema is
//! documented in `docs/STATIC_ANALYSIS.md`.

use std::fmt;

/// Every rule simcheck knows, in reporting order. Token-level rules come
/// first, then the cross-file passes, then marker hygiene.
pub const RULES: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iteration",
    "no-raw-time-math",
    "no-foreign-rng",
    "no-unwrap-in-hot-path",
    "no-hot-alloc",
    "no-debug-print",
    "no-lib-panic",
    "port-wiring",
    "feature-symmetry",
    "feature-forwarding",
    "allow-hygiene",
];

/// Rules that may be silenced with a `simaudit:allow(<rule>)` marker.
/// The cross-file passes and marker hygiene itself are structural
/// contracts and cannot be suppressed.
pub const SUPPRESSIBLE: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iteration",
    "no-raw-time-math",
    "no-foreign-rng",
    "no-unwrap-in-hot-path",
    "no-hot-alloc",
    "no-debug-print",
    "no-lib-panic",
    "feature-symmetry",
];

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the whole run as the `lint_report.json` document.
pub fn to_json(diags: &[Diagnostic], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"tool\": \"simcheck\",\n");
    out.push_str("  \"schema_version\": 2,\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{r}\""));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"violations\": {},\n", diags.len()));
    out.push_str("  \"diagnostics\": [");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.file),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_well_formed_and_escaped() {
        let diags = vec![Diagnostic {
            file: "crates/x.rs".to_string(),
            line: 3,
            rule: "no-wall-clock",
            message: "uses \"Instant\"\nbadly".to_string(),
        }];
        let json = to_json(&diags, 7);
        assert!(json.contains("\"violations\": 1"));
        assert!(json.contains("\"files_scanned\": 7"));
        assert!(json.contains("\\\"Instant\\\"\\nbadly"));
        // Balanced braces/brackets as a cheap well-formedness proxy.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_report_has_empty_array() {
        let json = to_json(&[], 0);
        assert!(json.contains("\"diagnostics\": []"));
        assert!(json.contains("\"violations\": 0"));
    }

    #[test]
    fn suppressible_is_a_subset_of_rules() {
        for r in SUPPRESSIBLE {
            assert!(RULES.contains(r), "{r} missing from RULES");
        }
    }
}
