//! The `simaudit` determinism lints: five repo-specific rules enforced over
//! `crates/**/*.rs` (see `docs/STATIC_ANALYSIS.md` for the catalogue).
//!
//! The linter is deliberately textual — the offline build environment has
//! no `syn`/`quote`, and the rules below are all expressible as line-level
//! pattern checks with a small amount of context (comment stripping,
//! `#[cfg(test)]` item tracking). False positives are expected to be rare
//! and are silenced explicitly with `// simaudit:allow(<rule>)` on the
//! offending line or the line above, which doubles as in-tree documentation
//! of why the site is sound.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Every rule the linter knows, in reporting order.
pub const RULES: &[&str] = &[
    "no-wall-clock",
    "no-unordered-iteration",
    "no-raw-time-math",
    "no-foreign-rng",
    "no-unwrap-in-hot-path",
];

/// A single lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the fix direction.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: {}: {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    if let Some(bad) = args.iter().find(|a| a.as_str() != "--quiet") {
        eprintln!("error: unknown lint option `{bad}`");
        return ExitCode::FAILURE;
    }
    let quiet = args.iter().any(|a| a == "--quiet");
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut diags = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(content) => {
                scanned += 1;
                diags.extend(scan_file(&rel, &content));
            }
            Err(e) => {
                eprintln!("error: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    for d in &diags {
        println!("{d}");
    }
    if diags.is_empty() {
        if !quiet {
            println!("simaudit: {scanned} files clean ({} rules)", RULES.len());
        }
        ExitCode::SUCCESS
    } else {
        println!("simaudit: {} violation(s) in {scanned} files", diags.len());
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up
    // from this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Scans one file's content and returns every violation.
///
/// `rel` is the workspace-relative path with forward slashes; it selects
/// which rules apply (several rules only police event-path crates).
pub fn scan_file(rel: &str, content: &str) -> Vec<Diagnostic> {
    let lines: Vec<&str> = content.lines().collect();
    let in_test = test_item_lines(&lines);
    let mut diags = Vec::new();

    let wall_clock = rel.starts_with("crates/");
    let unordered = in_event_path(rel);
    let raw_time = rel.starts_with("crates/") && rel != "crates/desim/src/time.rs";
    let foreign_rng = rel.starts_with("crates/") && rel != "crates/desim/src/rng.rs";
    let unwrap_hot = in_event_path(rel) || rel == "crates/desim/src/engine.rs";

    for (i, raw) in lines.iter().enumerate() {
        let line_no = i + 1;
        let code = strip_line_comment(raw);
        let allowed = |rule: &str| has_allow(raw, rule) || (i > 0 && has_allow(lines[i - 1], rule));
        let mut emit = |rule: &'static str, message: String| {
            if !allowed(rule) {
                diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: line_no,
                    rule,
                    message,
                });
            }
        };

        if wall_clock && (contains_word(code, "Instant") || contains_word(code, "SystemTime")) {
            emit(
                "no-wall-clock",
                "host wall-clock time in simulation code; use the event \
                 clock (`netsparse_desim::SimTime`) instead"
                    .to_string(),
            );
        }

        if unordered
            && !in_test[i]
            && (contains_word(code, "HashMap") || contains_word(code, "HashSet"))
        {
            emit(
                "no-unordered-iteration",
                "unordered hash container in an event path; iteration order \
                 is nondeterministic — use BTreeMap/BTreeSet or sort before \
                 iterating"
                    .to_string(),
            );
        }

        if raw_time {
            let from_ps_cast =
                code.contains("from_ps(") && (code.contains("as u64") || code.contains(".round("));
            if code.contains("from_secs_f64(") || from_ps_cast {
                emit(
                    "no-raw-time-math",
                    "ad-hoc float→time conversion outside desim::time; use \
                     `SimTime::from_ps_f64`/`SimTime::serialization` so \
                     rounding stays uniform"
                        .to_string(),
                );
            }
        }

        if foreign_rng {
            const FOREIGN: &[&str] = &[
                "rand",
                "thread_rng",
                "ThreadRng",
                "StdRng",
                "SeedableRng",
                "gen_range",
                "gen_bool",
            ];
            if FOREIGN.iter().any(|w| contains_word(code, w)) {
                emit(
                    "no-foreign-rng",
                    "randomness outside `netsparse_desim::rng`; draw from a \
                     seeded `SplitMix64` so runs stay bit-reproducible"
                        .to_string(),
                );
            }
        }

        if unwrap_hot && !in_test[i] && (code.contains(".unwrap()") || code.contains(".expect(")) {
            emit(
                "no-unwrap-in-hot-path",
                "unwrap/expect in a simulation hot path; propagate the error \
                 or handle the None case (panics abort multi-hour runs)"
                    .to_string(),
            );
        }
    }
    diags
}

/// The event-path crates policed by ordering- and panic-sensitive rules.
fn in_event_path(rel: &str) -> bool {
    rel == "crates/core/src/sim.rs"
        || rel.starts_with("crates/snic/src/")
        || rel.starts_with("crates/switch/src/")
        || rel.starts_with("crates/netsim/src/")
}

fn has_allow(line: &str, rule: &str) -> bool {
    line.contains(&format!("simaudit:allow({rule})"))
}

/// Returns the code portion of a line: everything before a `//` comment
/// that is not inside a string literal.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

/// Marks lines belonging to `#[cfg(test)]` items (mods or fns) so the
/// unwrap rule skips test code. Brace counting ignores braces inside
/// string and char literals.
fn test_item_lines(lines: &[&str]) -> Vec<bool> {
    let mut flags = vec![false; lines.len()];
    let mut pending = false; // saw #[cfg(test)], waiting for the item body
    let mut depth: i64 = 0;
    let mut in_item = false;
    for (i, raw) in lines.iter().enumerate() {
        let code = strip_line_comment(raw);
        if in_item {
            flags[i] = true;
            depth += brace_delta(code);
            if depth <= 0 {
                in_item = false;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending = true;
            flags[i] = true;
            // Attribute and item on one line: `#[cfg(test)] mod t { ... }`.
            let d = brace_delta(code);
            if d > 0 {
                in_item = true;
                depth = d;
                pending = false;
            }
            continue;
        }
        if pending {
            flags[i] = true;
            let trimmed = code.trim();
            if trimmed.is_empty() || trimmed.starts_with("#[") {
                continue; // further attributes / blank lines
            }
            let d = brace_delta(code);
            if d > 0 {
                in_item = true;
                depth = d;
            }
            // One-line item (`fn f() {}`) or declaration without a body
            // (`mod tests;`): nothing more to skip either way.
            pending = false;
        }
    }
    flags
}

/// Net `{`/`}` balance of a code line, ignoring braces inside string and
/// char literals (`format!("{x}")` must not count).
fn brace_delta(code: &str) -> i64 {
    let bytes = code.as_bytes();
    let mut delta = 0i64;
    let mut i = 0;
    let mut in_str = false;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            match b {
                b'\\' => i += 1,
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_str = true,
                b'\'' => {
                    // Char literal (`'x'`, `'\n'`) vs lifetime (`'a`): a
                    // char literal closes within a few bytes.
                    let close = bytes[i + 1..]
                        .iter()
                        .take(4)
                        .position(|&c| c == b'\'')
                        .map(|p| i + 1 + p);
                    if let Some(c) = close {
                        i = c;
                    }
                }
                b'{' => delta += 1,
                b'}' => delta -= 1,
                _ => {}
            }
        }
        i += 1;
    }
    delta
}

/// True when `word` occurs in `code` delimited by non-identifier chars.
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(at) = code[start..].find(word) {
        let at = start + at;
        let before_ok = at == 0
            || !code.as_bytes()[at - 1].is_ascii_alphanumeric() && code.as_bytes()[at - 1] != b'_';
        let after = at + word.len();
        let after_ok = after >= code.len()
            || !code.as_bytes()[after].is_ascii_alphanumeric() && code.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = at + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_at(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags.iter().map(|d| (d.rule, d.line)).collect()
    }

    #[test]
    fn fixture_no_wall_clock_fires() {
        let src = include_str!("../fixtures/no_wall_clock.rs");
        let diags = scan_file("crates/desim/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-wall-clock", 3), ("no-wall-clock", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_unordered_iteration_fires() {
        let src = include_str!("../fixtures/no_unordered_iteration.rs");
        let diags = scan_file("crates/snic/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-unordered-iteration", 3), ("no-unordered-iteration", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_raw_time_math_fires() {
        let src = include_str!("../fixtures/no_raw_time_math.rs");
        let diags = scan_file("crates/netsim/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-raw-time-math", 5), ("no-raw-time-math", 9)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_foreign_rng_fires() {
        let src = include_str!("../fixtures/no_foreign_rng.rs");
        let diags = scan_file("crates/sparse/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                ("no-foreign-rng", 3),
                ("no-foreign-rng", 6),
                ("no-foreign-rng", 7)
            ],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_unwrap_in_hot_path_fires() {
        let src = include_str!("../fixtures/no_unwrap_in_hot_path.rs");
        let diags = scan_file("crates/switch/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-unwrap-in-hot-path", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn rules_are_path_scoped() {
        // The unordered-iteration fixture is clean outside event paths
        // (apart from rules that apply everywhere, of which it has none).
        let src = include_str!("../fixtures/no_unordered_iteration.rs");
        assert!(scan_file("crates/sparse/src/fixture.rs", src).is_empty());
        // The unwrap fixture is clean outside hot paths.
        let src = include_str!("../fixtures/no_unwrap_in_hot_path.rs");
        assert!(scan_file("crates/hwmodel/src/fixture.rs", src).is_empty());
        // Nothing under tests/, examples/ or xtask/ is ever scanned by
        // path scope rules that require crates/.
        let src = "let t = std::time::Instant::now();";
        assert!(scan_file("tests/something.rs", src).is_empty());
    }

    #[test]
    fn allow_marker_suppresses_same_and_previous_line() {
        let same = "let t = Instant::now(); // simaudit:allow(no-wall-clock)";
        assert!(scan_file("crates/desim/src/x.rs", same).is_empty());
        let prev = "// simaudit:allow(no-wall-clock): host profiling\nlet t = Instant::now();";
        assert!(scan_file("crates/desim/src/x.rs", prev).is_empty());
        // The marker names a specific rule; others still fire.
        let wrong = "let t = Instant::now(); // simaudit:allow(no-foreign-rng)";
        assert_eq!(scan_file("crates/desim/src/x.rs", wrong).len(), 1);
    }

    #[test]
    fn comments_do_not_trigger_rules() {
        let src = "// HashMap iteration would be nondeterministic here\nlet x = 1;";
        assert!(scan_file("crates/snic/src/x.rs", src).is_empty());
        let src = "/// Unlike `rand`, SplitMix64 is in-tree.\npub struct S;";
        assert!(scan_file("crates/sparse/src/x.rs", src).is_empty());
    }

    #[test]
    fn test_items_may_use_hash_containers() {
        // Tests often use HashSet to assert uniqueness; ordering there is
        // irrelevant, so the rule only polices non-test code.
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let mut s = std::collections::HashSet::new(); s.insert(1); }\n}\nfn hot() { let _m: std::collections::HashMap<u32, u32> = Default::default(); }";
        let diags = scan_file("crates/snic/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("no-unordered-iteration", 5)]);
    }

    #[test]
    fn string_braces_do_not_break_test_tracking() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { println!(\"{}\", 1.to_string()); }\n    fn g() { let _ = \"x\".parse::<u32>().unwrap(); }\n}\npub fn hot() { Some(1).unwrap(); }";
        let diags = scan_file("crates/switch/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("no-unwrap-in-hot-path", 6)]);
    }

    #[test]
    fn word_boundaries_respected() {
        // `rng` and `operand` must not match the `rand` word rule.
        let src = "let operand = rng.next_u64();";
        assert!(scan_file("crates/sparse/src/x.rs", src).is_empty());
        assert!(contains_word("use rand::Rng;", "rand"));
        assert!(!contains_word("operand", "rand"));
        assert!(!contains_word("rands", "rand"));
    }
}
