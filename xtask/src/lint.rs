//! simcheck — the workspace's static-analysis engine (`cargo xtask lint`).
//!
//! Successor to the line-regex `simaudit` linter: a hand-rolled lexer
//! ([`lexer`](crate::lexer)) feeds token-level rules
//! ([`rules`](crate::rules)) plus two cross-file passes — Event/Port
//! wiring exhaustiveness ([`wiring`](crate::wiring)) and `audit`/`trace`
//! feature-gate symmetry ([`features`](crate::features)) — with
//! `simaudit:allow(<rule>)` marker hygiene enforced on top (a marker that
//! suppresses nothing, or carries no written justification, is itself an
//! error). See `docs/STATIC_ANALYSIS.md` for the rule catalogue and the
//! `--format json` schema.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use crate::features;
use crate::lexer::LexedFile;
use crate::report::{self, Diagnostic, RULES, SUPPRESSIBLE};
use crate::rules;
use crate::wiring;

/// Output format selected with `--format`.
#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

/// Entry point for `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    let mut quiet = false;
    let mut format = Format::Text;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quiet" => quiet = true,
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format = Format::Json,
                Some("text") => format = Format::Text,
                other => {
                    eprintln!(
                        "error: --format expects `json` or `text`, got {}",
                        other.unwrap_or("nothing")
                    );
                    return ExitCode::FAILURE;
                }
            },
            a if a.starts_with("--format=") => match &a["--format=".len()..] {
                "json" => format = Format::Json,
                "text" => format = Format::Text,
                other => {
                    eprintln!("error: --format expects `json` or `text`, got `{other}`");
                    return ExitCode::FAILURE;
                }
            },
            bad => {
                eprintln!("error: unknown lint option `{bad}`");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = workspace_root();
    let mut files = Vec::new();
    collect_rs_files(&root.join("crates"), &mut files);
    files.sort();

    let mut lexed: BTreeMap<String, LexedFile> = BTreeMap::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match fs::read_to_string(path) {
            Ok(content) => {
                lexed.insert(rel, LexedFile::lex(&content));
            }
            Err(e) => {
                eprintln!("error: cannot read {rel}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let scanned = lexed.len();

    // Per-file token rules, symmetry, and marker hygiene.
    let mut diags = Vec::new();
    for (rel, lf) in &lexed {
        diags.extend(check_lexed(rel, lf));
    }

    // Cross-file: Event/Port wiring.
    match (
        lexed.get(wiring::EVENTS_FILE),
        lexed.get(wiring::DRIVER_FILE),
    ) {
        (Some(events), Some(driver)) => {
            let handlers: Vec<(&str, &LexedFile)> = wiring::HANDLER_FILES
                .iter()
                .filter_map(|h| lexed.get(*h).map(|lf| (*h, lf)))
                .collect();
            diags.extend(wiring::check(events, driver, &handlers));
        }
        _ => diags.push(Diagnostic {
            file: wiring::EVENTS_FILE.to_string(),
            line: 1,
            rule: "port-wiring",
            message: "events.rs / driver.rs not found — the wiring pass \
                      tracks the component routing table in these files"
                .to_string(),
        }),
    }

    // Cross-file: the workspace feature graph.
    diags.extend(features::check_feature_graph(&root));

    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));

    match format {
        Format::Json => print!("{}", report::to_json(&diags, scanned)),
        Format::Text => {
            for d in &diags {
                println!("{d}");
            }
            if diags.is_empty() {
                if !quiet {
                    println!(
                        "simcheck: {scanned} files clean ({} rules, wiring + \
                         feature graph verified)",
                        RULES.len()
                    );
                }
            } else {
                println!("simcheck: {} violation(s) in {scanned} files", diags.len());
            }
        }
    }
    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Lexes and checks a single source file: token rules + cfg symmetry,
/// then allow-marker suppression and hygiene. The fixture tests drive
/// the engine through this entry point.
#[cfg(test)]
pub fn check_source(rel: &str, src: &str) -> Vec<Diagnostic> {
    let lf = LexedFile::lex(src);
    check_lexed(rel, &lf)
}

fn check_lexed(rel: &str, lf: &LexedFile) -> Vec<Diagnostic> {
    let mut raw = rules::scan(rel, lf);
    raw.extend(features::check_cfg_symmetry(rel, lf));
    apply_markers(rel, lf, raw)
}

/// Minimum alphanumeric characters of prose for a marker justification.
const MIN_JUSTIFICATION: usize = 10;

/// Applies `simaudit:allow` markers to `raw` findings and appends the
/// hygiene findings: unknown rule, unsuppressible rule, stale marker
/// (suppresses nothing), missing justification.
fn apply_markers(rel: &str, lf: &LexedFile, raw: Vec<Diagnostic>) -> Vec<Diagnostic> {
    let mut used = vec![false; lf.markers.len()];
    let mut out = Vec::new();
    for d in raw {
        let marker = lf
            .markers
            .iter()
            .position(|m| m.rule == d.rule && (m.line == d.line || m.line + 1 == d.line));
        match marker {
            Some(i) if SUPPRESSIBLE.contains(&d.rule) => used[i] = true,
            _ => out.push(d),
        }
    }
    for (i, m) in lf.markers.iter().enumerate() {
        let hygiene = |message: String| Diagnostic {
            file: rel.to_string(),
            line: m.line,
            rule: "allow-hygiene",
            message,
        };
        if !RULES.contains(&m.rule.as_str()) {
            out.push(hygiene(format!(
                "allow marker names unknown rule `{}`; see docs/STATIC_ANALYSIS.md \
                 for the catalogue",
                m.rule
            )));
        } else if !SUPPRESSIBLE.contains(&m.rule.as_str()) {
            out.push(hygiene(format!(
                "rule `{}` is a structural contract and cannot be suppressed \
                 with an allow marker",
                m.rule
            )));
        } else if !used[i] {
            out.push(hygiene(format!(
                "stale allow marker: no `{}` finding fires on this or the next \
                 line — remove the marker",
                m.rule
            )));
        } else if m
            .justification
            .chars()
            .filter(|c| c.is_alphanumeric())
            .count()
            < MIN_JUSTIFICATION
        {
            out.push(hygiene(format!(
                "allow marker for `{}` carries no written justification; say \
                 why the site is sound (e.g. `// simaudit:allow({}): <reason>`)",
                m.rule, m.rule
            )));
        }
    }
    out
}

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/xtask, so the workspace root is one level up
    // from this crate's manifest.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask has a parent directory")
        .to_path_buf()
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wiring;

    fn rules_at(diags: &[Diagnostic]) -> Vec<(&'static str, usize)> {
        diags.iter().map(|d| (d.rule, d.line)).collect()
    }

    // ---------------- original five rules, token-aware ----------------

    #[test]
    fn fixture_no_wall_clock_fires() {
        let src = include_str!("../fixtures/no_wall_clock.rs");
        let diags = check_source("crates/desim/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-wall-clock", 3), ("no-wall-clock", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_unordered_iteration_fires() {
        let src = include_str!("../fixtures/no_unordered_iteration.rs");
        let diags = check_source("crates/snic/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-unordered-iteration", 3), ("no-unordered-iteration", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_raw_time_math_fires() {
        let src = include_str!("../fixtures/no_raw_time_math.rs");
        let diags = check_source("crates/netsim/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-raw-time-math", 5), ("no-raw-time-math", 9)],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_foreign_rng_fires() {
        let src = include_str!("../fixtures/no_foreign_rng.rs");
        let diags = check_source("crates/sparse/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                ("no-foreign-rng", 3),
                ("no-foreign-rng", 6),
                ("no-foreign-rng", 7)
            ],
            "{diags:#?}"
        );
    }

    #[test]
    fn fixture_no_unwrap_in_hot_path_fires() {
        let src = include_str!("../fixtures/no_unwrap_in_hot_path.rs");
        let diags = check_source("crates/switch/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![("no-unwrap-in-hot-path", 4)],
            "{diags:#?}"
        );
    }

    #[test]
    fn rules_are_path_scoped() {
        // The unordered-iteration fixture is clean outside event paths —
        // but its allow marker then becomes stale (hygiene still fires).
        let src = include_str!("../fixtures/no_unordered_iteration.rs");
        let diags = check_source("crates/sparse/src/fixture.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 8)], "{diags:#?}");
        // Nothing outside crates/ is policed by the path-scoped rules.
        let src = "let t = std::time::Instant::now();";
        assert!(check_source("tests/something.rs", src).is_empty());
    }

    #[test]
    fn componentized_sim_files_are_event_path() {
        // The pre-refactor scanner still pointed at crates/core/src/sim.rs;
        // the sim/ component files must be in scope now.
        let src = "pub fn hot() { let m: std::collections::HashMap<u32, u32> = Default::default(); let _ = m; }";
        let diags = check_source("crates/core/src/sim/node.rs", src);
        assert_eq!(rules_at(&diags), vec![("no-unordered-iteration", 1)]);
    }

    // ---------------- lexer-powered robustness ----------------

    #[test]
    fn comments_and_literals_do_not_trigger_rules() {
        let src = "// HashMap iteration would be nondeterministic here\nlet x = 1;";
        assert!(check_source("crates/snic/src/x.rs", src).is_empty());
        let src = "/// Unlike `rand`, SplitMix64 is in-tree.\npub struct S;";
        assert!(check_source("crates/sparse/src/x.rs", src).is_empty());
        // Identifiers inside string and raw-string literals are inert —
        // the line-regex scanner could not tell these apart.
        let src = "let s = \"uses HashMap and rand\"; let r = r#\"Instant::now() // .unwrap()\"#;";
        assert!(check_source("crates/snic/src/x.rs", src).is_empty());
        // A '"' char literal must not open a string and hide what follows.
        let src = "let q = '\"'; let t = std::time::Instant::now();";
        assert_eq!(
            rules_at(&check_source("crates/desim/src/x.rs", src)),
            vec![("no-wall-clock", 1)]
        );
    }

    #[test]
    fn unwrap_matching_is_exact() {
        // `.unwrap_or(...)` and `.expect_err(...)`-style idents must not
        // match; the old substring scanner got this right only for
        // unwrap_or by luck of the parenthesis.
        let src = "pub fn hot(x: Option<u32>) -> u32 { x.unwrap_or(0) }";
        assert!(check_source("crates/switch/src/x.rs", src).is_empty());
        let src = "pub fn hot(x: Option<u32>) -> u32 { x.unwrap() }";
        assert_eq!(
            rules_at(&check_source("crates/switch/src/x.rs", src)),
            vec![("no-unwrap-in-hot-path", 1)]
        );
    }

    #[test]
    fn test_items_may_use_hash_containers() {
        let src = "#[cfg(test)]\nmod tests {\n    fn f() { let mut s = std::collections::HashSet::new(); s.insert(1); }\n}\nfn hot() { let _m: std::collections::HashMap<u32, u32> = Default::default(); }";
        let diags = check_source("crates/snic/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("no-unordered-iteration", 5)]);
    }

    // ---------------- allow markers + hygiene ----------------

    #[test]
    fn allow_marker_suppresses_same_and_previous_line() {
        let same = "let t = Instant::now(); // simaudit:allow(no-wall-clock): host-side CLI timing";
        assert!(check_source("crates/desim/src/x.rs", same).is_empty());
        let prev = "// simaudit:allow(no-wall-clock): host profiling only\nlet t = Instant::now();";
        assert!(check_source("crates/desim/src/x.rs", prev).is_empty());
        // The marker names a specific rule; others still fire (and the
        // marker itself is then stale).
        let wrong = "let t = Instant::now(); // simaudit:allow(no-foreign-rng): wrong rule here";
        let diags = check_source("crates/desim/src/x.rs", wrong);
        assert_eq!(
            rules_at(&diags),
            vec![("no-wall-clock", 1), ("allow-hygiene", 1)],
            "{diags:#?}"
        );
    }

    #[test]
    fn bare_marker_without_justification_is_flagged() {
        let src = "let t = Instant::now(); // simaudit:allow(no-wall-clock)";
        let diags = check_source("crates/desim/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 1)], "{diags:#?}");
        assert!(diags[0].message.contains("justification"), "{}", diags[0]);
    }

    #[test]
    fn stale_marker_is_flagged() {
        let src = "// simaudit:allow(no-wall-clock): nothing here needs this\nlet x = 1;";
        let diags = check_source("crates/desim/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 1)]);
        assert!(diags[0].message.contains("stale"), "{}", diags[0]);
    }

    #[test]
    fn unknown_rule_marker_is_flagged() {
        let src = "let x = 1; // simaudit:allow(no-such-rule): typo in the rule name";
        let diags = check_source("crates/desim/src/x.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 1)]);
        assert!(diags[0].message.contains("unknown rule"), "{}", diags[0]);
    }

    // ---------------- no-hot-alloc ----------------

    #[test]
    fn fixture_no_hot_alloc_fires() {
        let src = include_str!("../fixtures/no_hot_alloc.rs");
        let diags = check_source("crates/snic/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                ("no-hot-alloc", 4),
                ("no-hot-alloc", 5),
                ("no-hot-alloc", 6),
                ("no-hot-alloc", 7),
                ("no-hot-alloc", 8),
                ("no-hot-alloc", 9),
            ],
            "{diags:#?}"
        );
        // Outside the hot path the same file is clean apart from the
        // then-stale allow marker.
        let diags = check_source("crates/hwmodel/src/fixture.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 21)], "{diags:#?}");
    }

    // ---------------- no-debug-print ----------------

    #[test]
    fn fixture_no_debug_print_fires() {
        let src = include_str!("../fixtures/no_debug_print.rs");
        let diags = check_source("crates/desim/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                ("no-debug-print", 4),
                ("no-debug-print", 5),
                ("no-debug-print", 6),
            ],
            "{diags:#?}"
        );
        // Binaries own their stdout — only the now-stale marker reports.
        let diags = check_source("crates/bench/src/bin/fixture.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 10)], "{diags:#?}");
    }

    // ---------------- no-lib-panic ----------------

    #[test]
    fn fixture_no_lib_panic_fires() {
        let src = include_str!("../fixtures/no_lib_panic.rs");
        let diags = check_source("crates/core/src/fixture.rs", src);
        assert_eq!(
            rules_at(&diags),
            vec![
                ("no-lib-panic", 4),
                ("no-lib-panic", 8),
                ("no-lib-panic", 12),
                ("no-lib-panic", 18),
            ],
            "{diags:#?}"
        );
    }

    #[test]
    fn no_lib_panic_exempts_bins_and_tests() {
        let src = include_str!("../fixtures/no_lib_panic.rs");
        // Binaries own their own failure policy — only the now-stale
        // marker reports.
        let diags = check_source("crates/bench/src/bin/fixture.rs", src);
        assert_eq!(rules_at(&diags), vec![("allow-hygiene", 23)], "{diags:#?}");
        // The `#[cfg(test)]` panic inside the fixture never fires in
        // either scope (covered by fixture_no_lib_panic_fires above for
        // the library case).
    }

    #[test]
    fn no_lib_panic_marker_requires_justification() {
        let src =
            "pub fn f() {\n    // simaudit:allow(no-lib-panic): x\n    panic!(\"boom\");\n}\n";
        let diags = check_source("crates/core/src/fixture.rs", src);
        // A bare/underspecified justification is an allow-hygiene error,
        // and the finding itself still reports.
        assert!(
            diags.iter().any(|d| d.rule == "allow-hygiene"),
            "{diags:#?}"
        );
    }

    // ---------------- feature-gate symmetry ----------------

    #[test]
    fn fixture_feature_symmetry_is_clean_with_stub() {
        let src = include_str!("../fixtures/feature_symmetry.rs");
        assert!(check_source("crates/snic/src/fixture.rs", src).is_empty());
    }

    #[test]
    fn deleting_the_not_stub_fails_symmetry() {
        let src = include_str!("../fixtures/feature_symmetry.rs");
        // Remove the `#[cfg(not(feature = "trace"))]` stub item.
        let without: String = src
            .lines()
            .filter(|l| !l.contains("not(feature") && !l.contains("fn record_flush(_prs"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = check_source("crates/snic/src/fixture.rs", &without);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert_eq!(diags[0].rule, "feature-symmetry");
        assert!(diags[0].message.contains("record_flush"), "{}", diags[0]);
    }

    // ---------------- port wiring ----------------

    fn wiring_fixture() -> (String, String, String) {
        (
            include_str!("../fixtures/wiring/events.rs").to_string(),
            include_str!("../fixtures/wiring/driver.rs").to_string(),
            include_str!("../fixtures/wiring/node.rs").to_string(),
        )
    }

    fn run_wiring(events: &str, driver: &str, node: &str) -> Vec<Diagnostic> {
        let ev = LexedFile::lex(events);
        let dr = LexedFile::lex(driver);
        let no = LexedFile::lex(node);
        let handlers: Vec<(&str, &LexedFile)> = vec![("driver.rs", &dr), ("node.rs", &no)];
        wiring::check(&ev, &dr, &handlers)
    }

    #[test]
    fn wiring_fixture_is_clean() {
        let (e, d, n) = wiring_fixture();
        let diags = run_wiring(&e, &d, &n);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn deleting_a_port_arm_fails_wiring() {
        let (e, d, n) = wiring_fixture();
        let e: String = e
            .lines()
            .filter(|l| !l.contains("Event::PacketAtSwitch { switch }"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = run_wiring(&e, &d, &n);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].message.contains("PacketAtSwitch"), "{}", diags[0]);
    }

    #[test]
    fn wildcard_port_arm_fails_wiring() {
        let (e, d, n) = wiring_fixture();
        let e = e.replace(
            "Event::PacketAtSwitch { switch } => Port::Rack(switch),",
            "_ => Port::Rack(0),",
        );
        let diags = run_wiring(&e, &d, &n);
        assert!(
            diags.iter().any(|d| d.message.contains("wildcard")),
            "{diags:#?}"
        );
    }

    #[test]
    fn deleting_a_dispatch_arm_fails_wiring() {
        let (e, d, n) = wiring_fixture();
        let d: String = d
            .lines()
            .filter(|l| !l.contains("Port::Rack"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = run_wiring(&e, &d, &n);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].message.contains("Port::Rack"), "{}", diags[0]);
    }

    #[test]
    fn or_pattern_port_arms_route_every_variant() {
        // The production events.rs routes the rack timer variants
        // (SwitchConcatExpire, ReduceExpire) through one or-pattern arm
        // with PacketAtSwitch; the pass must credit every variant in
        // such an arm, not just the first.
        let (e, d, n) = wiring_fixture();
        let e = e.replace(
            "Event::PacketAtSwitch { switch } => Port::Rack(switch),\n            \
             Event::ReduceExpire { switch } => Port::Rack(switch),",
            "Event::PacketAtSwitch { switch } | Event::ReduceExpire { switch } => \
             Port::Rack(switch),",
        );
        assert!(
            e.contains("| Event::ReduceExpire"),
            "replacement must apply"
        );
        let diags = run_wiring(&e, &d, &n);
        assert!(diags.is_empty(), "{diags:#?}");
    }

    #[test]
    fn unreferenced_timer_variant_fails_wiring() {
        // A routed-but-never-handled timer variant (the shape a dropped
        // ReduceExpire handler would take) must be flagged.
        let (e, d, n) = wiring_fixture();
        let n: String = n
            .lines()
            .filter(|l| !l.contains("Event::ReduceExpire"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = run_wiring(&e, &d, &n);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(diags[0].message.contains("ReduceExpire"), "{}", diags[0]);
    }

    #[test]
    fn unhandled_event_variant_fails_wiring() {
        let (e, d, n) = wiring_fixture();
        let n: String = n
            .lines()
            .filter(|l| !l.contains("Event::HostIssue"))
            .collect::<Vec<_>>()
            .join("\n");
        let diags = run_wiring(&e, &d, &n);
        assert_eq!(diags.len(), 1, "{diags:#?}");
        assert!(
            diags[0].message.contains("never referenced"),
            "{}",
            diags[0]
        );
    }
}
